//! Property-based tests on the metrics crate.

use orion_desim::time::SimTime;
use orion_metrics::{cost_savings, makespan_savings, LatencyRecorder, ThroughputCounter};
use proptest::prelude::*;

proptest! {
    /// Percentiles are monotone in q and bounded by min/max of the sample.
    #[test]
    fn percentiles_monotone_and_bounded(mut xs in prop::collection::vec(1u64..1_000_000, 1..300)) {
        let mut r = LatencyRecorder::new();
        for &x in &xs {
            r.record(SimTime::from_nanos(x));
        }
        xs.sort_unstable();
        let lo = SimTime::from_nanos(*xs.first().unwrap());
        let hi = SimTime::from_nanos(*xs.last().unwrap());
        let mut prev = SimTime::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let p = r.percentile(q);
            prop_assert!(p >= prev, "q={q}: {p} < {prev}");
            prop_assert!(p >= lo && p <= hi);
            prev = p;
        }
        prop_assert_eq!(r.max(), hi);
        prop_assert_eq!(r.percentile(1.0), hi);
    }

    /// The nearest-rank percentile equals the sorted sample's element.
    #[test]
    fn nearest_rank_definition(xs in prop::collection::vec(1u64..1_000_000, 1..200), q in 0.0f64..1.0) {
        let mut r = LatencyRecorder::new();
        for &x in &xs {
            r.record(SimTime::from_nanos(x));
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert_eq!(r.percentile(q), SimTime::from_nanos(sorted[rank - 1]));
    }

    /// Mean is between min and max, and recording order does not matter.
    #[test]
    fn mean_order_independent(xs in prop::collection::vec(1u64..1_000_000, 1..200)) {
        let mut fwd = LatencyRecorder::new();
        let mut rev = LatencyRecorder::new();
        for &x in &xs {
            fwd.record(SimTime::from_nanos(x));
        }
        for &x in xs.iter().rev() {
            rev.record(SimTime::from_nanos(x));
        }
        prop_assert_eq!(fwd.mean(), rev.mean());
        prop_assert_eq!(fwd.p99(), rev.p99());
        prop_assert!(fwd.mean() >= SimTime::from_nanos(*xs.iter().min().unwrap()));
        prop_assert!(fwd.mean() <= SimTime::from_nanos(*xs.iter().max().unwrap()));
    }

    /// Throughput is completions / window exactly.
    #[test]
    fn throughput_definition(n in 0u64..10_000, window_ms in 1u64..100_000) {
        let mut t = ThroughputCounter::new();
        t.record_n(n);
        t.set_window(SimTime::from_millis(window_ms));
        let expect = n as f64 / (window_ms as f64 / 1000.0);
        prop_assert!((t.per_second() - expect).abs() < 1e-9 * expect.max(1.0));
    }

    /// Cost savings scale linearly in collocated throughput and in N.
    #[test]
    fn cost_savings_linear(tput in 0.1f64..100.0, ded in 0.1f64..100.0, n in 1u32..8) {
        let s1 = cost_savings(n, tput, ded);
        let s2 = cost_savings(n, 2.0 * tput, ded);
        prop_assert!((s2 - 2.0 * s1).abs() < 1e-9);
        let sn = cost_savings(2 * n, tput, ded);
        prop_assert!((sn - 2.0 * s1).abs() < 1e-9);
        prop_assert!(makespan_savings(tput, tput) - 1.0 < 1e-12);
    }
}
