//! Randomized property tests on the metrics crate, driven by a
//! deterministic [`DetRng`] fuzz corpus (one sub-seed per case index).

use orion_desim::rng::{cell_seed, DetRng};
use orion_desim::time::SimTime;
use orion_metrics::{cost_savings, makespan_savings, LatencyRecorder, ThroughputCounter};

const CASES: u64 = 64;

fn gen_samples(rng: &mut DetRng, max_len: u64) -> Vec<u64> {
    let n = 1 + rng.uniform_u64(max_len - 1) as usize;
    (0..n).map(|_| 1 + rng.uniform_u64(999_999)).collect()
}

/// Percentiles are monotone in q and bounded by min/max of the sample.
#[test]
fn percentiles_monotone_and_bounded() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xC1, case));
        let mut xs = gen_samples(&mut rng, 300);
        let mut r = LatencyRecorder::new();
        for &x in &xs {
            r.record(SimTime::from_nanos(x));
        }
        xs.sort_unstable();
        let lo = SimTime::from_nanos(*xs.first().unwrap());
        let hi = SimTime::from_nanos(*xs.last().unwrap());
        let mut prev = SimTime::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let p = r.percentile(q);
            assert!(p >= prev, "case {case} q={q}: {p} < {prev}");
            assert!(p >= lo && p <= hi, "case {case}");
            prev = p;
        }
        assert_eq!(r.max(), hi, "case {case}");
        assert_eq!(r.percentile(1.0), hi, "case {case}");
    }
}

/// The nearest-rank percentile equals the sorted sample's element.
#[test]
fn nearest_rank_definition() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xC2, case));
        let xs = gen_samples(&mut rng, 200);
        let q = rng.next_f64();
        let mut r = LatencyRecorder::new();
        for &x in &xs {
            r.record(SimTime::from_nanos(x));
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        assert_eq!(
            r.percentile(q),
            SimTime::from_nanos(sorted[rank - 1]),
            "case {case}"
        );
    }
}

/// Mean is between min and max, and recording order does not matter.
#[test]
fn mean_order_independent() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xC3, case));
        let xs = gen_samples(&mut rng, 200);
        let mut fwd = LatencyRecorder::new();
        let mut rev = LatencyRecorder::new();
        for &x in &xs {
            fwd.record(SimTime::from_nanos(x));
        }
        for &x in xs.iter().rev() {
            rev.record(SimTime::from_nanos(x));
        }
        assert_eq!(fwd.mean(), rev.mean(), "case {case}");
        assert_eq!(fwd.p99(), rev.p99(), "case {case}");
        assert!(fwd.mean() >= SimTime::from_nanos(*xs.iter().min().unwrap()));
        assert!(fwd.mean() <= SimTime::from_nanos(*xs.iter().max().unwrap()));
    }
}

/// Throughput is completions / window exactly.
#[test]
fn throughput_definition() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xC4, case));
        let n = rng.uniform_u64(10_000);
        let window_ms = 1 + rng.uniform_u64(99_999);
        let mut t = ThroughputCounter::new();
        t.record_n(n);
        t.set_window(SimTime::from_millis(window_ms));
        let expect = n as f64 / (window_ms as f64 / 1000.0);
        assert!(
            (t.per_second() - expect).abs() < 1e-9 * expect.max(1.0),
            "case {case}"
        );
    }
}

/// Cost savings scale linearly in collocated throughput and in N.
#[test]
fn cost_savings_linear() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xC5, case));
        let tput = rng.uniform_f64(0.1, 100.0);
        let ded = rng.uniform_f64(0.1, 100.0);
        let n = 1 + rng.uniform_u64(7) as u32;
        let s1 = cost_savings(n, tput, ded);
        let s2 = cost_savings(n, 2.0 * tput, ded);
        assert!((s2 - 2.0 * s1).abs() < 1e-9, "case {case}");
        let sn = cost_savings(2 * n, tput, ded);
        assert!((sn - 2.0 * s1).abs() < 1e-9, "case {case}");
        assert!(makespan_savings(tput, tput) - 1.0 < 1e-12, "case {case}");
    }
}
