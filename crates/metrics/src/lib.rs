//! Metrics for the Orion reproduction: latency percentiles, throughput,
//! and the paper's cost-savings model (§6.2).

pub mod cost;
pub mod latency;
pub mod throughput;

pub use cost::{cost_savings, makespan_savings};
pub use latency::LatencyRecorder;
pub use throughput::ThroughputCounter;
