//! Request latency recording and percentile extraction.

use orion_desim::time::SimTime;

/// Collects request latencies and answers percentile queries.
///
/// Percentiles use the nearest-rank method on the sorted sample, which is
/// what serving-systems papers (including Orion) report as p50/p95/p99.
///
/// # Examples
///
/// ```
/// use orion_metrics::LatencyRecorder;
/// use orion_desim::time::SimTime;
///
/// let mut r = LatencyRecorder::new();
/// for ms in 1..=100 {
///     r.record(SimTime::from_millis(ms));
/// }
/// assert_eq!(r.percentile(0.50), SimTime::from_millis(50));
/// assert_eq!(r.percentile(0.99), SimTime::from_millis(99));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<SimTime>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: SimTime) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The nearest-rank percentile, `q` in `[0, 1]`. Zero when empty.
    pub fn percentile(&mut self, q: f64) -> SimTime {
        if self.samples.is_empty() {
            return SimTime::ZERO;
        }
        self.sort();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Median latency.
    pub fn p50(&mut self) -> SimTime {
        self.percentile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&mut self) -> SimTime {
        self.percentile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&mut self) -> SimTime {
        self.percentile(0.99)
    }

    /// Mean latency.
    pub fn mean(&self) -> SimTime {
        if self.samples.is_empty() {
            return SimTime::ZERO;
        }
        let total: SimTime = self.samples.iter().copied().sum();
        total / self.samples.len() as u64
    }

    /// Largest recorded latency.
    pub fn max(&self) -> SimTime {
        self.samples.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// All samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[SimTime] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(values_ms: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &v in values_ms {
            r.record(SimTime::from_millis(v));
        }
        r
    }

    #[test]
    fn empty_recorder_is_zero() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.p99(), SimTime::ZERO);
        assert_eq!(r.mean(), SimTime::ZERO);
        assert_eq!(r.max(), SimTime::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut r = rec(&[7]);
        assert_eq!(r.p50(), SimTime::from_millis(7));
        assert_eq!(r.p99(), SimTime::from_millis(7));
        assert_eq!(r.percentile(0.0), SimTime::from_millis(7));
        assert_eq!(r.percentile(1.0), SimTime::from_millis(7));
    }

    #[test]
    fn all_equal_samples_collapse_every_percentile() {
        // The online solo-latency estimator leans on this: a deterministic
        // simulator produces runs of identical latencies, and every
        // percentile of such a sample must be that one value.
        let mut r = rec(&[25; 64]);
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(r.percentile(q), SimTime::from_millis(25), "q={q}");
        }
        assert_eq!(r.mean(), SimTime::from_millis(25));
        assert_eq!(r.max(), SimTime::from_millis(25));
    }

    #[test]
    fn two_samples_split_at_the_median() {
        let mut r = rec(&[10, 20]);
        // Nearest-rank: p50 lands on the lower sample, anything above on
        // the upper; no interpolation ever invents an unobserved value.
        assert_eq!(r.p50(), SimTime::from_millis(10));
        assert_eq!(r.percentile(0.51), SimTime::from_millis(20));
        assert_eq!(r.p99(), SimTime::from_millis(20));
        assert_eq!(r.mean(), SimTime::from_millis(15));
    }

    #[test]
    fn nearest_rank_on_100_samples() {
        let mut r = rec(&(1..=100).collect::<Vec<_>>());
        assert_eq!(r.p50(), SimTime::from_millis(50));
        assert_eq!(r.p95(), SimTime::from_millis(95));
        assert_eq!(r.p99(), SimTime::from_millis(99));
        assert_eq!(r.max(), SimTime::from_millis(100));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut r = rec(&[30, 10, 20]);
        assert_eq!(r.p50(), SimTime::from_millis(20));
        assert_eq!(r.percentile(1.0), SimTime::from_millis(30));
        // Recording after a query invalidates and re-sorts.
        r.record(SimTime::from_millis(5));
        assert_eq!(r.percentile(0.25), SimTime::from_millis(5));
    }

    #[test]
    fn mean_is_exact() {
        let r = rec(&[10, 20, 30]);
        assert_eq!(r.mean(), SimTime::from_millis(20));
    }

    #[test]
    fn percentile_clamps_q() {
        let mut r = rec(&[1, 2, 3]);
        assert_eq!(r.percentile(-1.0), SimTime::from_millis(1));
        assert_eq!(r.percentile(2.0), SimTime::from_millis(3));
    }
}
