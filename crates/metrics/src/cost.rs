//! The paper's cost-savings model (§6.2.1, Table 4; §6.2.2 makespan).
//!
//! Dedicating one GPU per job costs `N_jobs * GPU-time`; collocating all jobs
//! on one GPU costs `1 * GPU-time` but each job runs slower. The paper
//! quantifies savings as
//!
//! ```text
//! cost_savings = (N_gpus_dedicated * JCT_dedicated) / (1 * JCT_collocated)
//!              = N * Throughput_collocated / Throughput_dedicated
//! ```

/// Cost savings of collocating `n_jobs` on one GPU vs. dedicating a GPU each
/// (the paper's 2-job formula generalized to N).
///
/// `throughput_collocated` / `throughput_dedicated` refer to the job whose
/// completion time defines the comparison (the paper uses the best-effort
/// training job's iterations/sec, Table 4).
///
/// Returns 0 for non-positive dedicated throughput.
pub fn cost_savings(n_jobs: u32, throughput_collocated: f64, throughput_dedicated: f64) -> f64 {
    if throughput_dedicated <= 0.0 {
        return 0.0;
    }
    n_jobs as f64 * throughput_collocated / throughput_dedicated
}

/// Makespan-based savings (§6.2.2): total GPU-time to finish a job set
/// sequentially on one GPU vs. collocated on one GPU.
///
/// Returns 0 for a non-positive collocated makespan.
pub fn makespan_savings(sequential_makespan_s: f64, collocated_makespan_s: f64) -> f64 {
    if collocated_makespan_s <= 0.0 {
        return 0.0;
    }
    sequential_makespan_s / collocated_makespan_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table4_example() {
        // ResNet50: 10.3 iters/s dedicated, 7.45 collocated -> 1.45x savings.
        let s = cost_savings(2, 7.45, 10.3);
        assert!((s - 1.4466).abs() < 1e-3, "savings {s}");
    }

    #[test]
    fn no_throughput_no_savings() {
        assert_eq!(cost_savings(2, 1.0, 0.0), 0.0);
        assert_eq!(makespan_savings(10.0, 0.0), 0.0);
    }

    #[test]
    fn makespan_ratio() {
        assert!((makespan_savings(129.0, 100.0) - 1.29).abs() < 1e-12);
    }

    #[test]
    fn breakeven_at_half_throughput_two_jobs() {
        // Two jobs, each at exactly half dedicated speed: savings = 1.0
        // (collocation neither wins nor loses).
        assert!((cost_savings(2, 0.5, 1.0) - 1.0).abs() < 1e-12);
    }
}
