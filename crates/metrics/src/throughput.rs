//! Throughput accounting (requests or iterations per second).

use orion_desim::time::SimTime;

/// Counts completed requests/iterations over a measurement window.
#[derive(Debug, Clone, Default)]
pub struct ThroughputCounter {
    completed: u64,
    window: SimTime,
}

impl ThroughputCounter {
    /// Creates a counter with no completions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completion.
    pub fn record(&mut self) {
        self.completed += 1;
    }

    /// Records `n` completions at once.
    pub fn record_n(&mut self, n: u64) {
        self.completed += n;
    }

    /// Sets the measurement window (typically the experiment horizon).
    pub fn set_window(&mut self, window: SimTime) {
        self.window = window;
    }

    /// Completions so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Completions per second over the window; zero for an empty window.
    pub fn per_second(&self) -> f64 {
        let w = self.window.as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.completed as f64 / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_over_window() {
        let mut t = ThroughputCounter::new();
        t.record_n(50);
        t.record();
        t.set_window(SimTime::from_secs(10));
        assert_eq!(t.completed(), 51);
        assert!((t.per_second() - 5.1).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_zero_rate() {
        let mut t = ThroughputCounter::new();
        t.record();
        assert_eq!(t.per_second(), 0.0);
    }
}
