//! Profile data model: what the offline phase hands to the scheduler.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use orion_desim::time::SimTime;
use orion_gpu::kernel::ResourceProfile;
use orion_gpu::util::UtilSummary;
use orion_json::{json, FromJson, JsonError, ToJson, Value};

/// Profiling results for one kernel, keyed by its id within the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel id (stable within the workload).
    pub kernel_id: u32,
    /// Kernel name (diagnostics only). Interned: shares the
    /// [`orion_gpu::kernel::KernelDesc::name`] allocation when built by the
    /// profiling run, so cloning a profile never copies name bytes.
    pub name: Arc<str>,
    /// Execution time measured on a dedicated device.
    pub duration: SimTime,
    /// Roofline classification (60% rule).
    pub profile: ResourceProfile,
    /// SMs needed, from the occupancy calculation.
    pub sm_needed: u32,
    /// Measured compute-throughput utilization fraction.
    pub compute_util: f64,
    /// Measured memory-bandwidth utilization fraction.
    pub mem_util: f64,
}

/// The offline profile of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Workload label, e.g. `ResNet50-train-bs32`.
    pub label: String,
    /// Per-kernel profiles indexed by kernel id.
    pub kernels: Vec<KernelProfile>,
    /// Solo request latency (inference batch / training iteration),
    /// the reference for `DUR_THRESHOLD` throttling.
    pub request_latency: SimTime,
    /// Average utilizations over the solo run (a Table 1 row).
    pub utilization: UtilSummary,
    /// Peak device-memory use during the solo run, in bytes.
    pub memory_peak: u64,
}

impl WorkloadProfile {
    /// Builds the scheduler's in-memory lookup table.
    pub fn table(&self) -> ProfileTable {
        ProfileTable {
            by_id: self
                .kernels
                .iter()
                .map(|k| (k.kernel_id, k.clone()))
                .collect(),
            request_latency: self.request_latency,
        }
    }

    /// Serializes the profile to a JSON file (the paper's profile-file
    /// handoff between the offline phase and the scheduler).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }

    /// Loads a profile previously written by [`WorkloadProfile::save`].
    pub fn load(path: &Path) -> io::Result<WorkloadProfile> {
        let json = std::fs::read_to_string(path)?;
        let v = orion_json::parse(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        WorkloadProfile::from_json(&v).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl ToJson for KernelProfile {
    fn to_json(&self) -> Value {
        json!({
            "kernel_id": self.kernel_id,
            "name": self.name.as_ref(),
            "duration": self.duration.to_json(),
            "profile": self.profile.to_json(),
            "sm_needed": self.sm_needed,
            "compute_util": self.compute_util,
            "mem_util": self.mem_util,
        })
    }
}

impl FromJson for KernelProfile {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        use orion_json::de::*;
        Ok(KernelProfile {
            kernel_id: u32_field(v, "kernel_id")?,
            name: str_field(v, "name")?.into(),
            duration: SimTime::from_json(field(v, "duration")?)?,
            profile: ResourceProfile::from_json(field(v, "profile")?)?,
            sm_needed: u32_field(v, "sm_needed")?,
            compute_util: f64_field(v, "compute_util")?,
            mem_util: f64_field(v, "mem_util")?,
        })
    }
}

impl ToJson for WorkloadProfile {
    fn to_json(&self) -> Value {
        let kernels: Vec<Value> = self.kernels.iter().map(|k| k.to_json()).collect();
        json!({
            "label": &self.label,
            "kernels": kernels,
            "request_latency": self.request_latency.to_json(),
            "utilization": self.utilization.to_json(),
            "memory_peak": self.memory_peak,
        })
    }
}

impl FromJson for WorkloadProfile {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        use orion_json::de::*;
        Ok(WorkloadProfile {
            label: str_field(v, "label")?.to_owned(),
            kernels: array_field(v, "kernels")?
                .iter()
                .map(KernelProfile::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            request_latency: SimTime::from_json(field(v, "request_latency")?)?,
            utilization: UtilSummary::from_json(field(v, "utilization")?)?,
            memory_peak: u64_field(v, "memory_peak")?,
        })
    }
}

/// The scheduler-facing lookup table: kernel id -> profile.
///
/// `Default` yields an empty table: every lookup is a miss, so the scheduler
/// falls back to its conservative unprofiled-kernel path (DESIGN.md §11).
#[derive(Debug, Clone, Default)]
pub struct ProfileTable {
    by_id: HashMap<u32, KernelProfile>,
    /// Solo request latency of the profiled workload.
    pub request_latency: SimTime,
}

impl ProfileTable {
    /// Looks up a kernel's profile.
    pub fn get(&self, kernel_id: u32) -> Option<&KernelProfile> {
        self.by_id.get(&kernel_id)
    }

    /// Inserts (or replaces) a kernel's profile. This is how the *online*
    /// profiler admits a learned profile into the scheduler's view at
    /// runtime; offline tables are built in one shot by
    /// [`WorkloadProfile::table`].
    pub fn insert(&mut self, profile: KernelProfile) -> Option<KernelProfile> {
        self.by_id.insert(profile.kernel_id, profile)
    }

    /// Removes a kernel's profile (online drift demotion: the kernel goes
    /// back to the conservative unprofiled path until re-admitted).
    pub fn remove(&mut self, kernel_id: u32) -> Option<KernelProfile> {
        self.by_id.remove(&kernel_id)
    }

    /// Expected duration of a kernel; zero when unprofiled.
    pub fn duration(&self, kernel_id: u32) -> SimTime {
        self.get(kernel_id).map_or(SimTime::ZERO, |k| k.duration)
    }

    /// Resource profile of a kernel; `Unknown` when unprofiled.
    pub fn resource_profile(&self, kernel_id: u32) -> ResourceProfile {
        self.get(kernel_id)
            .map_or(ResourceProfile::Unknown, |k| k.profile)
    }

    /// SM demand of a kernel; zero when unprofiled.
    pub fn sm_needed(&self, kernel_id: u32) -> u32 {
        self.get(kernel_id).map_or(0, |k| k.sm_needed)
    }

    /// Number of profiled kernels.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no kernels were profiled.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// The largest SM demand of any profiled kernel (used as the upper bound
    /// of the `SM_THRESHOLD` binary search, §5.1.1).
    pub fn max_sm_needed(&self) -> u32 {
        self.by_id.values().map(|k| k.sm_needed).max().unwrap_or(0)
    }

    /// Kernel ids present in the table, sorted ascending. The backing map is
    /// hash-ordered; any caller folding over entries (e.g. placement demand
    /// vectors) must iterate in this order so results are deterministic.
    pub fn sorted_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.by_id.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> WorkloadProfile {
        WorkloadProfile {
            label: "test".into(),
            kernels: vec![
                KernelProfile {
                    kernel_id: 0,
                    name: "conv".into(),
                    duration: SimTime::from_micros(100),
                    profile: ResourceProfile::ComputeBound,
                    sm_needed: 40,
                    compute_util: 0.8,
                    mem_util: 0.2,
                },
                KernelProfile {
                    kernel_id: 1,
                    name: "bn".into(),
                    duration: SimTime::from_micros(30),
                    profile: ResourceProfile::MemoryBound,
                    sm_needed: 20,
                    compute_util: 0.1,
                    mem_util: 0.7,
                },
            ],
            request_latency: SimTime::from_millis(5),
            utilization: orion_gpu::util::UtilSummary {
                compute: 0.3,
                mem_bw: 0.2,
                sm_busy: 0.25,
                elapsed: SimTime::from_millis(5),
            },
            memory_peak: 1 << 30,
        }
    }

    #[test]
    fn table_lookup() {
        let t = sample_profile().table();
        assert_eq!(t.len(), 2);
        assert_eq!(t.duration(0), SimTime::from_micros(100));
        assert_eq!(t.resource_profile(1), ResourceProfile::MemoryBound);
        assert_eq!(t.sm_needed(0), 40);
        assert_eq!(t.max_sm_needed(), 40);
        // Unprofiled kernels degrade gracefully.
        assert_eq!(t.duration(99), SimTime::ZERO);
        assert_eq!(t.resource_profile(99), ResourceProfile::Unknown);
        assert_eq!(t.sm_needed(99), 0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("orion_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let p = sample_profile();
        p.save(&path).unwrap();
        let back = WorkloadProfile::load(&path).unwrap();
        assert_eq!(back.label, p.label);
        assert_eq!(back.kernels, p.kernels);
        assert_eq!(back.request_latency, p.request_latency);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = WorkloadProfile::load(Path::new("/nonexistent/orion.json"));
        assert!(err.is_err());
    }
}
