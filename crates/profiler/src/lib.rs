//! Offline workload profiling (paper §5.2).
//!
//! Before execution, Orion profiles each DNN workload on a dedicated GPU and
//! writes a profile file the scheduler loads into an in-memory lookup table
//! keyed by kernel id. The paper collects this with NVIDIA Nsight Compute /
//! Nsight Systems; here the same artifacts are measured by running the
//! workload solo on the simulated device:
//!
//! * per-kernel **execution time** (measured from the solo run),
//! * per-kernel **resource profile** — compute-bound / memory-bound /
//!   unknown — via the roofline + 60%-utilization rule,
//! * per-kernel **SM demand** via the occupancy formula
//!   `sm_needed = ceil(num_blocks / blocks_per_sm)`,
//! * the **solo request latency** (inference batch or training iteration),
//!   which parameterizes `DUR_THRESHOLD`,
//! * the workload's average utilizations (the rows of Table 1).

pub mod profile;
pub mod run;

pub use profile::{KernelProfile, ProfileTable, WorkloadProfile};
pub use run::{profile_workload, solo_run, SoloRunStats};
