//! The solo profiling run: executes a workload alone on a simulated device.

use std::collections::HashMap;

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::error::GpuError;
use orion_gpu::kernel::classify_utilization;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;
use orion_gpu::util::UtilSummary;
use orion_workloads::model::Workload;
use orion_workloads::ops::OpSpec;

use crate::profile::{KernelProfile, WorkloadProfile};

/// Statistics of a solo (dedicated-GPU) run.
#[derive(Debug, Clone)]
pub struct SoloRunStats {
    /// Latency of each request (submission to last-op completion).
    pub request_latencies: Vec<SimTime>,
    /// Average utilizations over the run.
    pub utilization: UtilSummary,
    /// Measured duration per kernel id.
    pub kernel_durations: HashMap<u32, SimTime>,
    /// Peak device memory during the run.
    pub memory_peak: u64,
}

impl SoloRunStats {
    /// Mean request latency.
    pub fn mean_latency(&self) -> SimTime {
        if self.request_latencies.is_empty() {
            return SimTime::ZERO;
        }
        let total: SimTime = self.request_latencies.iter().copied().sum();
        total / self.request_latencies.len() as u64
    }
}

/// Runs `iterations` back-to-back requests of `workload` alone on a device
/// with `spec`, measuring per-kernel durations and request latency.
///
/// Requests are submitted in a closed loop on a single stream, mirroring
/// how the paper profiles with Nsight ("the first 10 mini-batches ... or 10
/// requests", §6.5).
pub fn solo_run(
    workload: &Workload,
    spec: &GpuSpec,
    iterations: u32,
) -> Result<SoloRunStats, GpuError> {
    let mut engine = GpuEngine::new(spec.clone(), false);
    let stream = engine.create_stream(StreamPriority::DEFAULT);
    let _model_state = engine.alloc_immediate(workload.memory_footprint)?;

    let mut request_latencies = Vec::with_capacity(iterations as usize);
    let mut kernel_durations: HashMap<u32, SimTime> = HashMap::new();
    // Map op id -> kernel id to attribute completions.
    let mut op_to_kernel: HashMap<u64, u32> = HashMap::new();

    for _ in 0..iterations {
        let start = engine.now();
        for (_, op) in &workload.ops {
            let kind = match op {
                OpSpec::Kernel(k) => OpKind::Kernel(k.clone()),
                OpSpec::H2D { bytes, blocking } => OpKind::MemcpyH2D {
                    bytes: *bytes,
                    blocking: *blocking,
                },
                OpSpec::D2H { bytes, blocking } => OpKind::MemcpyD2H {
                    bytes: *bytes,
                    blocking: *blocking,
                },
            };
            let is_kernel = matches!(op, OpSpec::Kernel(_));
            let op_id = engine.submit(stream, kind)?;
            if is_kernel {
                if let OpSpec::Kernel(k) = op {
                    op_to_kernel.insert(op_id.0, k.kernel_id);
                }
            }
        }
        // Drain the request.
        while let Some(t) = engine.next_event_time() {
            engine.advance_to(t);
        }
        for c in engine.drain_completions() {
            if let Some(&kid) = op_to_kernel.get(&c.op.0) {
                if let Some(d) = c.dispatched_at {
                    kernel_durations.insert(kid, c.at - d);
                }
            }
        }
        request_latencies.push(engine.now() - start);
    }

    let memory_peak = engine.memory().high_water();
    Ok(SoloRunStats {
        request_latencies,
        utilization: engine.util_summary(),
        kernel_durations,
        memory_peak,
    })
}

/// Full offline profiling phase for one workload (paper §5.2): solo run +
/// roofline classification + occupancy calculation.
///
/// Errors if the workload does not fit the profiling device
/// ([`GpuError::OutOfMemory`]) or a submission is rejected.
pub fn profile_workload(workload: &Workload, spec: &GpuSpec) -> Result<WorkloadProfile, GpuError> {
    let stats = solo_run(workload, spec, 10)?;
    let kernels = workload
        .kernels()
        .map(|k| KernelProfile {
            kernel_id: k.kernel_id,
            name: k.name.clone(),
            duration: stats
                .kernel_durations
                .get(&k.kernel_id)
                .copied()
                .unwrap_or(k.solo_duration),
            profile: classify_utilization(k.compute_util, k.mem_util),
            sm_needed: k.sm_needed(spec),
            compute_util: k.compute_util,
            mem_util: k.mem_util,
        })
        .collect();
    Ok(WorkloadProfile {
        label: workload.label(),
        kernels,
        request_latency: stats.mean_latency(),
        utilization: stats.utilization,
        memory_peak: stats.memory_peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_workloads::registry::{inference_workload, training_workload};
    use orion_workloads::ModelKind;

    #[test]
    fn solo_run_measures_request_latency() {
        let w = inference_workload(ModelKind::ResNet50);
        let spec = GpuSpec::v100_16gb();
        let stats = solo_run(&w, &spec, 5).unwrap();
        assert_eq!(stats.request_latencies.len(), 5);
        let mean = stats.mean_latency().as_millis_f64();
        // Kernel time ~7 ms plus the 0.2 ms input copy.
        assert!((6.0..9.5).contains(&mean), "mean latency {mean} ms");
        // Back-to-back identical requests: latencies are identical.
        assert_eq!(stats.request_latencies[0], stats.request_latencies[4]);
    }

    #[test]
    fn measured_kernel_durations_match_solo_durations() {
        let w = inference_workload(ModelKind::MobileNetV2);
        let spec = GpuSpec::v100_16gb();
        let stats = solo_run(&w, &spec, 1).unwrap();
        for k in w.kernels() {
            let measured = stats.kernel_durations[&k.kernel_id];
            assert_eq!(measured, k.solo_duration, "kernel {}", k.name);
        }
    }

    #[test]
    fn profile_contains_every_kernel() {
        let w = training_workload(ModelKind::Bert);
        let p = profile_workload(&w, &GpuSpec::v100_16gb()).unwrap();
        assert_eq!(p.kernels.len(), w.kernel_count());
        assert!(p.request_latency > SimTime::ZERO);
        assert_eq!(p.memory_peak, w.memory_footprint);
        let t = p.table();
        for k in w.kernels() {
            assert!(t.get(k.kernel_id).is_some());
        }
    }

    #[test]
    fn training_profile_latency_matches_table4() {
        // Table 4 anchors: ResNet50 ~97 ms/iter solo.
        let w = training_workload(ModelKind::ResNet50);
        let p = profile_workload(&w, &GpuSpec::v100_16gb()).unwrap();
        let ms = p.request_latency.as_millis_f64();
        assert!((85.0..115.0).contains(&ms), "iteration {ms} ms");
    }
}
