//! Synthetic DNN workloads for the Orion (EuroSys '24) reproduction.
//!
//! The paper evaluates five models — ResNet50, ResNet101, MobileNetV2, BERT,
//! Transformer — in inference and training configurations (Table 1), driven
//! by Poisson / uniform / Apollo-trace arrival processes (Table 3). None of
//! those frameworks run here, so this crate synthesizes each workload as a
//! deterministic sequence of GPU operations (kernels + memory copies) whose
//! *observable properties* are calibrated to the paper:
//!
//! * per-kernel durations in the 10s-1000s of microseconds (paper §3.1),
//! * a mix of compute-bound (conv/GEMM), memory-bound (BN/elementwise/
//!   layer-norm) and tiny "unknown" (optimizer-update) kernels per Figure 4,
//! * average compute-throughput / memory-bandwidth / SM utilizations in the
//!   neighbourhood of Table 1,
//! * solo training iteration times anchored to Table 4's dedicated-GPU
//!   iterations/sec, and
//! * memory footprints from Table 1's capacity column.
//!
//! Workload generation is fully deterministic (no RNG): kernel parameters
//! vary by smooth index-based modulation so profiles are stable run to run.

pub mod archetype;
pub mod arrivals;
pub mod model;
pub mod models;
pub mod ops;
pub mod registry;
pub mod swap;

pub use arrivals::{ArrivalProcess, DriftSpec, PaperRates};
pub use model::{ModelKind, Phase, Workload, WorkloadKind};
pub use ops::OpSpec;
pub use registry::{inference_workload, training_workload, ALL_MODELS};
