//! Kernel archetypes: parameterized constructors for the kernel families that
//! make up DNN workloads.
//!
//! Each archetype fixes the *shape* of a kernel family (launch geometry and
//! the compute/memory utilization band Nsight reports for that family, per
//! the paper's §3.1-§3.2 measurements) while the caller supplies duration and
//! an index used for smooth deterministic variation within the band.

use std::sync::Arc;

use orion_desim::time::SimTime;
use orion_gpu::kernel::{KernelBuilder, KernelDesc};

/// Smooth deterministic modulation in `[-1, 1]` from an index.
///
/// Used instead of an RNG so workload traces are identical across runs and
/// platforms; consecutive kernels get gently varying parameters, like the
/// layer-to-layer variation in a real network.
pub fn wobble(i: u32) -> f64 {
    ((i as f64) * 0.7311).sin()
}

fn lerp(lo: f64, hi: f64, t: f64) -> f64 {
    lo + (hi - lo) * t.clamp(0.0, 1.0)
}

/// Scales a band position from a wobble value.
fn band(i: u32, lo: f64, hi: f64) -> f64 {
    lerp(lo, hi, 0.5 + 0.5 * wobble(i))
}

/// A convolution / implicit-GEMM forward kernel: compute-bound.
///
/// `intensity` in `[0, 1]` shifts the utilization band (small batches sit
/// lower; large batches saturate compute).
pub fn conv(id: u32, dur: SimTime, sm: u32, intensity: f64) -> Arc<KernelDesc> {
    let c = lerp(0.45, 0.92, intensity) + 0.04 * wobble(id);
    let m = band(id.wrapping_add(13), 0.10, 0.30);
    KernelBuilder::new(id, format!("conv2d_fprop_{id}"))
        .grid_blocks(sm.max(1) * 2)
        .threads_per_block(1024)
        .regs_per_thread(16)
        .shmem_per_block(32 * 1024)
        .solo_duration(dur)
        .utilization(c.clamp(0.0, 1.0), m)
        .build()
}

/// A dense GEMM (fully-connected / attention projection): compute-bound.
pub fn gemm(id: u32, dur: SimTime, sm: u32, intensity: f64) -> Arc<KernelDesc> {
    let c = lerp(0.50, 0.95, intensity) + 0.03 * wobble(id);
    let m = band(id.wrapping_add(7), 0.12, 0.32);
    KernelBuilder::new(id, format!("gemm_{id}"))
        .grid_blocks(sm.max(1) * 2)
        .threads_per_block(1024)
        .regs_per_thread(32)
        .shmem_per_block(48 * 1024)
        .solo_duration(dur)
        .utilization(c.clamp(0.0, 1.0), m)
        .build()
}

/// A batch-normalization kernel: memory-bound.
pub fn batch_norm(id: u32, dur: SimTime, sm: u32) -> Arc<KernelDesc> {
    let c = band(id, 0.06, 0.20);
    let m = band(id.wrapping_add(3), 0.62, 0.86);
    KernelBuilder::new(id, format!("batch_norm_{id}"))
        .grid_blocks(sm.max(1) * 4)
        .threads_per_block(512)
        .regs_per_thread(24)
        .solo_duration(dur)
        .utilization(c, m)
        .build()
}

/// An elementwise kernel (ReLU, residual add, dropout): memory-bound.
pub fn elementwise(id: u32, dur: SimTime, sm: u32) -> Arc<KernelDesc> {
    let c = band(id, 0.04, 0.15);
    let m = band(id.wrapping_add(5), 0.60, 0.80);
    KernelBuilder::new(id, format!("elementwise_{id}"))
        .grid_blocks(sm.max(1) * 8)
        .threads_per_block(256)
        .regs_per_thread(16)
        .solo_duration(dur)
        .utilization(c, m)
        .build()
}

/// A layer-norm / softmax kernel (NLP models): memory-bound.
pub fn layer_norm(id: u32, dur: SimTime, sm: u32) -> Arc<KernelDesc> {
    let c = band(id, 0.08, 0.22);
    let m = band(id.wrapping_add(11), 0.60, 0.82);
    KernelBuilder::new(id, format!("layer_norm_{id}"))
        .grid_blocks(sm.max(1) * 4)
        .threads_per_block(512)
        .regs_per_thread(24)
        .solo_duration(dur)
        .utilization(c, m)
        .build()
}

/// A pooling / small reduction kernel: below both 60% thresholds ("unknown").
pub fn pooling(id: u32, dur: SimTime, sm: u32) -> Arc<KernelDesc> {
    let c = band(id, 0.10, 0.35);
    let m = band(id.wrapping_add(9), 0.20, 0.50);
    KernelBuilder::new(id, format!("pooling_{id}"))
        .grid_blocks(sm.max(1) * 2)
        .threads_per_block(256)
        .regs_per_thread(16)
        .solo_duration(dur)
        .utilization(c, m)
        .build()
}

/// A kernel with caller-supplied utilization (used for calibrated "filler"
/// kernels that tune a workload's average utilization to Table 1, and for
/// special families like memory-bound LLM-decode GEMMs).
pub fn custom(id: u32, prefix: &str, dur: SimTime, sm: u32, c: f64, m: f64) -> Arc<KernelDesc> {
    let c = (c + 0.02 * wobble(id)).clamp(0.01, 0.99);
    let m = (m + 0.02 * wobble(id.wrapping_add(23))).clamp(0.01, 0.99);
    KernelBuilder::new(id, format!("{prefix}_{id}"))
        .grid_blocks(sm.max(1) * 4)
        .threads_per_block(512)
        .regs_per_thread(16)
        .solo_duration(dur)
        .utilization(c, m)
        .build()
}

/// A tiny optimizer-update kernel (SGD/Adam step per tensor): very short and
/// below both classification thresholds (the paper's "unknown" kernels).
pub fn optimizer_update(id: u32, dur: SimTime) -> Arc<KernelDesc> {
    let c = band(id, 0.03, 0.15);
    let m = band(id.wrapping_add(17), 0.10, 0.45);
    KernelBuilder::new(id, format!("optimizer_update_{id}"))
        .grid_blocks(8)
        .threads_per_block(256)
        .regs_per_thread(16)
        .solo_duration(dur)
        .utilization(c, m)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::kernel::ResourceProfile;
    use orion_gpu::spec::GpuSpec;

    #[test]
    fn conv_is_compute_bound_at_high_intensity() {
        for i in 0..50 {
            let k = conv(i, SimTime::from_micros(100), 40, 0.9);
            assert_eq!(k.classify(), ResourceProfile::ComputeBound, "conv {i}");
        }
    }

    #[test]
    fn batch_norm_is_memory_bound() {
        for i in 0..50 {
            let k = batch_norm(i, SimTime::from_micros(50), 30);
            assert_eq!(k.classify(), ResourceProfile::MemoryBound, "bn {i}");
        }
    }

    #[test]
    fn elementwise_is_memory_bound() {
        for i in 0..50 {
            let k = elementwise(i, SimTime::from_micros(20), 20);
            assert_eq!(k.classify(), ResourceProfile::MemoryBound, "ew {i}");
        }
    }

    #[test]
    fn optimizer_update_is_unknown() {
        for i in 0..50 {
            let k = optimizer_update(i, SimTime::from_micros(5));
            assert_eq!(k.classify(), ResourceProfile::Unknown, "upd {i}");
        }
    }

    #[test]
    fn pooling_is_unknown() {
        for i in 0..50 {
            let k = pooling(i, SimTime::from_micros(30), 10);
            assert_eq!(k.classify(), ResourceProfile::Unknown, "pool {i}");
        }
    }

    #[test]
    fn custom_kernel_respects_requested_utils() {
        let k = custom(0, "fused", SimTime::from_micros(10), 10, 0.3, 0.1);
        assert!((k.compute_util - 0.3).abs() < 0.05);
        assert!((k.mem_util - 0.1).abs() < 0.05);
        assert_eq!(k.classify(), ResourceProfile::Unknown);
        // High memory demand classifies memory-bound.
        let k = custom(1, "memgemm", SimTime::from_micros(10), 10, 0.2, 0.78);
        assert_eq!(k.classify(), ResourceProfile::MemoryBound);
    }

    #[test]
    fn wobble_is_bounded_and_deterministic() {
        for i in 0..1000 {
            let w = wobble(i);
            assert!((-1.0..=1.0).contains(&w));
            assert_eq!(w, wobble(i));
        }
    }

    #[test]
    fn sm_needed_tracks_requested_size() {
        let spec = GpuSpec::v100_16gb();
        let k = conv(0, SimTime::from_micros(100), 40, 0.5);
        assert_eq!(k.sm_needed(&spec), 40);
        let k = elementwise(0, SimTime::from_micros(10), 10);
        // 8 blocks per requested SM, 4 blocks/SM occupancy (512*24 regs ok,
        // threads: 2048/256 = 8, regs: 65536/(256*16)=16, cap 32) -> 8 blocks
        // fit on one SM, so 10 "requested" SMs = 80 blocks / 8 = 10 SMs.
        assert_eq!(k.sm_needed(&spec), 10);
    }
}
