//! Lookup of the paper's workload configurations by model.

use crate::model::{ModelKind, Workload};
use crate::models;

/// The five models of the paper's evaluation, in Table 1 order.
pub const ALL_MODELS: [ModelKind; 5] = [
    ModelKind::ResNet50,
    ModelKind::MobileNetV2,
    ModelKind::ResNet101,
    ModelKind::Bert,
    ModelKind::Transformer,
];

/// The paper's inference configuration for `model` (Table 1 batch sizes).
pub fn inference_workload(model: ModelKind) -> Workload {
    match model {
        ModelKind::ResNet50 => models::resnet::resnet50_inference(),
        ModelKind::ResNet101 => models::resnet::resnet101_inference(),
        ModelKind::MobileNetV2 => models::mobilenet::mobilenet_inference(),
        ModelKind::Bert => models::bert::bert_inference(),
        ModelKind::Transformer => models::transformer::transformer_inference(),
        ModelKind::LlmDecode => models::llm::llm_decode_step(),
    }
}

/// The paper's training configuration for `model` (Table 1 batch sizes).
///
/// # Panics
///
/// Panics for [`ModelKind::LlmDecode`], which has no training configuration
/// in the paper.
pub fn training_workload(model: ModelKind) -> Workload {
    match model {
        ModelKind::ResNet50 => models::resnet::resnet50_training(),
        ModelKind::ResNet101 => models::resnet::resnet101_training(),
        ModelKind::MobileNetV2 => models::mobilenet::mobilenet_training(),
        ModelKind::Bert => models::bert::bert_training(),
        ModelKind::Transformer => models::transformer::transformer_training(),
        ModelKind::LlmDecode => panic!("LLM decode has no training configuration"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_workloads_build() {
        for m in ALL_MODELS {
            let inf = inference_workload(m);
            assert!(inf.kernel_count() > 20, "{}", inf.label());
            let tr = training_workload(m);
            assert!(tr.kernel_count() > inf.kernel_count(), "{}", tr.label());
            assert!(tr.memory_footprint > inf.memory_footprint);
        }
    }

    #[test]
    fn training_iterations_are_longer_than_inference() {
        for m in ALL_MODELS {
            assert!(
                training_workload(m).solo_kernel_time() > inference_workload(m).solo_kernel_time(),
                "{m:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no training configuration")]
    fn llm_training_panics() {
        training_workload(ModelKind::LlmDecode);
    }
}
