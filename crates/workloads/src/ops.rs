//! Operation specifications emitted by workload builders.

use std::sync::Arc;

use orion_gpu::kernel::KernelDesc;

/// One GPU operation in a request/iteration, in submission order.
///
/// This is the framework-level view (what PyTorch would submit through the
/// CUDA runtime); the scheduler layer decides when each op reaches the device.
#[derive(Debug, Clone, PartialEq)]
pub enum OpSpec {
    /// A computation kernel (shared, immutable description — see
    /// [`orion_gpu::kernel::KernelBuilder::build`]).
    Kernel(Arc<KernelDesc>),
    /// Host-to-device input copy.
    H2D {
        /// Payload bytes.
        bytes: u64,
        /// Synchronous `cudaMemcpy` semantics (stalls kernel dispatch).
        blocking: bool,
    },
    /// Device-to-host output copy.
    D2H {
        /// Payload bytes.
        bytes: u64,
        /// Synchronous `cudaMemcpy` semantics.
        blocking: bool,
    },
}

impl OpSpec {
    /// The kernel description, when this op is a kernel.
    pub fn as_kernel(&self) -> Option<&KernelDesc> {
        match self {
            OpSpec::Kernel(k) => Some(k),
            _ => None,
        }
    }

    /// True for memory-copy operations.
    pub fn is_copy(&self) -> bool {
        matches!(self, OpSpec::H2D { .. } | OpSpec::D2H { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::kernel::KernelBuilder;

    #[test]
    fn accessors() {
        let k = OpSpec::Kernel(KernelBuilder::new(0, "k").build());
        assert!(k.as_kernel().is_some());
        assert!(!k.is_copy());
        let c = OpSpec::H2D {
            bytes: 10,
            blocking: true,
        };
        assert!(c.as_kernel().is_none());
        assert!(c.is_copy());
    }
}
