//! Layer-by-layer weight swapping (paper §5.1.3 extension).
//!
//! When a best-effort model does not fit in the GPU memory the high-priority
//! job leaves free, the paper proposes keeping the high-priority task
//! resident while "gradually swapping layers of best-effort job(s) in and
//! out of the GPU". This module implements that as a workload
//! transformation: the op trace is partitioned into `groups` layer groups,
//! and before each non-resident group's kernels an asynchronous
//! host-to-device weight copy is inserted (the swap-in; the eviction of the
//! previous group is free — weights are read-only). The transformed workload
//! declares only the resident footprint plus working buffers, at the cost of
//! extra PCIe traffic and per-group latency.

use orion_gpu::kernel::KernelDesc;

use crate::model::{Workload, WorkloadKind};
use crate::ops::OpSpec;

/// Estimated weight bytes of a workload (the swappable state).
///
/// Inference footprints are dominated by weights; training footprints also
/// hold activations, gradients, and optimizer state that must stay resident.
pub fn estimated_weights_bytes(w: &Workload) -> u64 {
    match w.kind {
        WorkloadKind::Inference { .. } => (w.memory_footprint as f64 * 0.85) as u64,
        WorkloadKind::Training { .. } => (w.memory_footprint as f64 * 0.35) as u64,
    }
}

/// A swapped variant of `w` that keeps only `resident_fraction` of its
/// weights on the device.
///
/// The op trace is split into `groups` contiguous kernel groups; each group
/// whose weights are not resident is preceded by an async H2D copy of its
/// share of the swapped weights. `memory_footprint` shrinks by the swapped
/// weight bytes (plus one group of double-buffer headroom).
///
/// `resident_fraction` is clamped to `[0, 1]`; `groups` to at least 1.
pub fn swapped_workload(w: &Workload, resident_fraction: f64, groups: u32) -> Workload {
    let resident_fraction = resident_fraction.clamp(0.0, 1.0);
    let groups = groups.max(1);
    let weights = estimated_weights_bytes(w);
    let swapped_bytes = (weights as f64 * (1.0 - resident_fraction)) as u64;
    if swapped_bytes == 0 {
        return w.clone();
    }

    let kernels: Vec<&KernelDesc> = w.kernels().collect();
    let per_group = kernels.len().div_ceil(groups as usize).max(1);
    let swapped_groups = (groups as f64 * (1.0 - resident_fraction)).ceil() as usize;
    let bytes_per_group = swapped_bytes / swapped_groups.max(1) as u64;

    // Insert a swap-in copy before the first kernel of each swapped group.
    // Non-resident groups are taken from the end of the pass (the deepest
    // layers swap; early layers stay hot), matching layer-by-layer streaming.
    let first_swapped_group = groups as usize - swapped_groups;
    let mut out = Vec::with_capacity(w.ops.len() + swapped_groups);
    let mut kernel_idx = 0usize;
    for (phase, op) in &w.ops {
        if matches!(op, OpSpec::Kernel(_)) {
            let group = kernel_idx / per_group;
            if group >= first_swapped_group && kernel_idx.is_multiple_of(per_group) {
                out.push((
                    *phase,
                    OpSpec::H2D {
                        bytes: bytes_per_group,
                        blocking: false,
                    },
                ));
            }
            kernel_idx += 1;
        }
        out.push((*phase, op.clone()));
    }

    let mut swapped = w.clone();
    swapped.ops = out;
    // Resident weights + non-weight state + one group of double-buffering.
    swapped.memory_footprint = w.memory_footprint - swapped_bytes + bytes_per_group;
    swapped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{inference_workload, training_workload};
    use crate::ModelKind;

    #[test]
    fn weights_estimates_differ_by_kind() {
        let inf = inference_workload(ModelKind::Bert);
        let tr = training_workload(ModelKind::Bert);
        let wi = estimated_weights_bytes(&inf) as f64 / inf.memory_footprint as f64;
        let wt = estimated_weights_bytes(&tr) as f64 / tr.memory_footprint as f64;
        assert!(wi > wt);
    }

    #[test]
    fn swapping_shrinks_footprint_and_adds_copies() {
        let w = inference_workload(ModelKind::Bert);
        let s = swapped_workload(&w, 0.5, 24);
        assert!(s.memory_footprint < w.memory_footprint);
        let copies_before = w.ops.iter().filter(|(_, o)| o.is_copy()).count();
        let copies_after = s.ops.iter().filter(|(_, o)| o.is_copy()).count();
        assert!(copies_after > copies_before, "{copies_after} vs {copies_before}");
        // Kernels are untouched.
        assert_eq!(s.kernel_count(), w.kernel_count());
        // Swapped PCIe traffic is about half the weights.
        let extra: u64 = s
            .ops
            .iter()
            .filter_map(|(_, o)| match o {
                OpSpec::H2D { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum::<u64>()
            - w.ops
                .iter()
                .filter_map(|(_, o)| match o {
                    OpSpec::H2D { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .sum::<u64>();
        let half_weights = estimated_weights_bytes(&w) / 2;
        let ratio = extra as f64 / half_weights as f64;
        assert!((0.8..1.2).contains(&ratio), "traffic ratio {ratio}");
    }

    #[test]
    fn full_residency_is_identity() {
        let w = inference_workload(ModelKind::ResNet50);
        let s = swapped_workload(&w, 1.0, 16);
        assert_eq!(s.ops.len(), w.ops.len());
        assert_eq!(s.memory_footprint, w.memory_footprint);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let w = inference_workload(ModelKind::ResNet50);
        // groups clamps to 1: with a single group the double-buffer is the
        // whole weight set, so no memory is saved — but nothing breaks.
        let s = swapped_workload(&w, -1.0, 0);
        assert_eq!(s.memory_footprint, w.memory_footprint);
        assert_eq!(s.kernel_count(), w.kernel_count());
        // With more groups, everything-swapped really shrinks the footprint.
        let s = swapped_workload(&w, 0.0, 8);
        assert!(s.memory_footprint < w.memory_footprint);
    }
}
