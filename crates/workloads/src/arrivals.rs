//! Request arrival processes (paper §6.1, Table 3).
//!
//! Inference jobs receive requests from an open-loop arrival process:
//! Poisson (event-driven applications), uniform (fixed-rate sensors), or the
//! Apollo autonomous-driving trace from the DISB benchmark. Training jobs
//! submit iterations in a closed loop. The Apollo trace itself is proprietary
//! to DISB; we synthesize an equivalent bursty process: a fixed-rate camera
//! pipeline with timing jitter plus periodic multi-camera bursts, which
//! preserves the property the paper exercises (clustered arrivals that stress
//! tail latency more than Poisson).

use orion_desim::rng::DetRng;
use orion_desim::time::SimTime;

use crate::model::ModelKind;

/// An inference request arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals with the given mean requests/second.
    Poisson {
        /// Mean arrival rate.
        rps: f64,
    },
    /// Uniform (fixed-interval) arrivals.
    Uniform {
        /// Arrival rate; the inter-arrival gap is exactly `1/rps`.
        rps: f64,
    },
    /// Synthetic Apollo-like autonomous-driving trace: jittered periodic
    /// arrivals with multi-camera bursts.
    Apollo {
        /// Mean arrival rate of the synthesized trace.
        mean_rps: f64,
    },
    /// Closed loop: the next request is issued when the previous completes
    /// (training jobs, offline inference).
    ClosedLoop,
    /// Closed loop with host-side think time between requests (e.g. an LLM
    /// decode loop spending time in sampling/detokenization per token).
    ClosedLoopThink {
        /// Host time between a completion and the next request.
        think: SimTime,
    },
    /// Explicit timestamps (for replaying recorded traces).
    Trace(Vec<SimTime>),
}

impl ArrivalProcess {
    /// True when requests are issued back-to-back rather than by timestamps.
    pub fn is_closed_loop(&self) -> bool {
        matches!(
            self,
            ArrivalProcess::ClosedLoop | ArrivalProcess::ClosedLoopThink { .. }
        )
    }

    /// Host-side think time between closed-loop requests (zero by default).
    pub fn think_time(&self) -> SimTime {
        match self {
            ArrivalProcess::ClosedLoopThink { think } => *think,
            _ => SimTime::ZERO,
        }
    }

    /// Generates the arrival timestamps within `[0, horizon)`.
    ///
    /// Returns an empty schedule for [`ArrivalProcess::ClosedLoop`].
    pub fn schedule(&self, horizon: SimTime, rng: &mut DetRng) -> Vec<SimTime> {
        match self {
            ArrivalProcess::ClosedLoop | ArrivalProcess::ClosedLoopThink { .. } => Vec::new(),
            ArrivalProcess::Trace(ts) => {
                ts.iter().copied().filter(|&t| t < horizon).collect()
            }
            ArrivalProcess::Poisson { rps } => {
                let mut out = Vec::new();
                let mut t = 0.0;
                let horizon_s = horizon.as_secs_f64();
                loop {
                    t += rng.exponential(*rps);
                    if t >= horizon_s {
                        break;
                    }
                    out.push(SimTime::from_secs_f64(t));
                }
                out
            }
            ArrivalProcess::Uniform { rps } => {
                if *rps <= 0.0 {
                    return Vec::new();
                }
                let gap = SimTime::from_secs_f64(1.0 / rps);
                let mut out = Vec::new();
                let mut t = gap;
                while t < horizon {
                    out.push(t);
                    t += gap;
                }
                out
            }
            ArrivalProcess::Apollo { mean_rps } => apollo_schedule(*mean_rps, horizon, rng),
        }
    }
}

/// Synthesizes the Apollo-like trace: 70% of the rate is a jittered periodic
/// stream (a camera pipeline), 30% arrives in bursts of three back-to-back
/// requests every few frames (multi-sensor fusion events).
fn apollo_schedule(mean_rps: f64, horizon: SimTime, rng: &mut DetRng) -> Vec<SimTime> {
    if mean_rps <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let horizon_s = horizon.as_secs_f64();

    // Periodic stream with +-30% jitter.
    let base_rate = 0.7 * mean_rps;
    let gap = 1.0 / base_rate;
    let mut t = gap;
    while t < horizon_s {
        let jitter = 0.3 * gap * (2.0 * rng.next_f64() - 1.0);
        let at = (t + jitter).max(0.0);
        if at < horizon_s {
            out.push(SimTime::from_secs_f64(at));
        }
        t += gap;
    }

    // Bursts: Poisson-spaced burst events, three requests 2 ms apart.
    let burst_event_rate = 0.3 * mean_rps / 3.0;
    let mut bt = 0.0;
    loop {
        bt += rng.exponential(burst_event_rate);
        if bt >= horizon_s {
            break;
        }
        for k in 0..3 {
            let at = bt + k as f64 * 0.002;
            if at < horizon_s {
                out.push(SimTime::from_secs_f64(at));
            }
        }
    }

    out.sort_unstable();
    out
}

/// A mid-run workload drift: at sim time `at`, every kernel of the client's
/// workload starts taking `factor ×` its nominal solo duration (changed
/// tensor shapes, a model redeploy, thermal throttling). Copies are
/// unaffected. Drift is applied at *submit* time — kernels already on the
/// device keep their original duration — so the shift is sharp and
/// deterministic.
///
/// This exists so the online-profiling drift experiments and tests don't
/// hand-roll workload mutation: attach it to a client spec and the runtime
/// scales durations as requests are routed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Sim time at which the drift takes effect.
    pub at: SimTime,
    /// Multiplier on each kernel's solo duration from `at` onward
    /// (e.g. `1.5` = 50% slower). Must be positive.
    pub factor: f64,
}

impl DriftSpec {
    /// A drift that makes kernels `factor ×` slower starting at `at`.
    pub fn new(at: SimTime, factor: f64) -> Self {
        assert!(factor > 0.0, "drift factor must be positive");
        DriftSpec { at, factor }
    }

    /// True once the drift is in effect at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.at
    }

    /// The duration scale in effect at `now` (1.0 before the switch).
    pub fn scale_at(&self, now: SimTime) -> f64 {
        if self.active_at(now) {
            self.factor
        } else {
            1.0
        }
    }
}

/// The request rates of Table 3, in requests/second.
#[derive(Debug, Clone, Copy)]
pub struct PaperRates;

impl PaperRates {
    /// Inference-inference collocation, uniform arrivals (Table 3 col 1).
    pub fn inf_inf_uniform(model: ModelKind) -> f64 {
        match model {
            ModelKind::ResNet50 => 80.0,
            ModelKind::MobileNetV2 => 100.0,
            ModelKind::ResNet101 => 40.0,
            ModelKind::Bert => 8.0,
            ModelKind::Transformer => 20.0,
            ModelKind::LlmDecode => 10.0,
        }
    }

    /// Inference-inference collocation, Poisson arrivals (Table 3 col 2).
    pub fn inf_inf_poisson(model: ModelKind) -> f64 {
        match model {
            ModelKind::ResNet50 => 50.0,
            ModelKind::MobileNetV2 => 65.0,
            ModelKind::ResNet101 => 25.0,
            ModelKind::Bert => 5.0,
            ModelKind::Transformer => 12.0,
            ModelKind::LlmDecode => 8.0,
        }
    }

    /// Inference-training collocation, Poisson arrivals (Table 3 col 3).
    pub fn inf_train_poisson(model: ModelKind) -> f64 {
        match model {
            ModelKind::ResNet50 => 15.0,
            ModelKind::MobileNetV2 => 40.0,
            ModelKind::ResNet101 => 9.0,
            ModelKind::Bert => 4.0,
            ModelKind::Transformer => 8.0,
            ModelKind::LlmDecode => 5.0,
        }
    }

    /// Mean rate used for the synthesized Apollo trace of a model
    /// (the Apollo experiments pair with the inf-train Poisson load level).
    pub fn apollo_mean(model: ModelKind) -> f64 {
        Self::inf_train_poisson(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_of(schedule: &[SimTime], horizon: SimTime) -> f64 {
        schedule.len() as f64 / horizon.as_secs_f64()
    }

    #[test]
    fn poisson_rate_close_to_nominal() {
        let mut rng = DetRng::new(1);
        let horizon = SimTime::from_secs(100);
        let s = ArrivalProcess::Poisson { rps: 50.0 }.schedule(horizon, &mut rng);
        let r = rate_of(&s, horizon);
        assert!((r - 50.0).abs() < 2.5, "rate {r}");
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn uniform_is_exactly_periodic() {
        let mut rng = DetRng::new(2);
        let horizon = SimTime::from_secs(1);
        let s = ArrivalProcess::Uniform { rps: 100.0 }.schedule(horizon, &mut rng);
        assert_eq!(s.len(), 99); // gaps at 10ms: 10ms..990ms
        for w in s.windows(2) {
            assert_eq!(w[1] - w[0], SimTime::from_millis(10));
        }
    }

    #[test]
    fn apollo_rate_and_burstiness() {
        let mut rng = DetRng::new(3);
        let horizon = SimTime::from_secs(100);
        let s = ArrivalProcess::Apollo { mean_rps: 30.0 }.schedule(horizon, &mut rng);
        let r = rate_of(&s, horizon);
        assert!((r - 30.0).abs() < 3.0, "rate {r}");
        // Burstiness: the squared coefficient of variation of inter-arrivals
        // exceeds a uniform process's (0) and a Poisson's is ~1; Apollo's
        // bursts push short gaps, so some gaps are ~2 ms.
        let short_gaps = s
            .windows(2)
            .filter(|w| (w[1] - w[0]) <= SimTime::from_millis(3))
            .count();
        assert!(short_gaps > 50, "short gaps {short_gaps}");
    }

    #[test]
    fn closed_loop_has_no_schedule() {
        let mut rng = DetRng::new(4);
        assert!(ArrivalProcess::ClosedLoop
            .schedule(SimTime::from_secs(10), &mut rng)
            .is_empty());
        assert!(ArrivalProcess::ClosedLoop.is_closed_loop());
        let think = ArrivalProcess::ClosedLoopThink {
            think: SimTime::from_millis(2),
        };
        assert!(think.is_closed_loop());
        assert_eq!(think.think_time(), SimTime::from_millis(2));
        assert_eq!(ArrivalProcess::ClosedLoop.think_time(), SimTime::ZERO);
        assert!(think.schedule(SimTime::from_secs(1), &mut rng).is_empty());
    }

    #[test]
    fn trace_filters_by_horizon() {
        let mut rng = DetRng::new(5);
        let tr = ArrivalProcess::Trace(vec![
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            SimTime::from_secs(30),
        ]);
        let s = tr.schedule(SimTime::from_secs(10), &mut rng);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn degenerate_rates_are_empty() {
        let mut rng = DetRng::new(6);
        let h = SimTime::from_secs(1);
        assert!(ArrivalProcess::Uniform { rps: 0.0 }.schedule(h, &mut rng).is_empty());
        assert!(ArrivalProcess::Poisson { rps: 0.0 }.schedule(h, &mut rng).is_empty());
        assert!(ArrivalProcess::Apollo { mean_rps: 0.0 }.schedule(h, &mut rng).is_empty());
    }

    #[test]
    fn paper_rates_match_table3() {
        assert_eq!(PaperRates::inf_inf_uniform(ModelKind::ResNet50), 80.0);
        assert_eq!(PaperRates::inf_inf_poisson(ModelKind::MobileNetV2), 65.0);
        assert_eq!(PaperRates::inf_train_poisson(ModelKind::Bert), 4.0);
        assert_eq!(PaperRates::inf_inf_uniform(ModelKind::Transformer), 20.0);
    }

    #[test]
    fn drift_spec_switches_at_configured_time() {
        let d = DriftSpec::new(SimTime::from_secs(2), 1.5);
        assert!(!d.active_at(SimTime::from_secs(1)));
        assert!(d.active_at(SimTime::from_secs(2)));
        assert_eq!(d.scale_at(SimTime::from_secs(1)), 1.0);
        assert_eq!(d.scale_at(SimTime::from_secs(3)), 1.5);
    }

    #[test]
    #[should_panic(expected = "drift factor must be positive")]
    fn drift_spec_rejects_nonpositive_factor() {
        let _ = DriftSpec::new(SimTime::from_secs(1), 0.0);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let h = SimTime::from_secs(10);
        let a = ArrivalProcess::Poisson { rps: 20.0 }.schedule(h, &mut DetRng::new(7));
        let b = ArrivalProcess::Poisson { rps: 20.0 }.schedule(h, &mut DetRng::new(7));
        assert_eq!(a, b);
    }
}
