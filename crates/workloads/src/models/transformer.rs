//! Transformer(-XL) workload builders (NVIDIA reference implementation).
//!
//! Calibration anchors (V100, Tables 1 and 4):
//!
//! | workload             | latency/iter | compute | mem bw | SM busy | mem cap |
//! |----------------------|--------------|---------|--------|---------|---------|
//! | Transformer-inf-bs4  | ~20 ms       | 52%     | 29%    | 61%     | 1.6 GiB |
//! | Transformer-train-bs8| ~167 ms      | 29%     | 30%    | 50%     | 8.5 GiB |

use orion_desim::time::SimTime;

use crate::model::{ModelKind, Phase, Workload, WorkloadKind};
use crate::models::{emit_interleaved, gib, Arch, Family, TraceBuilder};

fn us(x: u64) -> SimTime {
    SimTime::from_micros(x)
}

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

/// Transformer inference, batch size 4.
pub fn transformer_inference() -> Workload {
    let mut b = TraceBuilder::new();
    b.h2d(128 * 1024, true);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 72, total: ms(11), sm: 52, arch: Arch::Gemm(50) },
            Family { count: 48, total: us(3_600), sm: 48, arch: Arch::LayerNorm },
            Family { count: 36, total: us(5_300), sm: 40, arch: Arch::Custom(350, 155) },
        ],
    );
    b.d2h(256 * 1024, true);
    Workload {
        model: ModelKind::Transformer,
        kind: WorkloadKind::Inference { batch: 4 },
        ops: b.build(),
        memory_footprint: gib(1.6),
    }
}

/// Transformer training, batch size 8 (~167 ms/iteration solo, Table 4).
pub fn transformer_training() -> Workload {
    let mut b = TraceBuilder::new();
    b.h2d(4 * 1024 * 1024, false);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 60, total: ms(14), sm: 85, arch: Arch::Gemm(45) },
            Family { count: 48, total: ms(14), sm: 36, arch: Arch::LayerNorm },
            Family { count: 60, total: ms(27), sm: 34, arch: Arch::Custom(155, 135) },
        ],
    );
    b.phase(Phase::Backward);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 120, total: ms(27), sm: 85, arch: Arch::Gemm(47) },
            Family { count: 80, total: ms(27), sm: 36, arch: Arch::LayerNorm },
            Family { count: 100, total: ms(52), sm: 34, arch: Arch::Custom(155, 135) },
        ],
    );
    b.phase(Phase::Update);
    emit_interleaved(
        &mut b,
        &[Family { count: 300, total: ms(6), sm: 1, arch: Arch::OptimizerUpdate }],
    );
    b.d2h(4_096, false);
    Workload {
        model: ModelKind::Transformer,
        kind: WorkloadKind::Training { batch: 8 },
        ops: b.build(),
        memory_footprint: gib(8.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_latency_band() {
        let w = transformer_inference();
        let total = w.solo_kernel_time().as_millis_f64();
        assert!((17.0..23.0).contains(&total), "total {total} ms");
    }

    #[test]
    fn training_iteration_time() {
        let w = transformer_training();
        let total = w.solo_kernel_time().as_millis_f64();
        // Table 4: 6 iterations/sec -> ~167 ms.
        assert!((150.0..185.0).contains(&total), "iteration {total} ms");
    }

    #[test]
    fn training_has_largest_footprint() {
        // Table 1: Transformer training uses 53% of 16 GiB — the largest.
        let w = transformer_training();
        assert!(w.memory_footprint > 8 * (1u64 << 30));
    }

    #[test]
    fn both_profiles_present() {
        let (c, m, _) = transformer_inference().profile_mix();
        assert!(c > 0 && m > 0);
        let (c, m, u) = transformer_training().profile_mix();
        assert!(c > 0 && m > 0 && u > 0);
    }
}
