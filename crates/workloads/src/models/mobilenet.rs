//! MobileNetV2 workload builders.
//!
//! MobileNetV2 is dominated by depthwise-separable convolutions: narrow
//! pointwise GEMM-like convs plus depthwise convs that are memory-bound,
//! giving the lowest SM occupancy of the paper's models (Table 1: 6% SM busy
//! at inference). Calibration anchors:
//!
//! | workload              | latency/iter | compute | mem bw | SM busy | mem cap |
//! |-----------------------|--------------|---------|--------|---------|---------|
//! | MobileNetV2-inf-bs4   | ~4.5 ms      | 18%     | 21%    | 6%      | 1.1 GiB |
//! | MobileNetV2-train-bs64| ~80 ms       | 34%     | 49%    | 71%     | 6.9 GiB |

use orion_desim::time::SimTime;

use crate::model::{ModelKind, Phase, Workload, WorkloadKind};
use crate::models::{emit_interleaved, gib, Arch, Family, TraceBuilder};

const MB: u64 = 1 << 20;

fn us(x: u64) -> SimTime {
    SimTime::from_micros(x)
}

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

/// MobileNetV2 inference, batch size 4.
pub fn mobilenet_inference() -> Workload {
    let mut b = TraceBuilder::new();
    b.h2d(2_408_448, true);
    emit_interleaved(
        &mut b,
        &[
            // A handful of wider pointwise convs reach compute-bound.
            Family { count: 5, total: us(360), sm: 8, arch: Arch::Conv(40) },
            // Depthwise convs + batch norms: memory-bound, tiny grids.
            Family { count: 17, total: us(560), sm: 5, arch: Arch::BatchNorm },
            Family { count: 18, total: us(560), sm: 5, arch: Arch::Elementwise },
            // The bulk: narrow pointwise convs, below both thresholds.
            Family { count: 60, total: us(3_000), sm: 4, arch: Arch::Custom(145, 20) },
            Family { count: 1, total: us(60), sm: 4, arch: Arch::Pooling },
            Family { count: 1, total: us(60), sm: 8, arch: Arch::Gemm(30) },
        ],
    );
    b.d2h(16_384, true);
    Workload {
        model: ModelKind::MobileNetV2,
        kind: WorkloadKind::Inference { batch: 4 },
        ops: b.build(),
        memory_footprint: gib(1.10),
    }
}

/// MobileNetV2 training, batch size 64 (~80 ms/iteration solo, Table 4).
pub fn mobilenet_training() -> Workload {
    let mut b = TraceBuilder::new();
    b.h2d(38 * MB, false);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 18, total: ms(6), sm: 95, arch: Arch::Conv(70) },
            Family { count: 35, total: ms(8), sm: 50, arch: Arch::BatchNorm },
            Family { count: 20, total: ms(3), sm: 50, arch: Arch::Elementwise },
            Family { count: 35, total: ms(9), sm: 50, arch: Arch::Custom(275, 400) },
        ],
    );
    b.phase(Phase::Backward);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 36, total: ms(12), sm: 95, arch: Arch::Conv(72) },
            Family { count: 55, total: ms(21), sm: 50, arch: Arch::BatchNorm },
            Family { count: 35, total: ms(19), sm: 50, arch: Arch::Custom(275, 400) },
        ],
    );
    b.phase(Phase::Update);
    emit_interleaved(
        &mut b,
        &[Family { count: 158, total: us(1_600), sm: 1, arch: Arch::OptimizerUpdate }],
    );
    b.d2h(4_096, false);
    Workload {
        model: ModelKind::MobileNetV2,
        kind: WorkloadKind::Training { batch: 64 },
        ops: b.build(),
        memory_footprint: gib(6.9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::spec::GpuSpec;

    #[test]
    fn inference_latency_band() {
        let w = mobilenet_inference();
        let total = w.solo_kernel_time().as_millis_f64();
        assert!((3.8..5.5).contains(&total), "total {total} ms");
    }

    #[test]
    fn inference_kernels_are_tiny() {
        // Table 1: 6% average SM busy — MobileNet kernels use few SMs.
        let spec = GpuSpec::v100_16gb();
        let w = mobilenet_inference();
        let max_sm = w.kernels().map(|k| k.sm_needed(&spec)).max().unwrap();
        assert!(max_sm <= 16, "max sm_needed {max_sm}");
    }

    #[test]
    fn training_iteration_time() {
        let w = mobilenet_training();
        let total = w.solo_kernel_time().as_millis_f64();
        // Table 4: 12.5 iterations/sec -> ~80 ms.
        assert!((70.0..92.0).contains(&total), "iteration {total} ms");
    }

    #[test]
    fn training_is_memory_heavier_than_compute() {
        // Table 1: MobileNetV2 training has mem bw 49% > compute 34%.
        let w = mobilenet_training();
        let mut c_time = 0.0;
        let mut m_time = 0.0;
        for k in w.kernels() {
            let d = k.solo_duration.as_secs_f64();
            c_time += d * k.compute_util;
            m_time += d * k.mem_util;
        }
        assert!(m_time > c_time, "mem integral {m_time} <= compute {c_time}");
    }
}
