//! Per-model workload builders.
//!
//! Each submodule builds the paper's workloads for one model family from a
//! parameter table (kernel counts, time budgets, utilization intensity bands)
//! using the shared [`TraceBuilder`] and the generators in this module.
//! Calibration targets are the paper's Table 1 (average utilizations and
//! memory footprints), Table 4 (solo training iterations/sec) and Figure 4
//! (compute/memory/unknown kernel mixes); see `tests/calibration.rs`.

pub mod bert;
pub mod llm;
pub mod mobilenet;
pub mod resnet;
pub mod transformer;

use orion_desim::time::SimTime;
use std::sync::Arc;

use orion_gpu::kernel::KernelDesc;

use crate::archetype;
use crate::model::Phase;
use crate::ops::OpSpec;

/// Accumulates the op trace of one request with auto-assigned kernel ids.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    ops: Vec<(Phase, OpSpec)>,
    next_id: u32,
    phase: Phase,
}

impl TraceBuilder {
    /// Starts an empty trace in the forward phase.
    pub fn new() -> Self {
        TraceBuilder {
            ops: Vec::new(),
            next_id: 0,
            phase: Phase::Forward,
        }
    }

    /// Switches the phase tag for subsequently pushed ops.
    pub fn phase(&mut self, phase: Phase) -> &mut Self {
        self.phase = phase;
        self
    }

    fn next_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Pushes a kernel built by `f` from the next kernel id.
    pub fn kernel(&mut self, f: impl FnOnce(u32) -> Arc<KernelDesc>) -> &mut Self {
        let id = self.next_id();
        let k = f(id);
        self.ops.push((self.phase, OpSpec::Kernel(k)));
        self
    }

    /// Pushes a host-to-device copy.
    pub fn h2d(&mut self, bytes: u64, blocking: bool) -> &mut Self {
        self.ops.push((self.phase, OpSpec::H2D { bytes, blocking }));
        self
    }

    /// Pushes a device-to-host copy.
    pub fn d2h(&mut self, bytes: u64, blocking: bool) -> &mut Self {
        self.ops.push((self.phase, OpSpec::D2H { bytes, blocking }));
        self
    }

    /// Finishes the trace.
    pub fn build(self) -> Vec<(Phase, OpSpec)> {
        self.ops
    }

    /// Number of ops so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no ops have been pushed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Parameters of one kernel family within a pass.
#[derive(Debug, Clone, Copy)]
pub struct Family {
    /// Number of kernels of this family in the pass.
    pub count: u32,
    /// Total time budget for the family; each kernel gets an equal share
    /// modulated smoothly by +-25%.
    pub total: SimTime,
    /// Nominal SMs requested per kernel (modulated +-30%).
    pub sm: u32,
    /// Family archetype.
    pub arch: Arch,
}

/// Kernel families used by the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Convolution with the given compute-intensity (scaled by 100).
    Conv(u32),
    /// GEMM with the given compute-intensity (scaled by 100).
    Gemm(u32),
    /// Batch normalization (memory-bound).
    BatchNorm,
    /// Elementwise (memory-bound).
    Elementwise,
    /// Layer norm / softmax (memory-bound).
    LayerNorm,
    /// Pooling / reduction (unknown profile).
    Pooling,
    /// Optimizer update (tiny, unknown profile).
    OptimizerUpdate,
    /// Caller-calibrated utilization: `(compute*1000, mem*1000)`.
    Custom(u32, u32),
}

/// Emits the families of one pass, interleaved round-robin the way layers
/// alternate in a real network (conv, bn, relu, conv, bn, ...).
pub fn emit_interleaved(b: &mut TraceBuilder, families: &[Family]) {
    let mut remaining: Vec<u32> = families.iter().map(|f| f.count).collect();
    let mut emitted: Vec<u32> = vec![0; families.len()];
    loop {
        let mut any = false;
        for (fi, fam) in families.iter().enumerate() {
            if remaining[fi] == 0 {
                continue;
            }
            any = true;
            remaining[fi] -= 1;
            let idx = emitted[fi];
            emitted[fi] += 1;
            let mean = if fam.count == 0 {
                SimTime::ZERO
            } else {
                fam.total / u64::from(fam.count)
            };
            // Smooth +-25% duration modulation, preserving the family total
            // approximately (wobble is zero-mean over many kernels).
            let dur = mean.mul_f64(1.0 + 0.25 * archetype::wobble(idx.wrapping_mul(31)));
            let dur = dur.max(SimTime::from_micros(2));
            let sm = ((fam.sm as f64) * (1.0 + 0.3 * archetype::wobble(idx.wrapping_mul(17))))
                .round()
                .max(1.0) as u32;
            match fam.arch {
                Arch::Conv(intensity) => {
                    let t = intensity as f64 / 100.0;
                    b.kernel(|id| archetype::conv(id, dur, sm, t));
                }
                Arch::Gemm(intensity) => {
                    let t = intensity as f64 / 100.0;
                    b.kernel(|id| archetype::gemm(id, dur, sm, t));
                }
                Arch::BatchNorm => {
                    b.kernel(|id| archetype::batch_norm(id, dur, sm));
                }
                Arch::Elementwise => {
                    b.kernel(|id| archetype::elementwise(id, dur, sm));
                }
                Arch::LayerNorm => {
                    b.kernel(|id| archetype::layer_norm(id, dur, sm));
                }
                Arch::Pooling => {
                    b.kernel(|id| archetype::pooling(id, dur, sm));
                }
                Arch::OptimizerUpdate => {
                    b.kernel(|id| archetype::optimizer_update(id, dur));
                }
                Arch::Custom(c, m) => {
                    let (c, m) = (c as f64 / 1000.0, m as f64 / 1000.0);
                    b.kernel(|id| archetype::custom(id, "fused_op", dur, sm, c, m));
                }
            }
        }
        if !any {
            break;
        }
    }
}

/// Gibibytes to bytes, for footprint tables.
pub const fn gib(g: f64) -> u64 {
    (g * 1024.0 * 1024.0 * 1024.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_emits_all_kernels() {
        let mut b = TraceBuilder::new();
        emit_interleaved(
            &mut b,
            &[
                Family {
                    count: 10,
                    total: SimTime::from_millis(1),
                    sm: 40,
                    arch: Arch::Conv(50),
                },
                Family {
                    count: 5,
                    total: SimTime::from_micros(200),
                    sm: 20,
                    arch: Arch::BatchNorm,
                },
            ],
        );
        assert_eq!(b.len(), 15);
        let ops = b.build();
        // Families interleave: the first two ops are one conv and one bn.
        let names: Vec<&str> = ops
            .iter()
            .filter_map(|(_, o)| o.as_kernel())
            .map(|k| k.name.as_ref())
            .collect();
        assert!(names[0].starts_with("conv2d"));
        assert!(names[1].starts_with("batch_norm"));
    }

    #[test]
    fn family_total_time_approximately_preserved() {
        let mut b = TraceBuilder::new();
        let budget = SimTime::from_millis(10);
        emit_interleaved(
            &mut b,
            &[Family {
                count: 50,
                total: budget,
                sm: 30,
                arch: Arch::Conv(60),
            }],
        );
        let ops = b.build();
        let total: SimTime = ops
            .iter()
            .filter_map(|(_, o)| o.as_kernel())
            .map(|k| k.solo_duration)
            .sum();
        let ratio = total.as_secs_f64() / budget.as_secs_f64();
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn builder_phases_tag_ops() {
        let mut b = TraceBuilder::new();
        b.h2d(10, true);
        b.phase(Phase::Backward);
        b.kernel(|id| archetype::conv(id, SimTime::from_micros(10), 10, 0.5));
        let ops = b.build();
        assert_eq!(ops[0].0, Phase::Forward);
        assert_eq!(ops[1].0, Phase::Backward);
    }

    #[test]
    fn unique_kernel_ids() {
        let mut b = TraceBuilder::new();
        for _ in 0..10 {
            b.kernel(|id| archetype::conv(id, SimTime::from_micros(10), 10, 0.5));
        }
        let ops = b.build();
        let mut ids: Vec<u32> = ops
            .iter()
            .filter_map(|(_, o)| o.as_kernel())
            .map(|k| k.kernel_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }
}
