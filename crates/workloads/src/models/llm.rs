//! LLM autoregressive-decode workload (paper §7 extension).
//!
//! The paper's discussion notes that LLM token generation is memory-bound
//! (weights stream from HBM at batch 1) and underutilizes compute throughput
//! and SMs, making it a candidate for Orion collocation with compute-bound
//! jobs. This builder synthesizes one decode *step* (one token): per layer a
//! pair of weight-streaming GEMV-like kernels (memory-bound), an attention
//! kernel over the KV cache (memory-bound), and a layer norm.

use orion_desim::time::SimTime;

use crate::archetype;
use crate::model::{ModelKind, Workload, WorkloadKind};
use crate::models::{gib, TraceBuilder};

/// One decode step of a ~7B-parameter LLM (32 layers), batch size 1.
///
/// Token latency ~18 ms on the V100 reference; memory-bandwidth bound
/// (weights + KV cache streaming), compute mostly idle.
pub fn llm_decode_step() -> Workload {
    let mut b = TraceBuilder::new();
    // The token embedding lookup is negligible; no host copy per token.
    for layer in 0..32u32 {
        // Two fused matvec kernels per layer (attention proj + MLP):
        // memory-bound weight streaming.
        for half in 0..2 {
            b.kernel(|id| {
                archetype::custom(
                    id,
                    "llm_matvec",
                    SimTime::from_micros(190 + 10 * u64::from((layer + half) % 3)),
                    48,
                    0.18,
                    0.78,
                )
            });
        }
        // KV-cache attention: memory-bound.
        b.kernel(|id| {
            archetype::custom(id, "llm_attention", SimTime::from_micros(70), 36, 0.15, 0.70)
        });
        // Layer norm.
        b.kernel(|id| archetype::layer_norm(id, SimTime::from_micros(25), 30));
    }
    // Logits matvec + sampling.
    b.kernel(|id| archetype::custom(id, "llm_logits", SimTime::from_micros(220), 50, 0.22, 0.74));
    b.d2h(4_096, true);
    Workload {
        model: ModelKind::LlmDecode,
        kind: WorkloadKind::Inference { batch: 1 },
        ops: b.build(),
        memory_footprint: gib(7.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::kernel::ResourceProfile;

    #[test]
    fn decode_step_is_memory_bound() {
        let w = llm_decode_step();
        let (c, m, _) = w.profile_mix();
        assert_eq!(c, 0, "no compute-bound kernels in decode");
        assert!(m > 100, "memory-bound kernels {m}");
    }

    #[test]
    fn token_latency_band() {
        let w = llm_decode_step();
        let total = w.solo_kernel_time().as_millis_f64();
        assert!((14.0..22.0).contains(&total), "token latency {total} ms");
    }

    #[test]
    fn compute_throughput_is_underutilized() {
        let w = llm_decode_step();
        let mut c = 0.0;
        let mut t = 0.0;
        for k in w.kernels() {
            let d = k.solo_duration.as_secs_f64();
            c += d * k.compute_util;
            t += d;
        }
        assert!(c / t < 0.30, "compute integral {}", c / t);
        assert!(matches!(
            w.kernels().next().unwrap().classify(),
            ResourceProfile::MemoryBound
        ));
    }
}
