//! LLM autoregressive workloads: prefill, batched decode, KV-cache sizing
//! (paper §7 extension; serving loop in `orion-core::serving`).
//!
//! The paper's discussion notes that LLM token generation is memory-bound
//! (weights stream from HBM at batch 1) and underutilizes compute throughput
//! and SMs, making it a candidate for Orion collocation with compute-bound
//! jobs. This module synthesizes the two serving phases:
//!
//! - **Prefill** (`llm_prefill`): the prompt is processed in one pass of
//!   prompt-length-scaled GEMMs plus an O(prompt²) attention term —
//!   compute-bound, like a training forward pass.
//! - **Decode** (`llm_batched_decode_step`): one token for every request in
//!   the batch. The weight-streaming matvecs are shared across the batch, so
//!   their cost grows only ~4%/request (the continuous-batching win), while
//!   the KV-cache attention reads each request's context and grows linearly
//!   in `batch × context`. Compute utilization creeps up with batch size but
//!   the step stays memory-bound at every batch size we model.
//!
//! KV-cache sizing follows the usual fp16 formula: 32 layers × 4096 hidden
//! × 2 tensors (K and V) × 2 bytes = 512 KiB per token per request. The
//! batch-1 step's `memory_footprint` is calibrated so weights plus a
//! [`LLM_DEFAULT_CONTEXT`]-token KV cache total the 7 GiB the collocation
//! tables always charged for this model — the split is now explicit and the
//! footprint scales with context length instead of silently ignoring it.

use orion_desim::time::SimTime;

use crate::archetype;
use crate::model::{ModelKind, Workload, WorkloadKind};
use crate::models::{gib, TraceBuilder};

/// Transformer layer count of the ~7B reference model.
pub const LLM_LAYERS: u32 = 32;

/// KV-cache bytes per token per request: 32 layers × 4096 hidden × 2 (K,V)
/// × 2 bytes fp16.
pub const LLM_KV_BYTES_PER_TOKEN: u64 = 512 * 1024;

/// Context length assumed by the batch-1 [`llm_decode_step`] trace.
pub const LLM_DEFAULT_CONTEXT: u32 = 512;

/// KV-cache bytes for one request holding `tokens` tokens of context.
pub const fn kv_cache_bytes(tokens: u32) -> u64 {
    tokens as u64 * LLM_KV_BYTES_PER_TOKEN
}

/// Resident weight bytes (int8-quantized 7B). Calibrated so that weights +
/// a default-context KV cache equal the 7 GiB footprint the collocation
/// grids have always charged for `llm_decode_step`.
pub const fn llm_weight_bytes() -> u64 {
    gib(7.0) - kv_cache_bytes(LLM_DEFAULT_CONTEXT)
}

/// One decode step of a ~7B-parameter LLM (32 layers), batch size 1.
///
/// Token latency ~18 ms on the V100 reference; memory-bandwidth bound
/// (weights + KV cache streaming), compute mostly idle. Identical to
/// `llm_batched_decode_step(1, LLM_DEFAULT_CONTEXT)`.
pub fn llm_decode_step() -> Workload {
    llm_batched_decode_step(1, LLM_DEFAULT_CONTEXT)
}

/// One continuous-batching decode step: one token for each of `batch`
/// requests whose mean context length is `avg_context` tokens.
///
/// Matvec/logits kernels stream the same weights for every request, so their
/// duration grows 4% per extra request while per-token cost collapses; the
/// KV attention kernel reads `batch × avg_context` cache entries and grows
/// linearly. Compute utilization rises ~0.02 per extra request but is capped
/// below the 0.60 classification threshold: decode stays memory-bound.
pub fn llm_batched_decode_step(batch: u32, avg_context: u32) -> Workload {
    let batch = batch.max(1);
    let b64 = u64::from(batch);
    // Weight-streaming amortization: +4% duration per extra request.
    let stream_scale = |base_ns: u64| base_ns + base_ns * 4 * (b64 - 1) / 100;
    // Compute creep with batch size, capped below the 0.60 threshold.
    let compute_creep = |base: f64| (base + 0.02 * (b64 - 1) as f64).min(0.55);

    let mut b = TraceBuilder::new();
    // The token embedding lookup is negligible; no host copy per token.
    for layer in 0..LLM_LAYERS {
        // Two fused matvec kernels per layer (attention proj + MLP):
        // memory-bound weight streaming, shared across the batch.
        for half in 0..2 {
            b.kernel(|id| {
                archetype::custom(
                    id,
                    "llm_matvec",
                    SimTime::from_nanos(stream_scale(
                        1_000 * (190 + 10 * u64::from((layer + half) % 3)),
                    )),
                    48,
                    compute_creep(0.18),
                    0.78,
                )
            });
        }
        // KV-cache attention: memory-bound, reads every request's context.
        // 18.8 µs launch/softmax floor + 100 ns per cached token touched
        // (70 µs at batch 1 with the default 512-token context).
        b.kernel(|id| {
            archetype::custom(
                id,
                "llm_attention",
                SimTime::from_nanos(18_800 + b64 * u64::from(avg_context) * 100),
                36,
                0.15,
                0.70,
            )
        });
        // Layer norm over `batch` rows.
        b.kernel(|id| {
            archetype::layer_norm(id, SimTime::from_nanos(25_000 + 2_000 * (b64 - 1)), 30)
        });
    }
    // Logits matvec + sampling: weight-streaming, amortized like the matvecs.
    b.kernel(|id| {
        archetype::custom(
            id,
            "llm_logits",
            SimTime::from_nanos(stream_scale(220_000)),
            50,
            compute_creep(0.22),
            0.74,
        )
    });
    b.d2h(4_096 * b64, true);
    Workload {
        model: ModelKind::LlmDecode,
        kind: WorkloadKind::Inference { batch },
        ops: b.build(),
        memory_footprint: llm_weight_bytes() + b64 * kv_cache_bytes(avg_context),
    }
}

/// Prompt processing for one request: `prompt_tokens` tokens in a single
/// compute-bound pass (the serving TTFT phase).
///
/// Per layer: two prompt-length-scaled GEMMs (attention proj + MLP, the
/// whole prompt batched into one matmul) and an O(prompt²) self-attention
/// kernel, plus a layer norm. Ends with the logits matvec for the first
/// generated token.
pub fn llm_prefill(prompt_tokens: u32) -> Workload {
    let p = u64::from(prompt_tokens.max(1));
    let mut b = TraceBuilder::new();
    // Prompt token ids (4 bytes each), copied up front without blocking.
    b.h2d(4 * p, false);
    for _layer in 0..LLM_LAYERS {
        // GEMMs over the whole prompt: arithmetic intensity is high because
        // each streamed weight tile is reused for every prompt token.
        for _half in 0..2 {
            b.kernel(|id| {
                archetype::custom(id, "llm_prefill_gemm", SimTime::from_nanos(1_100 * p), 64, 0.86, 0.28)
            });
        }
        // Causal self-attention: O(prompt²) score matrix.
        b.kernel(|id| {
            archetype::custom(
                id,
                "llm_prefill_attn",
                SimTime::from_nanos(12_000 + p * p * 6 / 10),
                56,
                0.72,
                0.30,
            )
        });
        b.kernel(|id| archetype::layer_norm(id, SimTime::from_micros(25), 30));
    }
    b.kernel(|id| archetype::custom(id, "llm_logits", SimTime::from_micros(220), 50, 0.22, 0.74));
    b.d2h(4_096, true);
    Workload {
        model: ModelKind::LlmDecode,
        kind: WorkloadKind::Inference { batch: 1 },
        ops: b.build(),
        memory_footprint: llm_weight_bytes() + kv_cache_bytes(prompt_tokens),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::kernel::ResourceProfile;

    #[test]
    fn decode_step_is_memory_bound() {
        let w = llm_decode_step();
        let (c, m, _) = w.profile_mix();
        assert_eq!(c, 0, "no compute-bound kernels in decode");
        assert!(m > 100, "memory-bound kernels {m}");
    }

    #[test]
    fn token_latency_band() {
        let w = llm_decode_step();
        let total = w.solo_kernel_time().as_millis_f64();
        assert!((14.0..22.0).contains(&total), "token latency {total} ms");
    }

    #[test]
    fn compute_throughput_is_underutilized() {
        let w = llm_decode_step();
        let mut c = 0.0;
        let mut t = 0.0;
        for k in w.kernels() {
            let d = k.solo_duration.as_secs_f64();
            c += d * k.compute_util;
            t += d;
        }
        assert!(c / t < 0.30, "compute integral {}", c / t);
        assert!(matches!(
            w.kernels().next().unwrap().classify(),
            ResourceProfile::MemoryBound
        ));
    }

    #[test]
    fn batch_one_is_the_legacy_decode_step() {
        // The fleet traces and collocation grids build `llm_decode_step`;
        // batching must degenerate to exactly those kernels at batch 1 so
        // pinned digests cannot move.
        let legacy = llm_decode_step();
        let batched = llm_batched_decode_step(1, LLM_DEFAULT_CONTEXT);
        assert_eq!(legacy.memory_footprint, gib(7.0));
        assert_eq!(batched.memory_footprint, gib(7.0));
        assert_eq!(legacy.ops.len(), batched.ops.len());
        for (a, b) in legacy.kernels().zip(batched.kernels()) {
            assert_eq!(a.solo_duration, b.solo_duration, "{}", a.name);
            assert_eq!(a.compute_util, b.compute_util, "{}", a.name);
            assert_eq!(a.mem_util, b.mem_util, "{}", a.name);
            assert_eq!(a.grid_blocks, b.grid_blocks, "{}", a.name);
        }
    }

    #[test]
    fn footprint_accounts_kv_by_context_length() {
        assert_eq!(kv_cache_bytes(1), 512 * 1024);
        assert_eq!(llm_weight_bytes() + kv_cache_bytes(LLM_DEFAULT_CONTEXT), gib(7.0));
        let short = llm_batched_decode_step(1, 128).memory_footprint;
        let long = llm_batched_decode_step(1, 2048).memory_footprint;
        assert_eq!(long - short, kv_cache_bytes(2048 - 128));
        // Batch multiplies the KV term, not the weights.
        let b4 = llm_batched_decode_step(4, 128).memory_footprint;
        assert_eq!(b4 - llm_weight_bytes(), 4 * kv_cache_bytes(128));
    }

    #[test]
    fn batched_tokens_per_sec_strictly_increases() {
        // The continuous-batching win: weight streaming amortizes, so
        // tokens/sec rises strictly with batch while per-token step time
        // stays sub-linear in batch size.
        let mut last_rate = 0.0;
        let base = llm_batched_decode_step(1, LLM_DEFAULT_CONTEXT)
            .solo_kernel_time()
            .as_secs_f64();
        for batch in [1u32, 2, 4, 8, 16, 32] {
            let step = llm_batched_decode_step(batch, LLM_DEFAULT_CONTEXT)
                .solo_kernel_time()
                .as_secs_f64();
            let rate = f64::from(batch) / step;
            assert!(
                rate > last_rate,
                "tokens/sec not increasing at batch {batch}: {rate} <= {last_rate}"
            );
            assert!(
                batch == 1 || step < base * f64::from(batch),
                "batch {batch} step time {step} not sub-linear vs {base}"
            );
            last_rate = rate;
        }
    }

    #[test]
    fn decode_stays_memory_bound_at_large_batch() {
        let w = llm_batched_decode_step(32, 1024);
        let (c, m, _) = w.profile_mix();
        assert_eq!(c, 0, "compute-bound kernels crept into batched decode");
        assert!(m > 100);
        for k in w.kernels() {
            assert!(
                !matches!(k.classify(), ResourceProfile::ComputeBound),
                "{} classified compute-bound at batch 32",
                k.name
            );
        }
    }

    #[test]
    fn prefill_is_compute_bound_and_prompt_scaled() {
        let w = llm_prefill(192);
        let (c, m, _) = w.profile_mix();
        assert!(c > m, "prefill mix compute {c} <= memory {m}");
        assert!(matches!(
            w.kernels().next().unwrap().classify(),
            ResourceProfile::ComputeBound
        ));
        let short = llm_prefill(64).solo_kernel_time();
        let long = llm_prefill(512).solo_kernel_time();
        assert!(long > short * 4, "prefill not prompt-scaled: {short:?} vs {long:?}");
        // Prefilling a ~192-token prompt costs roughly one decode step.
        let t = w.solo_kernel_time().as_millis_f64();
        assert!((5.0..40.0).contains(&t), "prefill latency {t} ms");
    }
}
