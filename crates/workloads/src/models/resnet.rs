//! ResNet50 / ResNet101 workload builders (TorchVision configurations).
//!
//! Calibration anchors (V100, paper Tables 1 and 4):
//!
//! | workload            | latency/iter | compute | mem bw | SM busy | mem cap |
//! |---------------------|--------------|---------|--------|---------|---------|
//! | ResNet50-inf-bs4    | ~7 ms        | 30%     | 22%    | 24%     | 1.4 GiB |
//! | ResNet101-inf-bs4   | ~12 ms       | 24%     | 37%    | 29%     | 1.45 GiB|
//! | ResNet50-train-bs32 | ~97 ms       | 48%     | 45%    | 81%     | 5.1 GiB |
//! | ResNet101-train-bs32| ~159 ms      | 50%     | 43%    | 85%     | 6.2 GiB |

use orion_desim::time::SimTime;

use crate::model::{ModelKind, Phase, Workload, WorkloadKind};
use crate::models::{emit_interleaved, gib, Arch, Family, TraceBuilder};

const MB: u64 = 1 << 20;

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

fn us(x: u64) -> SimTime {
    SimTime::from_micros(x)
}

/// ResNet50 inference, batch size 4.
pub fn resnet50_inference() -> Workload {
    let mut b = TraceBuilder::new();
    // Input batch: 4 x 3 x 224 x 224 floats, synchronous host-to-device copy.
    b.h2d(2_408_448, true);
    emit_interleaved(
        &mut b,
        &[
            // Heavy convolutions (the large-channel stages): compute-bound.
            Family { count: 18, total: us(2_000), sm: 30, arch: Arch::Conv(45) },
            // Batch-norm + activation/residual kernels: memory-bound.
            Family { count: 33, total: us(750), sm: 20, arch: Arch::BatchNorm },
            Family { count: 16, total: us(250), sm: 20, arch: Arch::Elementwise },
            // Small-batch convolutions and fused ops below the 60% rule,
            // calibrated so Table 1's averages come out (see module docs).
            Family { count: 35, total: us(3_650), sm: 15, arch: Arch::Custom(150, 95) },
            Family { count: 2, total: us(120), sm: 10, arch: Arch::Pooling },
            Family { count: 1, total: us(120), sm: 16, arch: Arch::Gemm(40) },
        ],
    );
    b.d2h(16_384, true);
    Workload {
        model: ModelKind::ResNet50,
        kind: WorkloadKind::Inference { batch: 4 },
        ops: b.build(),
        memory_footprint: gib(1.40),
    }
}

/// ResNet101 inference, batch size 4.
pub fn resnet101_inference() -> Workload {
    let mut b = TraceBuilder::new();
    b.h2d(2_408_448, true);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 35, total: us(2_400), sm: 30, arch: Arch::Conv(45) },
            Family { count: 52, total: us(3_000), sm: 25, arch: Arch::BatchNorm },
            Family { count: 18, total: us(1_200), sm: 25, arch: Arch::Elementwise },
            Family { count: 65, total: us(5_150), sm: 18, arch: Arch::Custom(140, 175) },
            Family { count: 2, total: us(120), sm: 10, arch: Arch::Pooling },
            Family { count: 1, total: us(130), sm: 16, arch: Arch::Gemm(40) },
        ],
    );
    b.d2h(16_384, true);
    Workload {
        model: ModelKind::ResNet101,
        kind: WorkloadKind::Inference { batch: 4 },
        ops: b.build(),
        memory_footprint: gib(1.45),
    }
}

/// Shared forward+backward+update emitter for ResNet training.
#[allow(clippy::too_many_arguments)]
fn resnet_training(
    model: ModelKind,
    batch: u32,
    convs: u32,
    fwd_conv: SimTime,
    fwd_mem: SimTime,
    fwd_fill: SimTime,
    bwd_scale: f64,
    updates: u32,
    update_total: SimTime,
    input_bytes: u64,
    footprint: u64,
    fill_util: (u32, u32),
) -> Workload {
    let mut b = TraceBuilder::new();
    // Input minibatch prefetched asynchronously (no pipeline stalls, §6.1).
    b.h2d(input_bytes, false);
    let fwd = [
        Family { count: convs, total: fwd_conv, sm: 100, arch: Arch::Conv(75) },
        Family { count: convs + 10, total: fwd_mem.mul_f64(0.75), sm: 50, arch: Arch::BatchNorm },
        Family { count: 13, total: fwd_mem.mul_f64(0.25), sm: 50, arch: Arch::Elementwise },
        Family { count: convs, total: fwd_fill, sm: 55, arch: Arch::Custom(fill_util.0, fill_util.1) },
    ];
    emit_interleaved(&mut b, &fwd);
    b.phase(Phase::Backward);
    // Backward: dgrad + wgrad per conv (compute), norm/act gradients (mem).
    let bwd = [
        Family {
            count: 2 * convs,
            total: fwd_conv.mul_f64(bwd_scale),
            sm: 100,
            arch: Arch::Conv(78),
        },
        Family {
            count: convs + 20,
            total: fwd_mem.mul_f64(bwd_scale),
            sm: 52,
            arch: Arch::BatchNorm,
        },
        Family {
            count: convs,
            total: fwd_fill.mul_f64(bwd_scale),
            sm: 55,
            arch: Arch::Custom(fill_util.0, fill_util.1),
        },
    ];
    emit_interleaved(&mut b, &bwd);
    b.phase(Phase::Update);
    emit_interleaved(
        &mut b,
        &[Family { count: updates, total: update_total, sm: 1, arch: Arch::OptimizerUpdate }],
    );
    b.d2h(4_096, false);
    Workload {
        model,
        kind: WorkloadKind::Training { batch },
        ops: b.build(),
        memory_footprint: footprint,
    }
}

/// ResNet50 training, batch size 32 (~97 ms/iteration solo, Table 4).
pub fn resnet50_training() -> Workload {
    resnet_training(
        ModelKind::ResNet50,
        32,
        30,
        ms(13),
        ms(10),
        ms(9),
        1.88,
        160,
        us(1_500),
        19 * MB,
        gib(5.1),
        (400, 480),
    )
}

/// ResNet101 training, batch size 32 (~159 ms/iteration solo, Table 4).
pub fn resnet101_training() -> Workload {
    resnet_training(
        ModelKind::ResNet101,
        32,
        55,
        ms(22),
        ms(15),
        ms(15),
        1.95,
        260,
        us(2_600),
        19 * MB,
        gib(6.2),
        (420, 450),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_inference_shape() {
        let w = resnet50_inference();
        assert_eq!(w.label(), "ResNet50-inf-bs4");
        let total = w.solo_kernel_time().as_millis_f64();
        assert!((6.0..8.5).contains(&total), "total kernel time {total} ms");
        assert!(w.kernel_count() > 90);
        let (c, m, u) = w.profile_mix();
        assert!(c >= 10, "compute kernels {c}");
        assert!(m >= 40, "memory kernels {m}");
        assert!(u >= 30, "unknown kernels {u}");
    }

    #[test]
    fn resnet101_is_deeper_than_resnet50() {
        let i50 = resnet50_inference();
        let i101 = resnet101_inference();
        assert!(i101.kernel_count() > i50.kernel_count());
        assert!(i101.solo_kernel_time() > i50.solo_kernel_time());
    }

    #[test]
    fn resnet50_training_iteration_time() {
        let w = resnet50_training();
        let total = w.solo_kernel_time().as_millis_f64();
        // Table 4: 10.3 iterations/sec -> ~97 ms.
        assert!((85.0..110.0).contains(&total), "iteration {total} ms");
        // Backward exists and is bigger than forward.
        let fwd: SimTime = w
            .ops
            .iter()
            .filter(|(p, _)| *p == Phase::Forward)
            .filter_map(|(_, o)| o.as_kernel())
            .map(|k| k.solo_duration)
            .sum();
        let bwd: SimTime = w
            .ops
            .iter()
            .filter(|(p, _)| *p == Phase::Backward)
            .filter_map(|(_, o)| o.as_kernel())
            .map(|k| k.solo_duration)
            .sum();
        assert!(bwd > fwd);
    }

    #[test]
    fn resnet101_training_iteration_time() {
        let w = resnet101_training();
        let total = w.solo_kernel_time().as_millis_f64();
        // Table 4: 6.3 iterations/sec -> ~159 ms.
        assert!((140.0..180.0).contains(&total), "iteration {total} ms");
    }

    #[test]
    fn training_has_update_phase_kernels() {
        let w = resnet50_training();
        let updates = w
            .ops
            .iter()
            .filter(|(p, o)| *p == Phase::Update && o.as_kernel().is_some())
            .count();
        assert_eq!(updates, 160);
    }

    #[test]
    fn footprints_fit_collocations() {
        // The paper collocates pairs that fit on a 16 GiB device.
        let cap = 16u64 * 1024 * 1024 * 1024;
        assert!(resnet50_inference().memory_footprint + resnet50_training().memory_footprint < cap);
        assert!(resnet50_training().memory_footprint + resnet101_training().memory_footprint < cap);
    }
}
