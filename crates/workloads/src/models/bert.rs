//! BERT workload builders (NVIDIA reference implementations).
//!
//! Inference uses BERT-large (24 layers, batch 2); training uses BERT-base
//! ("BERT-basic" in Table 1; 12 layers, batch 8), matching the paper.
//! BERT inference is the most compute-saturated workload in Table 1
//! (95% SM busy, 72% compute throughput). Calibration anchors:
//!
//! | workload         | latency/iter | compute | mem bw | SM busy | mem cap |
//! |------------------|--------------|---------|--------|---------|---------|
//! | BERT-inf-bs2     | ~35 ms       | 72%     | 28%    | 95%     | 2.2 GiB |
//! | BERT-train-bs8   | ~204 ms      | 44%     | 21%    | 61%     | 6.1 GiB |

use orion_desim::time::SimTime;

use crate::model::{ModelKind, Phase, Workload, WorkloadKind};
use crate::models::{emit_interleaved, gib, Arch, Family, TraceBuilder};

fn us(x: u64) -> SimTime {
    SimTime::from_micros(x)
}

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

/// BERT-large inference, batch size 2 (24 encoder layers).
pub fn bert_inference() -> Workload {
    let mut b = TraceBuilder::new();
    // Token ids are small; embeddings live on-device.
    b.h2d(64 * 1024, true);
    emit_interleaved(
        &mut b,
        &[
            // 6 GEMMs per layer (QKV, attention out, FFN x2, logits ...).
            Family { count: 144, total: ms(27), sm: 76, arch: Arch::Gemm(85) },
            // Softmax + layer-norm per layer.
            Family { count: 72, total: us(3_500), sm: 74, arch: Arch::LayerNorm },
            // Bias/gelu/residual fused ops.
            Family { count: 48, total: us(4_200), sm: 70, arch: Arch::Custom(155, 310) },
        ],
    );
    b.d2h(256 * 1024, true);
    Workload {
        model: ModelKind::Bert,
        kind: WorkloadKind::Inference { batch: 2 },
        ops: b.build(),
        memory_footprint: gib(2.2),
    }
}

/// BERT-base training, batch size 8 (~204 ms/iteration solo, Table 4).
pub fn bert_training() -> Workload {
    let mut b = TraceBuilder::new();
    b.h2d(4 * 1024 * 1024, false);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 72, total: ms(31), sm: 90, arch: Arch::Gemm(70) },
            Family { count: 36, total: ms(7), sm: 40, arch: Arch::LayerNorm },
            Family { count: 50, total: ms(30), sm: 38, arch: Arch::Custom(130, 90) },
        ],
    );
    b.phase(Phase::Backward);
    emit_interleaved(
        &mut b,
        &[
            Family { count: 144, total: ms(60), sm: 90, arch: Arch::Gemm(72) },
            Family { count: 60, total: ms(13), sm: 40, arch: Arch::LayerNorm },
            Family { count: 80, total: ms(57), sm: 38, arch: Arch::Custom(130, 90) },
        ],
    );
    b.phase(Phase::Update);
    emit_interleaved(
        &mut b,
        &[Family { count: 250, total: ms(5), sm: 1, arch: Arch::OptimizerUpdate }],
    );
    b.d2h(4_096, false);
    Workload {
        model: ModelKind::Bert,
        kind: WorkloadKind::Training { batch: 8 },
        ops: b.build(),
        memory_footprint: gib(6.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::spec::GpuSpec;

    #[test]
    fn inference_latency_band() {
        let w = bert_inference();
        let total = w.solo_kernel_time().as_millis_f64();
        assert!((30.0..40.0).contains(&total), "total {total} ms");
    }

    #[test]
    fn inference_is_compute_dominated() {
        // Table 1: 72% compute vs 28% memory.
        let w = bert_inference();
        let mut c = 0.0;
        let mut m = 0.0;
        let mut t = 0.0;
        for k in w.kernels() {
            let d = k.solo_duration.as_secs_f64();
            c += d * k.compute_util;
            m += d * k.mem_util;
            t += d;
        }
        assert!(c / t > 0.60, "compute integral {}", c / t);
        assert!(m / t < 0.40, "memory integral {}", m / t);
    }

    #[test]
    fn inference_uses_most_sms() {
        // Table 1: 95% SM busy.
        let spec = GpuSpec::v100_16gb();
        let w = bert_inference();
        let mut weighted = 0.0;
        let mut t = 0.0;
        for k in w.kernels() {
            let d = k.solo_duration.as_secs_f64();
            weighted += d * k.sm_needed(&spec) as f64 / spec.num_sms as f64;
            t += d;
        }
        assert!(weighted / t > 0.80, "sm busy {}", weighted / t);
    }

    #[test]
    fn training_iteration_time() {
        let w = bert_training();
        let total = w.solo_kernel_time().as_millis_f64();
        // Table 4: 4.91 iterations/sec -> ~204 ms.
        assert!((185.0..225.0).contains(&total), "iteration {total} ms");
    }

    #[test]
    fn training_update_kernels_are_unknown_profile() {
        use orion_gpu::kernel::ResourceProfile;
        let w = bert_training();
        for (p, op) in &w.ops {
            if *p == Phase::Update {
                if let Some(k) = op.as_kernel() {
                    assert_eq!(k.classify(), ResourceProfile::Unknown);
                }
            }
        }
    }
}
