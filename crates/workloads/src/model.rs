//! Workload types: models, configurations, and the per-request op trace.

use std::sync::Arc;

use orion_desim::time::SimTime;
use orion_gpu::kernel::{KernelDesc, ResourceProfile};

use crate::ops::OpSpec;

/// The DNN models evaluated in the paper (plus the LLM-decode extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// ResNet50 (TorchVision), vision.
    ResNet50,
    /// ResNet101 (TorchVision), vision.
    ResNet101,
    /// MobileNetV2 (TorchVision), vision.
    MobileNetV2,
    /// BERT (NVIDIA reference): BERT-large for inference, BERT-base ("basic")
    /// for training, matching Table 1.
    Bert,
    /// Transformer(-XL) (NVIDIA reference), NLP.
    Transformer,
    /// Autoregressive LLM decode step (§7 extension; memory-bound).
    LlmDecode,
}

impl ModelKind {
    /// Human-readable name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::ResNet101 => "ResNet101",
            ModelKind::MobileNetV2 => "MobileNetV2",
            ModelKind::Bert => "BERT",
            ModelKind::Transformer => "Transformer",
            ModelKind::LlmDecode => "LLM-decode",
        }
    }

    /// True for the vision models (used by the Apollo-trace experiments,
    /// which the paper runs on vision models only).
    pub fn is_vision(self) -> bool {
        matches!(
            self,
            ModelKind::ResNet50 | ModelKind::ResNet101 | ModelKind::MobileNetV2
        )
    }
}

/// Inference vs. training configuration, with the paper's batch sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Latency-sensitive inference; a request is one batch.
    Inference {
        /// Batch size (Table 1).
        batch: u32,
    },
    /// Throughput-oriented training; a request is one minibatch iteration.
    Training {
        /// Batch size (Table 1).
        batch: u32,
    },
}

impl WorkloadKind {
    /// True for training configurations.
    pub fn is_training(self) -> bool {
        matches!(self, WorkloadKind::Training { .. })
    }
}

/// Phase of a training iteration an op belongs to (used by Tick-Tock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Forward pass (also the only phase of inference).
    #[default]
    Forward,
    /// Backward pass.
    Backward,
    /// Optimizer update.
    Update,
}

/// A complete workload: the op trace of one request (inference batch) or one
/// iteration (training minibatch), plus metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Model identity.
    pub model: ModelKind,
    /// Inference or training configuration.
    pub kind: WorkloadKind,
    /// Ops of one request in submission order, tagged with their phase.
    pub ops: Vec<(Phase, OpSpec)>,
    /// GPU memory footprint (weights + activations + workspace), bytes.
    pub memory_footprint: u64,
}

impl Workload {
    /// Workload display name, e.g. `ResNet50-train-bs32`.
    pub fn label(&self) -> String {
        match self.kind {
            WorkloadKind::Inference { batch } => {
                format!("{}-inf-bs{}", self.model.name(), batch)
            }
            WorkloadKind::Training { batch } => {
                format!("{}-train-bs{}", self.model.name(), batch)
            }
        }
    }

    /// All kernel descriptions in the request, in order.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelDesc> {
        self.ops.iter().filter_map(|(_, op)| op.as_kernel())
    }

    /// Number of kernels per request.
    pub fn kernel_count(&self) -> usize {
        self.kernels().count()
    }

    /// Sum of solo kernel durations (lower bound on request latency).
    pub fn solo_kernel_time(&self) -> SimTime {
        self.kernels().map(|k| k.solo_duration).sum()
    }

    /// Counts kernels by resource profile: (compute, memory, unknown).
    pub fn profile_mix(&self) -> (usize, usize, usize) {
        let mut mix = (0, 0, 0);
        for k in self.kernels() {
            match k.classify() {
                ResourceProfile::ComputeBound => mix.0 += 1,
                ResourceProfile::MemoryBound => mix.1 += 1,
                ResourceProfile::Unknown => mix.2 += 1,
            }
        }
        mix
    }

    /// Returns a copy with every kernel duration scaled by `1 / speedup`
    /// (for running a V100-calibrated workload on a faster device).
    pub fn scaled(&self, speedup: f64) -> Workload {
        let mut w = self.clone();
        if speedup <= 0.0 || !speedup.is_finite() {
            return w;
        }
        for (_, op) in &mut w.ops {
            if let OpSpec::Kernel(k) = op {
                // Descriptions are shared; rescale a private copy.
                let k = Arc::make_mut(k);
                k.solo_duration = k.solo_duration.div_f64(speedup);
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::kernel::KernelBuilder;

    fn tiny_workload() -> Workload {
        Workload {
            model: ModelKind::ResNet50,
            kind: WorkloadKind::Inference { batch: 4 },
            ops: vec![
                (
                    Phase::Forward,
                    OpSpec::H2D {
                        bytes: 100,
                        blocking: true,
                    },
                ),
                (
                    Phase::Forward,
                    OpSpec::Kernel(
                        KernelBuilder::new(0, "a")
                            .solo_duration(SimTime::from_micros(100))
                            .utilization(0.9, 0.1)
                            .build(),
                    ),
                ),
                (
                    Phase::Forward,
                    OpSpec::Kernel(
                        KernelBuilder::new(1, "b")
                            .solo_duration(SimTime::from_micros(50))
                            .utilization(0.1, 0.9)
                            .build(),
                    ),
                ),
            ],
            memory_footprint: 1 << 20,
        }
    }

    #[test]
    fn labels() {
        let w = tiny_workload();
        assert_eq!(w.label(), "ResNet50-inf-bs4");
        assert_eq!(ModelKind::Bert.name(), "BERT");
        assert!(ModelKind::MobileNetV2.is_vision());
        assert!(!ModelKind::Transformer.is_vision());
    }

    #[test]
    fn kernel_iteration_and_mix() {
        let w = tiny_workload();
        assert_eq!(w.kernel_count(), 2);
        assert_eq!(w.solo_kernel_time(), SimTime::from_micros(150));
        assert_eq!(w.profile_mix(), (1, 1, 0));
    }

    #[test]
    fn scaling_halves_durations() {
        let w = tiny_workload().scaled(2.0);
        assert_eq!(w.solo_kernel_time(), SimTime::from_micros(75));
        // Degenerate scales are identity.
        let same = tiny_workload().scaled(0.0);
        assert_eq!(same.solo_kernel_time(), SimTime::from_micros(150));
    }
}
