//! Randomized property tests on workload invariants, driven by a
//! deterministic [`DetRng`] fuzz corpus (one sub-seed per case index).

use orion_desim::rng::{cell_seed, DetRng};
use orion_desim::time::SimTime;
use orion_gpu::spec::GpuSpec;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::registry::{inference_workload, training_workload, ALL_MODELS};
use orion_workloads::swap::{estimated_weights_bytes, swapped_workload};
use orion_workloads::ModelKind;

const CASES: u64 = 48;

fn pick_model(rng: &mut DetRng) -> ModelKind {
    ALL_MODELS[rng.uniform_u64(ALL_MODELS.len() as u64) as usize]
}

/// Scaling kernel durations scales total solo time proportionally and
/// changes nothing else.
#[test]
fn scaling_is_linear() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xD1, case));
        let m = pick_model(&mut rng);
        let speedup = rng.uniform_f64(0.5, 4.0);
        let w = inference_workload(m);
        let s = w.scaled(speedup);
        assert_eq!(s.kernel_count(), w.kernel_count(), "case {case}");
        assert_eq!(s.memory_footprint, w.memory_footprint, "case {case}");
        let ratio = w.solo_kernel_time().as_secs_f64() / s.solo_kernel_time().as_secs_f64();
        assert!(
            (ratio - speedup).abs() / speedup < 0.01,
            "case {case}: ratio {ratio}"
        );
        assert_eq!(s.profile_mix(), w.profile_mix(), "case {case}");
    }
}

/// Every kernel in every workload (both variants of every model) is valid
/// and fits the device limits.
#[test]
fn all_kernels_valid() {
    let spec = GpuSpec::v100_16gb();
    for m in ALL_MODELS {
        for training in [false, true] {
            let w = if training {
                training_workload(m)
            } else {
                inference_workload(m)
            };
            for k in w.kernels() {
                assert!(k.validate().is_ok(), "{}: {:?}", w.label(), k.name);
                let sm = k.sm_needed(&spec);
                assert!(sm >= 1 && sm <= spec.num_sms);
                assert!(k.solo_duration >= SimTime::from_micros(1));
                assert!(k.solo_duration <= SimTime::from_millis(10));
            }
        }
    }
}

/// Workload construction is deterministic: building twice gives
/// identical traces.
#[test]
fn builders_are_deterministic() {
    for m in ALL_MODELS {
        for training in [false, true] {
            let mk = || {
                if training {
                    training_workload(m)
                } else {
                    inference_workload(m)
                }
            };
            let a = mk();
            let b = mk();
            assert_eq!(a.ops.len(), b.ops.len());
            for (x, y) in a.ops.iter().zip(&b.ops) {
                assert_eq!(x, y);
            }
        }
    }
}

/// Swapping preserves kernels, monotonically shrinks the footprint with
/// lower residency, and never exceeds the original footprint.
#[test]
fn swapping_is_monotone() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xD2, case));
        let m = pick_model(&mut rng);
        let keep = rng.uniform_f64(0.1, 0.9);
        let groups = 4 + rng.uniform_u64(36) as u32;
        let w = inference_workload(m);
        let s = swapped_workload(&w, keep, groups);
        assert_eq!(s.kernel_count(), w.kernel_count(), "case {case}");
        assert!(s.memory_footprint <= w.memory_footprint, "case {case}");
        let s_lower = swapped_workload(&w, keep / 2.0, groups);
        assert!(
            s_lower.memory_footprint
                <= s.memory_footprint + estimated_weights_bytes(&w) / groups as u64,
            "case {case}: lower residency should not grow the footprint materially"
        );
    }
}

/// Arrival schedules are sorted, within the horizon, and the realized
/// rate tracks the nominal rate for all process types.
#[test]
fn arrival_schedules_well_formed() {
    for case in 0..CASES {
        let mut meta = DetRng::new(cell_seed(0xD3, case));
        let seed = meta.next_u64();
        let rps = meta.uniform_f64(5.0, 120.0);
        let horizon = SimTime::from_secs(20);
        for process in [
            ArrivalProcess::Poisson { rps },
            ArrivalProcess::Uniform { rps },
            ArrivalProcess::Apollo { mean_rps: rps },
        ] {
            let mut rng = DetRng::new(seed);
            let s = process.schedule(horizon, &mut rng);
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "case {case}");
            assert!(s.iter().all(|&t| t < horizon), "case {case}");
            let rate = s.len() as f64 / horizon.as_secs_f64();
            assert!(
                (rate - rps).abs() < 0.35 * rps + 2.0,
                "case {case} {process:?}: rate {rate} vs nominal {rps}"
            );
        }
    }
}
