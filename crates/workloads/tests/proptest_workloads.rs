//! Property-based tests on workload invariants.

use orion_desim::rng::DetRng;
use orion_desim::time::SimTime;
use orion_gpu::spec::GpuSpec;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::registry::{inference_workload, training_workload, ALL_MODELS};
use orion_workloads::swap::{estimated_weights_bytes, swapped_workload};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = orion_workloads::ModelKind> {
    prop::sample::select(ALL_MODELS.to_vec())
}

proptest! {
    /// Scaling kernel durations scales total solo time proportionally and
    /// changes nothing else.
    #[test]
    fn scaling_is_linear(m in any_model(), speedup in 0.5f64..4.0) {
        let w = inference_workload(m);
        let s = w.scaled(speedup);
        prop_assert_eq!(s.kernel_count(), w.kernel_count());
        prop_assert_eq!(s.memory_footprint, w.memory_footprint);
        let ratio = w.solo_kernel_time().as_secs_f64() / s.solo_kernel_time().as_secs_f64();
        prop_assert!((ratio - speedup).abs() / speedup < 0.01, "ratio {ratio}");
        prop_assert_eq!(s.profile_mix(), w.profile_mix());
    }

    /// Every kernel in every workload is valid and fits the device limits.
    #[test]
    fn all_kernels_valid(m in any_model(), training in any::<bool>()) {
        let w = if training { training_workload(m) } else { inference_workload(m) };
        let spec = GpuSpec::v100_16gb();
        for k in w.kernels() {
            prop_assert!(k.validate().is_ok(), "{}: {:?}", w.label(), k.name);
            let sm = k.sm_needed(&spec);
            prop_assert!(sm >= 1 && sm <= spec.num_sms);
            prop_assert!(k.solo_duration >= SimTime::from_micros(1));
            prop_assert!(k.solo_duration <= SimTime::from_millis(10));
        }
    }

    /// Workload construction is deterministic: building twice gives
    /// identical traces.
    #[test]
    fn builders_are_deterministic(m in any_model(), training in any::<bool>()) {
        let a = if training { training_workload(m) } else { inference_workload(m) };
        let b = if training { training_workload(m) } else { inference_workload(m) };
        prop_assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            prop_assert_eq!(x, y);
        }
    }

    /// Swapping preserves kernels, monotonically shrinks the footprint with
    /// lower residency, and never exceeds the original footprint.
    #[test]
    fn swapping_is_monotone(m in any_model(), keep in 0.1f64..0.9, groups in 4u32..40) {
        let w = inference_workload(m);
        let s = swapped_workload(&w, keep, groups);
        prop_assert_eq!(s.kernel_count(), w.kernel_count());
        prop_assert!(s.memory_footprint <= w.memory_footprint);
        let s_lower = swapped_workload(&w, keep / 2.0, groups);
        prop_assert!(
            s_lower.memory_footprint <= s.memory_footprint + estimated_weights_bytes(&w) / groups as u64,
            "lower residency should not grow the footprint materially"
        );
    }

    /// Arrival schedules are sorted, within the horizon, and the realized
    /// rate tracks the nominal rate for all process types.
    #[test]
    fn arrival_schedules_well_formed(seed in any::<u64>(), rps in 5.0f64..120.0) {
        let horizon = SimTime::from_secs(20);
        for process in [
            ArrivalProcess::Poisson { rps },
            ArrivalProcess::Uniform { rps },
            ArrivalProcess::Apollo { mean_rps: rps },
        ] {
            let mut rng = DetRng::new(seed);
            let s = process.schedule(horizon, &mut rng);
            prop_assert!(s.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(s.iter().all(|&t| t < horizon));
            let rate = s.len() as f64 / horizon.as_secs_f64();
            prop_assert!(
                (rate - rps).abs() < 0.35 * rps + 2.0,
                "{process:?}: rate {rate} vs nominal {rps}"
            );
        }
    }
}
