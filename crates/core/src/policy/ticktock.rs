//! Tick-Tock training collocation (Wavelet/Zico style, paper refs 94 and 67; §6.1).
//!
//! Two training jobs run with their forward and backward passes offset: in
//! the *tick* window client A runs its forward pass while client B runs its
//! backward pass (and optimizer update); in the *tock* window they swap.
//! A barrier separates windows — both jobs must finish their window's phase
//! before either proceeds — which minimizes peak activation memory but makes
//! the faster job wait for the slower one (the throughput loss the paper's
//! Figure 10 shows).

use std::collections::HashSet;

use orion_gpu::engine::OpId;
use orion_gpu::stream::{StreamId, StreamPriority};
use orion_workloads::model::Phase;

use super::{Policy, PolicyDebugState, RoutedCompletion, SchedCtx};

/// Window parity: which client runs its forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Window {
    /// Even clients forward, odd clients backward+update.
    Tick,
    /// Odd clients forward, even clients backward+update.
    Tock,
}

/// The Tick-Tock policy.
#[derive(Debug)]
pub struct TickTock {
    streams: Vec<Option<StreamId>>,
    window: Window,
    outstanding: Vec<HashSet<OpId>>,
}

impl TickTock {
    /// Creates the policy (expects training clients in a closed loop).
    pub fn new() -> Self {
        TickTock {
            streams: Vec::new(),
            window: Window::Tick,
            outstanding: Vec::new(),
        }
    }

    /// Phases client `i` may run in the current window.
    fn allowed(&self, client: usize) -> [Phase; 2] {
        let fwd_side = match self.window {
            Window::Tick => 0,
            Window::Tock => 1,
        };
        if client % 2 == fwd_side {
            [Phase::Forward, Phase::Forward]
        } else {
            [Phase::Backward, Phase::Update]
        }
    }

    /// True when every client has drained its window work: no outstanding
    /// ops and its queue head (if any) belongs to the next window.
    fn window_done(&self, ctx: &SchedCtx) -> bool {
        for (i, c) in ctx.clients.iter().enumerate() {
            if !self.outstanding[i].is_empty() {
                return false;
            }
            let allowed = self.allowed(i);
            if let Some(head) = c.peek() {
                if head.is_kernel() && allowed.contains(&head.phase) {
                    return false;
                }
            } else if c.request_in_flight() {
                // The client is still pushing ops of the current window.
                return false;
            }
        }
        true
    }
}

impl Default for TickTock {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for TickTock {
    fn name(&self) -> &'static str {
        "Tick-Tock"
    }

    fn setup(&mut self, ctx: &mut SchedCtx) {
        self.streams = ctx
            .clients
            .iter()
            .map(|_| Some(ctx.gpu.create_stream(StreamPriority::DEFAULT)))
            .collect();
        self.outstanding = vec![HashSet::new(); ctx.clients.len()];
    }

    fn schedule(&mut self, ctx: &mut SchedCtx) {
        loop {
            let mut progressed = false;
            for i in 0..ctx.clients.len() {
                let stream = self.streams[i].expect("setup created streams");
                let allowed = self.allowed(i);
                while let Some(head) = ctx.clients[i].peek() {
                    // Memory ops pass through; kernels obey the window phase.
                    if head.is_kernel() && !allowed.contains(&head.phase) {
                        break;
                    }
                    let Some(routed) = ctx.submit_head(i, stream) else {
                        return; // device faulted: head requeued, retry next round
                    };
                    self.outstanding[i].insert(routed.op);
                    progressed = true;
                }
            }
            if self.window_done(ctx) && ctx.clients.iter().any(|c| c.peek().is_some()) {
                // Barrier passed: swap windows and continue draining.
                self.window = match self.window {
                    Window::Tick => Window::Tock,
                    Window::Tock => Window::Tick,
                };
                progressed = true;
            }
            if !progressed {
                return;
            }
        }
    }

    fn on_completions(&mut self, completions: &[RoutedCompletion], _ctx: &mut SchedCtx) {
        for c in completions {
            if let Some(set) = self.outstanding.get_mut(c.client) {
                set.remove(&c.op);
            }
        }
    }

    fn debug_state(&self) -> PolicyDebugState {
        PolicyDebugState {
            per_client: Some(
                self.outstanding
                    .iter()
                    .map(|set| set.iter().copied().collect())
                    .collect(),
            ),
            ..PolicyDebugState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_phases_alternate() {
        let mut t = TickTock::new();
        assert_eq!(t.allowed(0), [Phase::Forward, Phase::Forward]);
        assert_eq!(t.allowed(1), [Phase::Backward, Phase::Update]);
        t.window = Window::Tock;
        assert_eq!(t.allowed(0), [Phase::Backward, Phase::Update]);
        assert_eq!(t.allowed(1), [Phase::Forward, Phase::Forward]);
    }
}
