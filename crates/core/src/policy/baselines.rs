//! Baseline policies: temporal sharing and the stream-based spatial sharers.

use orion_gpu::stream::{StreamId, StreamPriority};

use super::{Policy, PolicyDebugState, RoutedCompletion, SchedCtx};
use crate::client::ClientPriority;

/// Pass-through spatial sharing: every client submits directly to its own
/// CUDA stream. Covers three baselines:
///
/// * **Streams** (§6.1): one multi-threaded process, all default-priority
///   streams (the GIL launch penalty is modeled by the world).
/// * **Stream-Priority** (Figure 14): same, but the high-priority client
///   gets a CUDA high-priority stream.
/// * **MPS** (§6.1): process-per-client — no GIL penalty, default priorities
///   (MPS ignores stream priorities across processes, paper ref 46).
#[derive(Debug)]
pub struct PassThrough {
    label: &'static str,
    hp_priority: bool,
    streams: Vec<Option<StreamId>>,
}

impl PassThrough {
    /// The GPU Streams baseline.
    pub fn streams() -> Self {
        PassThrough {
            label: "Streams",
            hp_priority: false,
            streams: Vec::new(),
        }
    }

    /// Streams + CUDA priority for the high-priority client.
    pub fn stream_priority() -> Self {
        PassThrough {
            label: "Stream-Priority",
            hp_priority: true,
            streams: Vec::new(),
        }
    }

    /// The MPS baseline.
    pub fn mps() -> Self {
        PassThrough {
            label: "MPS",
            hp_priority: false,
            streams: Vec::new(),
        }
    }
}

impl Policy for PassThrough {
    fn name(&self) -> &'static str {
        self.label
    }

    fn setup(&mut self, ctx: &mut SchedCtx) {
        self.streams = ctx
            .clients
            .iter()
            .map(|c| {
                let prio =
                    if self.hp_priority && c.priority() == ClientPriority::HighPriority {
                        StreamPriority::HIGH
                    } else {
                        StreamPriority::DEFAULT
                    };
                Some(ctx.gpu.create_stream(prio))
            })
            .collect();
    }

    fn schedule(&mut self, ctx: &mut SchedCtx) {
        for i in 0..ctx.clients.len() {
            let stream = self.streams[i].expect("setup created streams");
            while ctx.clients[i].peek().is_some() {
                if ctx.submit_head(i, stream).is_none() {
                    return; // device faulted: head requeued, retry next round
                }
            }
        }
    }

    // Pass-through keeps no mirror of device state, so there is nothing for
    // the oracle to cross-check: the default (all-`None`) debug state is the
    // honest answer, and only policy-independent invariants apply.
    fn debug_state(&self) -> PolicyDebugState {
        PolicyDebugState::default()
    }
}

/// Temporal sharing (§4): the GPU executes one request / training iteration
/// at a time; an arriving high-priority request still waits for the ongoing
/// best-effort iteration (head-of-line blocking), which is the behaviour
/// the paper's Figure 6/7 temporal bars show.
#[derive(Debug)]
pub struct Temporal {
    streams: Vec<Option<StreamId>>,
    /// The client whose request currently owns the GPU, with its request id.
    active: Option<(usize, u64)>,
}

impl Temporal {
    /// Creates the temporal-sharing policy.
    pub fn new() -> Self {
        Temporal {
            streams: Vec::new(),
            active: None,
        }
    }

    /// Picks the next request owner: high-priority clients first, then
    /// best-effort, in index order. If a high-priority client has a request
    /// in flight whose ops have not reached the queue yet (its launch thread
    /// is mid-push), the pick is deferred so the HP request is not overtaken
    /// by a best-effort iteration at the same instant.
    fn pick_next(&self, ctx: &SchedCtx) -> Option<(usize, u64)> {
        let (hp, be) = ctx.split_clients();
        for &i in &hp {
            if let Some(op) = ctx.clients[i].peek() {
                return Some((i, op.request_id));
            }
            if ctx.clients[i].request_in_flight() {
                return None; // HP ops are imminent; hold the device.
            }
        }
        for &i in &be {
            if let Some(op) = ctx.clients[i].peek() {
                return Some((i, op.request_id));
            }
        }
        None
    }
}

impl Default for Temporal {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Temporal {
    fn name(&self) -> &'static str {
        "Temporal"
    }

    fn setup(&mut self, ctx: &mut SchedCtx) {
        self.streams = ctx
            .clients
            .iter()
            .map(|_| Some(ctx.gpu.create_stream(StreamPriority::DEFAULT)))
            .collect();
    }

    fn schedule(&mut self, ctx: &mut SchedCtx) {
        let (owner, request) = match self.active {
            Some(a) => a,
            None => match self.pick_next(ctx) {
                Some(a) => {
                    self.active = Some(a);
                    a
                }
                None => return,
            },
        };
        // Submit the owner's ops as they stream into its queue; ops of a
        // *later* request stay queued until this one completes. Ownership
        // transfers when the final op's completion arrives
        // (see on_completions).
        let stream = self.streams[owner].expect("setup created streams");
        while let Some(head) = ctx.clients[owner].peek() {
            if head.request_id != request {
                break;
            }
            if ctx.submit_head(owner, stream).is_none() {
                return; // device faulted: head requeued, retry next round
            }
        }
    }

    fn on_completions(&mut self, completions: &[RoutedCompletion], _ctx: &mut SchedCtx) {
        for c in completions {
            if c.last_of_request {
                if let Some((owner, request)) = self.active {
                    if owner == c.client && request == c.request_id {
                        self.active = None;
                    }
                }
            }
        }
    }

    fn on_request_shed(&mut self, client: usize, request_id: u64) {
        // A shed request's final op will never complete, so ownership must
        // be released here or the device deadlocks on the dead owner.
        if self.active == Some((client, request_id)) {
            self.active = None;
        }
    }

    fn debug_state(&self) -> PolicyDebugState {
        PolicyDebugState {
            exclusive_owner: Some(self.active),
            ..PolicyDebugState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_label_correctly() {
        assert_eq!(PassThrough::streams().name(), "Streams");
        assert_eq!(PassThrough::stream_priority().name(), "Stream-Priority");
        assert_eq!(PassThrough::mps().name(), "MPS");
        assert_eq!(Temporal::new().name(), "Temporal");
    }
}
