//! The Orion scheduling policy (paper §5.1, Listing 1).
//!
//! High-priority operations are submitted immediately on a dedicated
//! high-priority stream. A best-effort kernel is submitted only when
//!
//! 1. the cumulative expected duration of *outstanding* best-effort kernels
//!    is below `DUR_THRESHOLD` (a fraction of the high-priority job's solo
//!    request latency) — the throttle that substitutes for the missing
//!    kernel preemption (§5.1.2); and
//! 2. either no high-priority kernel is on the device, or the best-effort
//!    kernel is small (`sm_needed < SM_THRESHOLD`) *and* its compute/memory
//!    profile is opposite to the running high-priority kernel's (kernels
//!    with `Unknown` profiles are optimistically allowed, §5.2).
//!
//! Memory operations are submitted directly (§5.1.3); their blocking and
//! device-synchronization semantics are enforced by the client layer and
//! the device engine respectively.
//!
//! The outstanding-duration check in Listing 1 uses a CUDA event recorded
//! after the most recent best-effort kernel (`be_submitted.finished()`).
//! Streams execute in order, so "the last recorded event fired" is exactly
//! "no best-effort kernel is outstanding"; we track the outstanding set
//! directly, which generalizes to multiple best-effort streams without a
//! per-kernel event object.

use std::collections::{HashMap, HashSet};

use orion_desim::time::SimTime;
use orion_gpu::engine::OpId;
use orion_gpu::kernel::ResourceProfile;
use orion_gpu::stream::{StreamId, StreamPriority};

use super::{Policy, PolicyDebugState, RoutedCompletion, SchedCtx};
use crate::client::ClientPriority;

/// Orion configuration: the paper's defaults plus the ablation switches of
/// Figure 14 and the PCIe extension of §5.1.3.
#[derive(Debug, Clone, PartialEq)]
pub struct OrionConfig {
    /// Submit the high-priority client on a CUDA high-priority stream.
    pub use_stream_priorities: bool,
    /// Gate best-effort kernels on opposite compute/memory profiles.
    pub use_profile_check: bool,
    /// Gate best-effort kernels on `sm_needed < SM_THRESHOLD`.
    pub use_sm_check: bool,
    /// `DUR_THRESHOLD` as a fraction of the high-priority solo request
    /// latency; `None` disables the outstanding-duration throttle.
    pub dur_threshold_frac: Option<f64>,
    /// Explicit `SM_THRESHOLD`; `None` uses the device SM count (§5.1.1
    /// default). See [`crate::tuning`] for the binary-search auto-tuner.
    pub sm_threshold: Option<u32>,
    /// §5.1.3 extension: only submit best-effort memcpys when the PCIe link
    /// is not already saturated by high-priority copies.
    pub pcie_aware_memcpy: bool,
    /// Extension beyond the paper: also gate a best-effort kernel against
    /// the profiles of *outstanding best-effort* kernels from other clients.
    /// Listing 1 only compares against the high-priority kernel, so with
    /// several best-effort clients, same-profile best-effort kernels can
    /// stack (e.g. two memory-bound kernels saturating bandwidth) and slow
    /// the high-priority job collaterally — the effect our Figure 13
    /// reproduction exposes. Off by default (paper-faithful).
    pub gate_be_vs_be: bool,
    /// Test-only fault injection: reintroduces the historical `hp_copies`
    /// increment/decrement asymmetry (count only *blocking* HP copies on
    /// submit, but decrement on *any* HP non-kernel completion). Kept so the
    /// validation oracle's stress harness can demonstrate that it catches
    /// this bug class; never enable outside tests.
    #[doc(hidden)]
    pub inject_hp_copy_drift: bool,
}

impl Default for OrionConfig {
    fn default() -> Self {
        OrionConfig {
            use_stream_priorities: true,
            use_profile_check: true,
            use_sm_check: true,
            dur_threshold_frac: Some(0.025),
            sm_threshold: None,
            pcie_aware_memcpy: false,
            gate_be_vs_be: false,
            inject_hp_copy_drift: false,
        }
    }
}

impl OrionConfig {
    /// Figure 14 step: profile-aware scheduling without the SM-size check.
    pub fn profiles_only() -> Self {
        OrionConfig {
            use_sm_check: false,
            ..Default::default()
        }
    }

    /// Figure 14 step: full Orion without stream priorities.
    pub fn no_priorities() -> Self {
        OrionConfig {
            use_stream_priorities: false,
            ..Default::default()
        }
    }

    /// Overrides the duration-throttle fraction (§6.4 sensitivity study).
    pub fn with_dur_threshold(mut self, frac: f64) -> Self {
        self.dur_threshold_frac = Some(frac);
        self
    }

    /// Overrides `SM_THRESHOLD`.
    pub fn with_sm_threshold(mut self, sms: u32) -> Self {
        self.sm_threshold = Some(sms);
        self
    }
}

/// The Orion scheduler state.
#[derive(Debug)]
pub struct Orion {
    cfg: OrionConfig,
    hp_stream: Option<StreamId>,
    /// One stream per client index (best-effort clients only).
    be_streams: Vec<Option<StreamId>>,
    /// Absolute `DUR_THRESHOLD` derived from the HP profile at setup.
    dur_threshold: SimTime,
    /// Per-HP-client absolute thresholds feeding the min above. Setup seeds
    /// each entry from the offline profile; an online solo-latency estimate
    /// ([`Policy::on_solo_latency_estimate`]) *replaces* its client's entry —
    /// replacement, not `min`, because a cold start seeds ZERO (empty
    /// profile ⇒ zero request latency) and a min would pin the throttle shut
    /// forever.
    dur_thresholds: HashMap<usize, SimTime>,
    sm_threshold: u32,
    /// Outstanding best-effort kernels with their profiles.
    be_outstanding: HashMap<OpId, ResourceProfile>,
    /// Cumulative expected duration counter (`be_duration` in Listing 1).
    be_duration: SimTime,
    /// Outstanding high-priority kernels with their profiles.
    hp_outstanding: Vec<(OpId, ResourceProfile)>,
    /// Outstanding high-priority blocking copies, by op id (PCIe extension).
    ///
    /// Tracking ids — not a bare counter — keeps the increment and decrement
    /// sides structurally symmetric: an id leaves the set only when *that*
    /// op completes. The historical counter version decremented on any HP
    /// non-kernel completion (async copies included), so an async HP copy
    /// completing while a blocking copy was still in flight zeroed the gate.
    hp_copy_ids: HashSet<OpId>,
    /// The historical asymmetric counter, maintained (and consulted) only
    /// under [`OrionConfig::inject_hp_copy_drift`].
    hp_copies_legacy: usize,
    /// Round-robin cursor over best-effort clients.
    rr: usize,
}

impl Orion {
    /// Creates an Orion policy with the given configuration.
    pub fn new(cfg: OrionConfig) -> Self {
        Orion {
            cfg,
            hp_stream: None,
            be_streams: Vec::new(),
            dur_threshold: SimTime::MAX,
            dur_thresholds: HashMap::new(),
            sm_threshold: u32::MAX,
            be_outstanding: HashMap::new(),
            be_duration: SimTime::ZERO,
            hp_outstanding: Vec::new(),
            hp_copy_ids: HashSet::new(),
            hp_copies_legacy: 0,
            rr: 0,
        }
    }

    /// The active absolute duration threshold (for tests and tuning).
    pub fn dur_threshold(&self) -> SimTime {
        self.dur_threshold
    }

    /// High-priority blocking copies the PCIe gate currently counts.
    fn hp_copies(&self) -> usize {
        if self.cfg.inject_hp_copy_drift {
            self.hp_copies_legacy
        } else {
            self.hp_copy_ids.len()
        }
    }

    fn hp_active(&self) -> bool {
        !self.hp_outstanding.is_empty()
    }

    /// The profile of the high-priority kernel currently *executing*.
    ///
    /// The high-priority stream executes in order and Orion submits HP ops
    /// with client run-ahead, so the oldest outstanding kernel is the one on
    /// the device (`op_hp` in Listing 1's `schedule_be` — the kernel the
    /// best-effort candidate would actually overlap).
    fn current_hp_profile(&self) -> ResourceProfile {
        self.hp_outstanding
            .first()
            .map_or(ResourceProfile::Unknown, |(_, p)| *p)
    }

    /// Listing 1 `have_different_profiles`: opposite compute/memory classes;
    /// unknown-profile kernels are optimistically allowed (§5.2).
    fn different_profiles(hp: ResourceProfile, be: ResourceProfile) -> bool {
        be == ResourceProfile::Unknown
            || hp == ResourceProfile::Unknown
            || hp.is_opposite(be)
    }

    /// Listing 1 `schedule_be`, plus the optional BE-vs-BE extension gate
    /// and the conservative unprofiled-kernel gate (DESIGN.md §11).
    fn schedule_be(&self, be_profile: ResourceProfile, be_sm: u32, profiled: bool) -> bool {
        if !profiled {
            // The offline profile has no entry for this kernel, so its SM
            // demand and bottleneck are unknown (not merely "balanced").
            // Degrade conservatively: never co-schedule it with high-priority
            // work, run it only on an otherwise HP-idle device.
            return !self.hp_active();
        }
        if self.cfg.gate_be_vs_be
            && self
                .be_outstanding
                .values()
                .any(|&p| p != ResourceProfile::Unknown && p == be_profile)
        {
            // Another best-effort kernel with the same bottleneck is already
            // on the device; stacking them saturates that resource.
            return false;
        }
        if !self.hp_active() {
            return true;
        }
        let sm_ok = !self.cfg.use_sm_check || be_sm < self.sm_threshold;
        let profile_ok = !self.cfg.use_profile_check
            || Self::different_profiles(self.current_hp_profile(), be_profile);
        sm_ok && profile_ok
    }
}

impl Policy for Orion {
    fn name(&self) -> &'static str {
        "Orion"
    }

    fn setup(&mut self, ctx: &mut SchedCtx) {
        let hp_prio = if self.cfg.use_stream_priorities {
            StreamPriority::HIGH
        } else {
            StreamPriority::DEFAULT
        };
        self.be_streams = vec![None; ctx.clients.len()];
        for (i, c) in ctx.clients.iter().enumerate() {
            match c.priority() {
                ClientPriority::HighPriority => {
                    // All high-priority clients share one high-priority
                    // stream (the paper assumes a single HP client; with
                    // several, a per-client stream would let the *last*
                    // client's stream silently absorb everyone's ops).
                    let s = *self
                        .hp_stream
                        .get_or_insert_with(|| ctx.gpu.create_stream(hp_prio));
                    debug_assert_eq!(Some(s), self.hp_stream);
                    // DUR_THRESHOLD is a tunable percentage of the HP job's
                    // solo request latency (§5.1.1). With several HP clients
                    // the tightest (minimum) threshold governs, so the most
                    // latency-sensitive of them keeps its guarantee.
                    let threshold = match self.cfg.dur_threshold_frac {
                        Some(f) => c.profile.request_latency.mul_f64(f),
                        None => SimTime::MAX,
                    };
                    self.dur_thresholds.insert(i, threshold);
                    self.dur_threshold = self.dur_threshold.min(threshold);
                }
                ClientPriority::BestEffort => {
                    self.be_streams[i] = Some(ctx.gpu.create_stream(StreamPriority::DEFAULT));
                }
            }
        }
        self.sm_threshold = self
            .cfg
            .sm_threshold
            .unwrap_or(ctx.gpu.spec().num_sms);
    }

    fn schedule(&mut self, ctx: &mut SchedCtx) {
        let (hp_clients, be_clients) = ctx.split_clients();

        // High-priority ops are submitted immediately (Listing 1 line 7-8).
        if let Some(hp_stream) = self.hp_stream {
            for &hc in &hp_clients {
                while ctx.clients[hc].peek().is_some() {
                    let blocking_copy = ctx.clients[hc]
                        .peek()
                        .is_some_and(|o| o.is_blocking() && !o.is_kernel());
                    let Some(routed) = ctx.submit_head(hc, hp_stream) else {
                        return; // device faulted: head requeued, retry next round
                    };
                    if routed.is_kernel {
                        self.hp_outstanding.push((routed.op, routed.profile));
                    } else if blocking_copy {
                        self.hp_copy_ids.insert(routed.op);
                        self.hp_copies_legacy += 1;
                    }
                }
            }
        }

        // Best-effort clients, round-robin (§5.1.1).
        if be_clients.is_empty() {
            return;
        }
        let n = be_clients.len();
        let mut idle_rounds = 0;
        while idle_rounds < n {
            let bc = be_clients[self.rr % n];
            self.rr = (self.rr + 1) % n;
            let Some(stream) = self.be_streams[bc] else {
                idle_rounds += 1;
                continue;
            };
            let Some(head) = ctx.clients[bc].peek() else {
                idle_rounds += 1;
                continue;
            };

            if !head.is_kernel() {
                // Memory operations are submitted directly (§5.1.3), unless
                // the PCIe extension is on and HP copies are in flight.
                if self.cfg.pcie_aware_memcpy && self.hp_copies() > 0 {
                    idle_rounds += 1;
                    continue;
                }
                ctx.submit_head(bc, stream);
                idle_rounds = 0;
                continue;
            }

            // Outstanding-duration throttle (Listing 1 lines 12-16).
            if self.be_duration > self.dur_threshold {
                if self.be_outstanding.is_empty() {
                    self.be_duration = SimTime::ZERO;
                } else {
                    // All best-effort clients wait for the GPU to drain.
                    break;
                }
            }

            let ok = self.schedule_be(head.profile, head.sm_needed, head.profiled);
            if !ok {
                idle_rounds += 1;
                continue;
            }
            let Some(routed) = ctx.submit_head(bc, stream) else {
                return; // device faulted: head requeued, retry next round
            };
            self.be_outstanding.insert(routed.op, routed.profile);
            self.be_duration += routed.expected_dur;
            idle_rounds = 0;
        }
    }

    fn on_solo_latency_estimate(&mut self, client: usize, latency: SimTime) {
        // Only meaningful when the throttle is on and the client is one the
        // setup pass registered as high priority.
        let Some(f) = self.cfg.dur_threshold_frac else {
            return;
        };
        if !self.dur_thresholds.contains_key(&client) {
            return;
        }
        self.dur_thresholds.insert(client, latency.mul_f64(f));
        // The tightest client still governs; recompute the min from scratch
        // (replacement can *raise* a client's entry, e.g. recovering from the
        // zero a cold start seeds, so an incremental min is wrong).
        self.dur_threshold = self
            .dur_thresholds
            .values()
            .copied()
            .min()
            .unwrap_or(SimTime::MAX);
    }

    fn on_completions(&mut self, completions: &[RoutedCompletion], ctx: &mut SchedCtx) {
        for c in completions {
            self.be_outstanding.remove(&c.op);
            self.hp_copy_ids.remove(&c.op);
            if let Some(pos) = self.hp_outstanding.iter().position(|(op, _)| *op == c.op) {
                self.hp_outstanding.remove(pos);
            } else if !c.is_kernel
                && ctx.clients[c.client].priority() == ClientPriority::HighPriority
                && self.hp_copies_legacy > 0
            {
                // The historical asymmetry: *any* HP non-kernel completion
                // (async copies included) decremented the gate counter, even
                // though only blocking copies incremented it. Maintained for
                // the oracle's drift-injection fixture.
                self.hp_copies_legacy -= 1;
            }
        }
    }

    fn debug_state(&self) -> PolicyDebugState {
        PolicyDebugState {
            hp_stream: self.hp_stream,
            be_kernels: Some(self.be_outstanding.keys().copied().collect()),
            hp_kernels: Some(self.hp_outstanding.iter().map(|(op, _)| *op).collect()),
            be_duration: Some(self.be_duration),
            dur_threshold: Some(self.dur_threshold),
            hp_copies: Some(self.hp_copies()),
            ..PolicyDebugState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::engine::{Completion, GpuEngine};
    use orion_gpu::kernel::KernelBuilder;
    use orion_gpu::spec::GpuSpec;
    use orion_profiler::profile_workload;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::model::{ModelKind, Phase, Workload, WorkloadKind};
    use orion_workloads::ops::OpSpec;
    use orion_workloads::registry::inference_workload;

    use crate::client::{ClientSpec, ClientState};
    use crate::policy::Routed;

    fn state(spec: ClientSpec, gpu: &GpuSpec) -> ClientState {
        let profile = profile_workload(&spec.workload, gpu).unwrap().table();
        ClientState::new(spec, profile)
    }

    /// Starts a request and pushes ops until the cursor blocks or the
    /// request's trace is exhausted.
    fn stage(client: &mut ClientState) {
        client.on_arrival(SimTime::ZERO);
        client.try_start_request();
        while client.push_next().is_some() {}
    }

    fn route(comps: &[Completion], submissions: &[Routed]) -> Vec<RoutedCompletion> {
        comps
            .iter()
            .map(|c| {
                let r = submissions
                    .iter()
                    .find(|r| r.op == c.op)
                    .expect("completion for a submitted op");
                RoutedCompletion {
                    op: c.op,
                    client: r.client,
                    at: c.at,
                    is_kernel: r.is_kernel,
                    last_of_request: r.last_of_request,
                    request_id: r.request_id,
                }
            })
            .collect()
    }

    fn tiny_kernel(id: u32) -> OpSpec {
        OpSpec::Kernel(
            KernelBuilder::new(id, "k")
                .solo_duration(SimTime::from_micros(50))
                .utilization(0.5, 0.2)
                .build(),
        )
    }

    /// HP inference-style trace: one large blocking input copy, one kernel.
    fn hp_copy_workload() -> Workload {
        Workload {
            model: ModelKind::ResNet50,
            kind: WorkloadKind::Inference { batch: 1 },
            ops: vec![
                (
                    Phase::Forward,
                    OpSpec::H2D {
                        bytes: 64 << 20,
                        blocking: true,
                    },
                ),
                (Phase::Forward, tiny_kernel(0)),
            ],
            memory_footprint: 1 << 20,
        }
    }

    /// HP trace mixing copy semantics: an async prefetch *then* a blocking
    /// copy (the §5.1.3 ordering that exposed the historical gate drift).
    fn hp_mixed_copy_workload() -> Workload {
        Workload {
            model: ModelKind::ResNet50,
            kind: WorkloadKind::Inference { batch: 1 },
            ops: vec![
                (
                    Phase::Forward,
                    OpSpec::H2D {
                        bytes: 1 << 20,
                        blocking: false,
                    },
                ),
                (
                    Phase::Forward,
                    OpSpec::H2D {
                        bytes: 64 << 20,
                        blocking: true,
                    },
                ),
                (Phase::Forward, tiny_kernel(0)),
            ],
            memory_footprint: 1 << 20,
        }
    }

    /// BE trace whose head is an async memcpy (the op the PCIe gate stalls).
    fn be_copy_workload() -> Workload {
        Workload {
            model: ModelKind::MobileNetV2,
            kind: WorkloadKind::Training { batch: 1 },
            ops: vec![
                (
                    Phase::Forward,
                    OpSpec::H2D {
                        bytes: 1 << 20,
                        blocking: false,
                    },
                ),
                (Phase::Forward, tiny_kernel(10)),
            ],
            memory_footprint: 1 << 20,
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let c = OrionConfig::default();
        assert!(c.use_stream_priorities && c.use_profile_check && c.use_sm_check);
        assert_eq!(c.dur_threshold_frac, Some(0.025));
        assert_eq!(c.sm_threshold, None);
    }

    #[test]
    fn profile_gate_logic() {
        use ResourceProfile::*;
        assert!(Orion::different_profiles(ComputeBound, MemoryBound));
        assert!(Orion::different_profiles(MemoryBound, ComputeBound));
        assert!(Orion::different_profiles(ComputeBound, Unknown));
        assert!(Orion::different_profiles(Unknown, MemoryBound));
        assert!(!Orion::different_profiles(ComputeBound, ComputeBound));
        assert!(!Orion::different_profiles(MemoryBound, MemoryBound));
    }

    #[test]
    fn schedule_be_gates() {
        let mut o = Orion::new(OrionConfig::default());
        o.sm_threshold = 80;
        // No HP running: everything goes.
        assert!(o.schedule_be(ResourceProfile::ComputeBound, 100, true));
        // HP compute kernel running: only small, memory/unknown kernels.
        o.hp_outstanding.push((OpId(1), ResourceProfile::ComputeBound));
        assert!(o.schedule_be(ResourceProfile::MemoryBound, 40, true));
        assert!(!o.schedule_be(ResourceProfile::MemoryBound, 80, true), "sm gate");
        assert!(
            !o.schedule_be(ResourceProfile::ComputeBound, 40, true),
            "profile gate"
        );
        assert!(o.schedule_be(ResourceProfile::Unknown, 40, true));
    }

    #[test]
    fn unprofiled_kernels_never_coscheduled_with_hp() {
        let mut o = Orion::new(OrionConfig::default());
        o.sm_threshold = 80;
        // HP idle: unprofiled best-effort kernels may run solo.
        assert!(o.schedule_be(ResourceProfile::Unknown, 0, false));
        // HP active: a *profiled* Unknown-profile kernel is optimistically
        // allowed (§5.2), but an unprofiled one is conservatively blocked
        // even though it would pass every individual gate.
        o.hp_outstanding.push((OpId(1), ResourceProfile::ComputeBound));
        assert!(o.schedule_be(ResourceProfile::Unknown, 0, true));
        assert!(!o.schedule_be(ResourceProfile::Unknown, 0, false));
        // Conservatism is unconditional: disabling both gates changes nothing.
        let mut o = Orion::new(OrionConfig {
            use_profile_check: false,
            use_sm_check: false,
            ..OrionConfig::default()
        });
        o.hp_outstanding.push((OpId(1), ResourceProfile::ComputeBound));
        assert!(!o.schedule_be(ResourceProfile::Unknown, 0, false));
    }

    #[test]
    fn be_vs_be_gate_blocks_same_profile_stacking() {
        let mut o = Orion::new(OrionConfig {
            gate_be_vs_be: true,
            ..OrionConfig::default()
        });
        o.sm_threshold = 80;
        // A memory-bound BE kernel is outstanding; another memory-bound BE
        // kernel is blocked even with no HP activity.
        o.be_outstanding.insert(OpId(7), ResourceProfile::MemoryBound);
        assert!(!o.schedule_be(ResourceProfile::MemoryBound, 20, true));
        assert!(o.schedule_be(ResourceProfile::ComputeBound, 20, true));
        assert!(o.schedule_be(ResourceProfile::Unknown, 20, true));
        // Without the extension the stacking is allowed (paper-faithful).
        let mut o = Orion::new(OrionConfig::default());
        o.sm_threshold = 80;
        o.be_outstanding.insert(OpId(7), ResourceProfile::MemoryBound);
        assert!(o.schedule_be(ResourceProfile::MemoryBound, 20, true));
    }

    #[test]
    fn ablation_configs_toggle_gates() {
        let mut o = Orion::new(OrionConfig::profiles_only());
        o.sm_threshold = 10;
        o.hp_outstanding.push((OpId(1), ResourceProfile::ComputeBound));
        // SM check disabled: large opposite-profile kernels pass.
        assert!(o.schedule_be(ResourceProfile::MemoryBound, 80, true));

        let mut o = Orion::new(OrionConfig {
            use_profile_check: false,
            ..OrionConfig::default()
        });
        o.sm_threshold = 80;
        o.hp_outstanding.push((OpId(1), ResourceProfile::ComputeBound));
        // Profile check disabled: same-profile kernels pass if small.
        assert!(o.schedule_be(ResourceProfile::ComputeBound, 40, true));
    }

    #[test]
    fn multi_hp_clients_share_one_stream_and_min_threshold() {
        let spec = GpuSpec::v100_16gb();
        let mut gpu = GpuEngine::new(spec.clone(), false);
        // Two HP clients with different solo latencies (MobileNetV2 is the
        // faster, latency-tighter one).
        let mut clients = vec![
            state(
                ClientSpec::high_priority(
                    inference_workload(ModelKind::ResNet50),
                    ArrivalProcess::ClosedLoop,
                ),
                &spec,
            ),
            state(
                ClientSpec::high_priority(
                    inference_workload(ModelKind::MobileNetV2),
                    ArrivalProcess::ClosedLoop,
                ),
                &spec,
            ),
        ];
        let expected = clients
            .iter()
            .map(|c| c.profile.request_latency.mul_f64(0.025))
            .min()
            .unwrap();

        let mut o = Orion::new(OrionConfig::default());
        let mut submissions = Vec::new();
        let mut ctx = SchedCtx {
            now: SimTime::ZERO,
            gpu: &mut gpu,
            clients: &mut clients,
            submissions: &mut submissions,
        };
        o.setup(&mut ctx);

        // One shared HP stream: the next stream created gets id 1, proving
        // setup made exactly one (the overwrite bug made one per HP client,
        // stranding the first client's ops on an orphaned stream).
        assert_eq!(o.debug_state().hp_stream, Some(StreamId(0)));
        assert_eq!(
            ctx.gpu.create_stream(StreamPriority::DEFAULT),
            StreamId(1),
            "setup must create exactly one stream for two HP clients"
        );
        // The tightest client's DUR_THRESHOLD governs (the overwrite bug
        // kept whichever client happened to be listed last).
        assert_eq!(o.dur_threshold(), expected);
        assert!(o.dur_threshold() < SimTime::MAX);
    }

    #[test]
    fn solo_latency_estimate_replaces_cold_start_threshold() {
        use orion_profiler::ProfileTable;
        let spec = GpuSpec::v100_16gb();
        let mut gpu = GpuEngine::new(spec.clone(), false);
        // Cold start: the HP client has an empty profile table, so setup
        // seeds a ZERO threshold (at most one BE kernel outstanding).
        let mut clients = vec![
            ClientState::new(
                ClientSpec::high_priority(
                    inference_workload(ModelKind::ResNet50),
                    ArrivalProcess::ClosedLoop,
                )
                .unprofiled(),
                ProfileTable::default(),
            ),
            state(
                ClientSpec::best_effort(be_copy_workload(), ArrivalProcess::ClosedLoop),
                &spec,
            ),
        ];
        let mut o = Orion::new(OrionConfig::default());
        let mut submissions = Vec::new();
        let mut ctx = SchedCtx {
            now: SimTime::ZERO,
            gpu: &mut gpu,
            clients: &mut clients,
            submissions: &mut submissions,
        };
        o.setup(&mut ctx);
        assert_eq!(o.dur_threshold(), SimTime::ZERO, "cold start throttles hard");

        // An online estimate replaces the zero — a min would keep it stuck.
        o.on_solo_latency_estimate(0, SimTime::from_millis(40));
        assert_eq!(o.dur_threshold(), SimTime::from_millis(1));
        // Estimates refine in both directions.
        o.on_solo_latency_estimate(0, SimTime::from_millis(80));
        assert_eq!(o.dur_threshold(), SimTime::from_millis(2));
        // Estimates for clients setup never registered as HP are ignored.
        o.on_solo_latency_estimate(1, SimTime::from_millis(4));
        assert_eq!(o.dur_threshold(), SimTime::from_millis(2));
        // With the throttle ablated, estimates change nothing.
        let mut o = Orion::new(OrionConfig {
            dur_threshold_frac: None,
            ..OrionConfig::default()
        });
        o.on_solo_latency_estimate(0, SimTime::from_millis(40));
        assert_eq!(o.dur_threshold(), SimTime::MAX);
    }

    #[test]
    fn pcie_gate_blocks_be_memcpy_while_hp_blocking_copy_in_flight() {
        let spec = GpuSpec::v100_16gb();
        let mut gpu = GpuEngine::new(spec.clone(), false);
        let mut clients = vec![
            state(
                ClientSpec::high_priority(hp_copy_workload(), ArrivalProcess::ClosedLoop),
                &spec,
            ),
            state(
                ClientSpec::best_effort(be_copy_workload(), ArrivalProcess::ClosedLoop),
                &spec,
            ),
        ];
        let mut o = Orion::new(OrionConfig {
            pcie_aware_memcpy: true,
            ..OrionConfig::default()
        });
        let mut submissions = Vec::new();
        {
            let mut ctx = SchedCtx {
                now: SimTime::ZERO,
                gpu: &mut gpu,
                clients: &mut clients,
                submissions: &mut submissions,
            };
            o.setup(&mut ctx);
        }
        stage(&mut clients[0]); // HP queues its blocking copy, then blocks.
        stage(&mut clients[1]); // BE queues its async copy + kernel.

        {
            let mut ctx = SchedCtx {
                now: SimTime::ZERO,
                gpu: &mut gpu,
                clients: &mut clients,
                submissions: &mut submissions,
            };
            o.schedule(&mut ctx);
        }
        // Only the HP blocking copy went to the device; the BE memcpy (and
        // the kernel queued behind it) are withheld by the PCIe gate.
        assert_eq!(submissions.len(), 1, "submissions: {submissions:?}");
        assert_eq!(submissions[0].client, 0);
        assert_eq!(o.debug_state().hp_copies, Some(1));
        assert_eq!(clients[1].queue_depth(), 2, "BE ops withheld");

        // The HP copy completes; the gate opens and the BE ops flow.
        gpu.advance_to(SimTime::from_secs(1));
        let comps = gpu.drain_completions();
        assert_eq!(comps.len(), 1);
        let routed = route(&comps, &submissions);
        {
            let mut ctx = SchedCtx {
                now: SimTime::from_secs(1),
                gpu: &mut gpu,
                clients: &mut clients,
                submissions: &mut submissions,
            };
            o.on_completions(&routed, &mut ctx);
            o.schedule(&mut ctx);
        }
        assert_eq!(o.debug_state().hp_copies, Some(0));
        assert!(
            submissions.iter().any(|r| r.client == 1 && !r.is_kernel),
            "BE memcpy submitted once the PCIe link is free: {submissions:?}"
        );
    }

    #[test]
    fn injected_counter_drift_collapses_the_pcie_gate() {
        // The historical bug: an async HP copy completing decremented the
        // gate counter even though only blocking copies incremented it, so
        // the gate read 0 while a blocking HP copy was still in flight. The
        // id-set fix keeps the gate up; the injection flag reproduces the
        // collapse for the oracle's stress harness.
        for (inject, expect_gate_open) in [(false, false), (true, true)] {
            let spec = GpuSpec::v100_16gb();
            let mut gpu = GpuEngine::new(spec.clone(), false);
            let mut clients = vec![
                state(
                    ClientSpec::high_priority(
                        hp_mixed_copy_workload(),
                        ArrivalProcess::ClosedLoop,
                    ),
                    &spec,
                ),
                state(
                    ClientSpec::best_effort(be_copy_workload(), ArrivalProcess::ClosedLoop),
                    &spec,
                ),
            ];
            let mut o = Orion::new(OrionConfig {
                pcie_aware_memcpy: true,
                inject_hp_copy_drift: inject,
                ..OrionConfig::default()
            });
            let mut submissions = Vec::new();
            {
                let mut ctx = SchedCtx {
                    now: SimTime::ZERO,
                    gpu: &mut gpu,
                    clients: &mut clients,
                    submissions: &mut submissions,
                };
                o.setup(&mut ctx);
            }
            // HP queues the async prefetch and the blocking copy behind it.
            stage(&mut clients[0]);
            {
                let mut ctx = SchedCtx {
                    now: SimTime::ZERO,
                    gpu: &mut gpu,
                    clients: &mut clients,
                    submissions: &mut submissions,
                };
                o.schedule(&mut ctx);
            }
            assert_eq!(submissions.len(), 2, "both HP copies submitted");
            assert_eq!(o.debug_state().hp_copies, Some(1));

            // Advance just far enough for the small async copy to finish;
            // the large blocking copy is still on the PCIe link.
            gpu.advance_to(SimTime::from_millis(1));
            let comps = gpu.drain_completions();
            assert_eq!(comps.len(), 1, "only the async copy finished");
            let routed = route(&comps, &submissions);
            assert!(!gpu.fully_idle(), "blocking copy still in flight");

            stage(&mut clients[1]); // BE wants to memcpy now.
            {
                let mut ctx = SchedCtx {
                    now: SimTime::from_millis(1),
                    gpu: &mut gpu,
                    clients: &mut clients,
                    submissions: &mut submissions,
                };
                o.on_completions(&routed, &mut ctx);
                o.schedule(&mut ctx);
            }
            let be_copy_submitted = submissions.iter().any(|r| r.client == 1 && !r.is_kernel);
            if expect_gate_open {
                // Drifted counter hit zero: the gate wrongly opens.
                assert_eq!(o.debug_state().hp_copies, Some(0));
                assert!(be_copy_submitted, "drift lets the BE memcpy through");
            } else {
                // Fixed bookkeeping: the blocking copy still holds the gate.
                assert_eq!(o.debug_state().hp_copies, Some(1));
                assert!(!be_copy_submitted, "gate held: {submissions:?}");
            }
        }
    }
}
