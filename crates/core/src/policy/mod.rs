//! GPU-sharing scheduling policies: Orion and every baseline of the paper.
//!
//! A [`Policy`] decides when operations move from per-client software queues
//! to GPU streams. The collocation world invokes [`Policy::schedule`] after
//! every state change (client pushed an op, GPU completed ops), which models
//! the paper's busy-polling scheduler thread without burning simulated time.

pub mod baselines;
pub mod orion;
pub mod reef;
pub mod ticktock;

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpId, OpKind};
use orion_gpu::error::GpuError;
use orion_gpu::kernel::ResourceProfile;
use orion_gpu::stream::StreamId;
use orion_workloads::model::Phase;
use orion_workloads::ops::OpSpec;

use crate::client::ClientState;

pub use orion::{Orion, OrionConfig};

/// An operation submitted to the GPU, with the routing metadata the world
/// needs to attribute its completion.
#[derive(Debug, Clone)]
pub struct Routed {
    /// GPU operation id.
    pub op: OpId,
    /// Index of the owning client.
    pub client: usize,
    /// Request the op belongs to.
    pub request_id: u64,
    /// Op index within the request.
    pub op_seq: u32,
    /// True for the request's final op.
    pub last_of_request: bool,
    /// True for kernels.
    pub is_kernel: bool,
    /// Profiled duration (kernels).
    pub expected_dur: SimTime,
    /// Profiled resource class.
    pub profile: ResourceProfile,
    /// Profiled SM demand (kernels).
    pub sm_needed: u32,
    /// Training phase.
    pub phase: Phase,
    /// False for kernels missing from the offline profile (scheduled
    /// conservatively, see DESIGN.md §11).
    pub profiled: bool,
}

/// A completion routed back to its client, passed to
/// [`Policy::on_completions`].
#[derive(Debug, Clone)]
pub struct RoutedCompletion {
    /// GPU operation id.
    pub op: OpId,
    /// Index of the owning client.
    pub client: usize,
    /// Completion time.
    pub at: SimTime,
    /// True for kernels.
    pub is_kernel: bool,
    /// True for the request's final op.
    pub last_of_request: bool,
    /// Request id.
    pub request_id: u64,
}

/// Structured snapshot of a policy's internal bookkeeping, consumed by the
/// validation oracle ([`crate::validate`]).
///
/// Every field is optional: `None` means "this policy does not track that
/// quantity" and the oracle skips the corresponding invariant. A `Some`
/// value is a *claim* that the oracle cross-checks against the engine's
/// ground-truth event log after every scheduling round — set a field only if
/// the policy really maintains it.
#[derive(Debug, Clone, Default)]
pub struct PolicyDebugState {
    /// The dedicated high-priority stream, when the policy routes by class.
    /// Claiming it arms the BE-never-on-HP-stream invariant.
    pub hp_stream: Option<StreamId>,
    /// Op ids believed to be outstanding best-effort kernels.
    pub be_kernels: Option<Vec<OpId>>,
    /// Op ids believed to be outstanding high-priority kernels.
    pub hp_kernels: Option<Vec<OpId>>,
    /// Cumulative expected-duration counter (Listing 1's `be_duration`).
    pub be_duration: Option<SimTime>,
    /// Absolute `DUR_THRESHOLD` in force (`SimTime::MAX` = throttle off).
    pub dur_threshold: Option<SimTime>,
    /// High-priority blocking copies believed in flight (§5.1.3 PCIe gate).
    pub hp_copies: Option<usize>,
    /// Count of outstanding best-effort ops of any kind (REEF's queue bound).
    pub be_inflight: Option<usize>,
    /// Per-client outstanding op ids (Tick-Tock's barrier bookkeeping).
    pub per_client: Option<Vec<Vec<OpId>>>,
    /// Temporal sharing: the `(client, request)` that owns the device. The
    /// outer `Some` claims exclusive-ownership tracking; the inner `Option`
    /// is the owner itself (`None` = device believed idle).
    pub exclusive_owner: Option<Option<(usize, u64)>>,
}

/// Mutable view handed to policies: the device, the client queues, and the
/// submission log the world uses for completion routing.
pub struct SchedCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The shared GPU device.
    pub gpu: &'a mut GpuEngine,
    /// All clients (index-stable across the run).
    pub clients: &'a mut [ClientState],
    /// Submission log (appended by [`SchedCtx::submit_head`]).
    pub submissions: &'a mut Vec<Routed>,
}

impl SchedCtx<'_> {
    /// Pops the head op of `client`'s software queue and submits it on
    /// `stream`. Returns the routing record, or `None` when the queue is
    /// empty — or when the device is sticky-faulted, in which case the op is
    /// put back at the queue head for resubmission after recovery.
    ///
    /// # Panics
    ///
    /// Panics if the GPU rejects the submission for any non-fault reason
    /// (unknown stream / invalid kernel), which indicates a policy bug
    /// rather than a runtime condition.
    pub fn submit_head(&mut self, client: usize, stream: StreamId) -> Option<Routed> {
        let op = self.clients[client].pop()?;
        // Workload drift: from the drift instant on, the client's kernels
        // take `factor ×` their nominal solo time. Applied here, at routing
        // time, so kernels already on the device keep their old duration and
        // the shift is sharp at the configured sim time.
        let drift_scale = self.clients[client]
            .spec
            .drift
            .map_or(1.0, |d| d.scale_at(self.now));
        let kind = match &op.spec {
            OpSpec::Kernel(k) if drift_scale != 1.0 => {
                // Drifted kernels get a private, rescaled description.
                let mut k = (**k).clone();
                k.solo_duration = k.solo_duration.mul_f64(drift_scale);
                OpKind::Kernel(std::sync::Arc::new(k))
            }
            OpSpec::Kernel(k) => OpKind::Kernel(k.clone()),
            OpSpec::H2D { bytes, blocking } => OpKind::MemcpyH2D {
                bytes: *bytes,
                blocking: *blocking,
            },
            OpSpec::D2H { bytes, blocking } => OpKind::MemcpyD2H {
                bytes: *bytes,
                blocking: *blocking,
            },
        };
        let op_id = match self.gpu.submit(stream, kind) {
            Ok(id) => id,
            Err(GpuError::DeviceFault) => {
                // Sticky device fault raced the scheduling round: keep the
                // op queued so the recovery supervisor resubmits it in
                // order after the reset.
                self.clients[client].requeue_front(op);
                return None;
            }
            Err(e) => panic!("policy submitted an invalid op: {e}"),
        };
        let routed = Routed {
            op: op_id,
            client,
            request_id: op.request_id,
            op_seq: op.op_seq,
            last_of_request: op.last_of_request,
            is_kernel: op.is_kernel(),
            expected_dur: op.expected_dur,
            profile: op.profile,
            sm_needed: op.sm_needed,
            phase: op.phase,
            profiled: op.profiled,
        };
        self.submissions.push(routed.clone());
        Some(routed)
    }

    /// Indices of clients by priority class.
    pub fn split_clients(&self) -> (Vec<usize>, Vec<usize>) {
        let mut hp = Vec::new();
        let mut be = Vec::new();
        for (i, c) in self.clients.iter().enumerate() {
            match c.priority() {
                crate::client::ClientPriority::HighPriority => hp.push(i),
                crate::client::ClientPriority::BestEffort => be.push(i),
            }
        }
        (hp, be)
    }
}

/// A GPU-sharing scheduling policy.
pub trait Policy: Send {
    /// Short name for tables and logs.
    fn name(&self) -> &'static str;

    /// One-time setup: create streams, read profiles.
    fn setup(&mut self, ctx: &mut SchedCtx);

    /// Drains client queues according to the policy. Called after every
    /// state change; must be idempotent when nothing can be scheduled.
    fn schedule(&mut self, ctx: &mut SchedCtx);

    /// Observes completions (before the follow-up [`Policy::schedule`]).
    fn on_completions(&mut self, completions: &[RoutedCompletion], ctx: &mut SchedCtx) {
        let _ = (completions, ctx);
    }

    /// Delivers an online estimate of a high-priority client's *solo*
    /// request latency (measured over windows with no best-effort work in
    /// flight). Policies that derive thresholds from offline solo latency
    /// (Orion's `DUR_THRESHOLD`, §5.1) should re-derive them from this
    /// estimate so cold-start runs — where the offline latency is zero —
    /// converge to the offline-quality threshold. Default: ignored.
    fn on_solo_latency_estimate(&mut self, client: usize, latency: SimTime) {
        let _ = (client, latency);
    }

    /// Notifies the policy that the recovery supervisor shed a request
    /// (quarantine, retry budget exhausted, or dead client). Policies that
    /// track per-request ownership (e.g. temporal sharing's exclusive owner)
    /// must release it here or they deadlock on a request that will never
    /// finish.
    fn on_request_shed(&mut self, client: usize, request_id: u64) {
        let _ = (client, request_id);
    }

    /// Snapshot of internal bookkeeping for the validation oracle.
    ///
    /// The default claims nothing (all fields `None`); the oracle then only
    /// applies policy-independent checks to the run. Policies that mirror
    /// device state (outstanding sets, duration counters, copy gates) should
    /// override this and expose those mirrors so drift is caught.
    fn debug_state(&self) -> PolicyDebugState {
        PolicyDebugState::default()
    }
}

/// Constructible policy selector (the paper's baselines + Orion).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Temporal sharing: one request/iteration on the GPU at a time,
    /// high-priority first (§4 "Temporal sharing").
    Temporal,
    /// CUDA streams, same process, default priorities (§6.1 "GPU Streams").
    Streams,
    /// CUDA streams with a high-priority stream for the HP client
    /// (Figure 14's "Stream Priorities" step).
    StreamPriority,
    /// NVIDIA MPS-style process-parallel sharing (no GIL contention).
    Mps,
    /// REEF-N re-implementation (§6.1): HP bypass + size/latency-based
    /// best-effort selection, software queue depth 12.
    ReefN {
        /// Maximum outstanding best-effort ops on the device.
        queue_depth: usize,
    },
    /// Tick-Tock training collocation (offset fwd/bwd with barriers).
    TickTock,
    /// Orion (Listing 1), with ablation switches.
    Orion(OrionConfig),
}

impl PolicyKind {
    /// Orion with the paper's default configuration.
    pub fn orion_default() -> PolicyKind {
        PolicyKind::Orion(OrionConfig::default())
    }

    /// REEF-N with the paper's queue depth of 12.
    pub fn reef_default() -> PolicyKind {
        PolicyKind::ReefN { queue_depth: 12 }
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Temporal => Box::new(baselines::Temporal::new()),
            PolicyKind::Streams => Box::new(baselines::PassThrough::streams()),
            PolicyKind::StreamPriority => Box::new(baselines::PassThrough::stream_priority()),
            PolicyKind::Mps => Box::new(baselines::PassThrough::mps()),
            PolicyKind::ReefN { queue_depth } => Box::new(reef::ReefN::new(*queue_depth)),
            PolicyKind::TickTock => Box::new(ticktock::TickTock::new()),
            PolicyKind::Orion(cfg) => Box::new(Orion::new(cfg.clone())),
        }
    }

    /// Whether client launch threads contend on a Python-GIL-style lock
    /// (multi-threaded single-process baselines, §6.2.1).
    pub fn gil_contention(&self) -> bool {
        matches!(self, PolicyKind::Streams | PolicyKind::StreamPriority)
    }

    /// Extra per-op interception overhead this policy adds on the client
    /// launch path (§6.5: Orion's wrappers cost < 1%).
    pub fn intercept_overhead(&self) -> SimTime {
        match self {
            PolicyKind::Orion(_) => SimTime::from_nanos(40),
            PolicyKind::ReefN { .. } => SimTime::from_nanos(40),
            _ => SimTime::ZERO,
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Temporal => "Temporal",
            PolicyKind::Streams => "Streams",
            PolicyKind::StreamPriority => "Stream-Priority",
            PolicyKind::Mps => "MPS",
            PolicyKind::ReefN { .. } => "REEF",
            PolicyKind::TickTock => "Tick-Tock",
            PolicyKind::Orion(_) => "Orion",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_and_label() {
        let kinds = [
            PolicyKind::Temporal,
            PolicyKind::Streams,
            PolicyKind::StreamPriority,
            PolicyKind::Mps,
            PolicyKind::reef_default(),
            PolicyKind::TickTock,
            PolicyKind::orion_default(),
        ];
        for k in kinds {
            let p = k.build();
            assert_eq!(p.name(), k.label());
        }
    }

    #[test]
    fn gil_only_for_threaded_baselines() {
        assert!(PolicyKind::Streams.gil_contention());
        assert!(PolicyKind::StreamPriority.gil_contention());
        assert!(!PolicyKind::Mps.gil_contention());
        assert!(!PolicyKind::orion_default().gil_contention());
    }

    #[test]
    fn orion_has_small_intercept_overhead() {
        let o = PolicyKind::orion_default().intercept_overhead();
        assert!(o > SimTime::ZERO);
        assert!(o < SimTime::from_micros(1));
        assert_eq!(PolicyKind::Mps.intercept_overhead(), SimTime::ZERO);
    }
}
