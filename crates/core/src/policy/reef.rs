//! REEF-N: the paper's re-implementation of REEF's scheduling policy for
//! NVIDIA GPUs (§6.1).
//!
//! REEF (OSDI '22) preempts best-effort kernels on AMD GPUs; on NVIDIA
//! hardware the authors proposed REEF-N, where high-priority kernels bypass
//! queued best-effort kernels *before* device submission, and best-effort
//! kernels are selected by size and expected latency ("dynamic kernel
//! padding"): a best-effort kernel may launch while a high-priority kernel
//! runs only if it is expected to finish within the high-priority kernel's
//! remaining time and fits in the SMs the high-priority kernel leaves free.
//! The software queue bounds outstanding best-effort work at 12 kernels
//! (per discussion with the REEF authors). Crucially, REEF-N has **no
//! compute-vs-memory interference awareness and no cumulative-duration
//! throttle** — the two gaps Orion's evaluation exposes.

use std::collections::HashMap;

use orion_desim::time::SimTime;
use orion_gpu::engine::OpId;
use orion_gpu::stream::{StreamId, StreamPriority};

use super::{Policy, PolicyDebugState, RoutedCompletion, SchedCtx};
use crate::client::ClientPriority;

/// The REEF-N policy.
#[derive(Debug)]
pub struct ReefN {
    queue_depth: usize,
    hp_stream: Option<StreamId>,
    be_streams: Vec<Option<StreamId>>,
    /// Outstanding high-priority kernels: op -> (expected end, sm_needed).
    hp_outstanding: HashMap<OpId, (SimTime, u32)>,
    /// Outstanding best-effort ops on the device.
    be_outstanding: usize,
    rr: usize,
}

impl ReefN {
    /// Creates REEF-N with the given software queue depth.
    pub fn new(queue_depth: usize) -> Self {
        ReefN {
            queue_depth,
            hp_stream: None,
            be_streams: Vec::new(),
            hp_outstanding: HashMap::new(),
            be_outstanding: 0,
            rr: 0,
        }
    }

    /// Remaining expected time of the longest outstanding HP kernel and the
    /// SMs left free by all outstanding HP kernels.
    fn hp_gap(&self, now: SimTime, num_sms: u32) -> Option<(SimTime, u32)> {
        if self.hp_outstanding.is_empty() {
            return None;
        }
        let remaining = self
            .hp_outstanding
            .values()
            .map(|(end, _)| end.saturating_sub(now))
            .max()
            .unwrap_or(SimTime::ZERO);
        let used: u32 = self.hp_outstanding.values().map(|(_, sm)| *sm).sum();
        Some((remaining, num_sms.saturating_sub(used)))
    }
}

impl Policy for ReefN {
    fn name(&self) -> &'static str {
        "REEF"
    }

    fn setup(&mut self, ctx: &mut SchedCtx) {
        self.be_streams = vec![None; ctx.clients.len()];
        for (i, c) in ctx.clients.iter().enumerate() {
            match c.priority() {
                ClientPriority::HighPriority => {
                    self.hp_stream = Some(ctx.gpu.create_stream(StreamPriority::HIGH));
                }
                ClientPriority::BestEffort => {
                    self.be_streams[i] = Some(ctx.gpu.create_stream(StreamPriority::DEFAULT));
                }
            }
        }
    }

    fn schedule(&mut self, ctx: &mut SchedCtx) {
        let (hp_clients, be_clients) = ctx.split_clients();

        // High-priority bypass: HP ops go straight to the device.
        if let Some(hp_stream) = self.hp_stream {
            for &hc in &hp_clients {
                while ctx.clients[hc].peek().is_some() {
                    let Some(routed) = ctx.submit_head(hc, hp_stream) else {
                        return; // device faulted: head requeued, retry next round
                    };
                    if routed.is_kernel {
                        self.hp_outstanding.insert(
                            routed.op,
                            (ctx.now + routed.expected_dur, routed.sm_needed),
                        );
                    }
                }
            }
        }

        if be_clients.is_empty() {
            return;
        }
        let num_sms = ctx.gpu.spec().num_sms;
        let n = be_clients.len();
        let mut idle = 0;
        while idle < n {
            if self.be_outstanding >= self.queue_depth {
                break;
            }
            let bc = be_clients[self.rr % n];
            self.rr = (self.rr + 1) % n;
            let Some(stream) = self.be_streams[bc] else {
                idle += 1;
                continue;
            };
            let Some(head) = ctx.clients[bc].peek() else {
                idle += 1;
                continue;
            };
            if head.is_kernel() {
                // Kernel selection rule: fill only gaps the HP job leaves.
                let ok = match self.hp_gap(ctx.now, num_sms) {
                    None => true,
                    Some((remaining, free_sms)) => {
                        head.expected_dur <= remaining && head.sm_needed <= free_sms
                    }
                };
                if !ok {
                    idle += 1;
                    continue;
                }
            }
            if ctx.submit_head(bc, stream).is_none() {
                return; // device faulted: head requeued, retry next round
            }
            self.be_outstanding += 1;
            idle = 0;
        }
    }

    fn on_completions(&mut self, completions: &[RoutedCompletion], ctx: &mut SchedCtx) {
        for c in completions {
            if self.hp_outstanding.remove(&c.op).is_none()
                && ctx.clients[c.client].priority() == ClientPriority::BestEffort
                && self.be_outstanding > 0
            {
                self.be_outstanding -= 1;
            }
        }
    }

    fn debug_state(&self) -> PolicyDebugState {
        PolicyDebugState {
            hp_stream: self.hp_stream,
            hp_kernels: Some(self.hp_outstanding.keys().copied().collect()),
            be_inflight: Some(self.be_outstanding),
            ..PolicyDebugState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hp_gap_accounting() {
        let mut r = ReefN::new(12);
        assert!(r.hp_gap(SimTime::ZERO, 80).is_none());
        r.hp_outstanding
            .insert(OpId(1), (SimTime::from_micros(100), 30));
        r.hp_outstanding
            .insert(OpId(2), (SimTime::from_micros(50), 20));
        let (remaining, free) = r.hp_gap(SimTime::from_micros(20), 80).unwrap();
        assert_eq!(remaining, SimTime::from_micros(80));
        assert_eq!(free, 30);
        // Past the expected end, remaining clamps to zero.
        let (remaining, _) = r.hp_gap(SimTime::from_micros(500), 80).unwrap();
        assert_eq!(remaining, SimTime::ZERO);
    }
}
