//! Multi-threaded interception front-end (paper §5.3, §6.5).
//!
//! In the paper's prototype, client applications and the Orion scheduler run
//! as threads of one process: clients call CUDA-wrapper functions that push
//! (kernel id, arguments) records onto per-client software queues, and the
//! scheduler thread polls the queues. This module reproduces that front-end
//! with real OS threads and lock-free queues so the interception overhead of
//! §6.5 ("less than 1%") can be *measured*, not simulated. The GPU behind it
//! is a sink — only the client-visible launch path is under test.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

/// Outcome of a bounded-queue launch interception
/// ([`InterceptRuntime::try_intercept`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPushOutcome {
    /// The launch record was enqueued.
    Queued,
    /// The queue is at capacity; the caller should back off and retry (the
    /// record was *not* enqueued).
    Backpressure,
}

/// An MPMC queue of launch records, optionally bounded.
///
/// A mutex-guarded ring buffer: pushes are a lock + `VecDeque::push_back`,
/// which stays well under the §6.5 sub-microsecond budget on an uncontended
/// per-client queue (each client owns its queue; only the scheduler thread
/// competes for the lock).
///
/// Lock poisoning is *recovered*, not propagated: a client thread that
/// panics while holding the lock leaves a structurally intact `VecDeque`
/// (push_back/pop_front never leave it half-mutated), so the scheduler
/// thread keeps draining instead of cascading the panic through every
/// client of the process.
#[derive(Debug, Default)]
struct LaunchQueue {
    inner: Mutex<VecDeque<LaunchRecord>>,
    /// Maximum queued records; `None` = unbounded (the §6.5 default, so the
    /// overhead measurements keep their no-backpressure semantics).
    capacity: Option<usize>,
}

impl LaunchQueue {
    fn push(&self, record: LaunchRecord) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(record);
    }

    fn try_push(&self, record: LaunchRecord) -> TryPushOutcome {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if self.capacity.is_some_and(|cap| q.len() >= cap) {
            return TryPushOutcome::Backpressure;
        }
        q.push_back(record);
        TryPushOutcome::Queued
    }

    fn pop(&self) -> Option<LaunchRecord> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// Test hook: poisons the queue lock the way a client thread panicking
    /// mid-push would.
    #[cfg(test)]
    fn poison(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("client thread dies while holding the queue lock");
        }));
    }
}

/// A launch record as the wrappers capture it: kernel id + opaque args.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Kernel identifier (profile-table key).
    pub kernel_id: u32,
    /// Client that issued the launch.
    pub client: u32,
    /// Monotonic sequence number within the client.
    pub seq: u64,
}

/// The shared state between client threads and the scheduler thread.
#[derive(Debug)]
pub struct InterceptRuntime {
    queues: Vec<Arc<LaunchQueue>>,
    dispatched: Arc<AtomicU64>,
    idle_parks: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl InterceptRuntime {
    /// Creates a runtime with one software queue per client.
    pub fn new(clients: usize) -> Self {
        InterceptRuntime {
            queues: (0..clients).map(|_| Arc::new(LaunchQueue::default())).collect(),
            dispatched: Arc::new(AtomicU64::new(0)),
            idle_parks: Arc::new(AtomicU64::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Creates a runtime whose per-client queues are bounded to `capacity`
    /// records. Only [`InterceptRuntime::try_intercept`] observes the bound;
    /// [`InterceptRuntime::intercept`] stays unbounded so the §6.5 overhead
    /// measurements are unaffected by the mode.
    pub fn with_capacity(clients: usize, capacity: usize) -> Self {
        InterceptRuntime {
            queues: (0..clients)
                .map(|_| {
                    Arc::new(LaunchQueue {
                        inner: Mutex::new(VecDeque::with_capacity(capacity)),
                        capacity: Some(capacity),
                    })
                })
                .collect(),
            dispatched: Arc::new(AtomicU64::new(0)),
            idle_parks: Arc::new(AtomicU64::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The wrapper-side call: intercept one kernel launch.
    ///
    /// This is the §6.5 hot path — one queue push.
    pub fn intercept(&self, record: LaunchRecord) {
        self.queues[record.client as usize].push(record);
    }

    /// Bounded-mode interception: enqueues the launch unless the client's
    /// queue is at capacity, in which case [`TryPushOutcome::Backpressure`]
    /// tells the wrapper to stall the client (a run-ahead limit, REEF-style)
    /// instead of buffering unboundedly.
    pub fn try_intercept(&self, record: LaunchRecord) -> TryPushOutcome {
        self.queues[record.client as usize].try_push(record)
    }

    /// Number of launches the scheduler has drained.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Number of times the idle scheduler thread has parked (slept). A
    /// growing value with a constant [`InterceptRuntime::dispatched`] means
    /// the runtime is quiescent instead of burning a core.
    pub fn idle_parks(&self) -> u64 {
        self.idle_parks.load(Ordering::Relaxed)
    }

    /// Starts the scheduler thread: a round-robin poller draining all client
    /// queues (the `run_scheduler` loop of Listing 1, minus GPU submission).
    /// Returns a guard that stops the thread on drop.
    ///
    /// An idle scheduler backs off in three stages instead of busy-waiting
    /// forever: a bounded spin (lowest wake-up latency while a launch is
    /// probably imminent), then cooperative `yield_now`, then short
    /// `park_timeout` naps. The 50 us nap bounds the added dispatch latency
    /// for a launch arriving while the scheduler sleeps, and keeps an idle
    /// runtime at ~0% CPU without any wake-up signalling on the §6.5
    /// interception hot path.
    pub fn start_scheduler(&self) -> SchedulerGuard {
        const SPIN_POLLS: u32 = 64;
        const YIELD_POLLS: u32 = 192;
        const PARK_NAP: std::time::Duration = std::time::Duration::from_micros(50);

        let queues: Vec<Arc<LaunchQueue>> = self.queues.clone();
        let dispatched = Arc::clone(&self.dispatched);
        let idle_parks = Arc::clone(&self.idle_parks);
        let stop = Arc::clone(&self.stop);
        let handle = thread::spawn(move || {
            let mut empty_polls: u32 = 0;
            while !stop.load(Ordering::Relaxed) {
                let mut drained = false;
                for q in &queues {
                    if q.pop().is_some() {
                        dispatched.fetch_add(1, Ordering::Relaxed);
                        drained = true;
                    }
                }
                if drained {
                    empty_polls = 0;
                } else {
                    empty_polls = empty_polls.saturating_add(1);
                    if empty_polls < SPIN_POLLS {
                        std::hint::spin_loop();
                    } else if empty_polls < YIELD_POLLS {
                        thread::yield_now();
                    } else {
                        idle_parks.fetch_add(1, Ordering::Relaxed);
                        thread::park_timeout(PARK_NAP);
                    }
                }
            }
            // Final drain so no launch is lost at shutdown.
            for q in &queues {
                while q.pop().is_some() {
                    dispatched.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        SchedulerGuard {
            stop: Arc::clone(&self.stop),
            handle: Some(handle),
        }
    }
}

/// Stops the scheduler thread when dropped.
#[derive(Debug)]
pub struct SchedulerGuard {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl SchedulerGuard {
    /// Stops and joins the scheduler thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SchedulerGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Measures the mean per-launch interception cost in nanoseconds: `n`
/// launches pushed from this thread while the scheduler drains.
pub fn measure_intercept_overhead_ns(n: u64) -> f64 {
    let rt = InterceptRuntime::new(1);
    let guard = rt.start_scheduler();
    let start = std::time::Instant::now();
    for seq in 0..n {
        rt.intercept(LaunchRecord {
            kernel_id: (seq % 101) as u32,
            client: 0,
            seq,
        });
    }
    let elapsed = start.elapsed();
    guard.stop();
    elapsed.as_nanos() as f64 / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_launches_are_dispatched() {
        let rt = InterceptRuntime::new(3);
        let guard = rt.start_scheduler();
        let total = 30_000u64;
        for seq in 0..total {
            rt.intercept(LaunchRecord {
                kernel_id: seq as u32,
                client: (seq % 3) as u32,
                seq,
            });
        }
        guard.stop();
        assert_eq!(rt.dispatched(), total);
    }

    #[test]
    fn concurrent_clients_do_not_lose_records() {
        let rt = Arc::new(InterceptRuntime::new(4));
        let guard = rt.start_scheduler();
        let mut joins = Vec::new();
        for client in 0..4u32 {
            let rt = Arc::clone(&rt);
            joins.push(thread::spawn(move || {
                for seq in 0..10_000u64 {
                    rt.intercept(LaunchRecord {
                        kernel_id: seq as u32,
                        client,
                        seq,
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        guard.stop();
        assert_eq!(rt.dispatched(), 40_000);
    }

    #[test]
    fn idle_runtime_parks_instead_of_spinning() {
        let rt = InterceptRuntime::new(2);
        let guard = rt.start_scheduler();
        // With nothing to drain the scheduler must fall through its backoff
        // ladder into parking within a few milliseconds.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while rt.idle_parks() == 0 && std::time::Instant::now() < deadline {
            thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(rt.idle_parks() > 0, "idle scheduler never parked");
        assert_eq!(rt.dispatched(), 0);
        // A parked scheduler still drains new launches promptly.
        for seq in 0..100u64 {
            rt.intercept(LaunchRecord {
                kernel_id: seq as u32,
                client: (seq % 2) as u32,
                seq,
            });
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while rt.dispatched() < 100 && std::time::Instant::now() < deadline {
            thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(rt.dispatched(), 100, "parked scheduler failed to resume");
        guard.stop();
    }

    #[test]
    fn poisoned_queue_keeps_working() {
        let q = LaunchQueue::default();
        q.push(LaunchRecord {
            kernel_id: 1,
            client: 0,
            seq: 0,
        });
        q.poison();
        assert!(q.inner.is_poisoned(), "fixture must actually poison");
        // Push and pop recover the poisoned lock instead of panicking, and
        // the record enqueued before the poison is still there.
        q.push(LaunchRecord {
            kernel_id: 2,
            client: 0,
            seq: 1,
        });
        assert_eq!(q.pop().map(|r| r.kernel_id), Some(1));
        assert_eq!(q.pop().map(|r| r.kernel_id), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduler_survives_panicking_client() {
        let rt = Arc::new(InterceptRuntime::new(2));
        let guard = rt.start_scheduler();
        // A healthy client launches concurrently with a client that dies
        // mid-launch, poisoning its queue lock with records still inside.
        let dying = Arc::clone(&rt);
        let dead = thread::spawn(move || {
            for seq in 0..500u64 {
                dying.intercept(LaunchRecord {
                    kernel_id: seq as u32,
                    client: 1,
                    seq,
                });
            }
            dying.queues[1].poison();
        });
        for seq in 0..1_000u64 {
            rt.intercept(LaunchRecord {
                kernel_id: seq as u32,
                client: 0,
                seq,
            });
        }
        dead.join().unwrap();
        guard.stop();
        // Clean drain: every record from both clients dispatched, nothing
        // lost to the poisoned lock, scheduler thread joined without panic.
        assert_eq!(rt.dispatched(), 1_500);
    }

    #[test]
    fn bounded_queue_reports_backpressure() {
        let rt = InterceptRuntime::with_capacity(1, 4);
        let rec = |seq| LaunchRecord {
            kernel_id: seq as u32,
            client: 0,
            seq,
        };
        for seq in 0..4 {
            assert_eq!(rt.try_intercept(rec(seq)), TryPushOutcome::Queued);
        }
        assert_eq!(rt.try_intercept(rec(4)), TryPushOutcome::Backpressure);
        // Draining one slot re-opens the queue.
        assert!(rt.queues[0].pop().is_some());
        assert_eq!(rt.try_intercept(rec(4)), TryPushOutcome::Queued);
        // The backpressured record was not enqueued: 4 remain.
        let mut n = 0;
        while rt.queues[0].pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn default_mode_is_unbounded() {
        let rt = InterceptRuntime::new(1);
        for seq in 0..10_000u64 {
            assert_eq!(
                rt.try_intercept(LaunchRecord {
                    kernel_id: 0,
                    client: 0,
                    seq,
                }),
                TryPushOutcome::Queued
            );
        }
    }

    #[test]
    fn overhead_is_sub_microsecond() {
        // The paper reports < 1% overhead on ~10 us kernels; our queue push
        // must be far below that (sub-microsecond per launch).
        let ns = measure_intercept_overhead_ns(100_000);
        assert!(ns < 1_000.0, "per-launch cost {ns} ns");
    }
}
