//! Streaming moment estimators for online profiling.
//!
//! The online profiler never stores raw sample vectors: every per-kernel
//! duration estimate is a Welford running-moment accumulator (mean + M2),
//! which is numerically stable, O(1) per sample, and allocation-free — the
//! same constraints the PR 3 hot-path rewrite imposed on the engine.

use orion_desim::time::SimTime;

/// Welford's online algorithm for mean and variance, in nanoseconds.
///
/// `push` folds one sample in; `mean`/`sigma`/`cv` read the current moments.
/// The accumulator is cumulative — it never forgets — so callers that need
/// regime changes (duration drift) must [`Welford::reset`] and re-seed when
/// samples diverge, rather than waiting for the old regime to wash out.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one duration sample (nanoseconds) into the moments.
    pub fn push(&mut self, sample_ns: f64) {
        self.n += 1;
        let delta = sample_ns - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = sample_ns - self.mean;
        self.m2 += delta * delta2;
    }

    /// Samples folded in since the last reset.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean in nanoseconds (zero when empty).
    pub fn mean_ns(&self) -> f64 {
        self.mean
    }

    /// Current mean as a [`SimTime`].
    pub fn mean_time(&self) -> SimTime {
        SimTime::from_nanos(self.mean.max(0.0).round() as u64)
    }

    /// Sample variance (n-1 denominator; zero below two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation in nanoseconds.
    pub fn sigma(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (sigma / mean; zero for an empty or
    /// zero-mean accumulator). The admission ladder gates on this: a low CV
    /// means the clean samples agree and the mean is trustworthy.
    pub fn cv(&self) -> f64 {
        if self.mean <= 0.0 {
            0.0
        } else {
            self.sigma() / self.mean
        }
    }

    /// Z-score of a prospective sample against the current moments, with
    /// `min_sigma_ns` as an absolute floor on the deviation. The floor
    /// matters because the simulator is deterministic: repeated clean runs
    /// of one kernel produce near-identical durations, sigma collapses to
    /// ~0, and an unfloored z-score would flag microscopic jitter as drift.
    pub fn z_score(&self, sample_ns: f64, min_sigma_ns: f64) -> f64 {
        let sigma = self.sigma().max(min_sigma_ns).max(f64::MIN_POSITIVE);
        (sample_ns - self.mean).abs() / sigma
    }

    /// Clears the accumulator (regime change: discard the old distribution).
    pub fn reset(&mut self) {
        *self = Welford::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_batch_formulas() {
        let samples = [100.0, 110.0, 90.0, 105.0, 95.0];
        let mut w = Welford::new();
        for s in samples {
            w.push(s);
        }
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert_eq!(w.count(), 5);
        assert!((w.mean_ns() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
        assert!(w.cv() > 0.0);
    }

    #[test]
    fn identical_samples_have_zero_variance() {
        let mut w = Welford::new();
        for _ in 0..10 {
            w.push(50_000.0);
        }
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.cv(), 0.0);
        assert_eq!(w.mean_time(), SimTime::from_micros(50));
    }

    #[test]
    fn z_score_floors_sigma() {
        let mut w = Welford::new();
        for _ in 0..5 {
            w.push(100_000.0);
        }
        // Sigma is zero; the floor keeps the z-score finite and meaningful:
        // a 50 us deviation over a 500 ns floor is z = 100.
        let z = w.z_score(150_000.0, 500.0);
        assert!((z - 100.0).abs() < 1e-9, "z {z}");
        // And an on-distribution sample scores ~0.
        assert!(w.z_score(100_000.0, 500.0) < 1e-9);
    }

    #[test]
    fn reset_discards_history() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean_ns(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }
}
