//! The per-kernel admission ladder: `Unknown → Observing → Admitted`.
//!
//! Every kernel starts *Unknown* (no tracker — the profile table has no
//! entry, so the scheduler already treats it conservatively: best-effort
//! kernels run only when no high-priority work is in flight). The first
//! clean completion creates a tracker in *Observing*, where uninterfered
//! durations feed a Welford estimator. Once enough low-variance samples
//! agree, the kernel is *Admitted*: a [`orion_profiler::KernelProfile`] is
//! synthesized from the learned mean and the kernel's static launch
//! metadata, and Orion's interference gates (SM demand, compute-vs-memory
//! opposition, duration throttle) apply as if the profile were offline.
//!
//! Admitted kernels keep being watched. A run of strongly divergent clean
//! samples (z-score above the drift threshold, `drift_window` times in a
//! row) demotes the kernel back to Observing — its profile is withdrawn,
//! the estimator is re-seeded from the divergent samples, and the ladder
//! re-learns the new regime. Observing-state estimators likewise reset on a
//! strongly divergent sample: Welford never forgets, so mixing pre- and
//! post-drift samples would inflate the variance and block re-admission
//! forever.

use std::collections::HashMap;
use std::sync::Arc;

use orion_desim::time::SimTime;

use super::estimator::Welford;
use super::OnlineConfig;

/// Where a kernel sits on the admission ladder. `Unknown` is implicit: a
/// kernel with no tracker yet has produced no clean sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionState {
    /// Learning: clean samples accumulate, no profile is published.
    Observing,
    /// A learned profile is live in the client's [`orion_profiler::ProfileTable`].
    Admitted,
}

/// A ladder decision the world must act on (profile table mutation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderEvent {
    /// Publish a profile with the given learned mean duration.
    Admit { mean: SimTime },
    /// Withdraw the published profile; the kernel re-learns.
    Demote,
}

/// Per-kernel learning state, keyed by interned kernel name.
#[derive(Debug)]
pub struct KernelTracker {
    /// Interned kernel name (the ladder key).
    pub name: Arc<str>,
    /// Kernel ids observed under this name (profile-table keys to publish
    /// or withdraw). Workload generators embed the id in the name, so this
    /// normally holds exactly one id; the vector tolerates aliasing.
    pub kernel_ids: Vec<u32>,
    /// Current ladder rung.
    pub state: AdmissionState,
    /// Streaming duration moments over the current regime's clean samples.
    est: Welford,
    /// Learned mean at the moment of (re-)admission.
    pub admitted_mean: SimTime,
    /// Consecutive divergent clean samples while Admitted.
    strikes: u32,
    /// The divergent samples themselves (ns), re-seeding the estimator on
    /// demotion so the new regime starts warm instead of from zero.
    strike_samples: Vec<f64>,
    /// Times this kernel was admitted (>= 1 re-admission after drift).
    pub admissions: u32,
    /// Times this kernel was demoted.
    pub demotions: u32,
    /// Clean (uninterfered) samples observed, all regimes.
    pub clean_samples: u64,
    /// Interfered completions observed (never fed to the estimator).
    pub interfered_samples: u64,
}

impl KernelTracker {
    fn new(name: Arc<str>, kernel_id: u32) -> Self {
        KernelTracker {
            name,
            kernel_ids: vec![kernel_id],
            state: AdmissionState::Observing,
            est: Welford::new(),
            admitted_mean: SimTime::ZERO,
            strikes: 0,
            strike_samples: Vec::new(),
            admissions: 0,
            demotions: 0,
            clean_samples: 0,
            interfered_samples: 0,
        }
    }

    /// Current learned mean duration.
    pub fn learned_mean(&self) -> SimTime {
        self.est.mean_time()
    }

    /// Clean samples in the current regime (post-reset).
    pub fn regime_samples(&self) -> u64 {
        self.est.count()
    }

    /// Folds in one clean (uninterfered) duration sample and walks the
    /// ladder. Returns the profile-table action this sample triggered.
    pub fn observe_clean(&mut self, dur: SimTime, cfg: &OnlineConfig) -> Option<LadderEvent> {
        self.clean_samples += 1;
        let ns = dur.as_nanos() as f64;
        let min_sigma = cfg.min_sigma.as_nanos() as f64;
        match self.state {
            AdmissionState::Observing => {
                // Regime check first: a strongly divergent sample while
                // learning means the distribution moved under us (drift
                // mid-observation). Restart seeded with the new sample.
                if self.est.count() >= 2 && self.est.z_score(ns, min_sigma) > cfg.drift_z {
                    self.est.reset();
                }
                self.est.push(ns);
                if self.est.count() >= u64::from(cfg.min_samples) && self.est.cv() <= cfg.max_cv
                {
                    self.state = AdmissionState::Admitted;
                    self.admitted_mean = self.est.mean_time();
                    self.admissions += 1;
                    return Some(LadderEvent::Admit {
                        mean: self.admitted_mean,
                    });
                }
                None
            }
            AdmissionState::Admitted => {
                if self.est.z_score(ns, min_sigma) > cfg.drift_z {
                    self.strikes += 1;
                    self.strike_samples.push(ns);
                    if self.strikes >= cfg.drift_window {
                        // Drift confirmed: withdraw the profile and re-learn
                        // the new regime, seeded with the strike samples.
                        self.state = AdmissionState::Observing;
                        self.demotions += 1;
                        self.strikes = 0;
                        self.est.reset();
                        for &s in &self.strike_samples {
                            self.est.push(s);
                        }
                        self.strike_samples.clear();
                        return Some(LadderEvent::Demote);
                    }
                } else {
                    // On-distribution: the strike run is broken and the
                    // sample refines the (cumulative) regime estimate.
                    self.strikes = 0;
                    self.strike_samples.clear();
                    self.est.push(ns);
                }
                None
            }
        }
    }

    /// Records an interfered completion. Never a sample — the measured
    /// duration includes slowdown from sharing — but counted for reports.
    pub fn observe_interfered(&mut self) {
        self.interfered_samples += 1;
    }
}

/// One client's kernel trackers, keyed by interned name with first-seen
/// iteration order (HashMap for lookup only — deterministic across runs).
#[derive(Debug, Default)]
pub struct KernelStore {
    index: HashMap<Arc<str>, usize>,
    trackers: Vec<KernelTracker>,
}

impl KernelStore {
    /// An empty store.
    pub fn new() -> Self {
        KernelStore::default()
    }

    /// The tracker for `name`, created in Observing on first sight.
    /// `kernel_id` is recorded as a publish/withdraw target for the name.
    pub fn tracker_mut(&mut self, name: &Arc<str>, kernel_id: u32) -> &mut KernelTracker {
        let i = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.trackers.len();
                self.index.insert(Arc::clone(name), i);
                self.trackers.push(KernelTracker::new(Arc::clone(name), kernel_id));
                i
            }
        };
        let t = &mut self.trackers[i];
        if !t.kernel_ids.contains(&kernel_id) {
            t.kernel_ids.push(kernel_id);
        }
        t
    }

    /// All trackers, in first-seen order.
    pub fn trackers(&self) -> &[KernelTracker] {
        &self.trackers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OnlineConfig {
        OnlineConfig::learning()
    }

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn ladder_admits_after_min_low_variance_samples() {
        let cfg = cfg();
        let mut store = KernelStore::new();
        let name = arc("gemm_7");
        let dur = SimTime::from_micros(120);
        let mut admitted = None;
        for _ in 0..cfg.min_samples {
            let t = store.tracker_mut(&name, 7);
            assert_eq!(t.state, AdmissionState::Observing);
            admitted = t.observe_clean(dur, &cfg);
        }
        assert_eq!(admitted, Some(LadderEvent::Admit { mean: dur }));
        let t = store.tracker_mut(&name, 7);
        assert_eq!(t.state, AdmissionState::Admitted);
        assert_eq!(t.admitted_mean, dur);
        assert_eq!(t.kernel_ids, vec![7]);
    }

    #[test]
    fn interfered_samples_never_admit() {
        let mut store = KernelStore::new();
        let name = arc("conv2d_fprop_0");
        for _ in 0..20 {
            store.tracker_mut(&name, 0).observe_interfered();
        }
        let t = store.tracker_mut(&name, 0);
        assert_eq!(t.state, AdmissionState::Observing);
        assert_eq!(t.clean_samples, 0);
        assert_eq!(t.interfered_samples, 20);
    }

    #[test]
    fn drift_demotes_then_readmits_new_regime() {
        let cfg = cfg();
        let mut store = KernelStore::new();
        let name = arc("batch_norm_3");
        let old = SimTime::from_micros(100);
        let new = SimTime::from_micros(150); // 1.5x drift
        for _ in 0..cfg.min_samples {
            store.tracker_mut(&name, 3).observe_clean(old, &cfg);
        }
        assert_eq!(store.tracker_mut(&name, 3).state, AdmissionState::Admitted);

        // Post-drift samples strike until the window demotes.
        let mut demoted = false;
        for _ in 0..cfg.drift_window {
            let ev = store.tracker_mut(&name, 3).observe_clean(new, &cfg);
            demoted = ev == Some(LadderEvent::Demote);
        }
        assert!(demoted, "drift_window strikes must demote");
        let t = store.tracker_mut(&name, 3);
        assert_eq!(t.state, AdmissionState::Observing);
        assert_eq!(t.demotions, 1);
        // The strike samples seeded the new regime...
        assert_eq!(t.regime_samples(), u64::from(cfg.drift_window));
        // ...so re-admission needs only the remaining samples.
        let mut readmitted = None;
        for _ in 0..cfg.min_samples {
            readmitted = store.tracker_mut(&name, 3).observe_clean(new, &cfg);
            if readmitted.is_some() {
                break;
            }
        }
        assert_eq!(readmitted, Some(LadderEvent::Admit { mean: new }));
    }

    #[test]
    fn single_on_distribution_sample_clears_strikes() {
        let cfg = cfg();
        let mut store = KernelStore::new();
        let name = arc("elementwise_9");
        let dur = SimTime::from_micros(80);
        for _ in 0..cfg.min_samples {
            store.tracker_mut(&name, 9).observe_clean(dur, &cfg);
        }
        // One divergent sample (a transient, not drift), then normal again:
        // no demotion ever happens.
        for _ in 0..10 {
            assert_eq!(
                store
                    .tracker_mut(&name, 9)
                    .observe_clean(SimTime::from_micros(200), &cfg),
                None
            );
            assert_eq!(store.tracker_mut(&name, 9).observe_clean(dur, &cfg), None);
        }
        assert_eq!(store.tracker_mut(&name, 9).state, AdmissionState::Admitted);
        assert_eq!(store.tracker_mut(&name, 9).demotions, 0);
    }

    #[test]
    fn observing_reset_on_divergence_unblocks_admission() {
        let cfg = cfg();
        let mut store = KernelStore::new();
        let name = arc("pooling_2");
        // Two pre-drift samples, then the regime moves: without the reset
        // the mixed variance would hold CV above the gate indefinitely.
        store
            .tracker_mut(&name, 2)
            .observe_clean(SimTime::from_micros(100), &cfg);
        store
            .tracker_mut(&name, 2)
            .observe_clean(SimTime::from_micros(100), &cfg);
        let new = SimTime::from_micros(160);
        let mut admitted = None;
        for _ in 0..cfg.min_samples {
            admitted = store.tracker_mut(&name, 2).observe_clean(new, &cfg);
            if admitted.is_some() {
                break;
            }
        }
        assert_eq!(admitted, Some(LadderEvent::Admit { mean: new }));
    }
}
