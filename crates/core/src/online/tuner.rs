//! Adaptive `DUR_THRESHOLD` tuning from online solo-latency estimates.
//!
//! Orion's best-effort duration throttle (Listing 1) is a fraction of the
//! high-priority client's *solo* request latency. Offline that denominator
//! comes from the profiling phase; online it must be learned from the live
//! run — where almost every high-priority request overlaps *some*
//! best-effort work (a straggler kernel admitted before the request
//! arrived), so waiting for a perfectly quiet request would starve the
//! estimator forever.
//!
//! The tuner instead keeps a sliding window of *all* completed request
//! latencies and estimates the solo latency as the **window minimum**:
//! interference and queueing only ever add latency, never subtract it, so
//! the minimum is a tight upper bound on the solo latency that converges
//! whenever any near-clean request lands in the window (the same
//! windowed-min filter BBR uses for propagation RTT under queueing noise).
//! The window (rather than an all-time minimum) lets the estimate track
//! regime changes: after a duration drift the old, smaller minimum ages
//! out and the threshold re-learns.

use orion_desim::time::SimTime;

/// Sliding-window minimum estimator of one high-priority client's solo
/// request latency.
#[derive(Debug, Clone)]
pub struct SoloLatencyTuner {
    /// Ring buffer of request latencies, nanoseconds.
    window: Vec<f64>,
    /// Ring capacity.
    capacity: usize,
    /// Next write slot.
    next: usize,
    /// Requests observed over the run (monotonic).
    samples: u64,
    /// Requests whose ops all ran uninterfered and that never queued
    /// (diagnostics: how often the minimum was an exact solo observation).
    clean: u64,
}

impl SoloLatencyTuner {
    /// A tuner with the given sliding-window capacity (at least 1).
    pub fn new(capacity: usize) -> Self {
        SoloLatencyTuner {
            window: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            next: 0,
            samples: 0,
            clean: 0,
        }
    }

    /// Folds in one completed request's latency. `clean` marks a request
    /// certified interference- and queueing-free (diagnostics only — the
    /// windowed minimum uses every sample).
    pub fn push(&mut self, latency: SimTime, clean: bool) {
        let ns = latency.as_nanos() as f64;
        if self.window.len() < self.capacity {
            self.window.push(ns);
        } else {
            self.window[self.next] = ns;
        }
        self.next = (self.next + 1) % self.capacity;
        self.samples += 1;
        if clean {
            self.clean += 1;
        }
    }

    /// Requests observed over the run.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Certified-clean requests observed over the run.
    pub fn clean(&self) -> u64 {
        self.clean
    }

    /// Minimum of the current window once at least `min_samples` requests
    /// have been observed; `None` while still warming up.
    pub fn estimate(&self, min_samples: u64) -> Option<SimTime> {
        if self.samples < min_samples.max(1) || self.window.is_empty() {
            return None;
        }
        let min = self.window.iter().copied().fold(f64::INFINITY, f64::min);
        Some(SimTime::from_nanos(min.max(0.0).round() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_up_then_estimates_window_minimum() {
        let mut t = SoloLatencyTuner::new(4);
        assert_eq!(t.estimate(3), None);
        t.push(SimTime::from_millis(6), false); // inflated (interference)
        t.push(SimTime::from_millis(4), true); // near-solo
        assert_eq!(t.estimate(3), None, "below min_samples");
        t.push(SimTime::from_millis(9), false); // badly queued
        assert_eq!(t.estimate(3), Some(SimTime::from_millis(4)));
    }

    #[test]
    fn window_minimum_tracks_upward_drift() {
        let mut t = SoloLatencyTuner::new(2);
        t.push(SimTime::from_millis(10), true);
        t.push(SimTime::from_millis(10), true);
        assert_eq!(t.estimate(1), Some(SimTime::from_millis(10)));
        // The regime slows to 15 ms: the old minimum must age out of the
        // window rather than pin the estimate down forever.
        t.push(SimTime::from_millis(15), true);
        t.push(SimTime::from_millis(15), true);
        assert_eq!(t.estimate(1), Some(SimTime::from_millis(15)));
        assert_eq!(t.samples(), 4);
    }

    #[test]
    fn clean_flag_is_diagnostics_only() {
        let mut t = SoloLatencyTuner::new(4);
        t.push(SimTime::from_millis(7), false);
        assert_eq!(t.clean(), 0);
        // Contaminated samples still feed the minimum — they bound it from
        // above until something cleaner arrives.
        assert_eq!(t.estimate(1), Some(SimTime::from_millis(7)));
        t.push(SimTime::from_millis(5), true);
        assert_eq!(t.clean(), 1);
        assert_eq!(t.estimate(1), Some(SimTime::from_millis(5)));
    }
}
