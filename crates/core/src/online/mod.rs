//! Online profiling: learn kernel profiles and scheduler thresholds from a
//! live collocation run, with zero offline profiling phase (DESIGN.md §12).
//!
//! Orion's scheduler (paper §5.1, Listing 1) is profile-driven: it needs
//! each kernel's solo duration, compute/memory classification, and SM
//! demand, plus the high-priority client's solo request latency for the
//! `DUR_THRESHOLD` throttle. The paper obtains all of this from an offline
//! profiling pass (§5.2). This module removes that requirement: a run may
//! start with *empty* profile tables and converge to near-offline
//! scheduling quality by mining the engine's own completion stream.
//!
//! Three cooperating pieces:
//!
//! * [`estimator::Welford`] — streaming mean/variance per kernel, O(1) per
//!   completion, fed only *clean* samples (completions whose engine-level
//!   `interfered` flag is false, certifying the measured duration is the
//!   solo duration);
//! * [`ladder`] — the `Unknown → Observing → Admitted` admission state
//!   machine. Unknown/Observing kernels have no profile-table entry, so the
//!   scheduler's existing conservative path (best-effort kernels run only
//!   when no high-priority work is in flight) doubles as the measurement
//!   window. Enough low-variance samples synthesize a
//!   [`orion_profiler::KernelProfile`] and the kernel graduates to the full
//!   interference-aware gates. Divergent samples demote and re-learn
//!   (duration drift);
//! * [`tuner::SoloLatencyTuner`] — re-estimates the high-priority client's
//!   solo request latency (the `DUR_THRESHOLD` denominator) as the minimum
//!   request latency over a sliding window. Interference and queueing only
//!   inflate a request, so the windowed minimum is a tight upper bound on
//!   the solo latency that survives best-effort stragglers overlapping
//!   nearly every request.
//!
//! Determinism: the subsystem is constructed only when
//! [`OnlineConfig::enabled`] is set (the [`crate::supervisor::FaultConfig`]
//! precedent), so disabled runs take zero new branches and stay
//! byte-identical. When enabled, every update is driven by the simulation's
//! own completion order — no wall clock, no randomness — so online runs are
//! as reproducible as offline ones.

pub mod estimator;
pub mod ladder;
pub mod tuner;

use std::sync::Arc;

use orion_desim::time::SimTime;

use crate::client::ClientPriority;
use ladder::{AdmissionState, KernelStore, LadderEvent};
use tuner::SoloLatencyTuner;

/// Tuning for the online profiling subsystem. The default is **disabled**:
/// construction of any online state is skipped entirely and the run is
/// byte-identical to a build without this module.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Master switch. Off ⇒ no estimators, no ladder, no tuner.
    pub enabled: bool,
    /// Clean samples required before a kernel may be admitted.
    pub min_samples: u32,
    /// Coefficient-of-variation gate at admission: the regime's clean
    /// samples must agree to within this relative spread.
    pub max_cv: f64,
    /// Absolute floor on the deviation used in z-scores. The deterministic
    /// simulator produces near-identical clean durations, so an unfloored
    /// sigma would flag microscopic jitter as drift.
    pub min_sigma: SimTime,
    /// Z-score above which a clean sample counts as divergent (drift).
    pub drift_z: f64,
    /// Consecutive divergent samples that confirm drift and demote.
    pub drift_window: u32,
    /// Sliding-window size of the solo-latency tuner.
    pub latency_window: usize,
    /// Clean request latencies required before the first threshold update.
    pub min_latency_samples: u32,
    /// Oracle tolerance: relative error between a learned duration and the
    /// true solo duration above which an admission is a violation.
    pub admit_tolerance: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig::disabled()
    }
}

impl OnlineConfig {
    /// Online profiling off (the default; byte-identical runs).
    pub fn disabled() -> Self {
        OnlineConfig {
            enabled: false,
            ..OnlineConfig::learning()
        }
    }

    /// Online profiling on, with the standard thresholds.
    pub fn learning() -> Self {
        OnlineConfig {
            enabled: true,
            min_samples: 5,
            max_cv: 0.05,
            min_sigma: SimTime::from_nanos(500),
            drift_z: 4.0,
            drift_window: 3,
            latency_window: 16,
            min_latency_samples: 3,
            admit_tolerance: 0.10,
        }
    }
}

/// A profile-table mutation the world must apply after a ladder step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileAction {
    /// Admission: synthesize and insert profiles for these kernel ids with
    /// the learned mean duration.
    Publish { kernel_ids: Vec<u32>, mean: SimTime },
    /// Demotion: withdraw these kernel ids from the profile table.
    Withdraw { kernel_ids: Vec<u32> },
}

/// Per-client online state: a kernel ladder for everyone, a solo-latency
/// tuner for high-priority clients only.
#[derive(Debug)]
struct ClientOnline {
    store: KernelStore,
    tuner: Option<SoloLatencyTuner>,
}

/// The live online-profiling state of one collocation run. Constructed only
/// when [`OnlineConfig::enabled`]; owned by the world alongside the
/// validator and supervisor.
#[derive(Debug)]
pub struct OnlineState {
    cfg: OnlineConfig,
    clients: Vec<ClientOnline>,
    /// Per-client flag: some op of the client's in-flight request ran
    /// interfered (engine truth), so the request's latency is not its solo
    /// latency. Cleared when the request completes.
    request_interfered: Vec<bool>,
    /// Per-client completion time of the last finished request, rejecting
    /// latency samples that include queueing behind a predecessor.
    last_request_done: Vec<SimTime>,
    /// Solo-latency estimates awaiting delivery to the policy, in
    /// completion order: `(client, estimate)`.
    pending_estimates: Vec<(usize, SimTime)>,
    /// Threshold updates delivered to the policy over the run.
    latency_estimates: u64,
}

impl OnlineState {
    /// Builds the per-client learning state (tuners for HP clients only).
    pub fn new(cfg: OnlineConfig, priorities: &[ClientPriority]) -> Self {
        let clients = priorities
            .iter()
            .map(|&p| ClientOnline {
                store: KernelStore::new(),
                tuner: (p == ClientPriority::HighPriority)
                    .then(|| SoloLatencyTuner::new(cfg.latency_window)),
            })
            .collect();
        let n = priorities.len();
        OnlineState {
            cfg,
            clients,
            request_interfered: vec![false; n],
            last_request_done: vec![SimTime::ZERO; n],
            pending_estimates: Vec::new(),
            latency_estimates: 0,
        }
    }

    /// The active configuration.
    pub fn cfg(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Records whether one op of the client's in-flight request ran
    /// interfered (or was retried after a fault — same contamination). A
    /// single tainted op disqualifies the whole request's latency sample.
    pub fn note_op_interference(&mut self, client: usize, interfered: bool) {
        if interfered {
            self.request_interfered[client] = true;
        }
    }

    /// Feeds one kernel completion into the client's admission ladder and
    /// returns the profile-table mutation it triggered, if any.
    pub fn observe_kernel(
        &mut self,
        client: usize,
        name: &Arc<str>,
        kernel_id: u32,
        dur: SimTime,
        interfered: bool,
    ) -> Option<ProfileAction> {
        let tracker = self.clients[client].store.tracker_mut(name, kernel_id);
        if interfered {
            tracker.observe_interfered();
            return None;
        }
        match tracker.observe_clean(dur, &self.cfg)? {
            LadderEvent::Admit { mean } => Some(ProfileAction::Publish {
                kernel_ids: tracker.kernel_ids.clone(),
                mean,
            }),
            LadderEvent::Demote => Some(ProfileAction::Withdraw {
                kernel_ids: tracker.kernel_ids.clone(),
            }),
        }
    }

    /// Feeds one completed high-priority *request* (not op) into the
    /// solo-latency tuner. Every latency joins the sliding window (the
    /// windowed minimum filters inflation); the sample is additionally
    /// certified *clean* when (a) no op of the request ever ran interfered
    /// (the engine certifies each op's span was its solo span) and (b) the
    /// request did not queue behind its predecessor (its arrival postdates
    /// the previous completion, so the latency holds no waiting time).
    pub fn observe_hp_request(&mut self, client: usize, done_at: SimTime, latency: SimTime) {
        let interfered = std::mem::replace(&mut self.request_interfered[client], false);
        let queued = done_at.saturating_sub(latency) < self.last_request_done[client];
        self.last_request_done[client] = done_at;
        let Some(tuner) = self.clients[client].tuner.as_mut() else {
            return;
        };
        tuner.push(latency, !interfered && !queued);
        if let Some(est) = tuner.estimate(u64::from(self.cfg.min_latency_samples)) {
            self.pending_estimates.push((client, est));
            self.latency_estimates += 1;
        }
    }

    /// Drains the solo-latency estimates queued since the last policy round.
    pub fn take_estimates(&mut self) -> Vec<(usize, SimTime)> {
        std::mem::take(&mut self.pending_estimates)
    }

    /// One client's kernel trackers (first-seen order), for reporting.
    pub fn store(&self, client: usize) -> &KernelStore {
        &self.clients[client].store
    }

    /// Summarizes the run. `true_solo` maps `(client, kernel_id)` to the
    /// kernel's true solo duration at the reporting instant (the caller
    /// applies any drift), grounding the learned-vs-true error columns.
    pub fn report(&self, true_solo: impl Fn(usize, u32) -> Option<SimTime>) -> OnlineReport {
        let mut r = OnlineReport {
            latency_estimates: self.latency_estimates,
            ..OnlineReport::default()
        };
        for (ci, c) in self.clients.iter().enumerate() {
            if let Some(t) = &c.tuner {
                r.clean_latency_samples += t.clean();
                r.contaminated_latency_samples += t.samples() - t.clean();
            }
            for tr in c.store.trackers() {
                r.tracked += 1;
                r.admissions += u64::from(tr.admissions);
                r.demotions += u64::from(tr.demotions);
                r.clean_samples += tr.clean_samples;
                r.interfered_samples += tr.interfered_samples;
                if tr.state != AdmissionState::Admitted {
                    continue;
                }
                r.admitted += 1;
                let Some(truth) =
                    tr.kernel_ids.first().and_then(|&id| true_solo(ci, id))
                else {
                    continue;
                };
                if truth.is_zero() {
                    continue;
                }
                let learned = tr.admitted_mean.as_nanos() as f64;
                let err = (learned - truth.as_nanos() as f64).abs() / truth.as_nanos() as f64;
                r.profile_errors += 1;
                r.mean_profile_error += err;
                r.max_profile_error = r.max_profile_error.max(err);
            }
        }
        if r.profile_errors > 0 {
            r.mean_profile_error /= r.profile_errors as f64;
        }
        r
    }
}

/// End-of-run summary of the online profiler, attached to
/// [`crate::world::RunResult`] when online mode was enabled.
#[derive(Debug, Clone, Default)]
pub struct OnlineReport {
    /// Kernels that produced at least one clean sample.
    pub tracked: usize,
    /// Kernels holding a learned profile at the horizon.
    pub admitted: usize,
    /// Total admissions (> `admitted` when drift forced re-learning).
    pub admissions: u64,
    /// Total demotions (drift detections).
    pub demotions: u64,
    /// Clean (uninterfered) kernel samples observed.
    pub clean_samples: u64,
    /// Interfered kernel completions (discarded from learning).
    pub interfered_samples: u64,
    /// Clean high-priority request latencies accepted by the tuner.
    pub clean_latency_samples: u64,
    /// Contaminated high-priority request latencies rejected by the tuner.
    pub contaminated_latency_samples: u64,
    /// `DUR_THRESHOLD` denominator updates delivered to the policy.
    pub latency_estimates: u64,
    /// Admitted kernels with a ground-truth duration to compare against.
    pub profile_errors: u64,
    /// Mean relative error of learned vs. true solo durations at the
    /// horizon, over kernels admitted at the horizon.
    pub mean_profile_error: f64,
    /// Worst such relative error.
    pub max_profile_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp_be() -> OnlineState {
        OnlineState::new(
            OnlineConfig::learning(),
            &[ClientPriority::HighPriority, ClientPriority::BestEffort],
        )
    }

    #[test]
    fn kernel_admission_publishes_profile() {
        let mut s = hp_be();
        let name: Arc<str> = Arc::from("gemm_4");
        let dur = SimTime::from_micros(200);
        let mut action = None;
        for _ in 0..s.cfg().min_samples {
            action = s.observe_kernel(1, &name, 4, dur, false);
        }
        assert_eq!(
            action,
            Some(ProfileAction::Publish {
                kernel_ids: vec![4],
                mean: dur
            })
        );
        let r = s.report(|_, _| Some(dur));
        assert_eq!(r.tracked, 1);
        assert_eq!(r.admitted, 1);
        assert_eq!(r.mean_profile_error, 0.0);
    }

    #[test]
    fn interfered_kernels_publish_nothing() {
        let mut s = hp_be();
        let name: Arc<str> = Arc::from("conv2d_fprop_1");
        for _ in 0..50 {
            assert_eq!(
                s.observe_kernel(1, &name, 1, SimTime::from_micros(999), true),
                None
            );
        }
        let r = s.report(|_, _| None);
        assert_eq!(r.admitted, 0);
        assert_eq!(r.interfered_samples, 50);
    }

    #[test]
    fn hp_latency_windowed_minimum_rules() {
        let mut s = hp_be();
        let solo = SimTime::from_millis(5);
        let inflated = SimTime::from_millis(8);
        // A request with one interfered op is contaminated (the taint
        // clears with the request, not the run) but still bounds the
        // estimate from above.
        s.note_op_interference(0, false);
        s.note_op_interference(0, true);
        s.observe_hp_request(0, SimTime::from_millis(15), inflated);
        assert!(s.take_estimates().is_empty(), "still warming up");
        // Clean requests land in the window: the minimum snaps to solo and
        // estimates flow to the policy.
        for i in 0..s.cfg().min_latency_samples {
            let done = SimTime::from_millis(25 + 10 * u64::from(i));
            s.observe_hp_request(0, done, solo);
        }
        let est = s.take_estimates();
        assert!(!est.is_empty());
        assert!(est.iter().all(|&(c, e)| c == 0 && e == solo), "{est:?}");
        assert!(s.take_estimates().is_empty(), "drained");
        // A queued request (arrived at 40 ms, before the previous
        // completion at 45 ms) counts as contaminated and cannot raise
        // the windowed minimum.
        s.observe_hp_request(0, SimTime::from_millis(70), SimTime::from_millis(30));
        assert_eq!(s.take_estimates(), vec![(0, solo)]);
        // BE-client completions never touch the tuner (no tuner there).
        s.observe_hp_request(1, SimTime::from_secs(1), solo);
        assert!(s.take_estimates().is_empty());
        let r = s.report(|_, _| None);
        assert_eq!(r.clean_latency_samples, u64::from(s.cfg().min_latency_samples));
        assert_eq!(r.contaminated_latency_samples, 2);
    }

    #[test]
    fn report_measures_learned_error_against_truth() {
        let mut s = hp_be();
        let name: Arc<str> = Arc::from("layer_norm_6");
        let learned = SimTime::from_micros(100);
        for _ in 0..s.cfg().min_samples {
            s.observe_kernel(1, &name, 6, learned, false);
        }
        // Truth moved to 125 us (drift after admission, not yet detected):
        // error = 25/125 = 0.2.
        let r = s.report(|_, _| Some(SimTime::from_micros(125)));
        assert_eq!(r.profile_errors, 1);
        assert!((r.mean_profile_error - 0.2).abs() < 1e-9);
        assert!((r.max_profile_error - 0.2).abs() < 1e-9);
    }
}
