//! The serving event loop: a continuous-batching state machine over the
//! gpu-sim device, with KV-cache memory pressure and a policy-gated
//! best-effort client.
//!
//! One serving **step** is in flight at a time: either a prefill pass for
//! one admitted request or a batched decode step for every running request.
//! At each step boundary the admission controller runs, completed requests
//! leave, and newly prefilled requests join — continuous batching. The
//! collocated best-effort client's ops are gated per [`ServingPolicy`] and
//! run on a lower-priority stream, so the engine's interference model (SM
//! partitioning, memory-bandwidth contention) shapes both sides.

use std::collections::{HashMap, VecDeque};

use orion_desim::prelude::*;
use orion_gpu::engine::{Completion, GpuEngine, OpKind};
use orion_gpu::error::GpuError;
use orion_gpu::kernel::ResourceProfile;
use orion_gpu::stream::{StreamId, StreamPriority};
use orion_metrics::LatencyRecorder;
use orion_profiler::profile_workload;
use orion_workloads::models::llm::{
    kv_cache_bytes, llm_batched_decode_step, llm_prefill, llm_weight_bytes,
    LLM_KV_BYTES_PER_TOKEN,
};
use orion_workloads::{OpSpec, Workload};

use super::admission::{choose_victim, ctx_bucket, StepTimePredictor};
use super::request::{generate_requests, ReqState, Request};
use super::{ServingConfig, ServingError, ServingPolicy, ServingReport};
use crate::client::ClientState;

/// Events driving the serving world.
enum Ev {
    /// A serving request arrives (index into the request table).
    Arrival { idx: usize },
    /// The best-effort client's launch thread emits its next op.
    BePush,
    /// The best-effort client's next closed-loop iteration may start.
    BeStart,
    /// The device has something to report at this time.
    GpuWake { token: u64 },
}

/// What the in-flight serving step is doing.
enum StepKind {
    /// Prefill pass for one admitted request.
    Prefill { req: usize },
    /// Batched decode step over a snapshot of the running batch.
    Decode { members: Vec<usize> },
}

/// The serving step currently occupying the high-priority stream.
struct StepInFlight {
    kind: StepKind,
    started: SimTime,
    /// Predicted solo duration (the offpeak duty quota's denominator).
    est: SimTime,
}

/// How a best-effort kernel was admitted (what to refund on completion).
#[derive(Clone, Copy, PartialEq, Eq)]
enum GateClass {
    /// No step in flight / MPS / non-kernel op: no budget charged.
    Free,
    /// Complement-profile kernel under the outstanding-duration budget.
    Complement,
    /// Same-profile or unknown kernel under the per-step duty quota.
    Offpeak,
}

/// Completion routing for submitted ops.
enum Route {
    /// Part of the in-flight serving step.
    Serve,
    /// A best-effort client op.
    Be {
        request_id: u64,
        op_seq: u32,
        last_of_request: bool,
        class: GateClass,
        expected: SimTime,
    },
}

/// The collocated best-effort client.
struct BeState {
    client: ClientState,
    launch_cost: SimTime,
}

/// Counters accumulated during the run (splatted into [`ServingReport`]).
#[derive(Default)]
struct Tally {
    admitted: u64,
    completed: u64,
    shed_queue: u64,
    shed_oversized: u64,
    dropped_evicted: u64,
    evictions: u64,
    deferred_kv: u64,
    deferred_slo: u64,
    deferred_batch: u64,
    joins: u64,
    joins_mid: u64,
    leaves: u64,
    leaves_mid: u64,
    decode_steps: u64,
    prefill_steps: u64,
    peak_batch: u32,
    batch_sum: u64,
    tokens_warm: u64,
}

struct ServingWorld {
    gpu: GpuEngine,
    cfg: ServingConfig,
    serve_stream: StreamId,
    be_stream: StreamId,
    requests: Vec<Request>,
    /// Admission queue (indices), arrival order; evictees re-enter at the
    /// front so they regain their KV before newer arrivals take it.
    queue: VecDeque<usize>,
    /// Admitted requests whose prefill has not run yet.
    prefill_q: VecDeque<usize>,
    /// The running decode batch.
    running: Vec<usize>,
    step: Option<StepInFlight>,
    /// Serving ops of the in-flight step still on the device.
    step_ops: usize,
    routes: HashMap<u64, Route>,
    be: Option<BeState>,
    /// Outstanding solo duration of admitted complement-profile BE kernels.
    outstanding_complement: SimTime,
    /// Same-profile/unknown BE duration charged against the current step.
    offpeak_spent: SimTime,
    predictor: StepTimePredictor,
    kv_used: u64,
    kv_peak: u64,
    kv_budget: u64,
    tally: Tally,
    ttft: LatencyRecorder,
    per_token: LatencyRecorder,
    itl: LatencyRecorder,
    e2e: LatencyRecorder,
    wake_token: u64,
    completion_buf: Vec<Completion>,
    /// First unrecoverable error; the event loop goes inert once set.
    fatal: Option<ServingError>,
}

impl ServingWorld {
    fn arm_wake(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if let Some(t) = self.gpu.next_event_time() {
            self.wake_token += 1;
            let token = self.wake_token;
            sched.schedule_at(t.max(now), Ev::GpuWake { token });
        }
    }

    /// Advances the device and processes completions that occurred.
    fn drain_gpu(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) -> Result<(), ServingError> {
        self.gpu.advance_to(now);
        let mut completions = std::mem::take(&mut self.completion_buf);
        self.gpu.drain_completions_into(&mut completions);
        let mut step_done = false;
        let mut be_done = false;
        for c in &completions {
            match self.routes.remove(&c.op.0) {
                Some(Route::Serve) => {
                    self.step_ops -= 1;
                    if self.step_ops == 0 {
                        step_done = true;
                    }
                }
                Some(Route::Be {
                    request_id,
                    op_seq,
                    last_of_request,
                    class,
                    expected,
                }) => {
                    if class == GateClass::Complement {
                        self.outstanding_complement = self
                            .outstanding_complement
                            .checked_sub(expected)
                            .unwrap_or(SimTime::ZERO);
                    }
                    let Some(be) = self.be.as_mut() else { continue };
                    let was_blocked = !be.client.can_push();
                    let finished =
                        be.client
                            .on_op_complete(c.at, request_id, op_seq, last_of_request);
                    if finished.is_some() {
                        match be.client.next_pending_at() {
                            Some(at) if at <= now && be.client.try_start_request() => {
                                sched.schedule_at(now, Ev::BePush);
                            }
                            Some(at) if at > now => sched.schedule_at(at, Ev::BeStart),
                            _ => {}
                        }
                    } else if was_blocked && be.client.can_push() {
                        sched.schedule_at(now, Ev::BePush);
                    }
                    be_done = true;
                }
                None => {}
            }
        }
        self.completion_buf = completions;
        if step_done {
            self.on_step_complete(now, sched)?;
        } else if be_done {
            self.schedule_be(now)?;
        }
        Ok(())
    }

    /// Handles the end of the in-flight serving step: deliver tokens, grow
    /// KV, complete/evict, then start the next step.
    fn on_step_complete(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) -> Result<(), ServingError> {
        let Some(step) = self.step.take() else {
            return Ok(());
        };
        let warm = now >= self.cfg.warmup;
        match step.kind {
            StepKind::Prefill { req } => {
                // The prefill's output is the request's first token.
                if self.grow_one_token(req, now)? {
                    let r = &mut self.requests[req];
                    r.generated = 1;
                    r.last_token_at = now;
                    if warm {
                        self.tally.tokens_warm += 1;
                    }
                    let arrival = r.spec.arrival;
                    let done = r.generated >= r.spec.output_tokens;
                    if warm {
                        self.ttft.record(now - arrival);
                    }
                    self.tally.joins += 1;
                    if !self.running.is_empty() {
                        self.tally.joins_mid += 1;
                    }
                    self.requests[req].state = ReqState::Running;
                    self.running.push(req);
                    if done {
                        self.complete(req, now, warm)?;
                    }
                }
            }
            StepKind::Decode { members } => {
                let dur = now - step.started;
                for &i in &members {
                    if self.requests[i].state != ReqState::Running {
                        continue; // evicted earlier in this boundary
                    }
                    let r = &mut self.requests[i];
                    if warm {
                        self.per_token.record(dur);
                        self.itl.record(now - r.last_token_at);
                        self.tally.tokens_warm += 1;
                    }
                    r.generated += 1;
                    r.last_token_at = now;
                    if r.generated >= r.spec.output_tokens {
                        self.complete(i, now, warm)?;
                    } else {
                        // Grow KV for the token just produced; may evict.
                        self.grow_one_token(i, now)?;
                    }
                }
            }
        }
        self.maybe_start_step(now, sched)
    }

    /// Extends `idx`'s KV allocation by one token, evicting under pressure.
    /// Returns `false` when `idx` itself had to be evicted (last resort).
    fn grow_one_token(&mut self, idx: usize, now: SimTime) -> Result<bool, ServingError> {
        loop {
            let Some(id) = self.requests[idx].kv else {
                // An admitted request always holds KV; treat a missing
                // allocation as the ledger-level error it would be.
                return Err(ServingError::Gpu(GpuError::UnknownAllocation(idx as u64)));
            };
            match self.gpu.grow_immediate(id, LLM_KV_BYTES_PER_TOKEN) {
                Ok(()) => {
                    self.requests[idx].kv_tokens += 1;
                    self.kv_used += LLM_KV_BYTES_PER_TOKEN;
                    self.kv_peak = self.kv_peak.max(self.kv_used);
                    return Ok(true);
                }
                Err(GpuError::OutOfMemory { .. }) => {
                    // Evict somebody else while possible; self last.
                    let others: Vec<usize> = self
                        .running
                        .iter()
                        .copied()
                        .filter(|&i| i != idx)
                        .collect();
                    let victim = choose_victim(&self.requests, &others).unwrap_or(idx);
                    self.evict(victim, now)?;
                    if victim == idx {
                        return Ok(false);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Frees a victim's KV and re-queues (or drops) it. Eviction restarts
    /// the request from its prompt (recompute-on-restore, Orca-style).
    fn evict(&mut self, victim: usize, now: SimTime) -> Result<(), ServingError> {
        if let Some(id) = self.requests[victim].kv.take() {
            let freed = self.gpu.free_immediate(id)?;
            self.kv_used -= freed;
        }
        self.running.retain(|&i| i != victim);
        self.tally.evictions += 1;
        let r = &mut self.requests[victim];
        r.kv_tokens = 0;
        r.generated = 0;
        r.evictions += 1;
        if r.evictions > self.cfg.admission.max_evictions {
            r.state = ReqState::Dropped;
            self.tally.dropped_evicted += 1;
        } else {
            r.state = ReqState::Queued;
            r.queued_at = now;
            self.queue.push_front(victim);
        }
        Ok(())
    }

    /// Completes a request: frees its KV and records request-level stats.
    fn complete(&mut self, idx: usize, now: SimTime, warm: bool) -> Result<(), ServingError> {
        if let Some(id) = self.requests[idx].kv.take() {
            let freed = self.gpu.free_immediate(id)?;
            self.kv_used -= freed;
        }
        self.running.retain(|&i| i != idx);
        let r = &mut self.requests[idx];
        r.state = ReqState::Done;
        self.tally.completed += 1;
        self.tally.leaves += 1;
        if !self.running.is_empty() {
            self.tally.leaves_mid += 1;
        }
        if warm {
            self.e2e.record(now - r.spec.arrival);
        }
        Ok(())
    }

    /// If the serving stream is idle: run admission, then start the next
    /// prefill or decode step. Always re-gates the best-effort client.
    fn maybe_start_step(
        &mut self,
        now: SimTime,
        _sched: &mut Scheduler<Ev>,
    ) -> Result<(), ServingError> {
        if self.step.is_none() {
            self.admission_pass(now)?;
            if let Some(req) = self.prefill_q.pop_front() {
                let w = llm_prefill(self.requests[req].spec.prompt_tokens);
                let est = w.solo_kernel_time();
                self.submit_step(&w)?;
                self.step = Some(StepInFlight {
                    kind: StepKind::Prefill { req },
                    started: now,
                    est,
                });
                self.tally.prefill_steps += 1;
                self.offpeak_spent = SimTime::ZERO;
            } else if !self.running.is_empty() {
                let batch = self.running.len() as u32;
                let total_ctx: u64 = self
                    .running
                    .iter()
                    .map(|&i| u64::from(self.requests[i].kv_tokens))
                    .sum();
                let avg_ctx = ctx_bucket((total_ctx / u64::from(batch)) as u32);
                let w = llm_batched_decode_step(batch, avg_ctx);
                let est = self.predictor.predict(batch, avg_ctx);
                self.submit_step(&w)?;
                self.step = Some(StepInFlight {
                    kind: StepKind::Decode {
                        members: self.running.clone(),
                    },
                    started: now,
                    est,
                });
                self.tally.decode_steps += 1;
                self.tally.peak_batch = self.tally.peak_batch.max(batch);
                self.tally.batch_sum += u64::from(batch);
                self.offpeak_spent = SimTime::ZERO;
            }
        }
        self.schedule_be(now)
    }

    /// Submits every op of a serving-step workload on the serving stream.
    fn submit_step(&mut self, w: &Workload) -> Result<(), ServingError> {
        for (_, op) in &w.ops {
            let id = match op {
                OpSpec::Kernel(k) => self.gpu.submit_kernel(self.serve_stream, k)?,
                OpSpec::H2D { bytes, blocking } => self.gpu.submit(
                    self.serve_stream,
                    OpKind::MemcpyH2D {
                        bytes: *bytes,
                        blocking: *blocking,
                    },
                )?,
                OpSpec::D2H { bytes, blocking } => self.gpu.submit(
                    self.serve_stream,
                    OpKind::MemcpyD2H {
                        bytes: *bytes,
                        blocking: *blocking,
                    },
                )?,
            };
            self.routes.insert(id.0, Route::Serve);
            self.step_ops += 1;
        }
        Ok(())
    }

    /// SLO-aware admission: sheds stale/oversized requests, then admits from
    /// the queue head while batch, deadline-risk, and KV-watermark gates all
    /// pass. Stops at the first deferral (FIFO admission order).
    fn admission_pass(&mut self, now: SimTime) -> Result<(), ServingError> {
        loop {
            let Some(&cand) = self.queue.front() else {
                return Ok(());
            };
            let spec = self.requests[cand].spec;
            if now - self.requests[cand].queued_at > self.cfg.admission.max_queue_wait {
                self.queue.pop_front();
                self.requests[cand].state = ReqState::Dropped;
                self.tally.shed_queue += 1;
                continue;
            }
            if spec.admit_kv_bytes() > self.kv_budget {
                self.queue.pop_front();
                self.requests[cand].state = ReqState::Dropped;
                self.tally.shed_oversized += 1;
                continue;
            }
            // Batch cap counts running + admitted-not-yet-prefilled + the
            // in-flight prefill, i.e. everyone who will hold a batch slot.
            let in_flight_prefill = usize::from(matches!(
                self.step,
                Some(StepInFlight {
                    kind: StepKind::Prefill { .. },
                    ..
                })
            ));
            let in_batch = self.running.len() + self.prefill_q.len() + in_flight_prefill;
            if in_batch + 1 > self.cfg.max_batch as usize {
                self.tally.deferred_batch += 1;
                return Ok(());
            }
            // Deadline risk: predicted decode-step time at batch+1 with the
            // candidate's context folded into the average.
            let projected_batch = (in_batch + 1) as u32;
            let total_ctx: u64 = self
                .running
                .iter()
                .map(|&i| u64::from(self.requests[i].kv_tokens))
                .chain(
                    self.prefill_q
                        .iter()
                        .map(|&i| u64::from(self.requests[i].spec.prompt_tokens) + 1),
                )
                .sum::<u64>()
                + u64::from(spec.prompt_tokens)
                + 1;
            let avg_ctx = (total_ctx / u64::from(projected_batch)) as u32;
            let predicted = self.predictor.predict(projected_batch, avg_ctx);
            if predicted > self.cfg.slo.per_token.mul_f64(self.cfg.admission.slo_margin) {
                self.tally.deferred_slo += 1;
                return Ok(());
            }
            // KV headroom: projected live KV must stay under the watermark.
            let lookahead = kv_cache_bytes(self.cfg.admission.lookahead_tokens);
            let projected_kv = self.kv_used + spec.admit_kv_bytes() + lookahead;
            let watermark = (self.cfg.admission.watermark * self.kv_budget as f64) as u64;
            if projected_kv > watermark {
                self.tally.deferred_kv += 1;
                return Ok(());
            }
            match self.gpu.alloc_immediate(kv_cache_bytes(spec.prompt_tokens)) {
                Ok(id) => {
                    self.queue.pop_front();
                    let r = &mut self.requests[cand];
                    r.kv = Some(id);
                    r.kv_tokens = spec.prompt_tokens;
                    r.state = ReqState::Prefilling;
                    self.kv_used += kv_cache_bytes(spec.prompt_tokens);
                    self.kv_peak = self.kv_peak.max(self.kv_used);
                    self.tally.admitted += 1;
                    self.prefill_q.push_back(cand);
                }
                Err(GpuError::OutOfMemory { .. }) => {
                    // Watermark passed but the ledger is tighter (static
                    // allocations breathe): defer rather than evict for a
                    // not-yet-admitted request.
                    self.tally.deferred_kv += 1;
                    return Ok(());
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Gates and submits the best-effort client's queued ops per policy.
    fn schedule_be(&mut self, _now: SimTime) -> Result<(), ServingError> {
        loop {
            let Some(be) = self.be.as_mut() else {
                return Ok(());
            };
            let Some(op) = be.client.peek() else {
                return Ok(());
            };
            let (is_kernel, profile, expected) = (op.is_kernel(), op.profile, op.expected_dur);
            // The in-flight step's bottleneck resource, if any.
            let bottleneck = self.step.as_ref().map(|s| match s.kind {
                StepKind::Prefill { .. } => ResourceProfile::ComputeBound,
                StepKind::Decode { .. } => ResourceProfile::MemoryBound,
            });
            let class = match (&self.cfg.policy, bottleneck) {
                // Serving idle: everything goes (Temporal included).
                (_, None) => Some(GateClass::Free),
                (ServingPolicy::Mps, Some(_)) => Some(GateClass::Free),
                (ServingPolicy::Temporal, Some(_)) => None,
                (
                    ServingPolicy::Orion {
                        complement_budget,
                        offpeak_duty,
                    },
                    Some(bneck),
                ) => {
                    if !is_kernel {
                        // Copies ride the copy engine; admit freely.
                        Some(GateClass::Free)
                    } else {
                        let complement = (bneck == ResourceProfile::MemoryBound
                            && profile == ResourceProfile::ComputeBound)
                            || (bneck == ResourceProfile::ComputeBound
                                && profile == ResourceProfile::MemoryBound);
                        if complement {
                            (self.outstanding_complement + expected <= *complement_budget)
                                .then_some(GateClass::Complement)
                        } else {
                            // Same-profile/unknown: bounded duty slice of
                            // the current step.
                            let quota = self
                                .step
                                .as_ref()
                                .map(|s| s.est.mul_f64(*offpeak_duty))
                                .unwrap_or(SimTime::ZERO);
                            (self.offpeak_spent + expected <= quota)
                                .then_some(GateClass::Offpeak)
                        }
                    }
                }
            };
            let Some(class) = class else {
                return Ok(());
            };
            let Some(op) = be.client.pop() else {
                return Ok(());
            };
            match class {
                GateClass::Complement => self.outstanding_complement += expected,
                GateClass::Offpeak => self.offpeak_spent += expected,
                GateClass::Free => {}
            }
            let id = match &op.spec {
                OpSpec::Kernel(k) => self.gpu.submit_kernel(self.be_stream, k)?,
                OpSpec::H2D { bytes, blocking } => self.gpu.submit(
                    self.be_stream,
                    OpKind::MemcpyH2D {
                        bytes: *bytes,
                        blocking: *blocking,
                    },
                )?,
                OpSpec::D2H { bytes, blocking } => self.gpu.submit(
                    self.be_stream,
                    OpKind::MemcpyD2H {
                        bytes: *bytes,
                        blocking: *blocking,
                    },
                )?,
            };
            self.routes.insert(
                id.0,
                Route::Be {
                    request_id: op.request_id,
                    op_seq: op.op_seq,
                    last_of_request: op.last_of_request,
                    class,
                    expected,
                },
            );
        }
    }

    fn handle_inner(
        &mut self,
        now: SimTime,
        ev: Ev,
        sched: &mut Scheduler<Ev>,
    ) -> Result<(), ServingError> {
        // Completions at or before `now` are processed first so every
        // handler sees up-to-date batch/queue/device state.
        self.drain_gpu(now, sched)?;
        match ev {
            Ev::Arrival { idx } => {
                self.queue.push_back(idx);
                self.maybe_start_step(now, sched)?;
            }
            Ev::BePush => {
                if let Some(be) = self.be.as_mut() {
                    if be.client.push_next().is_some() && be.client.can_push() {
                        sched.schedule_in(be.launch_cost, Ev::BePush);
                    }
                }
                self.schedule_be(now)?;
            }
            Ev::BeStart => {
                if let Some(be) = self.be.as_mut() {
                    if be.client.try_start_request() {
                        sched.schedule_at(now, Ev::BePush);
                    }
                }
            }
            Ev::GpuWake { token } => {
                // Stale wake-ups (state changed since arming) must not
                // re-arm, or duplicate wake chains accumulate.
                if token != self.wake_token {
                    return Ok(());
                }
            }
        }
        self.arm_wake(now, sched);
        Ok(())
    }
}

impl World for ServingWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.fatal.is_some() {
            return;
        }
        if let Err(e) = self.handle_inner(now, ev, sched) {
            self.fatal = Some(e);
        }
    }
}

/// Runs one serving experiment (see [`super::run_serving`]).
pub(super) fn run(cfg: &ServingConfig) -> Result<ServingReport, ServingError> {
    let mut gpu = GpuEngine::new(cfg.spec.clone(), false);
    let weights = llm_weight_bytes();
    let static_needed = weights
        + cfg
            .be
            .as_ref()
            .map_or(0, |be| be.workload.memory_footprint);
    let capacity = cfg.spec.memory_capacity;
    let not_fit = |_e: GpuError| ServingError::ModelDoesNotFit {
        needed: static_needed,
        capacity,
    };
    gpu.alloc_immediate(weights).map_err(not_fit)?;
    let be = match &cfg.be {
        Some(spec) => {
            if !spec.arrivals.is_closed_loop() {
                return Err(ServingError::InvalidConfig(
                    "best-effort client must be closed-loop",
                ));
            }
            let profile = profile_workload(&spec.workload, &cfg.spec)?.table();
            gpu.alloc_immediate(spec.workload.memory_footprint)
                .map_err(not_fit)?;
            let mut client = ClientState::new(spec.clone(), profile);
            client.on_arrival(SimTime::ZERO);
            client.try_start_request();
            Some(BeState {
                client,
                launch_cost: cfg.spec.launch_overhead,
            })
        }
        None => None,
    };
    // The KV budget is whatever the static allocations left behind.
    let kv_budget = gpu.memory().capacity() - gpu.memory().used();
    let min_needed = kv_cache_bytes(cfg.prompt_tokens.0 + 1);
    if min_needed > kv_budget {
        return Err(ServingError::KvExhausted {
            needed: min_needed,
            available: kv_budget,
        });
    }
    let specs = generate_requests(cfg);
    let serve_stream = gpu.create_stream(StreamPriority::HIGH);
    let be_stream = gpu.create_stream(StreamPriority::DEFAULT);
    let has_be = be.is_some();
    let world = ServingWorld {
        gpu,
        cfg: cfg.clone(),
        serve_stream,
        be_stream,
        requests: specs.iter().map(|&s| Request::new(s)).collect(),
        queue: VecDeque::new(),
        prefill_q: VecDeque::new(),
        running: Vec::new(),
        step: None,
        step_ops: 0,
        routes: HashMap::new(),
        be,
        outstanding_complement: SimTime::ZERO,
        offpeak_spent: SimTime::ZERO,
        predictor: StepTimePredictor::default(),
        kv_used: 0,
        kv_peak: 0,
        kv_budget,
        tally: Tally::default(),
        ttft: LatencyRecorder::new(),
        per_token: LatencyRecorder::new(),
        itl: LatencyRecorder::new(),
        e2e: LatencyRecorder::new(),
        wake_token: 0,
        completion_buf: Vec::new(),
        fatal: None,
    };
    let mut sim = Simulation::new(world);
    for (i, s) in specs.iter().enumerate() {
        sim.schedule_at(s.arrival, Ev::Arrival { idx: i });
    }
    if has_be {
        sim.schedule_at(SimTime::ZERO, Ev::BePush);
    }
    let outcome = sim.run_until(cfg.horizon, 500_000_000);
    assert_ne!(
        outcome,
        orion_desim::sim::RunOutcome::BudgetExhausted,
        "serving run livelocked"
    );
    if let Some(e) = sim.world_mut().fatal.take() {
        return Err(e);
    }
    // Final drain at the horizon for exact utilization accounting.
    let horizon = cfg.horizon;
    sim.world_mut().gpu.advance_to(horizon);

    let w = sim.world_mut();
    let window = cfg.horizon - cfg.warmup;
    let window_secs = window.as_secs_f64();
    let t = std::mem::take(&mut w.tally);
    let be_completed = w.be.as_ref().map_or(0, |be| {
        be.client
            .finished
            .iter()
            .filter(|(at, _)| *at >= cfg.warmup)
            .count() as u64
    });
    Ok(ServingReport {
        policy: cfg.policy.label(),
        arrived: w.requests.len() as u64,
        admitted: t.admitted,
        completed: t.completed,
        shed_queue: t.shed_queue,
        shed_oversized: t.shed_oversized,
        dropped_evicted: t.dropped_evicted,
        evictions: t.evictions,
        deferred_kv: t.deferred_kv,
        deferred_slo: t.deferred_slo,
        deferred_batch: t.deferred_batch,
        joins: t.joins,
        joins_mid: t.joins_mid,
        leaves: t.leaves,
        leaves_mid: t.leaves_mid,
        decode_steps: t.decode_steps,
        prefill_steps: t.prefill_steps,
        peak_batch: t.peak_batch,
        mean_batch: if t.decode_steps == 0 {
            0.0
        } else {
            t.batch_sum as f64 / t.decode_steps as f64
        },
        tokens_generated: t.tokens_warm,
        tokens_per_sec: t.tokens_warm as f64 / window_secs,
        ttft: std::mem::take(&mut w.ttft),
        per_token: std::mem::take(&mut w.per_token),
        itl: std::mem::take(&mut w.itl),
        e2e: std::mem::take(&mut w.e2e),
        kv_peak_bytes: w.kv_peak,
        kv_budget_bytes: w.kv_budget,
        ledger_high_water: w.gpu.memory().high_water(),
        ledger_capacity: w.gpu.memory().capacity(),
        be_completed,
        be_tput: be_completed as f64 / window_secs,
        utilization: w.gpu.util_summary(),
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::super::{run_serving, ServingConfig, ServingPolicy};
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::registry::training_workload;
    use orion_workloads::ModelKind;

    use crate::client::ClientSpec;

    #[test]
    fn serving_alone_batches_and_meets_bookkeeping_invariants() {
        let r = run_serving(&ServingConfig::quick_test()).expect("serving run");
        assert!(r.arrived > 0);
        assert!(r.admitted > 0);
        assert!(r.completed > 0, "no request completed: {r:?}");
        assert!(r.decode_steps > 0 && r.prefill_steps > 0);
        assert!(r.peak_batch >= 2, "never batched: {r:?}");
        assert!(r.joins >= r.leaves);
        assert!(r.joins_mid > 0 && r.leaves_mid > 0, "no mid-batch churn");
        assert!(r.tokens_generated > 0 && r.tokens_per_sec > 0.0);
        // Ledger safety: high water never exceeds capacity, and the KV peak
        // stays within the budget.
        assert!(r.ledger_high_water <= r.ledger_capacity);
        assert!(r.kv_peak_bytes <= r.kv_budget_bytes);
        assert!(!r.ttft.is_empty() && !r.per_token.is_empty());
    }

    #[test]
    fn serving_is_deterministic() {
        let cfg = ServingConfig::quick_test();
        let a = run_serving(&cfg).expect("run a");
        let b = run_serving(&cfg).expect("run b");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.tokens_generated, b.tokens_generated);
        assert_eq!(a.decode_steps, b.decode_steps);
        assert_eq!(a.evictions, b.evictions);
        let (mut a, mut b) = (a, b);
        assert_eq!(a.per_token.p99(), b.per_token.p99());
        assert_eq!(a.ttft.p99(), b.ttft.p99());
    }

    #[test]
    fn constrained_memory_defers_and_evicts_without_oversubscription() {
        use orion_workloads::models::llm::{kv_cache_bytes, llm_weight_bytes};
        let mut cfg = ServingConfig::quick_test();
        // Just enough KV for a couple of requests: admission must defer and
        // decode growth must evict.
        cfg.spec.memory_capacity = llm_weight_bytes() + kv_cache_bytes(448);
        cfg.rps = 4.0;
        let r = run_serving(&cfg).expect("constrained run");
        assert!(
            r.deferred_kv > 0 || r.shed_queue > 0,
            "no memory-pressure gating: {r:?}"
        );
        assert!(r.ledger_high_water <= r.ledger_capacity);
        assert!(r.kv_peak_bytes <= r.kv_budget_bytes);
    }

    #[test]
    fn temporal_starves_be_while_orion_sustains_it() {
        let be = ClientSpec::best_effort(
            training_workload(ModelKind::ResNet50),
            ArrivalProcess::ClosedLoop,
        );
        let base = ServingConfig::quick_test();
        let orion = run_serving(
            &base
                .clone()
                .with_policy(ServingPolicy::orion_default())
                .with_be(be.clone()),
        )
        .expect("orion run");
        let temporal = run_serving(
            &base
                .clone()
                .with_policy(ServingPolicy::Temporal)
                .with_be(be),
        )
        .expect("temporal run");
        assert!(
            orion.be_completed >= temporal.be_completed,
            "orion BE {} < temporal BE {}",
            orion.be_completed,
            temporal.be_completed
        );
    }
}
