//! Request traces and per-request runtime state.

use orion_desim::rng::DetRng;
use orion_desim::time::SimTime;
use orion_gpu::memory::AllocId;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::models::llm::kv_cache_bytes;

use super::ServingConfig;

/// Immutable shape of one serving request, drawn deterministically from the
/// run seed before the simulation starts.
#[derive(Debug, Clone, Copy)]
pub struct RequestSpec {
    /// Arrival time.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens (includes the prefill's first token).
    pub output_tokens: u32,
    /// Interactive-class requests are evicted last under memory pressure.
    pub interactive: bool,
}

impl RequestSpec {
    /// KV bytes this request holds after `generated` tokens.
    pub fn kv_bytes_at(&self, generated: u32) -> u64 {
        kv_cache_bytes(self.prompt_tokens + generated)
    }

    /// KV bytes needed to admit this request (prompt + first token).
    pub fn admit_kv_bytes(&self) -> u64 {
        kv_cache_bytes(self.prompt_tokens + 1)
    }
}

/// Draws the request trace: Poisson arrivals, uniform prompt/output lengths,
/// Bernoulli priority class. Streams are domain-separated by fork index so
/// arrival times and request shapes are independent draws.
pub fn generate_requests(cfg: &ServingConfig) -> Vec<RequestSpec> {
    let mut rng = DetRng::new(cfg.seed);
    let arrivals =
        ArrivalProcess::Poisson { rps: cfg.rps }.schedule(cfg.horizon, &mut rng.fork(1));
    let mut shape = rng.fork(2);
    let (plo, phi) = cfg.prompt_tokens;
    let (olo, ohi) = cfg.output_tokens;
    arrivals
        .into_iter()
        .map(|arrival| {
            let prompt_tokens = plo + shape.uniform_u64(u64::from(phi - plo) + 1) as u32;
            let output_tokens = olo + shape.uniform_u64(u64::from(ohi - olo) + 1) as u32;
            let interactive = shape.next_f64() < cfg.interactive_fraction;
            RequestSpec {
                arrival,
                prompt_tokens,
                output_tokens,
                interactive,
            }
        })
        .collect()
}

/// Lifecycle of a request inside the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqState {
    /// Waiting in the admission queue.
    Queued,
    /// Admitted: KV allocated, prefill pending or in flight.
    Prefilling,
    /// Member of the running decode batch.
    Running,
    /// Produced its full output.
    Done,
    /// Shed (queue-stale, oversized) or dropped after repeated evictions.
    Dropped,
}

/// Mutable runtime state of one request.
#[derive(Debug)]
pub struct Request {
    /// Immutable shape.
    pub spec: RequestSpec,
    /// Lifecycle state.
    pub state: ReqState,
    /// Live KV allocation while admitted.
    pub kv: Option<AllocId>,
    /// Tokens of context currently cached (prompt + generated).
    pub kv_tokens: u32,
    /// Tokens generated so far.
    pub generated: u32,
    /// Times this request lost its KV cache to eviction.
    pub evictions: u32,
    /// Last (re-)enqueue time, for queue-wait shedding.
    pub queued_at: SimTime,
    /// Timestamp of the most recent token (for inter-token gaps).
    pub last_token_at: SimTime,
}

impl Request {
    /// Fresh queued state for an arriving (or re-queued) request.
    pub fn new(spec: RequestSpec) -> Self {
        Request {
            spec,
            state: ReqState::Queued,
            kv: None,
            kv_tokens: 0,
            generated: 0,
            evictions: 0,
            queued_at: spec.arrival,
            last_token_at: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_in_range() {
        let cfg = ServingConfig::quick_test();
        let a = generate_requests(&cfg);
        let b = generate_requests(&cfg);
        assert!(!a.is_empty(), "no arrivals within the horizon");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.prompt_tokens, y.prompt_tokens);
            assert_eq!(x.output_tokens, y.output_tokens);
            assert_eq!(x.interactive, y.interactive);
        }
        for r in &a {
            assert!(r.arrival < cfg.horizon);
            assert!((cfg.prompt_tokens.0..=cfg.prompt_tokens.1).contains(&r.prompt_tokens));
            assert!((cfg.output_tokens.0..=cfg.output_tokens.1).contains(&r.output_tokens));
        }
    }

    #[test]
    fn kv_sizing_tracks_context() {
        let spec = RequestSpec {
            arrival: SimTime::ZERO,
            prompt_tokens: 100,
            output_tokens: 10,
            interactive: true,
        };
        assert_eq!(spec.admit_kv_bytes(), kv_cache_bytes(101));
        assert_eq!(spec.kv_bytes_at(10), kv_cache_bytes(110));
    }
}
