//! LLM continuous-batching serving subsystem (DESIGN.md §17).
//!
//! The paper's §7 discussion flags LLM token generation as the ideal Orion
//! collocation candidate: memory-bound decode underutilizes SMs. This module
//! closes the gap between that observation and the grids by running an
//! open-loop request stream through a real serving state machine:
//!
//! - Each request is **prefilled** (one compute-bound, prompt-length-scaled
//!   pass, `llm_prefill`) and then joins a **running decode batch**: every
//!   decode step produces one token for every member
//!   (`llm_batched_decode_step`), and requests join and leave the batch at
//!   token boundaries — continuous batching in the Orca/vLLM sense.
//! - Each request's **KV cache is a live allocation** in the gpu-sim
//!   [`MemoryLedger`](orion_gpu::memory::MemoryLedger): allocated at
//!   admission (prompt tokens), grown one token per decode step, freed at
//!   completion or eviction. Memory pressure is therefore real: the ledger
//!   refuses oversubscription and the serving loop must evict.
//! - An **SLO-aware admission controller** gates new prefills on projected
//!   KV headroom (watermark over the post-static budget) and per-token
//!   deadline risk (predicted step time at `batch+1` against the per-token
//!   SLO), sheds queue-stale and oversized requests, and evicts by priority
//!   (batch-class before interactive, youngest first) when growth hits the
//!   ledger wall.
//! - A **serving-aware policy gate** ([`ServingPolicy`]) decides when a
//!   collocated best-effort training client's ops reach the device:
//!   `Temporal` waits for serving idleness, `Mps` submits eagerly, and
//!   `Orion` admits complement-profile kernels under an outstanding-duration
//!   budget while same-profile/unknown kernels get a small per-step duty
//!   quota — the serving adaptation of the paper's Listing 1.
//!
//! The subsystem is opt-in: nothing here runs unless `run_serving` is
//! called, so every existing grid and pinned digest is untouched.

mod admission;
mod request;
mod world;

pub use admission::AdmissionConfig;
pub use request::{generate_requests, RequestSpec};

use orion_desim::time::SimTime;
use orion_gpu::error::GpuError;
use orion_gpu::spec::GpuSpec;
use orion_gpu::util::UtilSummary;
use orion_metrics::LatencyRecorder;

use crate::client::ClientSpec;

/// Latency objectives of the serving system.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Target time-to-first-token. Queued requests are shed once their wait
    /// exceeds [`AdmissionConfig::max_queue_wait`] (reported against this).
    pub ttft: SimTime,
    /// Per-token (decode-step service time) objective; the admission
    /// controller's deadline-risk gate refuses joins whose predicted step
    /// time would exceed `slo_margin × per_token`.
    pub per_token: SimTime,
}

impl SloConfig {
    /// Interactive-serving defaults: 300 ms TTFT, 30 ms per token.
    pub fn interactive() -> Self {
        SloConfig {
            ttft: SimTime::from_millis(300),
            per_token: SimTime::from_millis(30),
        }
    }
}

/// How a collocated best-effort client's ops are gated against the serving
/// stream (the serving analogue of the collocation `PolicyKind`).
#[derive(Debug, Clone)]
pub enum ServingPolicy {
    /// Best-effort ops are submitted only while no serving step is in
    /// flight (hard temporal sharing; at serving saturation BE starves).
    Temporal,
    /// Best-effort ops are submitted as soon as the client emits them
    /// (spatial sharing with no interference awareness).
    Mps,
    /// Phase-aware Orion gate. During a decode step (memory-bound
    /// bottleneck) compute-bound BE kernels are admitted while their
    /// outstanding duration stays under `complement_budget`; during prefill
    /// the complement is memory-bound. Same-profile and unknown kernels are
    /// restricted to an `offpeak_duty` fraction of each step's predicted
    /// duration, so the device's memory system is overcommitted only a
    /// bounded slice of every step.
    Orion {
        /// Outstanding-duration cap for complement-profile BE kernels.
        complement_budget: SimTime,
        /// Fraction of each serving step usable by same-profile/unknown
        /// BE kernels.
        offpeak_duty: f64,
    },
}

impl ServingPolicy {
    /// The default Orion serving gate, tuned so the default collocation
    /// grid holds the per-token SLO with ~1.5 ms of p99 headroom while the
    /// best-effort client keeps ≈75% of its ungated (MPS) throughput.
    pub fn orion_default() -> Self {
        ServingPolicy::Orion {
            complement_budget: SimTime::from_millis(10),
            offpeak_duty: 0.35,
        }
    }

    /// Short label for tables and JSONL.
    pub fn label(&self) -> &'static str {
        match self {
            ServingPolicy::Temporal => "temporal",
            ServingPolicy::Mps => "mps",
            ServingPolicy::Orion { .. } => "orion",
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Device to serve on.
    pub spec: GpuSpec,
    /// Simulated duration.
    pub horizon: SimTime,
    /// Leading window excluded from statistics.
    pub warmup: SimTime,
    /// Seed for arrivals and request shapes.
    pub seed: u64,
    /// Open-loop Poisson request rate.
    pub rps: f64,
    /// Inclusive uniform range of prompt lengths (tokens).
    pub prompt_tokens: (u32, u32),
    /// Inclusive uniform range of output lengths (tokens).
    pub output_tokens: (u32, u32),
    /// Fraction of requests in the interactive (higher-priority) class;
    /// the rest are batch-class and are evicted first under pressure.
    pub interactive_fraction: f64,
    /// Hard cap on concurrent requests (running + prefilling).
    pub max_batch: u32,
    /// Latency objectives.
    pub slo: SloConfig,
    /// Admission/eviction tuning.
    pub admission: AdmissionConfig,
    /// Best-effort gating policy.
    pub policy: ServingPolicy,
    /// Collocated best-effort training client, if any.
    pub be: Option<ClientSpec>,
}

impl ServingConfig {
    /// Baseline serving configuration on a V100: 12 s horizon, 2 s warmup,
    /// interactive SLOs, no collocation.
    pub fn paper_default() -> Self {
        ServingConfig {
            spec: GpuSpec::v100_16gb(),
            horizon: SimTime::from_secs(12),
            warmup: SimTime::from_secs(2),
            seed: 42,
            rps: 1.8,
            prompt_tokens: (64, 320),
            output_tokens: (32, 160),
            interactive_fraction: 0.7,
            max_batch: 8,
            slo: SloConfig::interactive(),
            admission: AdmissionConfig::default(),
            policy: ServingPolicy::orion_default(),
            be: None,
        }
    }

    /// Abbreviated configuration for tests/`ORION_FAST`: 4 s horizon with a
    /// denser stream of shorter requests so batching, gating, and eviction
    /// all fire within the window. The batch cap is one notch tighter than
    /// the full config because shorter contexts shrink the serial baseline's
    /// step time, which would otherwise let the batched-vs-serial per-token
    /// ratio creep past the documented 1.5x bound.
    pub fn quick_test() -> Self {
        ServingConfig {
            horizon: SimTime::from_secs(4),
            warmup: SimTime::from_millis(800),
            rps: 3.0,
            prompt_tokens: (48, 192),
            output_tokens: (24, 96),
            max_batch: 6,
            ..Self::paper_default()
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the gating policy.
    pub fn with_policy(mut self, policy: ServingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a collocated best-effort client.
    pub fn with_be(mut self, be: ClientSpec) -> Self {
        self.be = Some(be);
        self
    }

    fn validate(&self) -> Result<(), ServingError> {
        if !(self.rps.is_finite() && self.rps > 0.0) {
            return Err(ServingError::InvalidConfig("rps must be positive and finite"));
        }
        if self.max_batch == 0 {
            return Err(ServingError::InvalidConfig("max_batch must be at least 1"));
        }
        if self.horizon <= self.warmup {
            return Err(ServingError::InvalidConfig("horizon must exceed warmup"));
        }
        if self.prompt_tokens.0 == 0 || self.prompt_tokens.0 > self.prompt_tokens.1 {
            return Err(ServingError::InvalidConfig("prompt token range is empty"));
        }
        if self.output_tokens.0 == 0 || self.output_tokens.0 > self.output_tokens.1 {
            return Err(ServingError::InvalidConfig("output token range is empty"));
        }
        if !(0.0..=1.0).contains(&self.interactive_fraction) {
            return Err(ServingError::InvalidConfig("interactive_fraction outside [0, 1]"));
        }
        self.admission.validate()?;
        if let ServingPolicy::Orion { offpeak_duty, .. } = self.policy {
            if !(0.0..=1.0).contains(&offpeak_duty) {
                return Err(ServingError::InvalidConfig("offpeak_duty outside [0, 1]"));
            }
        }
        Ok(())
    }
}

/// Typed failures of the serving subsystem. Admission and eviction never
/// panic: impossible configurations surface here, and per-request pressure
/// is handled by shed/evict counters instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// A configuration parameter is out of range.
    InvalidConfig(&'static str),
    /// The model weights (plus any collocated client's footprint) do not fit
    /// on the device, so the system cannot start.
    ModelDoesNotFit {
        /// Static bytes required before any KV cache.
        needed: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// The post-static KV budget cannot hold even the smallest possible
    /// request, so no request could ever be admitted.
    KvExhausted {
        /// Bytes the smallest request needs (prompt + first token).
        needed: u64,
        /// KV bytes actually available.
        available: u64,
    },
    /// The underlying device simulation failed.
    Gpu(GpuError),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::InvalidConfig(what) => write!(f, "invalid serving config: {what}"),
            ServingError::ModelDoesNotFit { needed, capacity } => write!(
                f,
                "model state ({needed} B) does not fit device capacity ({capacity} B)"
            ),
            ServingError::KvExhausted { needed, available } => write!(
                f,
                "KV budget exhausted: smallest request needs {needed} B, {available} B available"
            ),
            ServingError::Gpu(e) => write!(f, "gpu error: {e}"),
        }
    }
}

impl std::error::Error for ServingError {}

impl From<GpuError> for ServingError {
    fn from(e: GpuError) -> Self {
        ServingError::Gpu(e)
    }
}

/// Outcome of a serving run. Latency statistics exclude the warmup window.
#[derive(Debug)]
pub struct ServingReport {
    /// Gating policy label.
    pub policy: &'static str,
    /// Requests that arrived within the horizon.
    pub arrived: u64,
    /// Requests admitted (KV allocated, prefill scheduled) at least once.
    pub admitted: u64,
    /// Requests that produced their full output.
    pub completed: u64,
    /// Requests shed because their queue wait exceeded the admission cap.
    pub shed_queue: u64,
    /// Requests shed because their minimal KV footprint exceeds the budget.
    pub shed_oversized: u64,
    /// Requests dropped after exhausting their eviction/retry budget.
    pub dropped_evicted: u64,
    /// KV evictions performed under memory pressure.
    pub evictions: u64,
    /// Admission deferrals: projected KV above the watermark.
    pub deferred_kv: u64,
    /// Admission deferrals: predicted step time above the SLO margin.
    pub deferred_slo: u64,
    /// Admission deferrals: batch already at `max_batch`.
    pub deferred_batch: u64,
    /// Requests that joined the decode batch.
    pub joins: u64,
    /// Joins that happened while other requests were already decoding.
    pub joins_mid: u64,
    /// Requests that left the batch on completion.
    pub leaves: u64,
    /// Leaves that happened while other requests kept decoding.
    pub leaves_mid: u64,
    /// Decode steps executed.
    pub decode_steps: u64,
    /// Prefill passes executed.
    pub prefill_steps: u64,
    /// Largest decode batch observed.
    pub peak_batch: u32,
    /// Mean decode batch size over all decode steps.
    pub mean_batch: f64,
    /// Tokens generated within the measurement window.
    pub tokens_generated: u64,
    /// Tokens per second over the measurement window.
    pub tokens_per_sec: f64,
    /// Time to first token (arrival → end of prefill).
    pub ttft: LatencyRecorder,
    /// Decode-step service time per generated token. This isolates GPU
    /// interference: scheduling gaps (a prefill inserted between steps)
    /// land in `itl` and TTFT instead.
    pub per_token: LatencyRecorder,
    /// Inter-token gap as a reader would see it (includes prefill
    /// insertions between a request's tokens).
    pub itl: LatencyRecorder,
    /// End-to-end request latency (arrival → last token).
    pub e2e: LatencyRecorder,
    /// Peak KV bytes live at once.
    pub kv_peak_bytes: u64,
    /// KV budget (device capacity minus static allocations).
    pub kv_budget_bytes: u64,
    /// Ledger high-water mark (static + KV) — never exceeds capacity.
    pub ledger_high_water: u64,
    /// Device capacity.
    pub ledger_capacity: u64,
    /// Best-effort iterations completed in the window.
    pub be_completed: u64,
    /// Best-effort iterations per second over the window.
    pub be_tput: f64,
    /// Device utilization averages.
    pub utilization: UtilSummary,
    /// Measurement window length.
    pub window: SimTime,
}

/// Runs one serving experiment.
///
/// # Errors
///
/// [`ServingError::InvalidConfig`] for out-of-range parameters,
/// [`ServingError::ModelDoesNotFit`] when weights + collocated footprints
/// exceed device capacity, [`ServingError::KvExhausted`] when the KV budget
/// cannot hold even the smallest request, and [`ServingError::Gpu`] for
/// device-simulation failures.
pub fn run_serving(cfg: &ServingConfig) -> Result<ServingReport, ServingError> {
    cfg.validate()?;
    world::run(cfg)
}

// The bench runner fans serving cells across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<ServingConfig>();
    assert_sync::<ServingConfig>();
    assert_send::<ServingReport>();
    assert_send::<ServingError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_config_variants_are_exact() {
        let mut cfg = ServingConfig::quick_test();
        cfg.rps = 0.0;
        assert!(matches!(
            run_serving(&cfg),
            Err(ServingError::InvalidConfig("rps must be positive and finite"))
        ));

        let mut cfg = ServingConfig::quick_test();
        cfg.max_batch = 0;
        assert!(matches!(
            run_serving(&cfg),
            Err(ServingError::InvalidConfig("max_batch must be at least 1"))
        ));

        let mut cfg = ServingConfig::quick_test();
        cfg.warmup = cfg.horizon;
        assert!(matches!(
            run_serving(&cfg),
            Err(ServingError::InvalidConfig("horizon must exceed warmup"))
        ));

        let mut cfg = ServingConfig::quick_test();
        cfg.prompt_tokens = (0, 8);
        assert!(matches!(
            run_serving(&cfg),
            Err(ServingError::InvalidConfig("prompt token range is empty"))
        ));
    }

    #[test]
    fn model_does_not_fit_is_exact() {
        let mut cfg = ServingConfig::quick_test();
        cfg.spec.memory_capacity = 1 << 30; // 1 GiB < 6.75 GiB of weights
        match run_serving(&cfg) {
            Err(ServingError::ModelDoesNotFit { needed, capacity }) => {
                assert_eq!(capacity, 1 << 30);
                assert!(needed > capacity);
            }
            other => panic!("expected ModelDoesNotFit, got {other:?}"),
        }
    }

    #[test]
    fn kv_exhausted_is_exact() {
        use orion_workloads::models::llm::{kv_cache_bytes, llm_weight_bytes};
        let mut cfg = ServingConfig::quick_test();
        // Weights fit with a sliver of KV headroom too small for the
        // smallest admissible request (prompt_min + 1 tokens).
        cfg.spec.memory_capacity =
            llm_weight_bytes() + kv_cache_bytes(cfg.prompt_tokens.0 + 1) - 1;
        match run_serving(&cfg) {
            Err(ServingError::KvExhausted { needed, available }) => {
                assert_eq!(needed, kv_cache_bytes(cfg.prompt_tokens.0 + 1));
                assert_eq!(available, needed - 1);
            }
            other => panic!("expected KvExhausted, got {other:?}"),
        }
    }

    #[test]
    fn gpu_error_conversion_and_display() {
        let e: ServingError = GpuError::UnknownAllocation(7).into();
        assert!(matches!(e, ServingError::Gpu(GpuError::UnknownAllocation(7))));
        assert!(e.to_string().contains("gpu error"));
        let e = ServingError::KvExhausted {
            needed: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
    }
}
