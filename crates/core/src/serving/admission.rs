//! Admission tuning, step-time prediction, and eviction victim selection.

use std::collections::HashMap;

use orion_desim::time::SimTime;
use orion_workloads::models::llm::llm_batched_decode_step;

use super::request::Request;
use super::ServingError;

/// Tuning of the SLO-aware admission controller.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Fraction of the KV budget admission may plan up to: projected KV
    /// (live + candidate prompt + lookahead) must stay below
    /// `watermark × budget`. Headroom above the watermark absorbs decode
    /// growth before evictions fire.
    pub watermark: f64,
    /// Deadline-risk margin: a join is deferred when the predicted decode
    /// step time at `batch + 1` exceeds `slo_margin × per_token` SLO. The
    /// margin reserves room for collocation interference the solo
    /// prediction cannot see.
    pub slo_margin: f64,
    /// Tokens of per-request growth the KV projection reserves beyond the
    /// prompt. Zero is vLLM-style optimistic admission (rely on eviction);
    /// the mean output length makes admission conservative enough that
    /// evictions never fire.
    pub lookahead_tokens: u32,
    /// Evictions a request survives (re-queued, re-prefilled) before it is
    /// dropped.
    pub max_evictions: u32,
    /// Queued requests are shed once they have waited this long.
    pub max_queue_wait: SimTime,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            watermark: 0.9,
            slo_margin: 0.75,
            lookahead_tokens: 0,
            max_evictions: 2,
            max_queue_wait: SimTime::from_secs(2),
        }
    }
}

impl AdmissionConfig {
    pub(super) fn validate(&self) -> Result<(), ServingError> {
        if !(0.0..=1.0).contains(&self.watermark) || self.watermark == 0.0 {
            return Err(ServingError::InvalidConfig("watermark outside (0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.slo_margin) || self.slo_margin == 0.0 {
            return Err(ServingError::InvalidConfig("slo_margin outside (0, 1]"));
        }
        Ok(())
    }
}

/// Context lengths are quantized to pages of this many tokens for step-time
/// prediction and decode-kernel generation (paged-attention cost quanta);
/// keeps the prediction cache small and kernel descriptors reusable.
pub(super) const CTX_BUCKET_TOKENS: u32 = 64;

/// Rounds a context length up to its page boundary.
pub(super) fn ctx_bucket(ctx: u32) -> u32 {
    ctx.max(1).div_ceil(CTX_BUCKET_TOKENS) * CTX_BUCKET_TOKENS
}

/// Memoized solo decode-step-time predictor, keyed on (batch, context
/// bucket). The prediction is the generated workload's own solo kernel time,
/// so the deadline-risk gate and the submitted kernels can never disagree.
#[derive(Debug, Default)]
pub(super) struct StepTimePredictor {
    cache: HashMap<(u32, u32), SimTime>,
}

impl StepTimePredictor {
    pub(super) fn predict(&mut self, batch: u32, ctx: u32) -> SimTime {
        let key = (batch, ctx_bucket(ctx));
        *self
            .cache
            .entry(key)
            .or_insert_with(|| llm_batched_decode_step(key.0, key.1).solo_kernel_time())
    }
}

/// Picks the eviction victim among `members` (indices into `requests`):
/// batch-class before interactive, then youngest arrival, then highest
/// index — so interactive requests with the most sunk work survive longest
/// and the choice is deterministic. Returns `None` when `members` is empty.
pub(super) fn choose_victim(requests: &[Request], members: &[usize]) -> Option<usize> {
    members
        .iter()
        .copied()
        .max_by_key(|&i| {
            let r = &requests[i];
            (!r.spec.interactive, r.spec.arrival, i)
        })
}

#[cfg(test)]
mod tests {
    use super::super::request::RequestSpec;
    use super::*;

    fn req(arrival_ms: u64, interactive: bool) -> Request {
        Request::new(RequestSpec {
            arrival: SimTime::from_millis(arrival_ms),
            prompt_tokens: 10,
            output_tokens: 5,
            interactive,
        })
    }

    #[test]
    fn victim_prefers_batch_class_then_youngest() {
        let requests = vec![req(1, true), req(2, false), req(3, false), req(4, true)];
        // Batch-class requests (1, 2) are victims before interactive ones;
        // among them the youngest (index 2, arrived at 3 ms) goes first.
        assert_eq!(choose_victim(&requests, &[0, 1, 2, 3]), Some(2));
        assert_eq!(choose_victim(&requests, &[0, 1, 3]), Some(1));
        // Only interactive left: youngest goes.
        assert_eq!(choose_victim(&requests, &[0, 3]), Some(3));
        assert_eq!(choose_victim(&requests, &[]), None);
    }

    #[test]
    fn predictor_is_monotone_in_batch_and_context() {
        let mut p = StepTimePredictor::default();
        let base = p.predict(1, 256);
        assert!(p.predict(4, 256) > base);
        assert!(p.predict(4, 1024) > p.predict(4, 256));
        // Memoized: the same key returns the identical value.
        assert_eq!(p.predict(4, 256), p.predict(4, 250), "same bucket");
    }

    #[test]
    fn ctx_bucket_rounds_up_to_pages() {
        assert_eq!(ctx_bucket(1), 64);
        assert_eq!(ctx_bucket(64), 64);
        assert_eq!(ctx_bucket(65), 128);
        assert_eq!(ctx_bucket(0), 64);
    }
}
