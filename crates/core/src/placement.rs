//! Cluster-level placement (paper §7 "cluster manager co-design" extension).
//!
//! Given a set of jobs with offline profiles, the cluster manager can place
//! jobs with *complementary* compute/memory profiles on the same GPU to
//! maximize utilization and minimize interference. This module implements a
//! greedy matcher over a complementarity score: pairs whose time-weighted
//! compute and memory demands overlap least score highest.

use orion_workloads::model::Workload;

/// Time-weighted average (compute, memory) demand of a workload's kernels.
pub fn demand_vector(w: &Workload) -> (f64, f64) {
    let mut c = 0.0;
    let mut m = 0.0;
    let mut t = 0.0;
    for k in w.kernels() {
        let d = k.solo_duration.as_secs_f64();
        c += d * k.compute_util;
        m += d * k.mem_util;
        t += d;
    }
    if t <= 0.0 {
        (0.0, 0.0)
    } else {
        (c / t, m / t)
    }
}

/// Complementarity of two jobs: high when one is compute-leaning and the
/// other memory-leaning, low when both press the same resource.
///
/// Score = 1 - (overlap of normalized demand directions); in `[0, 1]`.
pub fn complementarity(a: &Workload, b: &Workload) -> f64 {
    let (ca, ma) = demand_vector(a);
    let (cb, mb) = demand_vector(b);
    let na = (ca * ca + ma * ma).sqrt();
    let nb = (cb * cb + mb * mb).sqrt();
    if na <= 0.0 || nb <= 0.0 {
        return 1.0;
    }
    // Cosine similarity of the demand vectors; complementarity inverts it.
    let cos = ((ca * cb + ma * mb) / (na * nb)).clamp(0.0, 1.0);
    1.0 - cos
}

/// A pairing of job indices onto GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Pairs of job indices sharing a GPU.
    pub pairs: Vec<(usize, usize)>,
    /// Jobs placed alone (odd one out).
    pub singles: Vec<usize>,
    /// Sum of pair complementarity scores.
    pub total_score: f64,
}

/// Greedily pairs jobs across GPUs by descending complementarity, subject to
/// the pair fitting in `gpu_memory` bytes.
pub fn place_jobs(jobs: &[Workload], gpu_memory: u64) -> Placement {
    let n = jobs.len();
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if jobs[i].memory_footprint + jobs[j].memory_footprint <= gpu_memory {
                edges.push((complementarity(&jobs[i], &jobs[j]), i, j));
            }
        }
    }
    edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut used = vec![false; n];
    let mut pairs = Vec::new();
    let mut total_score = 0.0;
    for (score, i, j) in edges {
        if !used[i] && !used[j] {
            used[i] = true;
            used[j] = true;
            pairs.push((i, j));
            total_score += score;
        }
    }
    let singles = (0..n).filter(|&i| !used[i]).collect();
    Placement {
        pairs,
        singles,
        total_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_workloads::registry::{inference_workload, training_workload};
    use orion_workloads::ModelKind;

    #[test]
    fn demand_vectors_reflect_model_character() {
        let bert = inference_workload(ModelKind::Bert);
        let llm = inference_workload(ModelKind::LlmDecode);
        let (cb, mb) = demand_vector(&bert);
        let (cl, ml) = demand_vector(&llm);
        assert!(cb > mb, "BERT inference is compute-leaning");
        assert!(ml > cl, "LLM decode is memory-leaning");
    }

    #[test]
    fn complementarity_prefers_opposite_jobs() {
        let bert = inference_workload(ModelKind::Bert);
        let llm = inference_workload(ModelKind::LlmDecode);
        let bert2 = inference_workload(ModelKind::Bert);
        assert!(complementarity(&bert, &llm) > complementarity(&bert, &bert2));
    }

    #[test]
    fn placement_pairs_all_when_they_fit() {
        let jobs = vec![
            inference_workload(ModelKind::Bert),
            inference_workload(ModelKind::LlmDecode),
            inference_workload(ModelKind::ResNet50),
            inference_workload(ModelKind::MobileNetV2),
        ];
        let p = place_jobs(&jobs, 16 * (1 << 30));
        assert_eq!(p.pairs.len(), 2);
        assert!(p.singles.is_empty());
        // BERT (compute) pairs with the LLM decode (memory).
        assert!(p.pairs.contains(&(0, 1)) || p.pairs.contains(&(1, 0)));
    }

    #[test]
    fn placement_respects_memory() {
        // Two large training jobs that cannot share a 8 GiB device.
        let jobs = vec![
            training_workload(ModelKind::Transformer), // 8.5 GiB
            training_workload(ModelKind::MobileNetV2), // 6.9 GiB
        ];
        let p = place_jobs(&jobs, 8 * (1 << 30));
        assert!(p.pairs.is_empty());
        assert_eq!(p.singles, vec![0, 1]);
    }

    #[test]
    fn odd_job_counts_leave_a_single() {
        let jobs = vec![
            inference_workload(ModelKind::ResNet50),
            inference_workload(ModelKind::ResNet101),
            inference_workload(ModelKind::MobileNetV2),
        ];
        let p = place_jobs(&jobs, 16 * (1 << 30));
        assert_eq!(p.pairs.len(), 1);
        assert_eq!(p.singles.len(), 1);
    }
}
