//! Cluster-level placement (paper §7 "cluster manager co-design" extension).
//!
//! Given a set of jobs with offline profiles, the cluster manager can place
//! jobs with *complementary* compute/memory profiles on the same GPU to
//! maximize utilization and minimize interference. This module implements
//! two matchers over a complementarity score:
//!
//! - [`place_jobs`]: the original greedy *pair* matcher (one edge list,
//!   descending score), kept for the small-cluster [`crate::cluster::run_cluster`]
//!   path and the examples.
//! - [`FleetPlacer`] / [`pack_jobs`]: an incremental *k-way* packer — a GPU
//!   hosts at most one high-priority job plus N best-effort jobs subject to
//!   the memory ledger — used by the fleet control plane
//!   ([`crate::cluster::FleetSim`]) where jobs arrive and depart over time.
//!
//! All tie-breaks are explicit (score, then lowest job/GPU index) so
//! placement is a pure function of its inputs: the fleet determinism tests
//! replay the same trace at 1/4/7 runner threads and require byte-identical
//! output.

use orion_profiler::ProfileTable;
use orion_workloads::model::Workload;

/// Time-weighted average (compute, memory) demand of a workload's kernels.
pub fn demand_vector(w: &Workload) -> (f64, f64) {
    let mut c = 0.0;
    let mut m = 0.0;
    let mut t = 0.0;
    for k in w.kernels() {
        let d = k.solo_duration.as_secs_f64();
        c += d * k.compute_util;
        m += d * k.mem_util;
        t += d;
    }
    if t <= 0.0 {
        (0.0, 0.0)
    } else {
        (c / t, m / t)
    }
}

/// Time-weighted (compute, memory) demand out of a *learned* profile table
/// (PR 5 online profiling), for re-placement decisions that should reflect
/// measured behavior rather than the static workload description.
///
/// Returns `None` when the table has no kernel entries (cold start), so the
/// caller can fall back to [`demand_vector`]. Iterates kernels in id order:
/// `ProfileTable` is hash-backed and its raw iteration order must never leak
/// into placement decisions.
pub fn demand_from_profiles(table: &ProfileTable) -> Option<(f64, f64)> {
    let ids = table.sorted_ids();
    if ids.is_empty() {
        return None;
    }
    let mut c = 0.0;
    let mut m = 0.0;
    let mut t = 0.0;
    // `sorted_ids` and `get` come from the same table, so every lookup
    // should hit; tolerate a miss anyway rather than panicking mid-fleet.
    for k in ids.into_iter().filter_map(|id| table.get(id)) {
        let d = k.duration.as_secs_f64();
        c += d * k.compute_util;
        m += d * k.mem_util;
        t += d;
    }
    if t <= 0.0 {
        None
    } else {
        Some((c / t, m / t))
    }
}

/// Complementarity of two demand vectors: high when one is compute-leaning
/// and the other memory-leaning, low when both press the same resource.
///
/// Score = 1 - (overlap of normalized demand directions); in `[0, 1]`.
pub fn demand_complementarity(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (ca, ma) = a;
    let (cb, mb) = b;
    let na = (ca * ca + ma * ma).sqrt();
    let nb = (cb * cb + mb * mb).sqrt();
    if na <= 0.0 || nb <= 0.0 {
        return 1.0;
    }
    // Cosine similarity of the demand vectors; complementarity inverts it.
    let cos = ((ca * cb + ma * mb) / (na * nb)).clamp(0.0, 1.0);
    1.0 - cos
}

/// [`demand_complementarity`] over two workloads' static demand vectors.
pub fn complementarity(a: &Workload, b: &Workload) -> f64 {
    demand_complementarity(demand_vector(a), demand_vector(b))
}

/// A pairing of job indices onto GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Pairs of job indices sharing a GPU.
    pub pairs: Vec<(usize, usize)>,
    /// Jobs placed alone (odd one out), in index order.
    pub singles: Vec<usize>,
    /// Jobs whose footprint exceeds `gpu_memory` on their own: they cannot
    /// be placed at all, not even alone, and the caller must reject them.
    pub oversized: Vec<usize>,
    /// Sum of pair complementarity scores.
    pub total_score: f64,
}

/// Greedily pairs jobs across GPUs by descending complementarity, subject to
/// the pair fitting in `gpu_memory` bytes.
///
/// Jobs that do not fit on a device even alone land in
/// [`Placement::oversized`], never in `singles`. Equal-score edges resolve
/// by lowest `(i, j)` so the placement is deterministic.
pub fn place_jobs(jobs: &[Workload], gpu_memory: u64) -> Placement {
    let n = jobs.len();
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if jobs[i].memory_footprint + jobs[j].memory_footprint <= gpu_memory {
                edges.push((complementarity(&jobs[i], &jobs[j]), i, j));
            }
        }
    }
    // Descending score; ties resolve by lowest (i, j) pair so the result is
    // independent of how the edge list happened to be built.
    edges.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });

    let mut used = vec![false; n];
    let mut pairs = Vec::new();
    let mut total_score = 0.0;
    for (score, i, j) in edges {
        if !used[i] && !used[j] {
            used[i] = true;
            used[j] = true;
            pairs.push((i, j));
            total_score += score;
        }
    }
    let mut singles = Vec::new();
    let mut oversized = Vec::new();
    for i in 0..n {
        if used[i] {
            continue;
        }
        if jobs[i].memory_footprint > gpu_memory {
            oversized.push(i);
        } else {
            singles.push(i);
        }
    }
    Placement {
        pairs,
        singles,
        oversized,
        total_score,
    }
}

/// Placement-relevant summary of one job for the k-way packer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackJob {
    /// Memory footprint in bytes (charged against the GPU ledger).
    pub mem: u64,
    /// (compute, memory) demand vector used for complementarity scoring.
    pub demand: (f64, f64),
    /// High-priority job: at most one per GPU.
    pub hp: bool,
}

#[derive(Debug, Clone, Default)]
struct GpuSlot {
    free_mem: u64,
    residents: Vec<usize>,
    hp: Option<usize>,
    /// Offline (dead or quarantined) GPUs accept no placements. Residents
    /// are evacuated by the fleet control plane, not by the placer.
    offline: bool,
}

/// Incremental k-way packer over a fixed fleet of identical GPUs.
///
/// Invariants per GPU: at most `max_jobs` residents, at most one
/// high-priority resident, and the sum of resident footprints fits in
/// `gpu_memory`. Candidate GPUs are scored by mean complementarity between
/// the incoming job's demand vector and the residents' demand vectors;
/// occupied GPUs are preferred over empty ones (pack first, spread only when
/// forced), ties resolve to the lowest GPU index.
#[derive(Debug, Clone)]
pub struct FleetPlacer {
    gpu_memory: u64,
    max_jobs: usize,
    gpus: Vec<GpuSlot>,
    /// Job id -> (gpu, job summary) for current residents.
    placed: std::collections::BTreeMap<usize, (usize, PackJob)>,
}

impl FleetPlacer {
    /// A placer over `gpus` empty devices of `gpu_memory` bytes each,
    /// hosting at most `max_jobs_per_gpu` jobs per device.
    pub fn new(gpus: usize, gpu_memory: u64, max_jobs_per_gpu: usize) -> Self {
        FleetPlacer {
            gpu_memory,
            max_jobs: max_jobs_per_gpu.max(1),
            gpus: vec![
                GpuSlot {
                    free_mem: gpu_memory,
                    residents: Vec::new(),
                    hp: None,
                    offline: false,
                };
                gpus
            ],
            placed: std::collections::BTreeMap::new(),
        }
    }

    fn fits(&self, slot: &GpuSlot, job: &PackJob) -> bool {
        !slot.offline
            && slot.free_mem >= job.mem
            && slot.residents.len() < self.max_jobs
            && !(job.hp && slot.hp.is_some())
    }

    /// Mean complementarity of `demand` against a GPU's residents
    /// (1.0 for an empty GPU).
    pub fn score_against(&self, gpu: usize, demand: (f64, f64)) -> f64 {
        let slot = &self.gpus[gpu];
        if slot.residents.is_empty() {
            return 1.0;
        }
        let sum: f64 = slot
            .residents
            .iter()
            .map(|r| demand_complementarity(demand, self.placed[r].1.demand))
            .sum();
        sum / slot.residents.len() as f64
    }

    /// Places job `id` on the best complementary GPU with capacity, skipping
    /// GPU `exclude` if given. Occupied GPUs win over empty ones; among
    /// occupied candidates the highest mean complementarity wins, ties to
    /// the lowest GPU index. Returns the chosen GPU, or `None` when no GPU
    /// can host the job right now.
    ///
    /// # Panics
    ///
    /// Panics when `id` is already placed.
    pub fn try_place(&mut self, id: usize, job: PackJob, exclude: Option<usize>) -> Option<usize> {
        assert!(!self.placed.contains_key(&id), "job {id} already placed");
        if job.mem > self.gpu_memory {
            return None;
        }
        let mut best_occupied: Option<(f64, usize)> = None;
        let mut first_empty: Option<usize> = None;
        for (g, slot) in self.gpus.iter().enumerate() {
            if Some(g) == exclude || !self.fits(slot, &job) {
                continue;
            }
            if slot.residents.is_empty() {
                if first_empty.is_none() {
                    first_empty = Some(g);
                }
            } else {
                let score = self.score_against(g, job.demand);
                // Strictly-greater keeps the lowest index on ties.
                if best_occupied.is_none_or(|(s, _)| score > s) {
                    best_occupied = Some((score, g));
                }
            }
        }
        let gpu = best_occupied.map(|(_, g)| g).or(first_empty)?;
        self.force_place(id, job, gpu);
        Some(gpu)
    }

    /// Places job `id` on a specific GPU (used to undo a tentative removal).
    ///
    /// # Panics
    ///
    /// Panics when the job does not fit or `id` is already placed.
    pub fn force_place(&mut self, id: usize, job: PackJob, gpu: usize) {
        assert!(!self.placed.contains_key(&id), "job {id} already placed");
        let slot = &mut self.gpus[gpu];
        assert!(
            !slot.offline
                && slot.free_mem >= job.mem
                && slot.residents.len() < self.max_jobs
                && !(job.hp && slot.hp.is_some()),
            "job {id} does not fit on gpu {gpu}"
        );
        slot.free_mem -= job.mem;
        slot.residents.push(id);
        if job.hp {
            slot.hp = Some(id);
        }
        self.placed.insert(id, (gpu, job));
    }

    /// Removes job `id`, freeing its slot. Returns the GPU it was on.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not placed.
    pub fn remove(&mut self, id: usize) -> usize {
        let (gpu, job) = self.placed.remove(&id).expect("job not placed");
        let slot = &mut self.gpus[gpu];
        slot.free_mem += job.mem;
        slot.residents.retain(|&r| r != id);
        if slot.hp == Some(id) {
            slot.hp = None;
        }
        gpu
    }

    /// Replaces the demand vector used to score job `id` in future
    /// placements (fed by the online-learned profile tables).
    pub fn update_demand(&mut self, id: usize, demand: (f64, f64)) {
        if let Some(entry) = self.placed.get_mut(&id) {
            entry.1.demand = demand;
        }
    }

    /// The GPU hosting job `id`, if placed.
    pub fn gpu_of(&self, id: usize) -> Option<usize> {
        self.placed.get(&id).map(|&(g, _)| g)
    }

    /// The stored job summary for a resident.
    pub fn job(&self, id: usize) -> Option<&PackJob> {
        self.placed.get(&id).map(|(_, j)| j)
    }

    /// Resident job ids on a GPU, in placement order.
    pub fn residents(&self, gpu: usize) -> &[usize] {
        &self.gpus[gpu].residents
    }

    /// The high-priority resident of a GPU, if any.
    pub fn hp_of(&self, gpu: usize) -> Option<usize> {
        self.gpus[gpu].hp
    }

    /// Number of GPUs with at least one resident.
    pub fn used_gpus(&self) -> usize {
        self.gpus.iter().filter(|g| !g.residents.is_empty()).count()
    }

    /// Number of GPUs in the fleet.
    pub fn gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Marks a GPU offline (dead or quarantined) or back online. Offline
    /// GPUs accept no placements; existing residents stay until the fleet
    /// control plane evacuates them with [`FleetPlacer::remove`].
    pub fn set_offline(&mut self, gpu: usize, offline: bool) {
        self.gpus[gpu].offline = offline;
    }

    /// True when the GPU is currently offline.
    pub fn is_offline(&self, gpu: usize) -> bool {
        self.gpus[gpu].offline
    }

    /// Number of GPUs currently accepting placements.
    pub fn live_gpus(&self) -> usize {
        self.gpus.iter().filter(|g| !g.offline).count()
    }

    /// Free memory on a GPU, in bytes.
    pub fn free_mem(&self, gpu: usize) -> u64 {
        self.gpus[gpu].free_mem
    }
}

/// A k-way packing of a static job set onto as few GPUs as possible.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// Per-GPU groups of job indices (GPUs in use order, residents in
    /// placement order; a group's first high-priority job, if any, is the
    /// GPU's HP client).
    pub groups: Vec<Vec<usize>>,
    /// Jobs whose footprint exceeds `gpu_memory`: not placed anywhere.
    pub oversized: Vec<usize>,
}

/// Packs a static job set with the incremental [`FleetPlacer`]: high-priority
/// jobs first (so the one-HP-per-GPU rule spreads them across devices), then
/// best-effort jobs, each in submission-index order.
pub fn pack_jobs(jobs: &[PackJob], gpu_memory: u64, max_jobs_per_gpu: usize) -> Packing {
    let mut placer = FleetPlacer::new(jobs.len(), gpu_memory, max_jobs_per_gpu);
    let mut oversized = Vec::new();
    let hp_first = (0..jobs.len())
        .filter(|&i| jobs[i].hp)
        .chain((0..jobs.len()).filter(|&i| !jobs[i].hp));
    for i in hp_first {
        if jobs[i].mem > gpu_memory {
            oversized.push(i);
            continue;
        }
        let placed = placer.try_place(i, jobs[i], None);
        debug_assert!(placed.is_some(), "one GPU per job always suffices");
    }
    oversized.sort_unstable();
    let groups = placer
        .gpus
        .iter()
        .filter(|g| !g.residents.is_empty())
        .map(|g| g.residents.clone())
        .collect();
    Packing { groups, oversized }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_workloads::registry::{inference_workload, training_workload};
    use orion_workloads::ModelKind;

    #[test]
    fn demand_vectors_reflect_model_character() {
        let bert = inference_workload(ModelKind::Bert);
        let llm = inference_workload(ModelKind::LlmDecode);
        let (cb, mb) = demand_vector(&bert);
        let (cl, ml) = demand_vector(&llm);
        assert!(cb > mb, "BERT inference is compute-leaning");
        assert!(ml > cl, "LLM decode is memory-leaning");
    }

    #[test]
    fn complementarity_prefers_opposite_jobs() {
        let bert = inference_workload(ModelKind::Bert);
        let llm = inference_workload(ModelKind::LlmDecode);
        let bert2 = inference_workload(ModelKind::Bert);
        assert!(complementarity(&bert, &llm) > complementarity(&bert, &bert2));
    }

    #[test]
    fn profile_demand_matches_static_demand() {
        let bert = inference_workload(ModelKind::Bert);
        let table = orion_profiler::profile_workload(&bert, &orion_gpu::spec::GpuSpec::v100_16gb())
            .unwrap()
            .table();
        let (c, m) = demand_from_profiles(&table).expect("profiled table has kernels");
        let (cs, ms) = demand_vector(&bert);
        // Offline profiling measures the same solo durations the static
        // vector integrates, so the two must agree closely.
        assert!((c - cs).abs() < 0.05, "compute {c} vs {cs}");
        assert!((m - ms).abs() < 0.05, "memory {m} vs {ms}");
        assert!(demand_from_profiles(&ProfileTable::default()).is_none());
    }

    #[test]
    fn placement_pairs_all_when_they_fit() {
        let jobs = vec![
            inference_workload(ModelKind::Bert),
            inference_workload(ModelKind::LlmDecode),
            inference_workload(ModelKind::ResNet50),
            inference_workload(ModelKind::MobileNetV2),
        ];
        let p = place_jobs(&jobs, 16 * (1 << 30));
        assert_eq!(p.pairs.len(), 2);
        assert!(p.singles.is_empty());
        assert!(p.oversized.is_empty());
        // BERT (compute) pairs with the LLM decode (memory).
        assert!(p.pairs.contains(&(0, 1)) || p.pairs.contains(&(1, 0)));
    }

    #[test]
    fn placement_respects_memory() {
        // Two large training jobs that cannot share a 8 GiB device — and the
        // transformer (8.5 GiB) cannot even fit *alone*, so it must be
        // rejected rather than placed on a device it cannot fit
        // (regression: pre-fix code returned singles == [0, 1]).
        let jobs = vec![
            training_workload(ModelKind::Transformer), // 8.5 GiB
            training_workload(ModelKind::MobileNetV2), // 6.9 GiB
        ];
        let p = place_jobs(&jobs, 8 * (1 << 30));
        assert!(p.pairs.is_empty());
        assert_eq!(p.singles, vec![1]);
        assert_eq!(p.oversized, vec![0]);
    }

    #[test]
    fn odd_job_counts_leave_a_single() {
        let jobs = vec![
            inference_workload(ModelKind::ResNet50),
            inference_workload(ModelKind::ResNet101),
            inference_workload(ModelKind::MobileNetV2),
        ];
        let p = place_jobs(&jobs, 16 * (1 << 30));
        assert_eq!(p.pairs.len(), 1);
        assert_eq!(p.singles.len(), 1);
        assert!(p.oversized.is_empty());
    }

    #[test]
    fn equal_score_ties_resolve_by_lowest_index() {
        // Four identical workloads: every edge has the same score. The
        // greedy matcher must deterministically pick (0,1) then (2,3).
        let jobs = vec![
            inference_workload(ModelKind::ResNet50),
            inference_workload(ModelKind::ResNet50),
            inference_workload(ModelKind::ResNet50),
            inference_workload(ModelKind::ResNet50),
        ];
        let p = place_jobs(&jobs, 16 * (1 << 30));
        assert_eq!(p.pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn packer_respects_hp_and_memory_invariants() {
        let gib = 1u64 << 30;
        let hp = |mem| PackJob {
            mem,
            demand: (0.8, 0.2),
            hp: true,
        };
        let be = |mem, demand| PackJob {
            mem,
            demand,
            hp: false,
        };
        let jobs = vec![
            hp(2 * gib),
            hp(2 * gib),
            be(6 * gib, (0.1, 0.9)),
            be(6 * gib, (0.1, 0.9)),
            be(5 * gib, (0.7, 0.3)),
        ];
        let p = pack_jobs(&jobs, 16 * gib, 3);
        // The two HP jobs must land on different GPUs.
        let gpu_of = |id: usize| {
            p.groups
                .iter()
                .position(|g| g.contains(&id))
                .expect("placed")
        };
        assert_ne!(gpu_of(0), gpu_of(1));
        for g in &p.groups {
            assert!(g.len() <= 3);
            let mem: u64 = g.iter().map(|&i| jobs[i].mem).sum();
            assert!(mem <= 16 * gib);
            assert!(g.iter().filter(|&&i| jobs[i].hp).count() <= 1);
        }
        assert!(p.oversized.is_empty());
    }

    #[test]
    fn packer_rejects_oversized_jobs() {
        let gib = 1u64 << 30;
        let jobs = vec![
            PackJob {
                mem: 20 * gib,
                demand: (0.5, 0.5),
                hp: false,
            },
            PackJob {
                mem: 2 * gib,
                demand: (0.5, 0.5),
                hp: false,
            },
        ];
        let p = pack_jobs(&jobs, 16 * gib, 4);
        assert_eq!(p.oversized, vec![0]);
        assert_eq!(p.groups, vec![vec![1]]);
    }

    #[test]
    fn placer_churn_round_trip() {
        let gib = 1u64 << 30;
        let mut placer = FleetPlacer::new(2, 16 * gib, 4);
        let job = |hp| PackJob {
            mem: 4 * gib,
            demand: (0.6, 0.4),
            hp,
        };
        let g0 = placer.try_place(10, job(true), None).unwrap();
        assert_eq!(g0, 0);
        // Second HP job cannot share GPU 0.
        let g1 = placer.try_place(11, job(true), None).unwrap();
        assert_eq!(g1, 1);
        // BE job packs onto the first occupied GPU (tie on score).
        let g2 = placer.try_place(12, job(false), None).unwrap();
        assert_eq!(g2, 0);
        assert_eq!(placer.used_gpus(), 2);
        assert_eq!(placer.remove(10), 0);
        assert_eq!(placer.hp_of(0), None);
        // Freed HP slot is reusable.
        assert_eq!(placer.try_place(13, job(true), None), Some(0));
        // Excluding every GPU with room leaves the job unplaced.
        let mut full = FleetPlacer::new(1, 16 * gib, 1);
        full.force_place(0, job(false), 0);
        assert_eq!(full.try_place(1, job(false), None), None);
    }

    #[test]
    fn offline_gpus_accept_no_placements() {
        let gib = 1u64 << 30;
        let job = PackJob {
            mem: 4 * gib,
            demand: (0.6, 0.4),
            hp: false,
        };
        let mut placer = FleetPlacer::new(2, 16 * gib, 4);
        placer.set_offline(0, true);
        assert!(placer.is_offline(0));
        assert_eq!(placer.live_gpus(), 1);
        // The packer must route around the offline device.
        assert_eq!(placer.try_place(0, job, None), Some(1));
        placer.set_offline(1, true);
        assert_eq!(placer.live_gpus(), 0);
        assert_eq!(placer.try_place(1, job, None), None);
        // Residents on a newly-offline GPU remain until evacuated, and the
        // ledger round-trips through remove().
        assert_eq!(placer.residents(1), &[0]);
        assert_eq!(placer.free_mem(1), 12 * gib);
        assert_eq!(placer.remove(0), 1);
        assert_eq!(placer.free_mem(1), 16 * gib);
        // Back online, placements resume.
        placer.set_offline(1, false);
        assert_eq!(placer.try_place(2, job, None), Some(1));
    }
}
