//! The collocation engine: clients + policy + GPU wired into a DES world.

use std::collections::{BTreeMap, HashMap};

use orion_desim::prelude::*;
use orion_desim::rng::cell_seed;
use orion_gpu::engine::{Completion, CompletionStatus, GpuEngine};
use orion_gpu::error::GpuError;
use orion_gpu::fault::FaultPlan;
use orion_gpu::spec::GpuSpec;
use orion_gpu::util::UtilSummary;
use orion_gpu::kernel::classify_utilization;
use orion_metrics::{LatencyRecorder, ThroughputCounter};
use orion_profiler::{profile_workload, KernelProfile};
use orion_workloads::OpSpec;

use crate::client::{ClientPriority, ClientSpec, ClientState};
use crate::online::{OnlineConfig, OnlineReport, OnlineState, ProfileAction};
use crate::policy::{Policy, PolicyKind, Routed, RoutedCompletion, SchedCtx};
use crate::supervisor::{ClientFaultKind, FaultConfig, RobustnessReport, Supervisor};
use crate::validate::{ValidateMode, ValidationReport, Validator};

/// Domain-separation tag deriving the device fault-plan seed from the run
/// seed (disjoint from the per-client arrival forks, which use small
/// indices).
const FAULT_SEED_TAG: u64 = 0xfa17_0000_0000_0001;

/// Configuration of one collocation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Device to share.
    pub spec: GpuSpec,
    /// Simulated duration of the run.
    pub horizon: SimTime,
    /// Leading window excluded from latency/throughput statistics.
    pub warmup: SimTime,
    /// Seed for the arrival processes.
    pub seed: u64,
    /// Record the full utilization timeline (figure experiments only).
    pub record_timeline: bool,
    /// Record per-operation execution spans (Chrome-trace export).
    pub record_trace: bool,
    /// Policy-state oracle mode (see [`crate::validate`]). When enabled, the
    /// engine's ground-truth event log is activated and every scheduling
    /// round is cross-checked against the policy's claimed bookkeeping. The
    /// oracle observes only — enabling it changes no scheduling decision,
    /// timestamp, or result.
    pub validate: ValidateMode,
    /// Deterministic fault injection + recovery supervisor tuning. The
    /// default ([`FaultConfig::none`]) injects nothing and arms no
    /// supervisor, leaving the run byte-identical to pre-fault builds.
    pub faults: FaultConfig,
    /// Online profiling (see [`crate::online`]). The default
    /// ([`OnlineConfig::disabled`]) constructs no online state, leaving the
    /// run byte-identical to pre-online builds.
    pub online: OnlineConfig,
}

impl RunConfig {
    /// The standard experiment configuration: V100, 12 s horizon, 2 s warmup.
    pub fn paper_default() -> Self {
        RunConfig {
            spec: GpuSpec::v100_16gb(),
            horizon: SimTime::from_secs(12),
            warmup: SimTime::from_secs(2),
            seed: 42,
            record_timeline: false,
            record_trace: false,
            validate: ValidateMode::Off,
            faults: FaultConfig::none(),
            online: OnlineConfig::disabled(),
        }
    }

    /// A fast configuration for unit/integration tests (3 s horizon).
    pub fn quick_test() -> Self {
        RunConfig {
            spec: GpuSpec::v100_16gb(),
            horizon: SimTime::from_secs(3),
            warmup: SimTime::from_millis(500),
            seed: 42,
            record_timeline: false,
            record_trace: false,
            validate: ValidateMode::Strict,
            faults: FaultConfig::none(),
            online: OnlineConfig::disabled(),
        }
    }

    /// Replaces the device spec.
    pub fn with_spec(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the oracle mode.
    pub fn with_validate(mut self, mode: ValidateMode) -> Self {
        self.validate = mode;
        self
    }

    /// Replaces the fault configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the online-profiling configuration.
    pub fn with_online(mut self, online: OnlineConfig) -> Self {
        self.online = online;
        self
    }
}

/// Per-client outcome of a run (statistics exclude the warmup window).
#[derive(Debug)]
pub struct ClientResult {
    /// Workload label.
    pub label: String,
    /// Scheduling class.
    pub priority: ClientPriority,
    /// Request latencies.
    pub latency: LatencyRecorder,
    /// Requests completed in the measurement window.
    pub completed: u64,
    /// Requests (or training iterations) per second.
    pub throughput: f64,
}

/// Outcome of a collocation run.
#[derive(Debug)]
pub struct RunResult {
    /// Policy label.
    pub policy: &'static str,
    /// Per-client results, in client order.
    pub clients: Vec<ClientResult>,
    /// Device utilization averages over the whole run.
    pub utilization: UtilSummary,
    /// Resampled utilization timeline (when enabled), for figures.
    pub timeline: Vec<orion_gpu::util::UtilSample>,
    /// Per-operation execution trace (when enabled).
    pub trace: Option<orion_gpu::trace::ExecTrace>,
    /// Measurement window length.
    pub window: SimTime,
    /// Policy-state oracle report (when [`RunConfig::validate`] enabled it).
    pub validation: Option<ValidationReport>,
    /// Fault-and-recovery accounting (all zeros for a fault-free run).
    pub robustness: RobustnessReport,
    /// True when the device was still sticky-faulted at the horizon (the
    /// run *ended* in a faulted state, as opposed to faults that were
    /// recovered mid-run). The fleet control plane treats such a device as
    /// unhealthy when triaging episode outcomes.
    pub ended_faulted: bool,
    /// Online-profiler summary (when [`RunConfig::online`] enabled it).
    pub online: Option<OnlineReport>,
    /// Per-client profile tables as of the horizon (only populated when
    /// online profiling ran): offline entries plus everything the admission
    /// ladder learned. The fleet control plane carries these across epochs
    /// so re-placement is fed by learned profiles, not offline tables only.
    pub learned: Option<Vec<orion_profiler::ProfileTable>>,
}

impl RunResult {
    /// The first high-priority client's result.
    pub fn hp(&self) -> &ClientResult {
        self.clients
            .iter()
            .find(|c| c.priority == ClientPriority::HighPriority)
            .unwrap_or(&self.clients[0])
    }

    /// Sum of best-effort client throughputs.
    pub fn be_throughput(&self) -> f64 {
        self.clients
            .iter()
            .filter(|c| c.priority == ClientPriority::BestEffort)
            .map(|c| c.throughput)
            .sum()
    }

    /// Aggregate throughput of all clients.
    pub fn total_throughput(&self) -> f64 {
        self.clients.iter().map(|c| c.throughput).sum()
    }
}

#[derive(Debug, Clone)]
enum Ev {
    /// A request arrives at an open-loop client.
    Arrival { client: usize },
    /// The client's launch thread pushes its next op.
    Push { client: usize },
    /// Start the next pending request (deferred closed-loop think time).
    StartRequest { client: usize },
    /// Wake-up at the GPU's next internal completion.
    GpuWake { token: u64 },
    /// Periodic recovery-supervisor scan (chaos runs only): op deadlines and
    /// client liveness.
    Watchdog,
    /// A quarantined client's backoff expired; re-admit it.
    Readmit { client: usize },
}

struct RouteInfo {
    client: usize,
    request_id: u64,
    op_seq: u32,
    last_of_request: bool,
    is_kernel: bool,
    /// Watchdog deadline: submit time + expected duration + op timeout
    /// (`SimTime::MAX` when no supervisor is armed).
    deadline: SimTime,
}

struct CollocationWorld {
    gpu: GpuEngine,
    clients: Vec<ClientState>,
    policy: Option<Box<dyn Policy>>,
    routes: HashMap<u64, RouteInfo>,
    wake_token: u64,
    /// Per-client launch cost on the client thread (overhead x GIL factor).
    launch_cost: Vec<SimTime>,
    /// The policy-state oracle, when enabled via [`RunConfig::validate`].
    validator: Option<Validator>,
    /// The recovery supervisor — armed only for chaos runs (device or
    /// client faults configured), so fault-free runs take zero new branches
    /// in the hot path.
    supervisor: Option<Supervisor>,
    /// Ops requeued by recovery since the last oracle round (claims for the
    /// no-op-lost rule).
    recovery_requeued: Vec<(usize, u64, u32)>,
    /// Requests shed by recovery since the last oracle round.
    recovery_shed: Vec<(usize, u64)>,
    /// Culprit attribution for a watchdog-initiated reset, consumed by the
    /// recovery pass that drains its aborts.
    pending_culprit: Option<usize>,
    /// The online profiler — armed only when [`RunConfig::online`] enables
    /// it, so profile-driven runs take zero new branches in the hot path.
    online: Option<OnlineState>,
    /// Persistent completion buffer ping-ponged with the engine's through
    /// [`GpuEngine::drain_completions_into`]: once both buffers have grown
    /// to the peak batch size, steady-state drains allocate nothing.
    completion_buf: Vec<Completion>,
}

impl CollocationWorld {
    fn run_policy(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.run_policy_with(now, sched, |_, _| {});
    }

    /// Runs the policy (optionally preceded by a completion callback that
    /// needs the same borrow split), then re-arms the GPU wake-up.
    fn run_policy_with(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        pre: impl FnOnce(&mut dyn Policy, &mut SchedCtx),
    ) {
        let mut policy = self.policy.take().expect("policy present");
        let mut submissions = Vec::new();
        {
            let mut ctx = SchedCtx {
                now,
                gpu: &mut self.gpu,
                clients: &mut self.clients,
                submissions: &mut submissions,
            };
            pre(policy.as_mut(), &mut ctx);
            policy.schedule(&mut ctx);
        }
        self.policy = Some(policy);
        self.register(now, &submissions);
        if self.validator.is_some() {
            self.validate_round(now, &submissions);
        } else {
            // No oracle to consume the recovery claims; drop them so chaos
            // runs without validation don't accumulate them unboundedly.
            self.recovery_requeued.clear();
            self.recovery_shed.clear();
        }
        self.arm_wake(now, sched);
    }

    /// Feeds the oracle one scheduling round: the round's routing records,
    /// then the engine's ground-truth events, then a cross-check of the
    /// policy's claimed bookkeeping. Purely observational.
    fn validate_round(&mut self, now: SimTime, submissions: &[Routed]) {
        let Some(v) = self.validator.as_mut() else {
            return;
        };
        let policy = self.policy.as_ref().expect("policy present");
        let name = policy.name();
        for r in submissions {
            v.observe_submission(r, self.clients[r.client].priority());
        }
        let events = self.gpu.drain_events();
        v.observe_engine_events(&events, name);
        if !self.recovery_requeued.is_empty() || !self.recovery_shed.is_empty() {
            let requeued = std::mem::take(&mut self.recovery_requeued);
            let shed = std::mem::take(&mut self.recovery_shed);
            v.observe_recovery(&requeued, &shed, name, now);
        }
        v.check_round(now, name, &policy.debug_state(), self.gpu.fully_idle());
    }

    fn register(&mut self, now: SimTime, submissions: &[Routed]) {
        for r in submissions {
            let deadline = match &self.supervisor {
                Some(s) => now + r.expected_dur + s.cfg.op_timeout,
                None => SimTime::MAX,
            };
            self.routes.insert(
                r.op.0,
                RouteInfo {
                    client: r.client,
                    request_id: r.request_id,
                    op_seq: r.op_seq,
                    last_of_request: r.last_of_request,
                    is_kernel: r.is_kernel,
                    deadline,
                },
            );
            if let Some(s) = self.supervisor.as_mut() {
                s.last_progress[r.client] = now;
            }
        }
    }

    fn arm_wake(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if let Some(t) = self.gpu.next_event_time() {
            self.wake_token += 1;
            let token = self.wake_token;
            sched.schedule_at(t.max(now), Ev::GpuWake { token });
        }
    }

    /// Advances the GPU and processes any completions that occurred.
    fn drain_gpu(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.gpu.advance_to(now);
        let mut completions = std::mem::take(&mut self.completion_buf);
        self.gpu.drain_completions_into(&mut completions);
        if completions.is_empty() {
            self.completion_buf = completions;
            return;
        }
        let mut routed = Vec::with_capacity(completions.len());
        // Faulted/aborted ops, grouped per client in op_seq order for
        // deterministic resubmission.
        let mut failed: BTreeMap<usize, Vec<(u64, u32)>> = BTreeMap::new();
        // The client whose kernel raised a sticky fault this round.
        let mut culprit: Option<usize> = None;
        for c in &completions {
            let Some(info) = self.routes.remove(&c.op.0) else {
                continue;
            };
            match c.status {
                CompletionStatus::Ok => {
                    let client = &mut self.clients[info.client];
                    let was_blocked = !client.can_push();
                    let finished = client.on_op_complete(
                        c.at,
                        info.request_id,
                        info.op_seq,
                        info.last_of_request,
                    );
                    if self.online.is_some() {
                        self.observe_online(c, &info, finished);
                    }
                    if let Some(s) = self.supervisor.as_mut() {
                        s.last_progress[info.client] = now;
                        if info.last_of_request {
                            s.forget_request(info.client, info.request_id);
                        }
                    }
                    if info.last_of_request {
                        // The next request starts now, or after closed-loop
                        // think time (its pending arrival timestamp may lie
                        // in the future).
                        self.restart_next_request(now, info.client, sched);
                    } else if was_blocked && self.clients[info.client].can_push() {
                        // A blocking copy finished: resume the launch thread.
                        sched.schedule_at(now, Ev::Push { client: info.client });
                    }
                }
                CompletionStatus::Faulted | CompletionStatus::Aborted => {
                    if let Some(o) = self.online.as_mut() {
                        // A retried op's request carries recovery latency on
                        // top of its solo latency: taint the sample.
                        o.note_op_interference(info.client, true);
                    }
                    if let Some(s) = self.supervisor.as_mut() {
                        if c.status == CompletionStatus::Faulted {
                            s.report.op_faults += 1;
                        } else {
                            s.report.ops_aborted += 1;
                        }
                    }
                    if c.status == CompletionStatus::Faulted
                        && info.is_kernel
                        && self.gpu.device_faulted()
                    {
                        culprit = Some(info.client);
                    }
                    failed
                        .entry(info.client)
                        .or_default()
                        .push((info.request_id, info.op_seq));
                    // Do NOT feed this into on_op_complete: the op did not
                    // run, so the client's blocked-on marker and request
                    // progress must stay put for the retry.
                }
            }
            routed.push(RoutedCompletion {
                op: c.op,
                client: info.client,
                at: c.at,
                is_kernel: info.is_kernel,
                // A failed final op must not look like a finished request to
                // policy mirrors (Temporal's ownership transfers on shed via
                // on_request_shed instead).
                last_of_request: info.last_of_request
                    && c.status == CompletionStatus::Ok,
                request_id: info.request_id,
            });
        }
        let mut shed = Vec::new();
        if !failed.is_empty() {
            self.recover(now, sched, failed, culprit, &mut shed);
        }
        // Solo-latency estimates learned from this round's completions reach
        // the policy before it schedules, so the refreshed DUR_THRESHOLD
        // governs this round's best-effort admissions.
        let estimates = self
            .online
            .as_mut()
            .map(OnlineState::take_estimates)
            .unwrap_or_default();
        self.run_policy_with(now, sched, |policy, ctx| {
            for &(client, est) in &estimates {
                policy.on_solo_latency_estimate(client, est);
            }
            policy.on_completions(&routed, ctx);
            for &(client, request_id) in &shed {
                policy.on_request_shed(client, request_id);
            }
        });
        // Hand the drained buffer back for the next ping-pong cycle.
        self.completion_buf = completions;
    }

    /// Feeds one successful completion into the online profiler:
    /// best-effort occupancy bookkeeping, kernel-duration learning (with
    /// profile-table publication on admission and withdrawal on demotion),
    /// and clean high-priority solo-latency samples. `finished` carries the
    /// request latency when this op completed a whole request.
    fn observe_online(&mut self, c: &Completion, info: &RouteInfo, finished: Option<SimTime>) {
        let Some(online) = self.online.as_mut() else {
            return;
        };
        online.note_op_interference(info.client, c.interfered);
        // Kernel-duration learning: the measured span is a clean solo
        // sample exactly when the engine certifies the op never ran below
        // its solo rate.
        let mut action = None;
        if info.is_kernel {
            let spec = &self.clients[info.client].spec;
            if let (OpSpec::Kernel(k), Some(dispatched)) =
                (&spec.workload.ops[info.op_seq as usize].1, c.dispatched_at)
            {
                action = online
                    .observe_kernel(
                        info.client,
                        &k.name,
                        k.kernel_id,
                        c.at - dispatched,
                        c.interfered,
                    )
                    .map(|a| (a, k.clone()));
            }
        }
        if let Some((action, k)) = action {
            match action {
                ProfileAction::Publish { kernel_ids, mean } => {
                    if let Some(v) = self.validator.as_mut() {
                        // Around a drift boundary both regimes are plausible
                        // truths (see `observe_online_admission`).
                        let mut true_durs = vec![k.solo_duration];
                        if let Some(d) = self.clients[info.client].spec.drift {
                            let scaled = k.solo_duration.mul_f64(d.factor);
                            if scaled != k.solo_duration {
                                true_durs.push(scaled);
                            }
                        }
                        let policy = self.policy.as_ref().expect("policy present").name();
                        v.observe_online_admission(
                            c.at,
                            policy,
                            info.client,
                            &k.name,
                            mean,
                            &true_durs,
                            online.cfg().admit_tolerance,
                        );
                    }
                    let profile = classify_utilization(k.compute_util, k.mem_util);
                    let sm_needed = k.sm_needed(self.gpu.spec());
                    for id in kernel_ids {
                        self.clients[info.client].profile.insert(KernelProfile {
                            kernel_id: id,
                            name: std::sync::Arc::clone(&k.name),
                            duration: mean,
                            profile,
                            sm_needed,
                            compute_util: k.compute_util,
                            mem_util: k.mem_util,
                        });
                    }
                }
                ProfileAction::Withdraw { kernel_ids } => {
                    for id in kernel_ids {
                        self.clients[info.client].profile.remove(id);
                    }
                }
            }
        }
        // Solo request latency for the DUR_THRESHOLD denominator.
        if let Some(latency) = finished {
            if self.clients[info.client].priority() == ClientPriority::HighPriority {
                online.observe_hp_request(info.client, c.at, latency);
            }
        }
    }

    /// Starts the client's next pending request (immediately or at its
    /// future arrival time). No-op for dead or quarantined clients.
    fn restart_next_request(&mut self, now: SimTime, client: usize, sched: &mut Scheduler<Ev>) {
        if let Some(s) = &self.supervisor {
            if s.dead[client] || s.is_suspended(client) {
                return;
            }
        }
        let c = &mut self.clients[client];
        match c.next_pending_at() {
            Some(at) if at <= now && c.try_start_request() => {
                sched.schedule_at(now, Ev::Push { client });
            }
            Some(at) if at > now => {
                sched.schedule_at(at, Ev::StartRequest { client });
            }
            _ => {}
        }
    }

    /// The recovery pass (DESIGN.md §11): runs after a scheduling round
    /// drained faulted/aborted completions. Resets a sticky device,
    /// quarantines or retries the culprit, and deterministically requeues
    /// every surviving client's aborted ops — high-priority clients first.
    fn recover(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        mut failed: BTreeMap<usize, Vec<(u64, u32)>>,
        culprit: Option<usize>,
        shed: &mut Vec<(usize, u64)>,
    ) {
        let sticky = self.gpu.device_faulted();
        let culprit = culprit.or_else(|| self.pending_culprit.take());
        {
            let sup = self.supervisor.as_mut().expect("faults imply supervisor");
            if sticky {
                sup.report.device_faults += 1;
                sup.report.device_resets += 1;
            }
        }
        if sticky {
            self.gpu.reset_device();
        }
        for ops in failed.values_mut() {
            ops.sort_unstable();
        }
        let device_was_reset = sticky || culprit.is_some();
        // HP clients recover first: their aborted ops go back at queue heads
        // before any best-effort decision, so the next scheduling round
        // re-admits high-priority work ahead of best-effort work.
        let mut order: Vec<usize> = failed.keys().copied().collect();
        order.sort_by_key(|&c| {
            (
                self.clients[c].priority() != ClientPriority::HighPriority,
                c,
            )
        });
        for client_idx in order {
            let ops = failed.remove(&client_idx).expect("key from map");
            let is_culprit = device_was_reset && culprit == Some(client_idx);
            let request_id = ops[0].0;
            if is_culprit {
                let is_hp =
                    self.clients[client_idx].priority() == ClientPriority::HighPriority;
                let retry_ok = is_hp
                    && self
                        .supervisor
                        .as_mut()
                        .expect("supervisor")
                        .try_retry(client_idx, request_id);
                if retry_ok {
                    self.requeue_ops(client_idx, &ops);
                } else {
                    // Best-effort culprit: quarantine with exponential
                    // backoff. High-priority culprit over its retry budget:
                    // shed, but stay admitted.
                    self.shed_request(client_idx, request_id, shed);
                    if is_hp {
                        self.restart_next_request(now, client_idx, sched);
                    } else {
                        let sup = self.supervisor.as_mut().expect("supervisor");
                        sup.report.quarantines += 1;
                        let readmit_at = now + sup.next_backoff(client_idx);
                        sup.suspended_until[client_idx] = Some(readmit_at);
                        if self.clients[client_idx].spec.arrivals.is_closed_loop() {
                            self.clients[client_idx].enqueue_pending(readmit_at);
                        }
                        sched.schedule_at(readmit_at, Ev::Readmit { client: client_idx });
                    }
                }
            } else if device_was_reset {
                // Innocent victim of the reset: resubmit unconditionally.
                self.requeue_ops(client_idx, &ops);
            } else {
                // Non-sticky op fault (failed copy): bounded per-request
                // retry without touching the rest of the device.
                let retry_ok = self
                    .supervisor
                    .as_mut()
                    .expect("supervisor")
                    .try_retry(client_idx, request_id);
                if retry_ok {
                    self.requeue_ops(client_idx, &ops);
                } else {
                    self.shed_request(client_idx, request_id, shed);
                    self.restart_next_request(now, client_idx, sched);
                }
            }
        }
    }

    /// Puts a client's aborted ops back at its queue head, oldest first.
    fn requeue_ops(&mut self, client: usize, ops: &[(u64, u32)]) {
        let c = &mut self.clients[client];
        for &(request_id, op_seq) in ops.iter().rev() {
            let op = c.op_for(request_id, op_seq);
            c.requeue_front(op);
        }
        let sup = self.supervisor.as_mut().expect("supervisor");
        sup.report.resubmitted_ops += ops.len() as u64;
        self.recovery_requeued
            .extend(ops.iter().map(|&(r, s)| (client, r, s)));
    }

    /// Drops a client's in-flight request and records the shed.
    fn shed_request(&mut self, client: usize, request_id: u64, shed: &mut Vec<(usize, u64)>) {
        self.clients[client].shed_current();
        let sup = self.supervisor.as_mut().expect("supervisor");
        sup.report.shed_requests += 1;
        sup.forget_request(client, request_id);
        shed.push((client, request_id));
        self.recovery_shed.push((client, request_id));
    }

    /// The periodic watchdog (chaos runs only): detects stalled ops (reset +
    /// recover) and hung/crashed clients (shed their stuck requests).
    fn watchdog(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        // (a) Op deadline scan. One stalled op condemns the whole device —
        // the reset aborts everything, so handling the earliest (by
        // deadline, then op id, for determinism across map iteration
        // orders) is enough.
        let stalled = self
            .routes
            .iter()
            .filter(|(_, info)| info.deadline <= now)
            .map(|(&op, info)| (info.deadline, op, info.client))
            .min();
        if let Some((_, _, client)) = stalled {
            let sup = self.supervisor.as_mut().expect("watchdog implies supervisor");
            sup.report.watchdog_stalls += 1;
            sup.report.device_resets += 1;
            self.pending_culprit = Some(client);
            self.gpu.reset_device();
            // Route the aborts through the normal recovery path.
            self.drain_gpu(now, sched);
        }
        // (b) Client liveness: a request is stuck when it is in flight with
        // no device ops, no queued ops, and a push cursor that cannot move.
        let mut shed = Vec::new();
        for i in 0..self.clients.len() {
            let c = &self.clients[i];
            let Some((request_id, _)) = c.current_progress() else {
                continue;
            };
            if c.can_push()
                || c.queue_depth() > 0
                || self.routes.values().any(|r| r.client == i)
            {
                continue;
            }
            let sup = self.supervisor.as_ref().expect("supervisor");
            let stuck = sup.dead[i]
                || now.checked_sub(sup.last_progress[i]).is_some_and(|idle| {
                    idle > sup.cfg.client_timeout
                });
            if stuck {
                self.shed_request(i, request_id, &mut shed);
                // Hung clients are treated as dead from here on: their
                // pending arrivals are abandoned rather than re-stuck.
                self.supervisor.as_mut().expect("supervisor").dead[i] = true;
            }
        }
        if !shed.is_empty() {
            self.run_policy_with(now, sched, |policy, _ctx| {
                for &(client, request_id) in &shed {
                    policy.on_request_shed(client, request_id);
                }
            });
        }
    }

    /// Fires the client's configured lifecycle fault if its trigger point
    /// (request ordinal, op index) has been reached.
    fn maybe_fire_client_fault(&mut self, client: usize) {
        let Some(sup) = self.supervisor.as_mut() else {
            return;
        };
        if sup.fault_fired[client] {
            return;
        }
        let Some(f) = self.clients[client].spec.fault else {
            return;
        };
        let due = self.clients[client]
            .current_progress()
            .is_some_and(|(req, op)| (req, op) >= (f.at_request, f.after_ops));
        if !due {
            return;
        }
        sup.fault_fired[client] = true;
        match f.kind {
            ClientFaultKind::Crash => {
                sup.dead[client] = true;
                sup.report.client_crashes += 1;
                self.clients[client].halt();
            }
            ClientFaultKind::Hang => {
                sup.report.client_hangs += 1;
                self.clients[client].halt();
            }
            ClientFaultKind::SlowPoll { factor } => {
                sup.report.slow_polls += 1;
                self.launch_cost[client] = self.launch_cost[client] * u64::from(factor.max(1));
            }
        }
    }
}

impl World for CollocationWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        // Completions at or before `now` are always processed first so every
        // handler sees up-to-date queue/GPU state.
        self.drain_gpu(now, sched);
        let gated = |sup: &Option<Supervisor>, client: usize| -> (bool, bool) {
            sup.as_ref()
                .map_or((false, false), |s| (s.dead[client], s.is_suspended(client)))
        };
        match ev {
            Ev::Arrival { client } => {
                let (dead, suspended) = gated(&self.supervisor, client);
                if dead {
                    // A crashed client's remaining open-loop arrivals are
                    // abandoned.
                    return;
                }
                let c = &mut self.clients[client];
                c.on_arrival(now);
                // Quarantined clients buffer arrivals but may not start
                // them until Readmit fires.
                if !suspended && c.try_start_request() {
                    sched.schedule_at(now, Ev::Push { client });
                }
            }
            Ev::Push { client } => {
                self.maybe_fire_client_fault(client);
                let c = &mut self.clients[client];
                if c.push_next().is_some() {
                    if c.can_push() {
                        sched.schedule_in(self.launch_cost[client], Ev::Push { client });
                    }
                    self.run_policy(now, sched);
                }
            }
            Ev::StartRequest { client } => {
                let (dead, suspended) = gated(&self.supervisor, client);
                if !dead && !suspended && self.clients[client].try_start_request() {
                    sched.schedule_at(now, Ev::Push { client });
                }
            }
            Ev::GpuWake { token } => {
                // Stale wake-ups (state changed since arming) are no-ops;
                // drain_gpu above already advanced the device.
                if token == self.wake_token {
                    self.arm_wake(now, sched);
                }
            }
            Ev::Watchdog => {
                if let Some(interval) =
                    self.supervisor.as_ref().map(|s| s.cfg.watchdog_interval)
                {
                    self.watchdog(now, sched);
                    sched.schedule_in(interval, Ev::Watchdog);
                }
            }
            Ev::Readmit { client } => {
                let Some(sup) = self.supervisor.as_mut() else {
                    return;
                };
                if sup.dead[client] || !sup.is_suspended(client) {
                    return;
                }
                sup.suspended_until[client] = None;
                sup.report.readmissions += 1;
                if self.clients[client].try_start_request() {
                    sched.schedule_at(now, Ev::Push { client });
                }
            }
        }
    }
}

/// Runs one collocation experiment: the given clients share one simulated
/// GPU under `policy`. Returns per-client latency/throughput and device
/// utilization.
///
/// # Errors
///
/// Returns [`GpuError::OutOfMemory`] when the clients' memory footprints do
/// not fit on the device (the paper assumes the cluster manager collocates
/// jobs that fit, §5.1.3).
pub fn run_collocation(
    policy: PolicyKind,
    clients: Vec<ClientSpec>,
    cfg: &RunConfig,
) -> Result<RunResult, GpuError> {
    let n = clients.len();
    run_collocation_with_profiles(policy, clients, vec![None; n], cfg)
}

/// [`run_collocation`] with pre-built profile tables: `profiles[i] = Some(t)`
/// skips the offline profiling phase for client `i` and uses `t` verbatim
/// (the fleet control plane memoizes offline tables per workload and carries
/// online-learned tables across epochs); `None` keeps the per-run behavior.
///
/// # Errors
///
/// Same as [`run_collocation`].
///
/// # Panics
///
/// Panics when `profiles.len() != clients.len()`.
pub fn run_collocation_with_profiles(
    policy: PolicyKind,
    clients: Vec<ClientSpec>,
    profiles: Vec<Option<orion_profiler::ProfileTable>>,
    cfg: &RunConfig,
) -> Result<RunResult, GpuError> {
    assert_eq!(
        profiles.len(),
        clients.len(),
        "one profile slot per client"
    );
    let mut gpu = GpuEngine::new(cfg.spec.clone(), cfg.record_timeline);
    if cfg.record_trace {
        gpu.enable_trace();
    }
    if cfg.validate.enabled() {
        gpu.enable_event_log();
    }
    if !cfg.faults.is_none() {
        // The plan seed is splitmix-derived from the run seed, so fault
        // decisions are a pure function of (seed, submit ordinal) — immune
        // to thread count and wall-clock, like the PR 1 per-cell seeds.
        let mut plan = FaultPlan::seeded(cell_seed(cfg.seed, FAULT_SEED_TAG), cfg.faults.rates)
            .with_stall(cfg.faults.stall);
        for &(target, kind) in &cfg.faults.targets {
            plan = plan.with_target(target, kind);
        }
        gpu.set_fault_plan(plan);
    }

    // Offline profiling phase (§5.2): each workload profiled solo. A client
    // marked `unprofiled` skips the phase and gets an empty table, so every
    // kernel lookup misses and the scheduler degrades conservatively.
    let mut states = Vec::with_capacity(clients.len());
    for (spec, pre) in clients.into_iter().zip(profiles) {
        let profile = match pre {
            Some(table) => table,
            None if spec.unprofiled => orion_profiler::ProfileTable::default(),
            None => profile_workload(&spec.workload, &cfg.spec)?.table(),
        };
        gpu.alloc_immediate(spec.workload.memory_footprint)?;
        states.push(ClientState::new(spec, profile));
    }

    let n_clients = states.len().max(1);
    let kind = policy;
    let mut boxed = kind.build();
    let launch_cost: Vec<SimTime> = states
        .iter()
        .map(|_| {
            let gil = if kind.gil_contention() {
                n_clients as u64
            } else {
                1
            };
            cfg.spec.launch_overhead * gil + kind.intercept_overhead()
        })
        .collect();

    // Policy setup (stream creation).
    {
        let mut submissions = Vec::new();
        let mut ctx = SchedCtx {
            now: SimTime::ZERO,
            gpu: &mut gpu,
            clients: &mut states,
            submissions: &mut submissions,
        };
        boxed.setup(&mut ctx);
        assert!(
            submissions.is_empty(),
            "policies must not submit during setup"
        );
    }

    // The supervisor (and its watchdog event stream) exists only for chaos
    // runs, keeping fault-free runs event-for-event identical to pre-fault
    // builds.
    let chaos = !cfg.faults.is_none() || states.iter().any(|c| c.spec.fault.is_some());
    let online = cfg.online.enabled.then(|| {
        let priorities: Vec<ClientPriority> = states.iter().map(ClientState::priority).collect();
        OnlineState::new(cfg.online.clone(), &priorities)
    });
    let world = CollocationWorld {
        gpu,
        clients: states,
        policy: Some(boxed),
        routes: HashMap::new(),
        wake_token: 0,
        launch_cost,
        validator: cfg
            .validate
            .enabled()
            .then(|| Validator::new(cfg.validate == ValidateMode::Strict)),
        supervisor: chaos.then(|| Supervisor::new(cfg.faults.supervisor.clone(), n_clients)),
        recovery_requeued: Vec::new(),
        recovery_shed: Vec::new(),
        pending_culprit: None,
        online,
        completion_buf: Vec::new(),
    };

    let mut sim = Simulation::new(world);
    if chaos {
        sim.schedule_at(cfg.faults.supervisor.watchdog_interval, Ev::Watchdog);
    }

    // Seed arrivals.
    let mut rng = DetRng::new(cfg.seed);
    let n = sim.world().clients.len();
    for i in 0..n {
        let arrivals = sim.world().clients[i].spec.arrivals.clone();
        if arrivals.is_closed_loop() {
            sim.schedule_at(SimTime::ZERO, Ev::Arrival { client: i });
        } else {
            let mut crng = rng.fork(i as u64 + 1);
            for t in arrivals.schedule(cfg.horizon, &mut crng) {
                sim.schedule_at(t, Ev::Arrival { client: i });
            }
        }
    }

    let outcome = sim.run_until(cfg.horizon, 500_000_000);
    assert_ne!(
        outcome,
        orion_desim::sim::RunOutcome::BudgetExhausted,
        "collocation run livelocked"
    );

    // Final drain at the horizon for exact utilization accounting.
    let horizon = cfg.horizon;
    sim.world_mut().gpu.advance_to(horizon);
    let trace = sim.world_mut().gpu.take_trace();
    // The oracle stops at the last scheduling round: the horizon drain above
    // is pure accounting (no policy ran), so there is no claim to check.
    let validation = sim.world_mut().validator.take().map(Validator::into_report);
    let mut robustness = sim
        .world_mut()
        .supervisor
        .take()
        .map(|s| s.report)
        .unwrap_or_default();
    robustness.unknown_kernel_ops = sim
        .world()
        .clients
        .iter()
        .map(|c| c.profile_misses)
        .sum();

    let world = sim.world();
    let window = cfg.horizon - cfg.warmup;
    let policy_name = kind.label();
    // Learned-vs-true error columns: ground truth is each kernel's solo
    // duration with the client's drift applied as of the horizon.
    let online = world.online.as_ref().map(|o| {
        o.report(|ci, kid| {
            let spec = &world.clients[ci].spec;
            let scale = spec.drift.map_or(1.0, |d| d.scale_at(horizon));
            spec.workload.ops.iter().find_map(|(_, op)| match op {
                OpSpec::Kernel(k) if k.kernel_id == kid => Some(if scale == 1.0 {
                    k.solo_duration
                } else {
                    k.solo_duration.mul_f64(scale)
                }),
                _ => None,
            })
        })
    });
    let clients = world
        .clients
        .iter()
        .map(|c| {
            let mut latency = LatencyRecorder::new();
            let mut tp = ThroughputCounter::new();
            tp.set_window(window);
            for &(done_at, lat) in &c.finished {
                if done_at >= cfg.warmup {
                    latency.record(lat);
                    tp.record();
                }
            }
            ClientResult {
                label: c.spec.workload.label(),
                priority: c.priority(),
                completed: tp.completed(),
                throughput: tp.per_second(),
                latency,
            }
        })
        .collect();

    let timeline = if cfg.record_timeline {
        world.gpu.util().resample(SimTime::from_millis(1))
    } else {
        Vec::new()
    };

    let learned = cfg
        .online
        .enabled
        .then(|| world.clients.iter().map(|c| c.profile.clone()).collect());

    Ok(RunResult {
        policy: policy_name,
        clients,
        utilization: world.gpu.util_summary(),
        timeline,
        trace,
        window,
        validation,
        robustness,
        ended_faulted: world.gpu.device_faulted(),
        online,
        learned,
    })
}

/// Runs a client alone on a dedicated GPU (the paper's "Ideal" reference).
pub fn run_dedicated(client: ClientSpec, cfg: &RunConfig) -> Result<RunResult, GpuError> {
    run_collocation(PolicyKind::Mps, vec![client], cfg)
}

// The parallel experiment runner fans `run_collocation` cells across OS
// threads: the inputs must cross thread boundaries (`Send`) and the shared
// configuration is borrowed from many workers at once (`Sync`). Keep these
// compile-time assertions so a stray `Rc`/raw pointer in a policy or spec
// can't silently break the runner.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<RunConfig>();
    assert_sync::<RunConfig>();
    assert_send::<ClientSpec>();
    assert_sync::<ClientSpec>();
    assert_send::<PolicyKind>();
    assert_sync::<PolicyKind>();
    assert_send::<RunResult>();
    assert_send::<GpuError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::registry::{inference_workload, training_workload};
    use orion_workloads::ModelKind;

    #[test]
    fn dedicated_inference_latency_matches_profile() {
        let w = inference_workload(ModelKind::MobileNetV2);
        let cfg = RunConfig::quick_test();
        let r = run_dedicated(
            ClientSpec::high_priority(w, ArrivalProcess::Poisson { rps: 20.0 }),
            &cfg,
        )
        .unwrap();
        let hp = &r.clients[0];
        assert!(hp.completed > 20, "completed {}", hp.completed);
        // Lightly loaded: p50 close to the solo latency (~4.3 ms).
        let p50 = {
            let mut l = LatencyRecorder::new();
            for &s in hp.latency.samples() {
                l.record(s);
            }
            l.p50().as_millis_f64()
        };
        assert!((3.5..6.5).contains(&p50), "p50 {p50} ms");
    }

    #[test]
    fn closed_loop_training_throughput_matches_table4() {
        let w = training_workload(ModelKind::ResNet50);
        let cfg = RunConfig::quick_test();
        let r = run_dedicated(ClientSpec::best_effort(w, ArrivalProcess::ClosedLoop), &cfg).unwrap();
        let tput = r.clients[0].throughput;
        // Table 4: ~10.3 iterations/sec on a dedicated V100.
        assert!((8.5..11.5).contains(&tput), "throughput {tput}");
    }

    #[test]
    fn collocation_runs_all_policies() {
        let cfg = RunConfig::quick_test();
        for kind in [
            PolicyKind::Temporal,
            PolicyKind::Streams,
            PolicyKind::StreamPriority,
            PolicyKind::Mps,
            PolicyKind::reef_default(),
            PolicyKind::orion_default(),
        ] {
            let clients = vec![
                ClientSpec::high_priority(
                    inference_workload(ModelKind::ResNet50),
                    ArrivalProcess::Poisson { rps: 15.0 },
                ),
                ClientSpec::best_effort(
                    training_workload(ModelKind::MobileNetV2),
                    ArrivalProcess::ClosedLoop,
                ),
            ];
            let r = run_collocation(kind.clone(), clients, &cfg).unwrap();
            assert_eq!(r.clients.len(), 2);
            assert!(
                r.hp().completed > 0,
                "{}: hp completed nothing",
                kind.label()
            );
        }
    }

    #[test]
    fn think_time_paces_closed_loop() {
        // A closed loop with 20 ms think time completes fewer requests than
        // one without, by roughly horizon / (service + think).
        let w = inference_workload(ModelKind::MobileNetV2); // ~4.5 ms service
        let cfg = RunConfig::quick_test();
        let plain = run_dedicated(
            ClientSpec::best_effort(w.clone(), ArrivalProcess::ClosedLoop),
            &cfg,
        )
        .unwrap()
        .clients[0]
            .throughput;
        let think = run_dedicated(
            ClientSpec::best_effort(
                w,
                ArrivalProcess::ClosedLoopThink {
                    think: SimTime::from_millis(20),
                },
            ),
            &cfg,
        )
        .unwrap()
        .clients[0]
            .throughput;
        assert!(plain > 100.0, "plain {plain}");
        // ~1000 / (4.7 + 20) = ~40 req/s.
        assert!((30.0..50.0).contains(&think), "think-paced {think}");
    }

    #[test]
    fn trace_recording_captures_all_ops() {
        let w = inference_workload(ModelKind::MobileNetV2);
        let mut cfg = RunConfig::quick_test();
        cfg.horizon = SimTime::from_millis(100);
        cfg.record_trace = true;
        let r = run_dedicated(
            ClientSpec::best_effort(w.clone(), ArrivalProcess::ClosedLoop),
            &cfg,
        )
        .unwrap();
        let trace = r.trace.expect("trace recorded");
        assert!(!trace.is_empty());
        // Every span is well-formed: submit <= dispatch <= complete.
        for s in &trace.spans {
            assert!(s.submitted <= s.dispatched, "span {s:?}");
            assert!(s.dispatched <= s.completed, "span {s:?}");
        }
        // Roughly (ops per request) x (completed requests) spans.
        let per_request = w.ops.len() as u64;
        assert!(trace.len() as u64 >= per_request * r.clients[0].completed);
        // And the Chrome export parses as JSON.
        let json = trace.to_chrome_trace();
        let v = orion_json::parse(&json).unwrap();
        assert!(v["traceEvents"].as_array().unwrap().len() == trace.len());
    }

    #[test]
    fn oom_is_reported() {
        let cfg = RunConfig::quick_test();
        let clients = vec![
            ClientSpec::best_effort(
                training_workload(ModelKind::Transformer),
                ArrivalProcess::ClosedLoop,
            ),
            ClientSpec::best_effort(
                training_workload(ModelKind::MobileNetV2),
                ArrivalProcess::ClosedLoop,
            ),
            ClientSpec::best_effort(
                training_workload(ModelKind::Bert),
                ArrivalProcess::ClosedLoop,
            ),
        ];
        let err = run_collocation(PolicyKind::Mps, clients, &cfg);
        assert!(matches!(err, Err(GpuError::OutOfMemory { .. })));
    }

    #[test]
    fn online_report_absent_when_disabled() {
        let cfg = RunConfig::quick_test();
        let r = run_dedicated(
            ClientSpec::high_priority(
                inference_workload(ModelKind::MobileNetV2),
                ArrivalProcess::Poisson { rps: 10.0 },
            ),
            &cfg,
        )
        .unwrap();
        assert!(r.online.is_none());
    }

    #[test]
    fn online_cold_start_learns_profiles_under_strict_oracle() {
        // Zero offline profiles: both clients start Unknown, and the run
        // must still admit kernels whose learned durations match ground
        // truth (the Strict oracle panics on any admission outside the
        // tolerance).
        let mut cfg = RunConfig::quick_test();
        cfg.online = OnlineConfig::learning();
        let clients = vec![
            ClientSpec::high_priority(
                inference_workload(ModelKind::ResNet50),
                ArrivalProcess::Poisson { rps: 15.0 },
            )
            .unprofiled(),
            ClientSpec::best_effort(
                training_workload(ModelKind::MobileNetV2),
                ArrivalProcess::ClosedLoop,
            )
            .unprofiled(),
        ];
        let r = run_collocation(PolicyKind::orion_default(), clients, &cfg).unwrap();
        let o = r.online.as_ref().expect("online report present");
        assert!(o.admitted > 0, "no kernels admitted: {o:?}");
        assert!(o.clean_samples > 0);
        assert!(
            o.max_profile_error < 0.10,
            "learned profiles diverge from truth: {o:?}"
        );
        assert!(
            o.latency_estimates > 0,
            "solo-latency tuner never fired: {o:?}"
        );
        assert!(r.hp().completed > 0);
        assert!(r.be_throughput() > 0.0, "admission never unthrottled BE");
    }

    #[test]
    fn online_drift_demotes_and_relearns() {
        // Mid-run 1.5x duration drift on the best-effort client: admitted
        // kernels must be caught by the z-strike detector, withdrawn, and
        // re-admitted at the new regime — all under the Strict oracle.
        let mut cfg = RunConfig::quick_test();
        cfg.online = OnlineConfig::learning();
        let drift_at = SimTime::from_millis(1500);
        let clients = vec![
            ClientSpec::high_priority(
                inference_workload(ModelKind::ResNet50),
                ArrivalProcess::Poisson { rps: 15.0 },
            )
            .unprofiled(),
            ClientSpec::best_effort(
                training_workload(ModelKind::MobileNetV2),
                ArrivalProcess::ClosedLoop,
            )
            .unprofiled()
            .with_drift(orion_workloads::DriftSpec::new(drift_at, 1.5)),
        ];
        let r = run_collocation(PolicyKind::orion_default(), clients, &cfg).unwrap();
        let o = r.online.expect("online report present");
        assert!(o.demotions > 0, "drift never detected: {o:?}");
        assert!(
            o.admissions > o.demotions,
            "demoted kernels never re-admitted: {o:?}"
        );
        // Post-drift ground truth at the horizon: learned profiles that
        // survived to the end must match the *drifted* durations.
        assert!(o.max_profile_error < 0.10, "stale profiles survived: {o:?}");
    }

    #[test]
    fn determinism_across_runs() {
        let cfg = RunConfig::quick_test();
        let mk = || {
            vec![
                ClientSpec::high_priority(
                    inference_workload(ModelKind::ResNet50),
                    ArrivalProcess::Poisson { rps: 15.0 },
                ),
                ClientSpec::best_effort(
                    training_workload(ModelKind::ResNet50),
                    ArrivalProcess::ClosedLoop,
                ),
            ]
        };
        let a = run_collocation(PolicyKind::orion_default(), mk(), &cfg).unwrap();
        let b = run_collocation(PolicyKind::orion_default(), mk(), &cfg).unwrap();
        assert_eq!(a.hp().completed, b.hp().completed);
        assert_eq!(a.hp().latency.samples(), b.hp().latency.samples());
        assert_eq!(a.clients[1].completed, b.clients[1].completed);
    }
}
