//! Client-side state: request lifecycles and per-client software queues.
//!
//! In the paper's prototype, each client application (a PyTorch process or
//! thread) launches GPU operations through Orion's wrappers, which append
//! them to a per-client software queue (§5). The client runs ahead of the
//! GPU (asynchronous launches) but blocks on synchronous operations
//! (`cudaMemcpy`) and at request boundaries. This module models that state
//! machine; the world (`crate::world`) drives it with events.

use std::collections::VecDeque;

use orion_desim::time::SimTime;
use orion_gpu::kernel::ResourceProfile;
use orion_profiler::ProfileTable;
use orion_workloads::arrivals::{ArrivalProcess, DriftSpec};
use orion_workloads::model::{Phase, Workload};
use orion_workloads::ops::OpSpec;

use crate::supervisor::ClientFault;

/// Scheduling class of a client (paper §5: one high-priority client, any
/// number of best-effort clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientPriority {
    /// The latency/throughput-critical client.
    HighPriority,
    /// Opportunistic client that may only use spare resources.
    BestEffort,
}

/// Configuration of one client in a collocation run.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// The client's workload (one request/iteration op trace).
    pub workload: Workload,
    /// Request arrival process.
    pub arrivals: ArrivalProcess,
    /// Scheduling class.
    pub priority: ClientPriority,
    /// Optional injected lifecycle fault (crash/hang/slow-poll).
    pub fault: Option<ClientFault>,
    /// Skip the offline profiling phase (§5.2) for this client: every kernel
    /// lookup misses and the scheduler takes the conservative unprofiled
    /// path. Models a client submitting kernels the profiler has never seen.
    pub unprofiled: bool,
    /// Optional mid-run kernel-duration drift (changed tensor shapes, a
    /// model redeploy). Applied when ops are routed to the device; offline
    /// profiles are *not* adjusted, so a drifted client's profiles go stale —
    /// exactly the situation the online profiler's drift detector handles.
    pub drift: Option<DriftSpec>,
}

impl ClientSpec {
    /// A high-priority client.
    pub fn high_priority(workload: Workload, arrivals: ArrivalProcess) -> Self {
        ClientSpec {
            workload,
            arrivals,
            priority: ClientPriority::HighPriority,
            fault: None,
            unprofiled: false,
            drift: None,
        }
    }

    /// A best-effort client.
    pub fn best_effort(workload: Workload, arrivals: ArrivalProcess) -> Self {
        ClientSpec {
            workload,
            arrivals,
            priority: ClientPriority::BestEffort,
            fault: None,
            unprofiled: false,
            drift: None,
        }
    }

    /// Injects a lifecycle fault into this client (builder style).
    pub fn with_fault(mut self, fault: ClientFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Skips offline profiling for this client (builder style); see
    /// [`ClientSpec::unprofiled`].
    pub fn unprofiled(mut self) -> Self {
        self.unprofiled = true;
        self
    }

    /// Attaches a mid-run kernel-duration drift (builder style); see
    /// [`ClientSpec::drift`].
    pub fn with_drift(mut self, drift: DriftSpec) -> Self {
        self.drift = Some(drift);
        self
    }
}

/// An operation sitting in a client's software queue, annotated with the
/// offline profile the scheduler consults (§5.2).
#[derive(Debug, Clone)]
pub struct QueuedOp {
    /// The operation.
    pub spec: OpSpec,
    /// Training phase tag (used by Tick-Tock).
    pub phase: Phase,
    /// Request this op belongs to.
    pub request_id: u64,
    /// Index of the op within its request.
    pub op_seq: u32,
    /// True for the final op of the request.
    pub last_of_request: bool,
    /// Profiled resource class (kernels; `Unknown` for copies).
    pub profile: ResourceProfile,
    /// Profiled duration (kernels; zero for copies).
    pub expected_dur: SimTime,
    /// Profiled SM demand (kernels; zero for copies).
    pub sm_needed: u32,
    /// False when the offline profile has no entry for this kernel; such ops
    /// must be scheduled conservatively (DESIGN.md §11). Always true for
    /// memory ops (they need no profile).
    pub profiled: bool,
}

impl QueuedOp {
    /// True when this is a kernel (vs. a memory operation).
    pub fn is_kernel(&self) -> bool {
        matches!(self.spec, OpSpec::Kernel(_))
    }

    /// True when this op has synchronous (client-blocking) semantics.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self.spec,
            OpSpec::H2D { blocking: true, .. } | OpSpec::D2H { blocking: true, .. }
        )
    }
}

/// Progress of the in-flight request.
#[derive(Debug, Clone)]
struct RequestProgress {
    request_id: u64,
    /// Arrival time (queueing delay counts toward latency).
    arrived_at: SimTime,
    /// Next op index to push into the software queue.
    next_op: u32,
    /// True once the final op's completion has been observed.
    done: bool,
}

/// Full client state inside a collocation run.
#[derive(Debug)]
pub struct ClientState {
    /// Static configuration.
    pub spec: ClientSpec,
    /// Offline profile of this client's workload.
    pub profile: ProfileTable,
    /// The software queue the scheduler drains.
    queue: VecDeque<QueuedOp>,
    /// Requests that arrived but have not started.
    pending: VecDeque<SimTime>,
    current: Option<RequestProgress>,
    /// Op sequence the push cursor is blocked on (blocking memcpy), if any.
    blocked_on: Option<(u64, u32)>,
    next_request_id: u64,
    /// Completed request latencies with completion timestamps.
    pub finished: Vec<(SimTime, SimTime)>, // (completed_at, latency)
    /// Kernel ops pushed without an offline profile entry.
    pub profile_misses: u64,
    /// Set when the client crashed or hung: the push cursor stops forever.
    halted: bool,
}

impl ClientState {
    /// Creates client state from a spec and its offline profile.
    pub fn new(spec: ClientSpec, profile: ProfileTable) -> Self {
        ClientState {
            spec,
            profile,
            queue: VecDeque::new(),
            pending: VecDeque::new(),
            current: None,
            blocked_on: None,
            next_request_id: 0,
            finished: Vec::new(),
            profile_misses: 0,
            halted: false,
        }
    }

    /// Scheduling class shortcut.
    pub fn priority(&self) -> ClientPriority {
        self.spec.priority
    }

    /// Head of the software queue, if any.
    pub fn peek(&self) -> Option<&QueuedOp> {
        self.queue.front()
    }

    /// Pops the head of the software queue.
    pub fn pop(&mut self) -> Option<QueuedOp> {
        self.queue.pop_front()
    }

    /// Ops currently buffered in the software queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// True when a request is in flight (started, not yet completed).
    pub fn request_in_flight(&self) -> bool {
        self.current.as_ref().is_some_and(|r| !r.done)
    }

    /// Arrival time of the next pending (not yet started) request.
    pub fn next_pending_at(&self) -> Option<SimTime> {
        self.pending.front().copied()
    }

    /// Records a request arrival; returns `true` if the request can start
    /// now (the client was idle).
    pub fn on_arrival(&mut self, at: SimTime) -> bool {
        self.pending.push_back(at);
        !self.request_in_flight()
    }

    /// Starts the next pending request; returns `false` when none is
    /// pending or one is already in flight.
    pub fn try_start_request(&mut self) -> bool {
        if self.request_in_flight() {
            return false;
        }
        let Some(arrived_at) = self.pending.pop_front() else {
            return false;
        };
        let id = self.next_request_id;
        self.next_request_id += 1;
        self.current = Some(RequestProgress {
            request_id: id,
            arrived_at,
            next_op: 0,
            done: false,
        });
        self.blocked_on = None;
        true
    }

    /// Whether the push cursor can emit another op right now.
    pub fn can_push(&self) -> bool {
        if self.halted {
            return false;
        }
        match &self.current {
            Some(r) if !r.done => {
                self.blocked_on.is_none() && (r.next_op as usize) < self.spec.workload.ops.len()
            }
            _ => false,
        }
    }

    /// Permanently stops the push cursor (crashed or hung client).
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Progress of the in-flight request: `(request_id, next_op)`.
    pub fn current_progress(&self) -> Option<(u64, u32)> {
        self.current
            .as_ref()
            .filter(|r| !r.done)
            .map(|r| (r.request_id, r.next_op))
    }

    /// Puts a previously popped (and aborted) op back at the queue head for
    /// deterministic resubmission after a device reset. The blocked-on
    /// marker is untouched: an aborted blocking op never completed, so the
    /// marker set at its original push is still correct.
    pub fn requeue_front(&mut self, op: QueuedOp) {
        self.queue.push_front(op);
    }

    /// Sheds the in-flight request: drops its unsubmitted ops and the
    /// request itself. The queue only ever holds ops of the current request,
    /// so clearing it is exact. Pending arrivals are untouched; restarting
    /// (or not) is the caller's decision.
    pub fn shed_current(&mut self) {
        self.queue.clear();
        self.blocked_on = None;
        self.current = None;
    }

    /// Enqueues a synthetic pending arrival (quarantine re-admission).
    pub fn enqueue_pending(&mut self, at: SimTime) {
        self.pending.push_back(at);
    }

    /// Rebuilds the queued-op record for `(request_id, op_seq)` of the
    /// in-flight request, for resubmission after a reset. Deterministic: the
    /// workload trace and profile table are immutable, so this reproduces
    /// exactly what [`ClientState::push_next`] produced (without re-counting
    /// profile misses).
    pub fn op_for(&self, request_id: u64, op_seq: u32) -> QueuedOp {
        let idx = op_seq as usize;
        let (phase, spec) = self.spec.workload.ops[idx].clone();
        let (profile, expected_dur, sm_needed, profiled) = match &spec {
            OpSpec::Kernel(k) => (
                self.profile.resource_profile(k.kernel_id),
                self.profile.duration(k.kernel_id),
                self.profile.sm_needed(k.kernel_id),
                self.profile.get(k.kernel_id).is_some(),
            ),
            _ => (ResourceProfile::Unknown, SimTime::ZERO, 0, true),
        };
        QueuedOp {
            spec,
            phase,
            request_id,
            op_seq,
            last_of_request: idx + 1 == self.spec.workload.ops.len(),
            profile,
            expected_dur,
            sm_needed,
            profiled,
        }
    }

    /// Pushes the next op of the current request into the software queue.
    ///
    /// Returns the pushed op's metadata, or `None` when nothing can be
    /// pushed (blocked, finished, or no request).
    pub fn push_next(&mut self) -> Option<QueuedOp> {
        if !self.can_push() {
            return None;
        }
        let r = self.current.as_mut().expect("can_push checked");
        let idx = r.next_op as usize;
        let (phase, spec) = self.spec.workload.ops[idx].clone();
        let (profile, expected_dur, sm_needed, profiled) = match &spec {
            OpSpec::Kernel(k) => (
                self.profile.resource_profile(k.kernel_id),
                self.profile.duration(k.kernel_id),
                self.profile.sm_needed(k.kernel_id),
                self.profile.get(k.kernel_id).is_some(),
            ),
            _ => (ResourceProfile::Unknown, SimTime::ZERO, 0, true),
        };
        if !profiled {
            self.profile_misses += 1;
        }
        let op = QueuedOp {
            spec,
            phase,
            request_id: r.request_id,
            op_seq: r.next_op,
            last_of_request: idx + 1 == self.spec.workload.ops.len(),
            profile,
            expected_dur,
            sm_needed,
            profiled,
        };
        r.next_op += 1;
        if op.is_blocking() {
            self.blocked_on = Some((op.request_id, op.op_seq));
        }
        self.queue.push_back(op.clone());
        Some(op)
    }

    /// Handles the completion of one of this client's ops.
    ///
    /// Returns `Some(latency)` when this completion finished the request.
    pub fn on_op_complete(
        &mut self,
        now: SimTime,
        request_id: u64,
        op_seq: u32,
        last_of_request: bool,
    ) -> Option<SimTime> {
        if self.blocked_on == Some((request_id, op_seq)) {
            self.blocked_on = None;
        }
        let r = self.current.as_mut()?;
        if r.request_id != request_id || r.done {
            return None;
        }
        if last_of_request {
            r.done = true;
            let latency = now - r.arrived_at;
            self.finished.push((now, latency));
            self.current = None;
            // Closed-loop clients queue the next request after their host
            // think time (zero for plain closed loops).
            if self.spec.arrivals.is_closed_loop() {
                self.pending.push_back(now + self.spec.arrivals.think_time());
            }
            return Some(latency);
        }
        None
    }

    /// Number of requests completed so far.
    pub fn completed(&self) -> usize {
        self.finished.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::spec::GpuSpec;
    use orion_profiler::profile_workload;
    use orion_workloads::registry::inference_workload;
    use orion_workloads::ModelKind;

    fn client(arrivals: ArrivalProcess) -> ClientState {
        let w = inference_workload(ModelKind::MobileNetV2);
        let profile = profile_workload(&w, &GpuSpec::v100_16gb()).unwrap().table();
        ClientState::new(ClientSpec::high_priority(w, arrivals), profile)
    }

    #[test]
    fn request_lifecycle() {
        let mut c = client(ArrivalProcess::Poisson { rps: 1.0 });
        assert!(!c.request_in_flight());
        assert!(c.on_arrival(SimTime::from_millis(1)));
        assert!(c.try_start_request());
        assert!(c.request_in_flight());
        assert!(!c.try_start_request(), "no double start");

        // Push the whole request; the first op (blocking H2D) blocks.
        let op0 = c.push_next().unwrap();
        assert!(op0.is_blocking());
        assert!(!c.can_push());
        assert!(c.push_next().is_none());
        // Completing the blocking op resumes pushing.
        assert!(c
            .on_op_complete(SimTime::from_millis(2), op0.request_id, op0.op_seq, false)
            .is_none());
        assert!(c.can_push());

        // Drain the rest of the ops.
        let total = c.spec.workload.ops.len() as u32;
        let mut last = None;
        while let Some(op) = c.push_next() {
            if op.is_blocking() {
                c.on_op_complete(SimTime::from_millis(3), op.request_id, op.op_seq, false);
            }
            last = Some(op);
        }
        let last = last.unwrap();
        assert!(last.last_of_request);
        assert_eq!(last.op_seq, total - 1);

        // Finishing the last op finishes the request.
        let latency = c
            .on_op_complete(SimTime::from_millis(10), last.request_id, last.op_seq, true)
            .expect("request completes");
        assert_eq!(latency, SimTime::from_millis(9));
        assert!(!c.request_in_flight());
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn closed_loop_requeues_itself() {
        let mut c = client(ArrivalProcess::ClosedLoop);
        c.on_arrival(SimTime::ZERO);
        c.try_start_request();
        // Fast-forward: mark the final op complete.
        while c.push_next().is_some() {
            c.blocked_on = None; // tests drive without a GPU
        }
        let total = c.spec.workload.ops.len() as u32;
        c.on_op_complete(SimTime::from_millis(5), 0, total - 1, true);
        // A new pending request was enqueued automatically.
        assert!(c.try_start_request());
        assert!(c.request_in_flight());
    }

    #[test]
    fn queue_and_profiles_attached() {
        let mut c = client(ArrivalProcess::ClosedLoop);
        c.on_arrival(SimTime::ZERO);
        c.try_start_request();
        c.push_next(); // H2D
        c.blocked_on = None;
        let op = c.push_next().unwrap(); // first kernel
        assert!(op.is_kernel());
        assert!(op.expected_dur > SimTime::ZERO);
        assert!(op.sm_needed > 0);
        assert_eq!(c.queue_depth(), 2);
        assert_eq!(c.pop().unwrap().op_seq, 0);
        assert_eq!(c.peek().unwrap().op_seq, 1);
    }

    #[test]
    fn halt_stops_push_cursor() {
        let mut c = client(ArrivalProcess::ClosedLoop);
        c.on_arrival(SimTime::ZERO);
        c.try_start_request();
        assert!(c.can_push());
        c.halt();
        assert!(!c.can_push());
        assert!(c.push_next().is_none());
        assert!(c.request_in_flight(), "request stays stuck, not completed");
    }

    #[test]
    fn shed_current_clears_request_but_keeps_pending() {
        let mut c = client(ArrivalProcess::Poisson { rps: 1.0 });
        c.on_arrival(SimTime::ZERO);
        c.on_arrival(SimTime::from_millis(1));
        c.try_start_request();
        c.push_next();
        assert!(c.request_in_flight());
        assert_eq!(c.queue_depth(), 1);
        c.shed_current();
        assert!(!c.request_in_flight());
        assert_eq!(c.queue_depth(), 0);
        assert!(!c.can_push());
        // The second arrival is still pending and can start.
        assert!(c.try_start_request());
        assert_eq!(c.current_progress(), Some((1, 0)));
    }

    #[test]
    fn op_for_reproduces_push_next() {
        let mut c = client(ArrivalProcess::ClosedLoop);
        c.on_arrival(SimTime::ZERO);
        c.try_start_request();
        c.push_next(); // blocking H2D
        c.blocked_on = None;
        let pushed = c.push_next().unwrap(); // first kernel
        let rebuilt = c.op_for(pushed.request_id, pushed.op_seq);
        assert_eq!(rebuilt.op_seq, pushed.op_seq);
        assert_eq!(rebuilt.expected_dur, pushed.expected_dur);
        assert_eq!(rebuilt.sm_needed, pushed.sm_needed);
        assert_eq!(rebuilt.profiled, pushed.profiled);
        assert_eq!(rebuilt.last_of_request, pushed.last_of_request);
        assert_eq!(c.profile_misses, 0, "op_for never counts misses");
    }

    #[test]
    fn unprofiled_kernels_flagged_and_counted() {
        // Empty profile table: every kernel is a miss.
        let w = inference_workload(ModelKind::MobileNetV2);
        let c0 = ClientSpec::high_priority(w, ArrivalProcess::ClosedLoop);
        let mut c = ClientState::new(c0, ProfileTable::default());
        c.on_arrival(SimTime::ZERO);
        c.try_start_request();
        let mut kernels = 0u64;
        while let Some(op) = c.push_next() {
            c.blocked_on = None;
            if op.is_kernel() {
                assert!(!op.profiled);
                assert_eq!(op.expected_dur, SimTime::ZERO);
                kernels += 1;
            } else {
                assert!(op.profiled, "memory ops need no profile");
            }
        }
        assert!(kernels > 0);
        assert_eq!(c.profile_misses, kernels);
    }

    #[test]
    fn arrivals_queue_while_busy() {
        let mut c = client(ArrivalProcess::Poisson { rps: 1.0 });
        assert!(c.on_arrival(SimTime::from_millis(1)));
        c.try_start_request();
        // Second arrival while the first is in flight.
        assert!(!c.on_arrival(SimTime::from_millis(2)));
        assert!(!c.try_start_request());
        // Finish request 0 (find the last op by pushing through).
        while c.push_next().is_some() {
            c.blocked_on = None;
        }
        let total = c.spec.workload.ops.len() as u32;
        c.on_op_complete(SimTime::from_millis(8), 0, total - 1, true);
        // Request 1 starts and its latency includes queueing delay.
        assert!(c.try_start_request());
        while c.push_next().is_some() {
            c.blocked_on = None;
        }
        c.on_op_complete(SimTime::from_millis(20), 1, total - 1, true);
        let (_, latency) = c.finished[1];
        assert_eq!(latency, SimTime::from_millis(18));
    }
}
