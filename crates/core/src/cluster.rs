//! Multi-GPU cluster simulation (paper §7 "cluster manager co-design").
//!
//! Orion is a per-GPU scheduler; the paper's discussion proposes a cluster
//! manager that uses the offline compute/memory profiles to place jobs with
//! complementary demands on the same GPU. This module closes the loop at two
//! scales:
//!
//! - [`run_cluster`] / [`run_cluster_packed`]: a *static* cluster — a fixed
//!   job set packed onto a fixed GPU budget, each device simulated once.
//! - [`FleetSim`]: a *fleet* — hundreds of GPUs and thousands of jobs driven
//!   by an open-loop arrival/departure trace ([`FleetTrace`]), with a
//!   control-plane event loop: a job arrives → it is placed on the best
//!   complementary GPU with capacity (or queues); a job departs → its slot
//!   is freed; optionally, when a GPU's learned profiles say a pairing
//!   soured, the worst-matched best-effort resident migrates elsewhere.
//!
//! The fleet runs in fixed-length *epochs*. Arrivals, departures, placement,
//! and migration are applied at epoch boundaries; within an epoch every
//! occupied GPU is an independent collocation episode (the paper runs a
//! separate Orion instance per device, §5), so a batch of episodes can be
//! sharded across the deterministic runner in `orion-bench`. Engine state
//! resets at epoch boundaries — a deliberate simplification that buys
//! embarrassingly-parallel epochs; latency/throughput statistics aggregate
//! across a job's resident epochs. Episode seeds are splitmix-derived from
//! `(base seed, gpu, epoch)`, so fleet results are a pure function of the
//! trace and configuration: byte-identical at any thread count.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;

use orion_desim::rng::{cell_seed, DetRng};
use orion_desim::time::SimTime;
use orion_gpu::error::GpuError;
use orion_metrics::LatencyRecorder;
use orion_profiler::{profile_workload, ProfileTable};
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::models::llm::llm_decode_step;
use orion_workloads::registry::{inference_workload, training_workload};
use orion_workloads::ModelKind;

use crate::client::{ClientPriority, ClientSpec};
use crate::online::OnlineConfig;
use crate::placement::{
    demand_complementarity, demand_from_profiles, demand_vector, pack_jobs, FleetPlacer, PackJob,
};
use crate::policy::PolicyKind;
use crate::world::{run_collocation, run_collocation_with_profiles, run_dedicated, RunConfig,
    RunResult};

/// Cluster-level failures. The per-GPU engine's [`GpuError`] variants encode
/// device conditions (allocations, streams, kernels); exhausting the *GPU
/// budget* or failing a *reference run* are control-plane conditions and get
/// their own variants instead of being smuggled through device error fields.
#[derive(Debug)]
pub enum ClusterError {
    /// The placement needs more devices than the cluster has.
    InsufficientGpus {
        /// GPUs the packing requires.
        needed: usize,
        /// GPUs available.
        available: usize,
    },
    /// A job's footprint exceeds a single device's memory: it cannot be
    /// placed anywhere, not even alone.
    JobTooLarge {
        /// Index of the offending job in submission order.
        job: usize,
        /// The job's memory footprint in bytes.
        footprint: u64,
        /// A single device's capacity in bytes.
        gpu_memory: u64,
    },
    /// A job's dedicated-baseline reference run failed; its normalized
    /// throughput would be meaningless (reported instead of a silent 0.0).
    BaselineFailed {
        /// Index of the offending job in submission order.
        job: usize,
        /// The underlying device error.
        source: GpuError,
    },
    /// A placed collocation failed to run.
    Gpu(GpuError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InsufficientGpus { needed, available } => {
                write!(f, "placement needs {needed} GPUs but only {available} available")
            }
            ClusterError::JobTooLarge { job, footprint, gpu_memory } => write!(
                f,
                "job {job} footprint {footprint} B exceeds device memory {gpu_memory} B"
            ),
            ClusterError::BaselineFailed { job, source } => {
                write!(f, "dedicated baseline for job {job} failed: {source}")
            }
            ClusterError::Gpu(e) => write!(f, "collocation run failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::BaselineFailed { source, .. } | ClusterError::Gpu(source) => Some(source),
            _ => None,
        }
    }
}

impl From<GpuError> for ClusterError {
    fn from(e: GpuError) -> Self {
        ClusterError::Gpu(e)
    }
}

/// A job submitted to the cluster.
#[derive(Debug, Clone)]
pub struct ClusterJob {
    /// The client (workload + arrivals + priority).
    pub client: ClientSpec,
}

/// Result for one job after the cluster run.
#[derive(Debug)]
pub struct JobResult {
    /// Index of the job in the submission order.
    pub job: usize,
    /// GPU the job was placed on.
    pub gpu: usize,
    /// Workload label.
    pub label: String,
    /// Requests/iterations per second achieved.
    pub throughput: f64,
    /// p99 latency in milliseconds.
    pub p99_ms: f64,
    /// Throughput relative to a dedicated GPU.
    pub normalized: f64,
}

/// Cluster-level outcome.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-job results.
    pub jobs: Vec<JobResult>,
    /// GPUs actually used.
    pub gpus_used: usize,
    /// Sum of normalized throughputs (max = number of jobs).
    pub total_normalized: f64,
}

/// Places `jobs` onto at most `max_gpus` devices with the profile-driven
/// matcher and runs every device's collocation under `policy`. Legacy
/// pairwise mode: at most two jobs share a GPU (see [`run_cluster_packed`]
/// for k-way packing).
///
/// Jobs are packed by complementarity in submission-index order
/// (high-priority jobs first); leftover jobs run alone, in ascending index
/// order, one per remaining GPU.
///
/// # Errors
///
/// - [`ClusterError::JobTooLarge`] when a job cannot fit on a device alone.
/// - [`ClusterError::InsufficientGpus`] when the packing needs more devices
///   than `max_gpus`.
/// - [`ClusterError::BaselineFailed`] when a job's dedicated reference run
///   fails (its normalization would otherwise silently read 0.0).
/// - [`ClusterError::Gpu`] when a placed collocation fails to run.
pub fn run_cluster(
    jobs: &[ClusterJob],
    max_gpus: usize,
    policy: &PolicyKind,
    cfg: &RunConfig,
) -> Result<ClusterResult, ClusterError> {
    run_cluster_packed(jobs, max_gpus, 2, policy, cfg)
}

/// [`run_cluster`] with k-way packing: a GPU hosts at most one high-priority
/// job plus best-effort jobs up to `max_jobs_per_gpu` total, subject to the
/// memory ledger.
///
/// # Errors
///
/// Same as [`run_cluster`].
pub fn run_cluster_packed(
    jobs: &[ClusterJob],
    max_gpus: usize,
    max_jobs_per_gpu: usize,
    policy: &PolicyKind,
    cfg: &RunConfig,
) -> Result<ClusterResult, ClusterError> {
    let pack: Vec<PackJob> = jobs
        .iter()
        .map(|j| PackJob {
            mem: j.client.workload.memory_footprint,
            demand: demand_vector(&j.client.workload),
            hp: j.client.priority == ClientPriority::HighPriority,
        })
        .collect();
    let packing = pack_jobs(&pack, cfg.spec.memory_capacity, max_jobs_per_gpu);
    if let Some(&job) = packing.oversized.first() {
        return Err(ClusterError::JobTooLarge {
            job,
            footprint: jobs[job].client.workload.memory_footprint,
            gpu_memory: cfg.spec.memory_capacity,
        });
    }
    let needed = packing.groups.len();
    if needed > max_gpus {
        return Err(ClusterError::InsufficientGpus {
            needed,
            available: max_gpus,
        });
    }

    // Dedicated reference throughput per job (for normalization). A failed
    // reference is an error, not a silent `normalized: 0.0`.
    let dedicated = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            run_dedicated(j.client.clone(), cfg)
                .map(|r| r.clients[0].throughput)
                .map_err(|source| ClusterError::BaselineFailed { job: i, source })
        })
        .collect::<Result<Vec<f64>, ClusterError>>()?;

    let mut results = Vec::new();
    for (gpu, group) in packing.groups.iter().enumerate() {
        let mut specs: Vec<ClientSpec> = group.iter().map(|&j| jobs[j].client.clone()).collect();
        // A group of equal priorities promotes its first job to the GPU's
        // high-priority client (submitters can encode real priorities by
        // setting ClientPriority; we respect them — the packer guarantees
        // at most one HP job per group).
        if specs.len() > 1 && !specs.iter().any(|s| s.priority == ClientPriority::HighPriority) {
            specs[0].priority = ClientPriority::HighPriority;
        }
        let mut r = if specs.len() == 1 {
            run_dedicated(specs.pop().expect("one spec"), cfg)?
        } else {
            run_collocation(policy.clone(), specs, cfg)?
        };
        for (slot, &job) in group.iter().enumerate() {
            let c = &mut r.clients[slot];
            results.push(JobResult {
                job,
                gpu,
                label: c.label.clone(),
                throughput: c.throughput,
                p99_ms: c.latency.p99().as_millis_f64(),
                normalized: if dedicated[job] > 0.0 {
                    c.throughput / dedicated[job]
                } else {
                    0.0
                },
            });
        }
    }

    results.sort_by_key(|r| r.job);
    let total_normalized = results.iter().map(|r| r.normalized).sum();
    Ok(ClusterResult {
        jobs: results,
        gpus_used: needed,
        total_normalized,
    })
}

// ---------------------------------------------------------------------------
// Fleet-scale simulation: arrival/departure churn over hundreds of GPUs.
// ---------------------------------------------------------------------------

/// Domain-separation tag for the trace synthesizer's per-job seeds.
const FLEET_TRACE_TAG: u64 = 0xf1ee_0000_0000_0001;
/// Domain-separation tag for dedicated-reference run seeds.
const FLEET_DED_TAG: u64 = 0xf1ee_0000_0000_0002;
/// Domain-separation tag for per-(gpu, epoch) episode seeds.
const FLEET_EPISODE_TAG: u64 = 0xf1ee_0000_0000_0003;

/// One job in a fleet trace: a client plus its lifetime.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// The client (workload + arrivals + priority).
    pub client: ClientSpec,
    /// Submission time.
    pub arrive: SimTime,
    /// Completion/cancellation time (open interval end: the job is gone at
    /// and after this instant).
    pub depart: SimTime,
}

/// An open-loop arrival/departure trace driving a fleet.
#[derive(Debug, Clone, Default)]
pub struct FleetTrace {
    /// Jobs in submission order (ids are indices into this vector).
    pub jobs: Vec<FleetJob>,
}

/// Knobs for [`FleetTrace::synthesize`].
#[derive(Debug, Clone)]
pub struct FleetTraceConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Trace horizon: arrivals and departures land in `[0, horizon]`.
    pub horizon: SimTime,
    /// Fraction of jobs that are high-priority inference services.
    pub hp_fraction: f64,
    /// Mean of the exponential job lifetime.
    pub mean_lifetime: SimTime,
    /// Lifetime floor (avoids zero-epoch jobs dominating the trace).
    pub min_lifetime: SimTime,
    /// Arrivals land uniformly in `[0, horizon * arrival_window]`.
    pub arrival_window: f64,
    /// Trace seed (independent of the run seeds).
    pub seed: u64,
}

impl FleetTraceConfig {
    /// A trace of `jobs` jobs over `horizon` with the default mix: 40%
    /// high-priority inference (Poisson at the paper's Table-3 rates), 60%
    /// best-effort training/decode, lifetimes exponential around a third of
    /// the horizon.
    pub fn new(jobs: usize, horizon: SimTime) -> Self {
        FleetTraceConfig {
            jobs,
            horizon,
            hp_fraction: 0.4,
            mean_lifetime: horizon.mul_f64(1.0 / 3.0),
            min_lifetime: horizon.mul_f64(0.125),
            arrival_window: 0.6,
            seed: 42,
        }
    }
}

/// High-priority service models sampled by the synthesizer.
const HP_MODELS: [ModelKind; 4] = [
    ModelKind::ResNet50,
    ModelKind::MobileNetV2,
    ModelKind::Bert,
    ModelKind::ResNet101,
];

impl FleetTrace {
    /// Synthesizes an open-loop churn trace. Every job is derived from its
    /// own splitmix cell of `(seed, job index)`, so the trace is a pure
    /// function of the config — independent of thread count or wall clock.
    pub fn synthesize(cfg: &FleetTraceConfig) -> FleetTrace {
        let base = cell_seed(cfg.seed, FLEET_TRACE_TAG);
        let jobs = (0..cfg.jobs)
            .map(|i| {
                let mut rng = DetRng::new(cell_seed(base, i as u64));
                let hp = rng.next_f64() < cfg.hp_fraction;
                let client = if hp {
                    let model = HP_MODELS[rng.uniform_u64(HP_MODELS.len() as u64) as usize];
                    ClientSpec::high_priority(
                        inference_workload(model),
                        ArrivalProcess::Poisson {
                            rps: PaperRates::inf_train_poisson(model),
                        },
                    )
                } else {
                    match rng.uniform_u64(3) {
                        0 => ClientSpec::best_effort(
                            training_workload(ModelKind::ResNet50),
                            ArrivalProcess::ClosedLoop,
                        ),
                        1 => ClientSpec::best_effort(
                            training_workload(ModelKind::MobileNetV2),
                            ArrivalProcess::ClosedLoop,
                        ),
                        _ => ClientSpec::best_effort(llm_decode_step(), ArrivalProcess::ClosedLoop),
                    }
                };
                let arrive = cfg.horizon.mul_f64(cfg.arrival_window * rng.next_f64());
                let mean = cfg.mean_lifetime.as_secs_f64().max(1e-9);
                let mut life = SimTime::from_secs_f64(rng.exponential(1.0 / mean));
                if life < cfg.min_lifetime {
                    life = cfg.min_lifetime;
                }
                let depart = (arrive + life).min(cfg.horizon);
                FleetJob {
                    client,
                    arrive,
                    depart,
                }
            })
            .collect();
        FleetTrace { jobs }
    }

    /// Peak number of concurrently-live jobs in the raw trace: the size a
    /// dedicated (one GPU per job) fleet would need.
    pub fn peak_concurrent(&self) -> usize {
        let mut events: Vec<(SimTime, i64)> = Vec::with_capacity(self.jobs.len() * 2);
        for j in &self.jobs {
            if j.depart > j.arrive {
                events.push((j.arrive, 1));
                events.push((j.depart, -1));
            }
        }
        // Departures apply before arrivals at the same instant.
        events.sort_by_key(|&(t, d)| (t, d));
        let mut live = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            live += d;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    }
}

/// Fleet control-plane configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of identical GPUs in the fleet.
    pub gpus: usize,
    /// Epoch length: the control plane acts at multiples of this.
    pub epoch: SimTime,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Scheduling policy on every GPU.
    pub policy: PolicyKind,
    /// Per-episode run template. `horizon`/`warmup`/`seed`/`online` are
    /// overridden per (gpu, epoch); `spec` sets the device and the memory
    /// ledger the placer packs against.
    pub rc: RunConfig,
    /// Packing cap: jobs per GPU (one high-priority plus best-effort).
    pub max_jobs_per_gpu: usize,
    /// Learn profiles online (cold start + admission ladder) and feed
    /// re-placement from the learned tables; offline tables otherwise.
    pub online: bool,
    /// Migrate the worst-matched best-effort resident off a GPU whose
    /// high-priority job underperformed its threshold last epoch.
    pub migration: bool,
    /// Migration trigger: HP normalized throughput below this.
    pub migrate_threshold: f64,
    /// HP job SLO: aggregated p99 within this factor of dedicated p99.
    pub slo_latency_factor: f64,
    /// BE job SLO: normalized throughput at least this.
    pub slo_tput_factor: f64,
}

impl FleetConfig {
    /// A fleet of `gpus` V100s over `epochs` one-second epochs with the
    /// default control-plane tuning (offline profiles, no migration).
    pub fn new(gpus: usize, epochs: usize) -> Self {
        let mut rc = RunConfig::paper_default();
        rc.validate = crate::validate::ValidateMode::Off;
        FleetConfig {
            gpus,
            epoch: SimTime::from_secs(1),
            epochs,
            policy: PolicyKind::orion_default(),
            rc,
            max_jobs_per_gpu: 3,
            online: false,
            migration: false,
            migrate_threshold: 0.55,
            slo_latency_factor: 2.0,
            slo_tput_factor: 0.25,
        }
    }

    /// The trace horizon implied by the epoch grid.
    pub fn horizon(&self) -> SimTime {
        self.epoch * self.epochs as u64
    }

    fn episode_rc(&self, gpu: usize, epoch: usize) -> RunConfig {
        let mut rc = self.rc.clone();
        rc.horizon = self.epoch;
        rc.warmup = self.epoch / 5;
        rc.seed = cell_seed(
            cell_seed(cell_seed(self.rc.seed, FLEET_EPISODE_TAG), gpu as u64),
            epoch as u64,
        );
        rc.online = if self.online {
            OnlineConfig::learning()
        } else {
            OnlineConfig::disabled()
        };
        rc
    }
}

/// Dedicated-GPU reference for one workload label: the normalization and
/// SLO anchor for every job running that workload.
#[derive(Debug, Clone, Copy)]
pub struct DedicatedRef {
    /// Requests/iterations per second alone on a device.
    pub throughput: f64,
    /// p99 latency alone on a device.
    pub p99: SimTime,
}

/// The dedicated reference runs a fleet needs: one per distinct workload
/// label, sorted by label, each with its own derived seed. Both the serial
/// driver and the sharded bench driver map [`run_dedicated`] over exactly
/// this list, so their reference values are identical.
pub fn dedicated_ref_inputs(
    trace: &FleetTrace,
    cfg: &FleetConfig,
) -> Vec<(String, ClientSpec, RunConfig)> {
    let mut by_label: BTreeMap<String, ClientSpec> = BTreeMap::new();
    for j in &trace.jobs {
        by_label
            .entry(j.client.workload.label())
            .or_insert_with(|| j.client.clone());
    }
    by_label
        .into_iter()
        .enumerate()
        .map(|(i, (label, client))| {
            let mut rc = cfg.rc.clone();
            rc.horizon = cfg.epoch;
            rc.warmup = cfg.epoch / 5;
            rc.seed = cell_seed(cell_seed(cfg.rc.seed, FLEET_DED_TAG), i as u64);
            rc.online = OnlineConfig::disabled();
            (label, client, rc)
        })
        .collect()
}

/// Runs the dedicated references serially (the bench driver shards the same
/// inputs across the runner instead).
///
/// # Errors
///
/// [`ClusterError::BaselineFailed`] when a reference run fails.
pub fn dedicated_refs_serial(
    trace: &FleetTrace,
    cfg: &FleetConfig,
) -> Result<BTreeMap<String, DedicatedRef>, ClusterError> {
    let mut refs = BTreeMap::new();
    for (i, (label, client, rc)) in dedicated_ref_inputs(trace, cfg).into_iter().enumerate() {
        let mut r = run_dedicated(client, &rc)
            .map_err(|source| ClusterError::BaselineFailed { job: i, source })?;
        refs.insert(
            label,
            DedicatedRef {
                throughput: r.clients[0].throughput,
                p99: r.clients[0].latency.p99(),
            },
        );
    }
    Ok(refs)
}

/// One (gpu, epoch) collocation episode: everything needed to run it on any
/// worker thread. Produced by [`FleetSim::next_epoch`]; results go back via
/// [`FleetSim::absorb`].
#[derive(Debug, Clone)]
pub struct EpisodeSpec {
    /// Fleet GPU index.
    pub gpu: usize,
    /// Epoch index.
    pub epoch: usize,
    /// Resident job ids, in placement order (parallel to `clients`).
    pub jobs: Vec<usize>,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Client specs, parallel to `jobs`.
    pub clients: Vec<ClientSpec>,
    /// Pre-built profile tables, parallel to `jobs` (offline memoized or
    /// online carried-over).
    pub profiles: Vec<Option<ProfileTable>>,
    /// Fully-derived run config (horizon = epoch, per-episode seed).
    pub rc: RunConfig,
}

impl EpisodeSpec {
    /// Runs the episode.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`run_collocation`] error.
    pub fn run(&self) -> Result<RunResult, GpuError> {
        run_collocation_with_profiles(
            self.policy.clone(),
            self.clients.clone(),
            self.profiles.clone(),
            &self.rc,
        )
    }
}

#[derive(Debug, Default)]
struct JobStats {
    latency: LatencyRecorder,
    completed: u64,
    resident_epochs: u64,
    moves: u64,
    ever_placed: bool,
}

/// The fleet control plane: a pull-driven state machine. Call
/// [`FleetSim::next_epoch`] for the next batch of independent episodes, run
/// them (serially or sharded across the bench runner — results must come
/// back in the same order they were handed out, which `Runner::map`
/// guarantees), feed them to [`FleetSim::absorb`], repeat until
/// `next_epoch` returns `None`, then take [`FleetSim::into_report`].
#[derive(Debug)]
pub struct FleetSim {
    cfg: FleetConfig,
    trace: FleetTrace,
    dedicated: BTreeMap<String, DedicatedRef>,
    offline_tables: BTreeMap<String, ProfileTable>,
    placer: FleetPlacer,
    epoch: usize,
    /// Job ids sorted by (arrive, id); `next_arrival` indexes into it.
    arrivals_order: Vec<usize>,
    next_arrival: usize,
    /// FIFO of arrived-but-unplaced job ids.
    pending: Vec<usize>,
    stats: Vec<JobStats>,
    /// Online-learned table per job, carried across epochs.
    learned: Vec<Option<ProfileTable>>,
    /// Last epoch's measured normalized throughput of each HP job.
    last_hp_norm: Vec<Option<f64>>,
    migrations: u64,
    episode_errors: u64,
    oversized_rejected: u64,
    peak_gpus_used: usize,
}

impl FleetSim {
    /// Builds the control plane over `trace`. Offline mode profiles each
    /// distinct workload once up front (memoized per label); online mode
    /// starts every job cold and learns.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Gpu`] when offline profiling of a workload fails.
    pub fn new(
        trace: FleetTrace,
        cfg: FleetConfig,
        dedicated: BTreeMap<String, DedicatedRef>,
    ) -> Result<FleetSim, ClusterError> {
        let mut offline_tables = BTreeMap::new();
        if !cfg.online {
            for j in &trace.jobs {
                if let Entry::Vacant(e) = offline_tables.entry(j.client.workload.label()) {
                    let table = profile_workload(&j.client.workload, &cfg.rc.spec)
                        .map_err(ClusterError::Gpu)?
                        .table();
                    e.insert(table);
                }
            }
        }
        let n = trace.jobs.len();
        let mut arrivals_order: Vec<usize> = (0..n).collect();
        arrivals_order.sort_by_key(|&i| (trace.jobs[i].arrive, i));
        let placer = FleetPlacer::new(cfg.gpus, cfg.rc.spec.memory_capacity, cfg.max_jobs_per_gpu);
        let mut stats = Vec::with_capacity(n);
        stats.resize_with(n, JobStats::default);
        Ok(FleetSim {
            cfg,
            trace,
            dedicated,
            offline_tables,
            placer,
            epoch: 0,
            arrivals_order,
            next_arrival: 0,
            pending: Vec::new(),
            stats,
            learned: vec![None; n],
            last_hp_norm: vec![None; n],
            migrations: 0,
            episode_errors: 0,
            oversized_rejected: 0,
            peak_gpus_used: 0,
        })
    }

    fn pack_job(&self, id: usize) -> PackJob {
        let spec = &self.trace.jobs[id].client;
        // Re-placement demand: the online-learned table when it has entries,
        // the static workload vector otherwise (cold start / offline mode).
        let demand = self
            .learned[id]
            .as_ref()
            .and_then(demand_from_profiles)
            .unwrap_or_else(|| demand_vector(&spec.workload));
        PackJob {
            mem: spec.workload.memory_footprint,
            demand,
            hp: spec.priority == ClientPriority::HighPriority,
        }
    }

    /// Migrates the worst-matched best-effort resident off every GPU whose
    /// high-priority job ran below `migrate_threshold` of dedicated last
    /// epoch (at most one move per GPU per epoch).
    fn migrate(&mut self) {
        for gpu in 0..self.cfg.gpus {
            let residents = self.placer.residents(gpu).to_vec();
            if residents.len() < 2 {
                continue;
            }
            let Some(hp) = self.placer.hp_of(gpu) else {
                continue;
            };
            let Some(norm) = self.last_hp_norm[hp] else {
                continue;
            };
            if norm >= self.cfg.migrate_threshold {
                continue;
            }
            let hp_demand = self.placer.job(hp).expect("hp resident").demand;
            let mut victim: Option<(f64, usize)> = None;
            for &r in residents.iter().filter(|&&r| r != hp) {
                let score =
                    demand_complementarity(hp_demand, self.placer.job(r).expect("resident").demand);
                // Strictly-less keeps the lowest job id on ties.
                if victim.is_none_or(|(s, _)| score < s) {
                    victim = Some((score, r));
                }
            }
            let Some((_, victim)) = victim else { continue };
            let job = *self.placer.job(victim).expect("victim resident");
            self.placer.remove(victim);
            if self.placer.try_place(victim, job, Some(gpu)).is_some() {
                self.migrations += 1;
                self.stats[victim].moves += 1;
                // Give the relieved pairing a fresh epoch before re-judging.
                self.last_hp_norm[hp] = None;
            } else {
                // Nowhere better: stay put.
                self.placer.force_place(victim, job, gpu);
            }
        }
    }

    /// Advances the control plane one epoch: applies migration, departures,
    /// arrivals, and placement, then returns the epoch's episodes (one per
    /// occupied GPU; possibly empty early in the trace). Returns `None`
    /// after the last epoch.
    pub fn next_epoch(&mut self) -> Option<Vec<EpisodeSpec>> {
        if self.epoch >= self.cfg.epochs {
            return None;
        }
        let epoch = self.epoch;
        let now = self.cfg.epoch * epoch as u64;

        if self.cfg.migration && epoch > 0 {
            self.migrate();
        }

        // Departures: resident jobs whose lifetime ended by this boundary
        // free their slots; pending jobs that expired unplaced are dropped.
        let departed: Vec<usize> = (0..self.trace.jobs.len())
            .filter(|&id| self.placer.gpu_of(id).is_some() && self.trace.jobs[id].depart <= now)
            .collect();
        for id in departed {
            self.placer.remove(id);
        }
        let trace = &self.trace;
        self.pending.retain(|&id| trace.jobs[id].depart > now);

        // Arrivals: everything with arrive <= now joins the FIFO queue.
        while self.next_arrival < self.arrivals_order.len() {
            let id = self.arrivals_order[self.next_arrival];
            if self.trace.jobs[id].arrive > now {
                break;
            }
            self.next_arrival += 1;
            if self.trace.jobs[id].client.workload.memory_footprint
                > self.cfg.rc.spec.memory_capacity
            {
                // Cannot fit on any device, ever: reject at admission.
                self.oversized_rejected += 1;
                continue;
            }
            if self.trace.jobs[id].depart > now {
                self.pending.push(id);
            }
        }

        // Placement: drain the queue in FIFO order; jobs that do not fit
        // anywhere right now stay queued (capacity may free up later).
        let mut still_pending = Vec::new();
        for id in std::mem::take(&mut self.pending) {
            let job = self.pack_job(id);
            if self.placer.try_place(id, job, None).is_some() {
                self.stats[id].ever_placed = true;
            } else {
                still_pending.push(id);
            }
        }
        self.pending = still_pending;
        self.peak_gpus_used = self.peak_gpus_used.max(self.placer.used_gpus());

        let mut episodes = Vec::new();
        for gpu in 0..self.cfg.gpus {
            let jobs = self.placer.residents(gpu).to_vec();
            if jobs.is_empty() {
                continue;
            }
            let clients: Vec<ClientSpec> = jobs
                .iter()
                .map(|&id| self.trace.jobs[id].client.clone())
                .collect();
            let profiles: Vec<Option<ProfileTable>> = jobs
                .iter()
                .map(|&id| {
                    if self.cfg.online {
                        // Cold start on an empty table; the admission ladder
                        // fills it and `absorb` carries it forward.
                        Some(self.learned[id].clone().unwrap_or_default())
                    } else {
                        let label = self.trace.jobs[id].client.workload.label();
                        Some(self.offline_tables[&label].clone())
                    }
                })
                .collect();
            episodes.push(EpisodeSpec {
                gpu,
                epoch,
                jobs,
                policy: self.cfg.policy.clone(),
                clients,
                profiles,
                rc: self.cfg.episode_rc(gpu, epoch),
            });
        }
        self.epoch += 1;
        Some(episodes)
    }

    /// Folds an epoch's episode results back into the control plane:
    /// per-job statistics, learned profile tables (online mode), and the
    /// per-GPU health signals migration reads.
    pub fn absorb(&mut self, results: Vec<(EpisodeSpec, Result<RunResult, GpuError>)>) {
        for (spec, res) in results {
            let r = match res {
                Ok(r) => r,
                Err(_) => {
                    self.episode_errors += 1;
                    continue;
                }
            };
            let window = r.window.as_secs_f64();
            for (slot, &job) in spec.jobs.iter().enumerate() {
                let c = &r.clients[slot];
                let st = &mut self.stats[job];
                st.resident_epochs += 1;
                st.completed += c.completed;
                for &s in c.latency.samples() {
                    st.latency.record(s);
                }
                if self.trace.jobs[job].client.priority == ClientPriority::HighPriority {
                    let label = self.trace.jobs[job].client.workload.label();
                    let ded = self.dedicated.get(&label).map_or(0.0, |d| d.throughput);
                    let tput = if window > 0.0 { c.completed as f64 / window } else { 0.0 };
                    self.last_hp_norm[job] = Some(if ded > 0.0 { tput / ded } else { 0.0 });
                }
            }
            if let Some(tables) = r.learned {
                for (slot, &job) in spec.jobs.iter().enumerate() {
                    let table = &tables[slot];
                    if !table.is_empty() {
                        if let Some(d) = demand_from_profiles(table) {
                            self.placer.update_demand(job, d);
                        }
                        self.learned[job] = Some(table.clone());
                    }
                }
            }
        }
    }

    /// Final fleet-level report.
    pub fn into_report(self) -> FleetReport {
        let FleetSim {
            cfg,
            trace,
            dedicated,
            stats,
            migrations,
            episode_errors,
            oversized_rejected,
            peak_gpus_used,
            ..
        } = self;
        let window = (cfg.epoch - cfg.epoch / 5).as_secs_f64();
        let mut jobs = Vec::with_capacity(stats.len());
        let mut hp_latency = LatencyRecorder::new();
        for (id, mut st) in stats.into_iter().enumerate() {
            let spec = &trace.jobs[id].client;
            let hp = spec.priority == ClientPriority::HighPriority;
            let label = spec.workload.label();
            let dref = dedicated.get(&label).copied().unwrap_or(DedicatedRef {
                throughput: 0.0,
                p99: SimTime::ZERO,
            });
            let secs = st.resident_epochs as f64 * window;
            let throughput = if secs > 0.0 { st.completed as f64 / secs } else { 0.0 };
            let normalized = if dref.throughput > 0.0 {
                throughput / dref.throughput
            } else {
                0.0
            };
            let p99 = st.latency.p99();
            if hp {
                for &s in st.latency.samples() {
                    hp_latency.record(s);
                }
            }
            // Jobs that never ran an epoch miss their SLO by definition.
            let slo_met = st.resident_epochs > 0
                && if hp {
                    st.completed > 0 && p99 <= dref.p99.mul_f64(cfg.slo_latency_factor)
                } else {
                    normalized >= cfg.slo_tput_factor
                };
            jobs.push(FleetJobResult {
                job: id,
                label,
                hp,
                resident_epochs: st.resident_epochs,
                completed: st.completed,
                throughput,
                normalized,
                p99,
                slo_met,
                moves: st.moves,
                ever_placed: st.ever_placed,
            });
        }
        let hp_jobs = jobs.iter().filter(|j| j.hp).count();
        let be_jobs = jobs.len() - hp_jobs;
        let hp_met = jobs.iter().filter(|j| j.hp && j.slo_met).count();
        let be_met = jobs.iter().filter(|j| !j.hp && j.slo_met).count();
        let never_placed = jobs.iter().filter(|j| !j.ever_placed).count();
        let dedicated_gpus_needed = trace.peak_concurrent();
        FleetReport {
            gpus: cfg.gpus,
            epochs: cfg.epochs,
            epoch: cfg.epoch,
            peak_gpus_used,
            dedicated_gpus_needed,
            gpus_saved: dedicated_gpus_needed as i64 - peak_gpus_used as i64,
            hp_p99: hp_latency.p99(),
            hp_slo_attainment: if hp_jobs > 0 { hp_met as f64 / hp_jobs as f64 } else { 1.0 },
            be_slo_attainment: if be_jobs > 0 { be_met as f64 / be_jobs as f64 } else { 1.0 },
            slo_attainment: if jobs.is_empty() {
                1.0
            } else {
                (hp_met + be_met) as f64 / jobs.len() as f64
            },
            migrations,
            episode_errors,
            oversized_rejected,
            never_placed,
            jobs,
        }
    }
}

/// Per-job outcome across all its resident epochs.
#[derive(Debug, Clone)]
pub struct FleetJobResult {
    /// Job id (index into the trace).
    pub job: usize,
    /// Workload label.
    pub label: String,
    /// High-priority job.
    pub hp: bool,
    /// Epochs the job was resident on some GPU.
    pub resident_epochs: u64,
    /// Requests/iterations completed across all resident epochs.
    pub completed: u64,
    /// Requests per resident-second.
    pub throughput: f64,
    /// Throughput relative to a dedicated GPU.
    pub normalized: f64,
    /// p99 latency across all resident epochs.
    pub p99: SimTime,
    /// SLO attainment: HP jobs by p99 vs dedicated, BE jobs by normalized
    /// throughput; never-resident jobs count as missed.
    pub slo_met: bool,
    /// Migration count.
    pub moves: u64,
    /// The job was placed at least once.
    pub ever_placed: bool,
}

/// Fleet-level outcome.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Fleet size (GPUs available).
    pub gpus: usize,
    /// Epochs simulated.
    pub epochs: usize,
    /// Epoch length.
    pub epoch: SimTime,
    /// Most GPUs occupied at any epoch boundary.
    pub peak_gpus_used: usize,
    /// Peak concurrently-live jobs in the raw trace: the size of the
    /// dedicated (one GPU per job) fleet this run replaces.
    pub dedicated_gpus_needed: usize,
    /// `dedicated_gpus_needed - peak_gpus_used` (negative if sharing lost).
    pub gpus_saved: i64,
    /// Fleet-wide p99 across every HP request.
    pub hp_p99: SimTime,
    /// Fraction of HP jobs meeting their latency SLO.
    pub hp_slo_attainment: f64,
    /// Fraction of BE jobs meeting their throughput SLO.
    pub be_slo_attainment: f64,
    /// Fraction of all jobs meeting their SLO.
    pub slo_attainment: f64,
    /// Successful migrations.
    pub migrations: u64,
    /// Episodes that returned an error (excluded from statistics).
    pub episode_errors: u64,
    /// Jobs rejected at admission because they exceed device memory.
    pub oversized_rejected: u64,
    /// Jobs that were never placed before departing.
    pub never_placed: usize,
    /// Per-job results, in job-id order.
    pub jobs: Vec<FleetJobResult>,
}

impl FleetReport {
    /// FNV-1a digest over every per-job outcome — a compact determinism
    /// fingerprint: two runs of the same trace/config must agree on it
    /// regardless of thread count.
    pub fn jobs_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for j in &self.jobs {
            eat(&(j.job as u64).to_le_bytes());
            eat(&[j.hp as u8, j.slo_met as u8, j.ever_placed as u8]);
            eat(&j.resident_epochs.to_le_bytes());
            eat(&j.completed.to_le_bytes());
            eat(&j.throughput.to_bits().to_le_bytes());
            eat(&j.normalized.to_bits().to_le_bytes());
            eat(&j.p99.as_nanos().to_le_bytes());
            eat(&j.moves.to_le_bytes());
        }
        eat(&(self.peak_gpus_used as u64).to_le_bytes());
        eat(&self.gpus_saved.to_le_bytes());
        eat(&self.migrations.to_le_bytes());
        h
    }
}

/// Runs a fleet end-to-end on the current thread (the bench driver shards
/// episode batches across the runner instead; both produce identical
/// reports).
///
/// # Errors
///
/// Propagates [`FleetSim::new`] and dedicated-reference failures.
pub fn run_fleet_serial(trace: FleetTrace, cfg: FleetConfig) -> Result<FleetReport, ClusterError> {
    let dedicated = dedicated_refs_serial(&trace, &cfg)?;
    let mut sim = FleetSim::new(trace, cfg, dedicated)?;
    while let Some(specs) = sim.next_epoch() {
        let results = specs
            .into_iter()
            .map(|s| {
                let r = s.run();
                (s, r)
            })
            .collect();
        sim.absorb(results);
    }
    Ok(sim.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_desim::time::SimTime;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::models::llm::llm_decode_step;
    use orion_workloads::registry::inference_workload;
    use orion_workloads::ModelKind;

    fn quick() -> RunConfig {
        let mut c = RunConfig::quick_test();
        c.horizon = SimTime::from_secs(2);
        c.warmup = SimTime::from_millis(400);
        c
    }

    fn job(w: orion_workloads::Workload) -> ClusterJob {
        ClusterJob {
            client: ClientSpec::best_effort(w, ArrivalProcess::ClosedLoop),
        }
    }

    #[test]
    fn four_jobs_on_two_gpus() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
            job(inference_workload(ModelKind::MobileNetV2)),
        ];
        let r = run_cluster(&jobs, 2, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 2);
        assert_eq!(r.jobs.len(), 4);
        for j in &r.jobs {
            assert!(j.throughput > 0.0, "{} starved", j.label);
            assert!(j.normalized <= 1.1, "{}: normalized {}", j.label, j.normalized);
        }
        // Two GPUs serving four jobs at a meaningful fraction of dedicated.
        assert!(r.total_normalized > 2.0, "total {}", r.total_normalized);
    }

    #[test]
    fn too_few_gpus_is_a_cluster_error() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
        ];
        // Regression (bug 1): this used to surface as GpuError::OutOfMemory
        // with job counts stuffed into the byte fields; it must be the
        // dedicated control-plane variant with real GPU counts.
        match run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()) {
            Err(ClusterError::InsufficientGpus { needed, available }) => {
                assert_eq!(needed, 2);
                assert_eq!(available, 1);
            }
            other => panic!("expected InsufficientGpus, got {other:?}"),
        }
    }

    #[test]
    fn oversized_job_is_rejected_not_placed() {
        // Regression (bug 3): a job larger than device memory used to be
        // "placed alone" on a GPU it cannot fit; now it is an explicit error.
        let mut cfg = quick();
        cfg.spec.memory_capacity = 8 * (1 << 30);
        let jobs = vec![
            job(orion_workloads::registry::training_workload(ModelKind::Transformer)), // 8.5 GiB
            job(inference_workload(ModelKind::ResNet50)),
        ];
        match run_cluster(&jobs, 2, &PolicyKind::orion_default(), &cfg) {
            Err(ClusterError::JobTooLarge { job, footprint, gpu_memory }) => {
                assert_eq!(job, 0);
                assert!(footprint > gpu_memory);
            }
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn failed_baseline_is_reported_not_zeroed() {
        // Regression (bug 2): a job whose dedicated reference run fails used
        // to silently report normalized 0.0; it must now surface as
        // BaselineFailed. An invalid kernel (zero grid) fails profiling and
        // the dedicated run alike.
        use orion_desim::time::SimTime;
        use orion_gpu::kernel::KernelDesc;
        use orion_workloads::model::Workload;
        use orion_workloads::OpSpec;

        let bad_kernel = KernelDesc {
            kernel_id: 9000,
            name: "bad".into(),
            grid_blocks: 0, // invalid: fails validation
            threads_per_block: 256,
            regs_per_thread: 32,
            shmem_per_block: 0,
            solo_duration: SimTime::from_micros(50),
            compute_util: 0.5,
            mem_util: 0.5,
        };
        let bad = Workload {
            model: ModelKind::ResNet50,
            kind: orion_workloads::model::WorkloadKind::Inference { batch: 1 },
            ops: vec![(
                orion_workloads::model::Phase::Forward,
                OpSpec::Kernel(std::sync::Arc::new(bad_kernel)),
            )],
            memory_footprint: 1 << 30,
        };
        let jobs = vec![job(bad)];
        match run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()) {
            Err(ClusterError::BaselineFailed { job, .. }) => assert_eq!(job, 0),
            other => panic!("expected BaselineFailed, got {other:?}"),
        }
    }

    #[test]
    fn single_job_runs_dedicated() {
        let jobs = vec![job(inference_workload(ModelKind::ResNet50))];
        let r = run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 1);
        assert!((r.jobs[0].normalized - 1.0).abs() < 1e-9);
    }

    #[test]
    fn packed_cluster_hosts_more_jobs_per_gpu() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
        ];
        // Pairwise packing needs two GPUs; 3-way packing fits on one.
        let r = run_cluster_packed(&jobs, 1, 3, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 1);
        assert_eq!(r.jobs.len(), 3);
    }

    fn tiny_fleet_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::new(4, 3);
        cfg.epoch = SimTime::from_secs(1);
        cfg.rc.seed = 7;
        cfg
    }

    fn tiny_trace(cfg: &FleetConfig) -> FleetTrace {
        let mut tc = FleetTraceConfig::new(8, cfg.horizon());
        tc.seed = 11;
        FleetTrace::synthesize(&tc)
    }

    #[test]
    fn trace_synthesis_is_deterministic_and_bounded() {
        let cfg = tiny_fleet_cfg();
        let a = tiny_trace(&cfg);
        let b = tiny_trace(&cfg);
        assert_eq!(a.jobs.len(), 8);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.arrive, y.arrive);
            assert_eq!(x.depart, y.depart);
            assert_eq!(x.client.workload.label(), y.client.workload.label());
            assert!(x.arrive <= x.depart);
            assert!(x.depart <= cfg.horizon());
        }
        assert!(a.peak_concurrent() >= 1);
    }

    #[test]
    fn fleet_serial_run_reports_jobs() {
        let cfg = tiny_fleet_cfg();
        let trace = tiny_trace(&cfg);
        let r = run_fleet_serial(trace, cfg).unwrap();
        assert_eq!(r.jobs.len(), 8);
        assert_eq!(r.episode_errors, 0);
        assert!(r.peak_gpus_used >= 1 && r.peak_gpus_used <= 4);
        // At least one job must have run and completed work.
        assert!(r.jobs.iter().any(|j| j.completed > 0));
        // Digest is stable across identical runs.
        let cfg2 = tiny_fleet_cfg();
        let r2 = run_fleet_serial(tiny_trace(&cfg2), cfg2).unwrap();
        assert_eq!(r.jobs_digest(), r2.jobs_digest());
    }

    #[test]
    fn fleet_online_learns_and_can_migrate() {
        let mut cfg = tiny_fleet_cfg();
        cfg.online = true;
        cfg.migration = true;
        // An aggressive threshold so the migration path actually exercises.
        cfg.migrate_threshold = 2.0;
        let trace = tiny_trace(&cfg);
        let r = run_fleet_serial(trace, cfg).unwrap();
        assert_eq!(r.episode_errors, 0);
        assert!(r.jobs.iter().any(|j| j.completed > 0));
    }

    #[test]
    fn fleet_departures_free_capacity() {
        // Two GPUs, jobs sized so the second wave only fits after the first
        // departs.
        let mut cfg = FleetConfig::new(1, 4);
        cfg.max_jobs_per_gpu = 1;
        cfg.rc.seed = 3;
        let mk = |arrive: u64, depart: u64| FleetJob {
            client: ClientSpec::best_effort(
                inference_workload(ModelKind::ResNet50),
                ArrivalProcess::ClosedLoop,
            ),
            arrive: SimTime::from_secs(arrive),
            depart: SimTime::from_secs(depart),
        };
        let trace = FleetTrace {
            jobs: vec![mk(0, 2), mk(0, 4)],
        };
        let r = run_fleet_serial(trace, cfg).unwrap();
        // Job 0 runs epochs 0-1; job 1 queues, then runs epochs 2-3.
        assert_eq!(r.jobs[0].resident_epochs, 2);
        assert_eq!(r.jobs[1].resident_epochs, 2);
        assert_eq!(r.peak_gpus_used, 1);
        assert_eq!(r.never_placed, 0);
    }
}
