//! Multi-GPU cluster simulation (paper §7 "cluster manager co-design").
//!
//! Orion is a per-GPU scheduler; the paper's discussion proposes a cluster
//! manager that uses the offline compute/memory profiles to place jobs with
//! complementary demands on the same GPU. This module closes the loop at two
//! scales:
//!
//! - [`run_cluster`] / [`run_cluster_packed`]: a *static* cluster — a fixed
//!   job set packed onto a fixed GPU budget, each device simulated once.
//! - [`FleetSim`]: a *fleet* — hundreds of GPUs and thousands of jobs driven
//!   by an open-loop arrival/departure trace ([`FleetTrace`]), with a
//!   control-plane event loop: a job arrives → it is placed on the best
//!   complementary GPU with capacity (or queues); a job departs → its slot
//!   is freed; optionally, when a GPU's learned profiles say a pairing
//!   soured, the worst-matched best-effort resident migrates elsewhere.
//!
//! The fleet runs in fixed-length *epochs*. Arrivals, departures, placement,
//! and migration are applied at epoch boundaries; within an epoch every
//! occupied GPU is an independent collocation episode (the paper runs a
//! separate Orion instance per device, §5), so a batch of episodes can be
//! sharded across the deterministic runner in `orion-bench`. Engine state
//! resets at epoch boundaries — a deliberate simplification that buys
//! embarrassingly-parallel epochs; latency/throughput statistics aggregate
//! across a job's resident epochs. Episode seeds are splitmix-derived from
//! `(base seed, gpu, epoch)`, so fleet results are a pure function of the
//! trace and configuration: byte-identical at any thread count.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;

use orion_desim::rng::{cell_seed, DetRng};
use orion_desim::time::SimTime;
use orion_gpu::error::GpuError;
use orion_metrics::LatencyRecorder;
use orion_profiler::{profile_workload, ProfileTable};
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::models::llm::llm_decode_step;
use orion_workloads::registry::{inference_workload, training_workload};
use orion_workloads::ModelKind;

use crate::client::{ClientPriority, ClientSpec};
use crate::online::OnlineConfig;
use crate::placement::{
    demand_complementarity, demand_from_profiles, demand_vector, pack_jobs, FleetPlacer, PackJob,
};
use crate::policy::PolicyKind;
use crate::supervisor::{FaultConfig, RobustnessReport, SupervisorConfig};
use crate::world::{run_collocation, run_collocation_with_profiles, run_dedicated, RunConfig,
    RunResult};
use orion_gpu::fault::{unit_roll, FaultRates};

/// Cluster-level failures. The per-GPU engine's [`GpuError`] variants encode
/// device conditions (allocations, streams, kernels); exhausting the *GPU
/// budget* or failing a *reference run* are control-plane conditions and get
/// their own variants instead of being smuggled through device error fields.
#[derive(Debug)]
pub enum ClusterError {
    /// The placement needs more devices than the cluster has.
    InsufficientGpus {
        /// GPUs the packing requires.
        needed: usize,
        /// GPUs available.
        available: usize,
    },
    /// A job's footprint exceeds a single device's memory: it cannot be
    /// placed anywhere, not even alone.
    JobTooLarge {
        /// Index of the offending job in submission order.
        job: usize,
        /// The job's memory footprint in bytes.
        footprint: u64,
        /// A single device's capacity in bytes.
        gpu_memory: u64,
    },
    /// A job's dedicated-baseline reference run failed; its normalized
    /// throughput would be meaningless (reported instead of a silent 0.0).
    BaselineFailed {
        /// Index of the offending job in submission order.
        job: usize,
        /// The underlying device error.
        source: GpuError,
    },
    /// A placed collocation failed to run.
    Gpu(GpuError),
    /// Degraded-capacity rejection: the job exhausted its evacuation retry
    /// budget while the fleet was short on healthy devices, and was shed by
    /// the control plane. High-priority jobs are only ever dropped through
    /// this explicit, reported path — never a panic or a masked
    /// `OutOfMemory`.
    CapacityExhausted {
        /// Job id (index into the fleet trace).
        job: usize,
        /// Epoch at which the job was shed.
        epoch: usize,
        /// Healthy (placement-accepting) GPUs at that moment.
        live_gpus: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InsufficientGpus { needed, available } => {
                write!(f, "placement needs {needed} GPUs but only {available} available")
            }
            ClusterError::JobTooLarge { job, footprint, gpu_memory } => write!(
                f,
                "job {job} footprint {footprint} B exceeds device memory {gpu_memory} B"
            ),
            ClusterError::BaselineFailed { job, source } => {
                write!(f, "dedicated baseline for job {job} failed: {source}")
            }
            ClusterError::Gpu(e) => write!(f, "collocation run failed: {e}"),
            ClusterError::CapacityExhausted { job, epoch, live_gpus } => write!(
                f,
                "job {job} shed at epoch {epoch}: evacuation budget exhausted \
                 with {live_gpus} live GPUs"
            ),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::BaselineFailed { source, .. } | ClusterError::Gpu(source) => Some(source),
            _ => None,
        }
    }
}

impl From<GpuError> for ClusterError {
    fn from(e: GpuError) -> Self {
        ClusterError::Gpu(e)
    }
}

/// A job submitted to the cluster.
#[derive(Debug, Clone)]
pub struct ClusterJob {
    /// The client (workload + arrivals + priority).
    pub client: ClientSpec,
}

/// Result for one job after the cluster run.
#[derive(Debug)]
pub struct JobResult {
    /// Index of the job in the submission order.
    pub job: usize,
    /// GPU the job was placed on.
    pub gpu: usize,
    /// Workload label.
    pub label: String,
    /// Requests/iterations per second achieved.
    pub throughput: f64,
    /// p99 latency in milliseconds.
    pub p99_ms: f64,
    /// Throughput relative to a dedicated GPU.
    pub normalized: f64,
}

/// Cluster-level outcome.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-job results.
    pub jobs: Vec<JobResult>,
    /// GPUs actually used.
    pub gpus_used: usize,
    /// Sum of normalized throughputs (max = number of jobs).
    pub total_normalized: f64,
}

/// Places `jobs` onto at most `max_gpus` devices with the profile-driven
/// matcher and runs every device's collocation under `policy`. Legacy
/// pairwise mode: at most two jobs share a GPU (see [`run_cluster_packed`]
/// for k-way packing).
///
/// Jobs are packed by complementarity in submission-index order
/// (high-priority jobs first); leftover jobs run alone, in ascending index
/// order, one per remaining GPU.
///
/// # Errors
///
/// - [`ClusterError::JobTooLarge`] when a job cannot fit on a device alone.
/// - [`ClusterError::InsufficientGpus`] when the packing needs more devices
///   than `max_gpus`.
/// - [`ClusterError::BaselineFailed`] when a job's dedicated reference run
///   fails (its normalization would otherwise silently read 0.0).
/// - [`ClusterError::Gpu`] when a placed collocation fails to run.
pub fn run_cluster(
    jobs: &[ClusterJob],
    max_gpus: usize,
    policy: &PolicyKind,
    cfg: &RunConfig,
) -> Result<ClusterResult, ClusterError> {
    run_cluster_packed(jobs, max_gpus, 2, policy, cfg)
}

/// [`run_cluster`] with k-way packing: a GPU hosts at most one high-priority
/// job plus best-effort jobs up to `max_jobs_per_gpu` total, subject to the
/// memory ledger.
///
/// # Errors
///
/// Same as [`run_cluster`].
pub fn run_cluster_packed(
    jobs: &[ClusterJob],
    max_gpus: usize,
    max_jobs_per_gpu: usize,
    policy: &PolicyKind,
    cfg: &RunConfig,
) -> Result<ClusterResult, ClusterError> {
    let pack: Vec<PackJob> = jobs
        .iter()
        .map(|j| PackJob {
            mem: j.client.workload.memory_footprint,
            demand: demand_vector(&j.client.workload),
            hp: j.client.priority == ClientPriority::HighPriority,
        })
        .collect();
    let packing = pack_jobs(&pack, cfg.spec.memory_capacity, max_jobs_per_gpu);
    if let Some(&job) = packing.oversized.first() {
        return Err(ClusterError::JobTooLarge {
            job,
            footprint: jobs[job].client.workload.memory_footprint,
            gpu_memory: cfg.spec.memory_capacity,
        });
    }
    let needed = packing.groups.len();
    if needed > max_gpus {
        return Err(ClusterError::InsufficientGpus {
            needed,
            available: max_gpus,
        });
    }

    // Dedicated reference throughput per job (for normalization). A failed
    // reference is an error, not a silent `normalized: 0.0`.
    let dedicated = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            run_dedicated(j.client.clone(), cfg)
                .map(|r| r.clients[0].throughput)
                .map_err(|source| ClusterError::BaselineFailed { job: i, source })
        })
        .collect::<Result<Vec<f64>, ClusterError>>()?;

    let mut results = Vec::new();
    for (gpu, group) in packing.groups.iter().enumerate() {
        let mut specs: Vec<ClientSpec> = group.iter().map(|&j| jobs[j].client.clone()).collect();
        // A group of equal priorities promotes its first job to the GPU's
        // high-priority client (submitters can encode real priorities by
        // setting ClientPriority; we respect them — the packer guarantees
        // at most one HP job per group).
        if specs.len() > 1 && !specs.iter().any(|s| s.priority == ClientPriority::HighPriority) {
            specs[0].priority = ClientPriority::HighPriority;
        }
        let mut r = if specs.len() == 1 {
            run_dedicated(specs.remove(0), cfg)?
        } else {
            run_collocation(policy.clone(), specs, cfg)?
        };
        for (slot, &job) in group.iter().enumerate() {
            let c = &mut r.clients[slot];
            results.push(JobResult {
                job,
                gpu,
                label: c.label.clone(),
                throughput: c.throughput,
                p99_ms: c.latency.p99().as_millis_f64(),
                normalized: if dedicated[job] > 0.0 {
                    c.throughput / dedicated[job]
                } else {
                    0.0
                },
            });
        }
    }

    results.sort_by_key(|r| r.job);
    let total_normalized = results.iter().map(|r| r.normalized).sum();
    Ok(ClusterResult {
        jobs: results,
        gpus_used: needed,
        total_normalized,
    })
}

// ---------------------------------------------------------------------------
// Fleet-scale simulation: arrival/departure churn over hundreds of GPUs.
// ---------------------------------------------------------------------------

/// Domain-separation tag for the trace synthesizer's per-job seeds.
const FLEET_TRACE_TAG: u64 = 0xf1ee_0000_0000_0001;
/// Domain-separation tag for dedicated-reference run seeds.
const FLEET_DED_TAG: u64 = 0xf1ee_0000_0000_0002;
/// Domain-separation tag for per-(gpu, epoch) episode seeds.
const FLEET_EPISODE_TAG: u64 = 0xf1ee_0000_0000_0003;
/// Domain-separation tag for per-(gpu, epoch) device-fate rolls.
const FLEET_FAULT_TAG: u64 = 0xf1ee_0000_0000_0004;

/// What the fault plan decrees for one `(gpu, epoch)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuFate {
    /// Device operates normally this epoch.
    Healthy,
    /// Device-fault injection is armed for this epoch's episode: kernels on
    /// this GPU roll against [`FleetFaultPlan::episode_rates`] (the existing
    /// `gpu-sim` sticky-fault machinery), and the control plane will triage
    /// the outcome.
    Transient,
    /// Device dies at this epoch boundary and never returns. Residents are
    /// evacuated; fleet capacity shrinks.
    Dead,
}

/// Deterministic fleet-level fault injection: a pure function from
/// `(plan seed, gpu, epoch)` to a [`GpuFate`], mirroring how
/// [`FleetTrace::synthesize`] derives per-job cells. Fate rolls share the
/// splitmix construction the in-episode injector uses ([`unit_roll`]), so a
/// chaos fleet run is as replayable as a fault-free one: byte-identical at
/// any thread count.
#[derive(Debug, Clone)]
pub struct FleetFaultPlan {
    /// Plan seed (independent of trace and run seeds).
    pub seed: u64,
    /// P(transient fault epoch) per (alive gpu, epoch) cell.
    pub transient_rate: f64,
    /// P(permanent death) per (alive gpu, epoch) cell, rolled before
    /// `transient_rate` on the same draw (mutually exclusive).
    pub dead_rate: f64,
    /// In-episode device-fault rates armed on transient-fated GPUs.
    pub episode_rates: FaultRates,
    /// Supervisor tuning for chaos episodes (retry/backoff inside the
    /// episode; see [`crate::supervisor`]).
    pub supervisor: SupervisorConfig,
    /// Evacuations a single job survives before the control plane sheds it
    /// (the fleet-level retry budget).
    pub max_evacuations: u32,
    /// Cap on a flapping GPU's quarantine length, in epochs (the backoff
    /// doubles per strike up to this).
    pub quarantine_max_epochs: u64,
    /// Clean episodes a reinstated GPU must serve on probation before its
    /// strike count decays.
    pub probation_epochs: u64,
}

impl FleetFaultPlan {
    /// A plan with moderate chaos: ~2% of (gpu, epoch) cells transiently
    /// faulted, ~0.5% permanently dead, sticky kernel faults likely within
    /// a faulted episode, and a 4-evacuation job budget.
    pub fn new(seed: u64) -> Self {
        FleetFaultPlan {
            seed,
            transient_rate: 0.02,
            dead_rate: 0.005,
            episode_rates: FaultRates {
                kernel_fault: 0.02,
                ..FaultRates::default()
            },
            supervisor: SupervisorConfig::default(),
            max_evacuations: 4,
            quarantine_max_epochs: 4,
            probation_epochs: 2,
        }
    }

    /// The fate of one `(gpu, epoch)` cell — a pure function of the plan.
    pub fn fate(&self, gpu: usize, epoch: usize) -> GpuFate {
        let lane = cell_seed(cell_seed(self.seed, FLEET_FAULT_TAG), gpu as u64);
        let u = unit_roll(lane, epoch as u64);
        if u < self.dead_rate {
            GpuFate::Dead
        } else if u < self.dead_rate + self.transient_rate {
            GpuFate::Transient
        } else {
            GpuFate::Healthy
        }
    }

    /// The [`FaultConfig`] armed on a transient-fated episode.
    pub fn episode_faults(&self) -> FaultConfig {
        let mut fc = FaultConfig::none();
        fc.rates = self.episode_rates;
        fc.supervisor = self.supervisor.clone();
        fc
    }
}

/// One job in a fleet trace: a client plus its lifetime.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// The client (workload + arrivals + priority).
    pub client: ClientSpec,
    /// Submission time.
    pub arrive: SimTime,
    /// Completion/cancellation time (open interval end: the job is gone at
    /// and after this instant).
    pub depart: SimTime,
}

/// An open-loop arrival/departure trace driving a fleet.
#[derive(Debug, Clone, Default)]
pub struct FleetTrace {
    /// Jobs in submission order (ids are indices into this vector).
    pub jobs: Vec<FleetJob>,
}

/// Knobs for [`FleetTrace::synthesize`].
#[derive(Debug, Clone)]
pub struct FleetTraceConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Trace horizon: arrivals and departures land in `[0, horizon]`.
    pub horizon: SimTime,
    /// Fraction of jobs that are high-priority inference services.
    pub hp_fraction: f64,
    /// Mean of the exponential job lifetime.
    pub mean_lifetime: SimTime,
    /// Lifetime floor (avoids zero-epoch jobs dominating the trace).
    pub min_lifetime: SimTime,
    /// Arrivals land uniformly in `[0, horizon * arrival_window]`.
    pub arrival_window: f64,
    /// Trace seed (independent of the run seeds).
    pub seed: u64,
}

impl FleetTraceConfig {
    /// A trace of `jobs` jobs over `horizon` with the default mix: 40%
    /// high-priority inference (Poisson at the paper's Table-3 rates), 60%
    /// best-effort training/decode, lifetimes exponential around a third of
    /// the horizon.
    pub fn new(jobs: usize, horizon: SimTime) -> Self {
        FleetTraceConfig {
            jobs,
            horizon,
            hp_fraction: 0.4,
            mean_lifetime: horizon.mul_f64(1.0 / 3.0),
            min_lifetime: horizon.mul_f64(0.125),
            arrival_window: 0.6,
            seed: 42,
        }
    }
}

/// High-priority service models sampled by the synthesizer.
const HP_MODELS: [ModelKind; 4] = [
    ModelKind::ResNet50,
    ModelKind::MobileNetV2,
    ModelKind::Bert,
    ModelKind::ResNet101,
];

impl FleetTrace {
    /// Synthesizes an open-loop churn trace. Every job is derived from its
    /// own splitmix cell of `(seed, job index)`, so the trace is a pure
    /// function of the config — independent of thread count or wall clock.
    pub fn synthesize(cfg: &FleetTraceConfig) -> FleetTrace {
        let base = cell_seed(cfg.seed, FLEET_TRACE_TAG);
        let jobs = (0..cfg.jobs)
            .map(|i| {
                let mut rng = DetRng::new(cell_seed(base, i as u64));
                let hp = rng.next_f64() < cfg.hp_fraction;
                let client = if hp {
                    let model = HP_MODELS[rng.uniform_u64(HP_MODELS.len() as u64) as usize];
                    ClientSpec::high_priority(
                        inference_workload(model),
                        ArrivalProcess::Poisson {
                            rps: PaperRates::inf_train_poisson(model),
                        },
                    )
                } else {
                    match rng.uniform_u64(3) {
                        0 => ClientSpec::best_effort(
                            training_workload(ModelKind::ResNet50),
                            ArrivalProcess::ClosedLoop,
                        ),
                        1 => ClientSpec::best_effort(
                            training_workload(ModelKind::MobileNetV2),
                            ArrivalProcess::ClosedLoop,
                        ),
                        _ => ClientSpec::best_effort(llm_decode_step(), ArrivalProcess::ClosedLoop),
                    }
                };
                let arrive = cfg.horizon.mul_f64(cfg.arrival_window * rng.next_f64());
                let mean = cfg.mean_lifetime.as_secs_f64().max(1e-9);
                let mut life = SimTime::from_secs_f64(rng.exponential(1.0 / mean));
                if life < cfg.min_lifetime {
                    life = cfg.min_lifetime;
                }
                let depart = (arrive + life).min(cfg.horizon);
                FleetJob {
                    client,
                    arrive,
                    depart,
                }
            })
            .collect();
        FleetTrace { jobs }
    }

    /// Peak number of concurrently-live jobs in the raw trace: the size a
    /// dedicated (one GPU per job) fleet would need.
    pub fn peak_concurrent(&self) -> usize {
        let mut events: Vec<(SimTime, i64)> = Vec::with_capacity(self.jobs.len() * 2);
        for j in &self.jobs {
            if j.depart > j.arrive {
                events.push((j.arrive, 1));
                events.push((j.depart, -1));
            }
        }
        // Departures apply before arrivals at the same instant.
        events.sort_by_key(|&(t, d)| (t, d));
        let mut live = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            live += d;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    }
}

/// Fleet control-plane configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of identical GPUs in the fleet.
    pub gpus: usize,
    /// Epoch length: the control plane acts at multiples of this.
    pub epoch: SimTime,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Scheduling policy on every GPU.
    pub policy: PolicyKind,
    /// Per-episode run template. `horizon`/`warmup`/`seed`/`online` are
    /// overridden per (gpu, epoch); `spec` sets the device and the memory
    /// ledger the placer packs against.
    pub rc: RunConfig,
    /// Packing cap: jobs per GPU (one high-priority plus best-effort).
    pub max_jobs_per_gpu: usize,
    /// Learn profiles online (cold start + admission ladder) and feed
    /// re-placement from the learned tables; offline tables otherwise.
    pub online: bool,
    /// Migrate the worst-matched best-effort resident off a GPU whose
    /// high-priority job underperformed its threshold last epoch.
    pub migration: bool,
    /// Migration trigger: HP normalized throughput below this.
    pub migrate_threshold: f64,
    /// HP job SLO: aggregated p99 within this factor of dedicated p99.
    pub slo_latency_factor: f64,
    /// BE job SLO: normalized throughput at least this.
    pub slo_tput_factor: f64,
    /// Fleet-level fault injection. `None` (the default) keeps the fleet
    /// fault-free: no health state machine is constructed, no fate rolls
    /// happen, and the run is byte-identical to pre-fault-plan builds.
    pub faults: Option<FleetFaultPlan>,
}

impl FleetConfig {
    /// A fleet of `gpus` V100s over `epochs` one-second epochs with the
    /// default control-plane tuning (offline profiles, no migration).
    pub fn new(gpus: usize, epochs: usize) -> Self {
        let mut rc = RunConfig::paper_default();
        rc.validate = crate::validate::ValidateMode::Off;
        FleetConfig {
            gpus,
            epoch: SimTime::from_secs(1),
            epochs,
            policy: PolicyKind::orion_default(),
            rc,
            max_jobs_per_gpu: 3,
            online: false,
            migration: false,
            migrate_threshold: 0.55,
            slo_latency_factor: 2.0,
            slo_tput_factor: 0.25,
            faults: None,
        }
    }

    /// The trace horizon implied by the epoch grid.
    pub fn horizon(&self) -> SimTime {
        self.epoch * self.epochs as u64
    }

    fn episode_rc(&self, gpu: usize, epoch: usize) -> RunConfig {
        let mut rc = self.rc.clone();
        rc.horizon = self.epoch;
        rc.warmup = self.epoch / 5;
        rc.seed = cell_seed(
            cell_seed(cell_seed(self.rc.seed, FLEET_EPISODE_TAG), gpu as u64),
            epoch as u64,
        );
        rc.online = if self.online {
            OnlineConfig::learning()
        } else {
            OnlineConfig::disabled()
        };
        rc
    }
}

/// Dedicated-GPU reference for one workload label: the normalization and
/// SLO anchor for every job running that workload.
#[derive(Debug, Clone, Copy)]
pub struct DedicatedRef {
    /// Requests/iterations per second alone on a device.
    pub throughput: f64,
    /// p99 latency alone on a device.
    pub p99: SimTime,
}

/// The dedicated reference runs a fleet needs: one per distinct workload
/// label, sorted by label, each with its own derived seed. Both the serial
/// driver and the sharded bench driver map [`run_dedicated`] over exactly
/// this list, so their reference values are identical.
pub fn dedicated_ref_inputs(
    trace: &FleetTrace,
    cfg: &FleetConfig,
) -> Vec<(String, ClientSpec, RunConfig)> {
    let mut by_label: BTreeMap<String, ClientSpec> = BTreeMap::new();
    for j in &trace.jobs {
        by_label
            .entry(j.client.workload.label())
            .or_insert_with(|| j.client.clone());
    }
    by_label
        .into_iter()
        .enumerate()
        .map(|(i, (label, client))| {
            let mut rc = cfg.rc.clone();
            rc.horizon = cfg.epoch;
            rc.warmup = cfg.epoch / 5;
            rc.seed = cell_seed(cell_seed(cfg.rc.seed, FLEET_DED_TAG), i as u64);
            rc.online = OnlineConfig::disabled();
            (label, client, rc)
        })
        .collect()
}

/// Runs the dedicated references serially (the bench driver shards the same
/// inputs across the runner instead).
///
/// # Errors
///
/// [`ClusterError::BaselineFailed`] when a reference run fails.
pub fn dedicated_refs_serial(
    trace: &FleetTrace,
    cfg: &FleetConfig,
) -> Result<BTreeMap<String, DedicatedRef>, ClusterError> {
    let mut refs = BTreeMap::new();
    for (i, (label, client, rc)) in dedicated_ref_inputs(trace, cfg).into_iter().enumerate() {
        let mut r = run_dedicated(client, &rc)
            .map_err(|source| ClusterError::BaselineFailed { job: i, source })?;
        refs.insert(
            label,
            DedicatedRef {
                throughput: r.clients[0].throughput,
                p99: r.clients[0].latency.p99(),
            },
        );
    }
    Ok(refs)
}

/// One (gpu, epoch) collocation episode: everything needed to run it on any
/// worker thread. Produced by [`FleetSim::next_epoch`]; results go back via
/// [`FleetSim::absorb`].
#[derive(Debug, Clone)]
pub struct EpisodeSpec {
    /// Fleet GPU index.
    pub gpu: usize,
    /// Epoch index.
    pub epoch: usize,
    /// Resident job ids, in placement order (parallel to `clients`).
    pub jobs: Vec<usize>,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Client specs, parallel to `jobs`.
    pub clients: Vec<ClientSpec>,
    /// Pre-built profile tables, parallel to `jobs` (offline memoized or
    /// online carried-over).
    pub profiles: Vec<Option<ProfileTable>>,
    /// Fully-derived run config (horizon = epoch, per-episode seed).
    pub rc: RunConfig,
}

impl EpisodeSpec {
    /// Runs the episode.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`run_collocation`] error.
    pub fn run(&self) -> Result<RunResult, GpuError> {
        run_collocation_with_profiles(
            self.policy.clone(),
            self.clients.clone(),
            self.profiles.clone(),
            &self.rc,
        )
    }
}

#[derive(Debug, Default)]
struct JobStats {
    latency: LatencyRecorder,
    completed: u64,
    resident_epochs: u64,
    moves: u64,
    ever_placed: bool,
}

/// Per-GPU health in the fleet failure domain (see DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GpuHealth {
    /// In service, full trust.
    Healthy,
    /// Offline until the named epoch boundary (exponential backoff in
    /// strikes); comes back on probation.
    Quarantined { until: usize },
    /// Back in service, but `clean_left` more clean episodes are needed
    /// before a strike decays. A fault during probation escalates.
    Probation { clean_left: u64 },
    /// Permanently out; capacity shrank.
    Dead,
}

/// Fleet-level fault state: only constructed when [`FleetConfig::faults`]
/// is set, so fault-free fleets take zero new branches through placement.
#[derive(Debug)]
struct FleetHealth {
    plan: FleetFaultPlan,
    /// Per-GPU health state.
    gpu: Vec<GpuHealth>,
    /// Per-GPU fault strikes, driving exponential quarantine backoff.
    strikes: Vec<u32>,
    /// Jobs evacuated off failed devices awaiting HP-first re-placement.
    evacuees: Vec<usize>,
    /// Epoch of each job's outstanding evacuation (for epochs-to-recovery).
    evacuated_at: Vec<Option<usize>>,
    /// Evacuations each job has survived (the fleet retry budget).
    evac_count: Vec<u32>,
    /// Jobs shed by the control plane (budget exhausted).
    lost: Vec<bool>,
}

/// One control-plane job rejection under degraded capacity, with its
/// [`ClusterError::CapacityExhausted`] context preformatted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetRejection {
    /// Job id (index into the trace).
    pub job: usize,
    /// The job was high-priority.
    pub hp: bool,
    /// Epoch at which it was shed.
    pub epoch: usize,
    /// Human-readable `ClusterError` context.
    pub reason: String,
}

/// Fleet-level fault-and-recovery roll-up. For a fault-free fleet run every
/// field stays at its default ([`FleetRobustnessReport::any`] is false) and
/// the bench JSONL omits the block entirely, keeping fault-free output
/// byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetRobustnessReport {
    /// Sum of every episode's in-run [`RobustnessReport`] counters. This is
    /// populated for *any* faulted episode — including episode-level fault
    /// configs with no fleet plan — so per-GPU recovery work is never
    /// dropped at the fleet boundary.
    pub episodes: RobustnessReport,
    /// Episodes handed out with device-fault injection armed.
    pub chaos_episodes: u64,
    /// GPUs that died permanently.
    pub gpus_dead: u64,
    /// Quarantine events (a GPU can contribute several).
    pub quarantines: u64,
    /// Quarantined GPUs returned to service on probation.
    pub reinstated: u64,
    /// Job evacuations off dead/faulted devices.
    pub evacuations: u64,
    /// Evacuations that found a new home.
    pub evacuations_recovered: u64,
    /// Worst epochs-from-evacuation-to-re-placement over all recoveries
    /// (0 = re-placed at the very next boundary).
    pub max_epochs_to_recovery: u64,
    /// Best-effort residents preempted to make room for a high-priority job
    /// under degraded capacity (shed-BE-first; preempted jobs requeue).
    pub be_preempted: u64,
    /// Best-effort jobs shed outright (evacuation budget exhausted).
    pub be_lost: u64,
    /// High-priority jobs shed — only via explicit
    /// [`ClusterError::CapacityExhausted`] reporting, never a panic.
    pub hp_rejected: u64,
    /// Mean fraction of the fleet accepting placements across epoch
    /// boundaries (1.0 = no capacity ever lost).
    pub availability: f64,
    /// Shed-job details, capped at [`MAX_FLEET_REJECTIONS`].
    pub rejections: Vec<FleetRejection>,
}

impl FleetRobustnessReport {
    /// True when anything fault-related happened at the fleet level.
    pub fn any(&self) -> bool {
        *self != FleetRobustnessReport::default()
    }
}

/// Cap on stored [`FleetRejection`] records (counters keep exact totals).
pub const MAX_FLEET_REJECTIONS: usize = 64;
/// Cap on stored episode-failure context strings.
const MAX_EPISODE_FAILURES: usize = 16;

/// The fleet control plane: a pull-driven state machine. Call
/// [`FleetSim::next_epoch`] for the next batch of independent episodes, run
/// them (serially or sharded across the bench runner — results must come
/// back in the same order they were handed out, which `Runner::map`
/// guarantees), feed them to [`FleetSim::absorb`], repeat until
/// `next_epoch` returns `None`, then take [`FleetSim::into_report`].
#[derive(Debug)]
pub struct FleetSim {
    cfg: FleetConfig,
    trace: FleetTrace,
    dedicated: BTreeMap<String, DedicatedRef>,
    offline_tables: BTreeMap<String, ProfileTable>,
    placer: FleetPlacer,
    epoch: usize,
    /// Job ids sorted by (arrive, id); `next_arrival` indexes into it.
    arrivals_order: Vec<usize>,
    next_arrival: usize,
    /// FIFO of arrived-but-unplaced job ids.
    pending: Vec<usize>,
    stats: Vec<JobStats>,
    /// Online-learned table per job, carried across epochs.
    learned: Vec<Option<ProfileTable>>,
    /// Last epoch's measured normalized throughput of each HP job.
    last_hp_norm: Vec<Option<f64>>,
    migrations: u64,
    episode_errors: u64,
    oversized_rejected: u64,
    peak_gpus_used: usize,
    /// Fleet fault state; `None` when no fault plan is configured.
    health: Option<FleetHealth>,
    /// Fleet-level robustness roll-up (all defaults when fault-free).
    robust: FleetRobustnessReport,
    /// Formatted context of failed episodes (capped).
    episode_failures: Vec<String>,
    /// Sum over epoch boundaries of placement-accepting GPUs (availability
    /// numerator; only accumulated when a fault plan is armed).
    live_gpu_epochs: u64,
}

impl FleetSim {
    /// Builds the control plane over `trace`. Offline mode profiles each
    /// distinct workload once up front (memoized per label); online mode
    /// starts every job cold and learns.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Gpu`] when offline profiling of a workload fails.
    pub fn new(
        trace: FleetTrace,
        cfg: FleetConfig,
        dedicated: BTreeMap<String, DedicatedRef>,
    ) -> Result<FleetSim, ClusterError> {
        let mut offline_tables = BTreeMap::new();
        if !cfg.online {
            for j in &trace.jobs {
                if let Entry::Vacant(e) = offline_tables.entry(j.client.workload.label()) {
                    let table = profile_workload(&j.client.workload, &cfg.rc.spec)
                        .map_err(ClusterError::Gpu)?
                        .table();
                    e.insert(table);
                }
            }
        }
        let n = trace.jobs.len();
        let mut arrivals_order: Vec<usize> = (0..n).collect();
        arrivals_order.sort_by_key(|&i| (trace.jobs[i].arrive, i));
        let placer = FleetPlacer::new(cfg.gpus, cfg.rc.spec.memory_capacity, cfg.max_jobs_per_gpu);
        let mut stats = Vec::with_capacity(n);
        stats.resize_with(n, JobStats::default);
        let health = cfg.faults.clone().map(|plan| FleetHealth {
            plan,
            gpu: vec![GpuHealth::Healthy; cfg.gpus],
            strikes: vec![0; cfg.gpus],
            evacuees: Vec::new(),
            evacuated_at: vec![None; n],
            evac_count: vec![0; n],
            lost: vec![false; n],
        });
        Ok(FleetSim {
            cfg,
            trace,
            dedicated,
            offline_tables,
            placer,
            epoch: 0,
            arrivals_order,
            next_arrival: 0,
            pending: Vec::new(),
            stats,
            learned: vec![None; n],
            last_hp_norm: vec![None; n],
            migrations: 0,
            episode_errors: 0,
            oversized_rejected: 0,
            peak_gpus_used: 0,
            health,
            robust: FleetRobustnessReport::default(),
            episode_failures: Vec::new(),
            live_gpu_epochs: 0,
        })
    }

    /// Records one evacuation of job `id` at `epoch`: within budget the job
    /// joins the HP-first re-placement queue; past it the job is shed — the
    /// only path that ever drops a job, and it reports
    /// [`ClusterError::CapacityExhausted`] context instead of panicking.
    fn evacuate_job(&mut self, id: usize, epoch: usize) {
        let hp = self.trace.jobs[id].client.priority == ClientPriority::HighPriority;
        let live_gpus = self.placer.live_gpus();
        let Some(h) = self.health.as_mut() else { return };
        if h.lost[id] {
            return;
        }
        h.evac_count[id] = h.evac_count[id].saturating_add(1);
        self.robust.evacuations += 1;
        if h.evac_count[id] > h.plan.max_evacuations {
            h.lost[id] = true;
            h.evacuated_at[id] = None;
            let reason = ClusterError::CapacityExhausted {
                job: id,
                epoch,
                live_gpus,
            }
            .to_string();
            if hp {
                self.robust.hp_rejected += 1;
            } else {
                self.robust.be_lost += 1;
            }
            if self.robust.rejections.len() < MAX_FLEET_REJECTIONS {
                self.robust.rejections.push(FleetRejection {
                    job: id,
                    hp,
                    epoch,
                    reason,
                });
            }
        } else {
            h.evacuated_at[id] = Some(epoch);
            h.evacuees.push(id);
        }
    }

    /// Quarantines GPU `g` after a faulted episode (or marks probation
    /// progress impossible): strike, exponential-backoff offline window,
    /// evacuate residents.
    fn quarantine_gpu(&mut self, g: usize) {
        let epoch = self.epoch;
        {
            let Some(h) = self.health.as_mut() else { return };
            if matches!(h.gpu[g], GpuHealth::Dead | GpuHealth::Quarantined { .. }) {
                return;
            }
            h.strikes[g] = h.strikes[g].saturating_add(1);
            let level = h.strikes[g].saturating_sub(1).min(31);
            let span = (1u64 << level).clamp(1, h.plan.quarantine_max_epochs.max(1));
            h.gpu[g] = GpuHealth::Quarantined {
                until: epoch.saturating_add(span as usize),
            };
        }
        self.robust.quarantines += 1;
        self.placer.set_offline(g, true);
        for id in self.placer.residents(g).to_vec() {
            self.placer.remove(id);
            self.evacuate_job(id, epoch);
        }
    }

    /// Credits GPU `g` with a clean episode: probation progresses and
    /// eventually decays a strike.
    fn probation_progress(&mut self, g: usize) {
        let Some(h) = self.health.as_mut() else { return };
        if let GpuHealth::Probation { clean_left } = h.gpu[g] {
            if clean_left <= 1 {
                h.gpu[g] = GpuHealth::Healthy;
                h.strikes[g] = h.strikes[g].saturating_sub(1);
            } else {
                h.gpu[g] = GpuHealth::Probation {
                    clean_left: clean_left - 1,
                };
            }
        }
    }

    /// Epoch-boundary health pass: quarantine expiry (probationary return),
    /// then a fate roll per alive GPU — `Dead` shrinks capacity and
    /// evacuates residents; `Transient` arms device-fault injection for this
    /// epoch's episode. Returns the transient-fated GPU set.
    fn health_boundary(&mut self, epoch: usize) -> Vec<bool> {
        let mut transient = vec![false; self.cfg.gpus];
        if self.health.is_none() {
            return transient;
        }
        for (g, fated_transient) in transient.iter_mut().enumerate() {
            if let Some(h) = self.health.as_mut() {
                if let GpuHealth::Quarantined { until } = h.gpu[g] {
                    if until <= epoch {
                        h.gpu[g] = GpuHealth::Probation {
                            clean_left: h.plan.probation_epochs.max(1),
                        };
                        self.placer.set_offline(g, false);
                        self.robust.reinstated += 1;
                    }
                }
            }
            let fate = {
                let h = self.health.as_ref().expect("health checked above");
                match h.gpu[g] {
                    GpuHealth::Dead | GpuHealth::Quarantined { .. } => continue,
                    GpuHealth::Healthy | GpuHealth::Probation { .. } => h.plan.fate(g, epoch),
                }
            };
            match fate {
                GpuFate::Healthy => {}
                GpuFate::Transient => *fated_transient = true,
                GpuFate::Dead => {
                    if let Some(h) = self.health.as_mut() {
                        h.gpu[g] = GpuHealth::Dead;
                    }
                    self.robust.gpus_dead += 1;
                    self.placer.set_offline(g, true);
                    for id in self.placer.residents(g).to_vec() {
                        self.placer.remove(id);
                        self.evacuate_job(id, epoch);
                    }
                }
            }
        }
        self.live_gpu_epochs += self.placer.live_gpus() as u64;
        transient
    }

    /// Deterministic shed-BE-first preemption: finds the lowest-index live
    /// GPU where evicting a single best-effort resident (lowest job id that
    /// frees enough memory) lets high-priority `job` fit, performs the swap,
    /// and returns `(gpu, victim)`. The victim must be requeued by the
    /// caller.
    fn preempt_be_for(&mut self, id: usize, job: PackJob) -> Option<(usize, usize)> {
        for g in 0..self.cfg.gpus {
            if self.placer.is_offline(g) || self.placer.hp_of(g).is_some() {
                continue;
            }
            let free = self.placer.free_mem(g);
            let mut victim: Option<usize> = None;
            for &r in self.placer.residents(g) {
                let rjob = self.placer.job(r).copied();
                let Some(rjob) = rjob else { continue };
                if rjob.hp {
                    continue;
                }
                if free + rjob.mem >= job.mem && victim.is_none_or(|v| r < v) {
                    victim = Some(r);
                }
            }
            let Some(victim) = victim else { continue };
            self.placer.remove(victim);
            self.placer.force_place(id, job, g);
            self.robust.be_preempted += 1;
            return Some((g, victim));
        }
        None
    }

    /// Marks an outstanding evacuation of `id` as recovered at `epoch`.
    fn note_recovery(&mut self, id: usize, epoch: usize) {
        let Some(h) = self.health.as_mut() else { return };
        if let Some(at) = h.evacuated_at[id].take() {
            self.robust.evacuations_recovered += 1;
            self.robust.max_epochs_to_recovery = self
                .robust
                .max_epochs_to_recovery
                .max(epoch.saturating_sub(at) as u64);
        }
    }

    fn pack_job(&self, id: usize) -> PackJob {
        let spec = &self.trace.jobs[id].client;
        // Re-placement demand: the online-learned table when it has entries,
        // the static workload vector otherwise (cold start / offline mode).
        let demand = self
            .learned[id]
            .as_ref()
            .and_then(demand_from_profiles)
            .unwrap_or_else(|| demand_vector(&spec.workload));
        PackJob {
            mem: spec.workload.memory_footprint,
            demand,
            hp: spec.priority == ClientPriority::HighPriority,
        }
    }

    /// Migrates the worst-matched best-effort resident off every GPU whose
    /// high-priority job ran below `migrate_threshold` of dedicated last
    /// epoch (at most one move per GPU per epoch).
    fn migrate(&mut self) {
        for gpu in 0..self.cfg.gpus {
            let residents = self.placer.residents(gpu).to_vec();
            if residents.len() < 2 {
                continue;
            }
            let Some(hp) = self.placer.hp_of(gpu) else {
                continue;
            };
            let Some(norm) = self.last_hp_norm[hp] else {
                continue;
            };
            if norm >= self.cfg.migrate_threshold {
                continue;
            }
            // `hp`/`r` come from the resident lists, so the lookups should
            // always hit; skip the GPU instead of panicking if they don't.
            let Some(hp_demand) = self.placer.job(hp).map(|j| j.demand) else {
                continue;
            };
            let mut victim: Option<(f64, usize)> = None;
            for &r in residents.iter().filter(|&&r| r != hp) {
                let Some(rj) = self.placer.job(r) else { continue };
                let score = demand_complementarity(hp_demand, rj.demand);
                // Strictly-less keeps the lowest job id on ties.
                if victim.is_none_or(|(s, _)| score < s) {
                    victim = Some((score, r));
                }
            }
            let Some((_, victim)) = victim else { continue };
            let Some(job) = self.placer.job(victim).copied() else {
                continue;
            };
            self.placer.remove(victim);
            if self.placer.try_place(victim, job, Some(gpu)).is_some() {
                self.migrations += 1;
                self.stats[victim].moves += 1;
                // Give the relieved pairing a fresh epoch before re-judging.
                self.last_hp_norm[hp] = None;
            } else {
                // Nowhere better: stay put.
                self.placer.force_place(victim, job, gpu);
            }
        }
    }

    /// Advances the control plane one epoch: applies migration, departures,
    /// arrivals, and placement, then returns the epoch's episodes (one per
    /// occupied GPU; possibly empty early in the trace). Returns `None`
    /// after the last epoch.
    pub fn next_epoch(&mut self) -> Option<Vec<EpisodeSpec>> {
        if self.epoch >= self.cfg.epochs {
            return None;
        }
        let epoch = self.epoch;
        let now = self.cfg.epoch * epoch as u64;

        // Fleet fault plan: quarantine expiry, death rolls, transient arming.
        // A no-op returning all-healthy when no plan is configured.
        let transient = self.health_boundary(epoch);

        if self.cfg.migration && epoch > 0 {
            self.migrate();
        }

        // Departures: resident jobs whose lifetime ended by this boundary
        // free their slots; pending jobs that expired unplaced are dropped.
        let departed: Vec<usize> = (0..self.trace.jobs.len())
            .filter(|&id| self.placer.gpu_of(id).is_some() && self.trace.jobs[id].depart <= now)
            .collect();
        for id in departed {
            self.placer.remove(id);
        }
        let trace = &self.trace;
        self.pending.retain(|&id| trace.jobs[id].depart > now);

        // Arrivals: everything with arrive <= now joins the FIFO queue.
        while self.next_arrival < self.arrivals_order.len() {
            let id = self.arrivals_order[self.next_arrival];
            if self.trace.jobs[id].arrive > now {
                break;
            }
            self.next_arrival += 1;
            if self.trace.jobs[id].client.workload.memory_footprint
                > self.cfg.rc.spec.memory_capacity
            {
                // Cannot fit on any device, ever: reject at admission.
                self.oversized_rejected += 1;
                continue;
            }
            if self.trace.jobs[id].depart > now {
                self.pending.push(id);
            }
        }

        // Evacuees re-place ahead of the FIFO queue, high-priority first
        // (then id order), carrying their learned demand vectors. An HP
        // evacuee that fits nowhere may preempt a best-effort resident
        // (shed-BE-first degraded operation); one that still fits nowhere
        // waits at the front of the line for the next boundary. Fault-free
        // fleets never have evacuees, so this pass is a no-op there.
        let mut evacuees: Vec<usize> = match self.health.as_mut() {
            Some(h) => std::mem::take(&mut h.evacuees),
            None => Vec::new(),
        };
        if !evacuees.is_empty() {
            evacuees.retain(|&id| self.trace.jobs[id].depart > now);
            evacuees.sort_by_key(|&id| {
                (
                    self.trace.jobs[id].client.priority != ClientPriority::HighPriority,
                    id,
                )
            });
            for id in evacuees {
                let job = self.pack_job(id);
                if self.placer.try_place(id, job, None).is_some() {
                    self.stats[id].ever_placed = true;
                    self.note_recovery(id, epoch);
                } else if job.hp {
                    if let Some((_, victim)) = self.preempt_be_for(id, job) {
                        self.stats[id].ever_placed = true;
                        self.note_recovery(id, epoch);
                        self.pending.push(victim);
                    } else if let Some(h) = self.health.as_mut() {
                        h.evacuees.push(id);
                    }
                } else {
                    // Displaced best-effort jobs queue behind everyone.
                    self.pending.push(id);
                }
            }
        }

        // Placement: drain the queue in FIFO order; jobs that do not fit
        // anywhere right now stay queued (capacity may free up later).
        let mut still_pending = Vec::new();
        for id in std::mem::take(&mut self.pending) {
            let job = self.pack_job(id);
            if self.placer.try_place(id, job, None).is_some() {
                self.stats[id].ever_placed = true;
                self.note_recovery(id, epoch);
            } else if job.hp && self.health.is_some() {
                if let Some((_, victim)) = self.preempt_be_for(id, job) {
                    self.stats[id].ever_placed = true;
                    self.note_recovery(id, epoch);
                    still_pending.push(victim);
                } else {
                    still_pending.push(id);
                }
            } else {
                still_pending.push(id);
            }
        }
        self.pending = still_pending;
        self.peak_gpus_used = self.peak_gpus_used.max(self.placer.used_gpus());

        let mut episodes = Vec::new();
        for (gpu, &fated_transient) in transient.iter().enumerate() {
            let jobs = self.placer.residents(gpu).to_vec();
            if jobs.is_empty() {
                continue;
            }
            let clients: Vec<ClientSpec> = jobs
                .iter()
                .map(|&id| self.trace.jobs[id].client.clone())
                .collect();
            let profiles: Vec<Option<ProfileTable>> = jobs
                .iter()
                .map(|&id| {
                    if self.cfg.online {
                        // Cold start on an empty table; the admission ladder
                        // fills it and `absorb` carries it forward.
                        Some(self.learned[id].clone().unwrap_or_default())
                    } else {
                        // Tables were memoized per label in `new`; fall back
                        // to an empty table (conservative scheduling) rather
                        // than panicking on a miss.
                        let label = self.trace.jobs[id].client.workload.label();
                        Some(self.offline_tables.get(&label).cloned().unwrap_or_default())
                    }
                })
                .collect();
            let mut rc = self.cfg.episode_rc(gpu, epoch);
            if fated_transient {
                if let Some(h) = &self.health {
                    // Sticky in-episode faults come from the existing
                    // gpu-sim injector; the per-episode seed already keys
                    // the fault plan, so chaos replays byte-identically.
                    rc.faults = h.plan.episode_faults();
                    self.robust.chaos_episodes += 1;
                }
            }
            episodes.push(EpisodeSpec {
                gpu,
                epoch,
                jobs,
                policy: self.cfg.policy.clone(),
                clients,
                profiles,
                rc,
            });
        }
        self.epoch += 1;
        Some(episodes)
    }

    /// Folds an epoch's episode results back into the control plane:
    /// per-job statistics, learned profile tables (online mode), and the
    /// per-GPU health signals migration reads.
    pub fn absorb(&mut self, results: Vec<(EpisodeSpec, Result<RunResult, GpuError>)>) {
        for (spec, res) in results {
            let r = match res {
                Ok(r) => r,
                Err(e) => {
                    // A failed episode surfaces with ClusterError context
                    // (capped), counts as a device strike, and its residents
                    // are evacuated — never a panic.
                    self.episode_errors += 1;
                    if self.episode_failures.len() < MAX_EPISODE_FAILURES {
                        self.episode_failures.push(format!(
                            "gpu {} epoch {}: {}",
                            spec.gpu,
                            spec.epoch,
                            ClusterError::Gpu(e)
                        ));
                    }
                    self.quarantine_gpu(spec.gpu);
                    continue;
                }
            };
            // Satellite fix (PR 9): per-episode robustness counters used to
            // be dropped at the fleet boundary; they now roll up regardless
            // of whether a fleet fault plan is armed. Fault-free episodes
            // contribute all-zero counters, so the fault-free report (and
            // its digest, which excludes robustness) is unchanged.
            self.robust.episodes.merge(&r.robustness);
            let window = r.window.as_secs_f64();
            for (slot, &job) in spec.jobs.iter().enumerate() {
                let Some(c) = r.clients.get(slot) else {
                    // Episode/client mismatch should be impossible; surface
                    // it as an episode error rather than panicking mid-fleet.
                    self.episode_errors += 1;
                    continue;
                };
                let st = &mut self.stats[job];
                st.resident_epochs += 1;
                st.completed += c.completed;
                for &s in c.latency.samples() {
                    st.latency.record(s);
                }
                if self.trace.jobs[job].client.priority == ClientPriority::HighPriority {
                    let label = self.trace.jobs[job].client.workload.label();
                    let ded = self.dedicated.get(&label).map_or(0.0, |d| d.throughput);
                    let tput = if window > 0.0 { c.completed as f64 / window } else { 0.0 };
                    self.last_hp_norm[job] = Some(if ded > 0.0 { tput / ded } else { 0.0 });
                }
            }
            if let Some(tables) = &r.learned {
                for (slot, &job) in spec.jobs.iter().enumerate() {
                    let Some(table) = tables.get(slot) else { continue };
                    if !table.is_empty() {
                        if let Some(d) = demand_from_profiles(table) {
                            self.placer.update_demand(job, d);
                        }
                        self.learned[job] = Some(table.clone());
                    }
                }
            }
            // Health triage: an episode that left the device sticky-faulted
            // (or needed any sticky-fault recovery mid-run) strikes the GPU;
            // a clean episode progresses probation. No-ops without a plan.
            if self.health.is_some() {
                if r.ended_faulted || r.robustness.device_faults > 0 {
                    self.quarantine_gpu(spec.gpu);
                } else {
                    self.probation_progress(spec.gpu);
                }
            }
        }
    }

    /// Final fleet-level report.
    pub fn into_report(self) -> FleetReport {
        let FleetSim {
            cfg,
            trace,
            dedicated,
            stats,
            migrations,
            episode_errors,
            oversized_rejected,
            peak_gpus_used,
            health,
            mut robust,
            episode_failures,
            live_gpu_epochs,
            ..
        } = self;
        let n = trace.jobs.len();
        let (evac_count, lost) = match health {
            Some(h) => {
                // Availability is only meaningful with a fault plan armed;
                // fault-free reports keep the all-default robustness block.
                let cells = (cfg.gpus * cfg.epochs) as f64;
                robust.availability = if cells > 0.0 {
                    live_gpu_epochs as f64 / cells
                } else {
                    1.0
                };
                (h.evac_count, h.lost)
            }
            None => (vec![0; n], vec![false; n]),
        };
        let window = (cfg.epoch - cfg.epoch / 5).as_secs_f64();
        let mut jobs = Vec::with_capacity(stats.len());
        let mut hp_latency = LatencyRecorder::new();
        for (id, mut st) in stats.into_iter().enumerate() {
            let spec = &trace.jobs[id].client;
            let hp = spec.priority == ClientPriority::HighPriority;
            let label = spec.workload.label();
            let dref = dedicated.get(&label).copied().unwrap_or(DedicatedRef {
                throughput: 0.0,
                p99: SimTime::ZERO,
            });
            let secs = st.resident_epochs as f64 * window;
            let throughput = if secs > 0.0 { st.completed as f64 / secs } else { 0.0 };
            let normalized = if dref.throughput > 0.0 {
                throughput / dref.throughput
            } else {
                0.0
            };
            let p99 = st.latency.p99();
            if hp {
                for &s in st.latency.samples() {
                    hp_latency.record(s);
                }
            }
            // Jobs that never ran an epoch miss their SLO by definition, as
            // do jobs the control plane shed under degraded capacity.
            let slo_met = st.resident_epochs > 0
                && !lost[id]
                && if hp {
                    st.completed > 0 && p99 <= dref.p99.mul_f64(cfg.slo_latency_factor)
                } else {
                    normalized >= cfg.slo_tput_factor
                };
            jobs.push(FleetJobResult {
                job: id,
                label,
                hp,
                resident_epochs: st.resident_epochs,
                completed: st.completed,
                throughput,
                normalized,
                p99,
                slo_met,
                moves: st.moves,
                ever_placed: st.ever_placed,
                evacuations: u64::from(evac_count[id]),
                lost: lost[id],
            });
        }
        let hp_jobs = jobs.iter().filter(|j| j.hp).count();
        let be_jobs = jobs.len() - hp_jobs;
        let hp_met = jobs.iter().filter(|j| j.hp && j.slo_met).count();
        let be_met = jobs.iter().filter(|j| !j.hp && j.slo_met).count();
        let never_placed = jobs.iter().filter(|j| !j.ever_placed).count();
        let dedicated_gpus_needed = trace.peak_concurrent();
        FleetReport {
            gpus: cfg.gpus,
            epochs: cfg.epochs,
            epoch: cfg.epoch,
            peak_gpus_used,
            dedicated_gpus_needed,
            gpus_saved: dedicated_gpus_needed as i64 - peak_gpus_used as i64,
            hp_p99: hp_latency.p99(),
            hp_slo_attainment: if hp_jobs > 0 { hp_met as f64 / hp_jobs as f64 } else { 1.0 },
            be_slo_attainment: if be_jobs > 0 { be_met as f64 / be_jobs as f64 } else { 1.0 },
            slo_attainment: if jobs.is_empty() {
                1.0
            } else {
                (hp_met + be_met) as f64 / jobs.len() as f64
            },
            migrations,
            episode_errors,
            oversized_rejected,
            never_placed,
            robustness: robust,
            episode_failures,
            jobs,
        }
    }
}

/// Per-job outcome across all its resident epochs.
#[derive(Debug, Clone)]
pub struct FleetJobResult {
    /// Job id (index into the trace).
    pub job: usize,
    /// Workload label.
    pub label: String,
    /// High-priority job.
    pub hp: bool,
    /// Epochs the job was resident on some GPU.
    pub resident_epochs: u64,
    /// Requests/iterations completed across all resident epochs.
    pub completed: u64,
    /// Requests per resident-second.
    pub throughput: f64,
    /// Throughput relative to a dedicated GPU.
    pub normalized: f64,
    /// p99 latency across all resident epochs.
    pub p99: SimTime,
    /// SLO attainment: HP jobs by p99 vs dedicated, BE jobs by normalized
    /// throughput; never-resident jobs count as missed.
    pub slo_met: bool,
    /// Migration count.
    pub moves: u64,
    /// The job was placed at least once.
    pub ever_placed: bool,
    /// Times the job was evacuated off a dead/faulted GPU (0 fault-free).
    pub evacuations: u64,
    /// The control plane shed this job (evacuation budget exhausted); its
    /// SLO counts as missed. Never true without a fleet fault plan.
    pub lost: bool,
}

/// Fleet-level outcome.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Fleet size (GPUs available).
    pub gpus: usize,
    /// Epochs simulated.
    pub epochs: usize,
    /// Epoch length.
    pub epoch: SimTime,
    /// Most GPUs occupied at any epoch boundary.
    pub peak_gpus_used: usize,
    /// Peak concurrently-live jobs in the raw trace: the size of the
    /// dedicated (one GPU per job) fleet this run replaces.
    pub dedicated_gpus_needed: usize,
    /// `dedicated_gpus_needed - peak_gpus_used` (negative if sharing lost).
    pub gpus_saved: i64,
    /// Fleet-wide p99 across every HP request.
    pub hp_p99: SimTime,
    /// Fraction of HP jobs meeting their latency SLO.
    pub hp_slo_attainment: f64,
    /// Fraction of BE jobs meeting their throughput SLO.
    pub be_slo_attainment: f64,
    /// Fraction of all jobs meeting their SLO.
    pub slo_attainment: f64,
    /// Successful migrations.
    pub migrations: u64,
    /// Episodes that returned an error (excluded from statistics).
    pub episode_errors: u64,
    /// Jobs rejected at admission because they exceed device memory.
    pub oversized_rejected: u64,
    /// Jobs that were never placed before departing.
    pub never_placed: usize,
    /// Fleet-level fault-and-recovery roll-up (all defaults fault-free).
    pub robustness: FleetRobustnessReport,
    /// Formatted context of failed episodes, capped at
    /// `MAX_EPISODE_FAILURES` entries (`episode_errors` keeps the total).
    pub episode_failures: Vec<String>,
    /// Per-job results, in job-id order.
    pub jobs: Vec<FleetJobResult>,
}

impl FleetReport {
    /// FNV-1a digest over every per-job outcome — a compact determinism
    /// fingerprint: two runs of the same trace/config must agree on it
    /// regardless of thread count.
    pub fn jobs_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for j in &self.jobs {
            eat(&(j.job as u64).to_le_bytes());
            eat(&[j.hp as u8, j.slo_met as u8, j.ever_placed as u8]);
            eat(&j.resident_epochs.to_le_bytes());
            eat(&j.completed.to_le_bytes());
            eat(&j.throughput.to_bits().to_le_bytes());
            eat(&j.normalized.to_bits().to_le_bytes());
            eat(&j.p99.as_nanos().to_le_bytes());
            eat(&j.moves.to_le_bytes());
        }
        eat(&(self.peak_gpus_used as u64).to_le_bytes());
        eat(&self.gpus_saved.to_le_bytes());
        eat(&self.migrations.to_le_bytes());
        h
    }
}

/// Runs a fleet end-to-end on the current thread (the bench driver shards
/// episode batches across the runner instead; both produce identical
/// reports).
///
/// # Errors
///
/// Propagates [`FleetSim::new`] and dedicated-reference failures.
pub fn run_fleet_serial(trace: FleetTrace, cfg: FleetConfig) -> Result<FleetReport, ClusterError> {
    let dedicated = dedicated_refs_serial(&trace, &cfg)?;
    let mut sim = FleetSim::new(trace, cfg, dedicated)?;
    while let Some(specs) = sim.next_epoch() {
        let results = specs
            .into_iter()
            .map(|s| {
                let r = s.run();
                (s, r)
            })
            .collect();
        sim.absorb(results);
    }
    Ok(sim.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_desim::time::SimTime;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::models::llm::llm_decode_step;
    use orion_workloads::registry::inference_workload;
    use orion_workloads::ModelKind;

    fn quick() -> RunConfig {
        let mut c = RunConfig::quick_test();
        c.horizon = SimTime::from_secs(2);
        c.warmup = SimTime::from_millis(400);
        c
    }

    fn job(w: orion_workloads::Workload) -> ClusterJob {
        ClusterJob {
            client: ClientSpec::best_effort(w, ArrivalProcess::ClosedLoop),
        }
    }

    #[test]
    fn four_jobs_on_two_gpus() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
            job(inference_workload(ModelKind::MobileNetV2)),
        ];
        let r = run_cluster(&jobs, 2, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 2);
        assert_eq!(r.jobs.len(), 4);
        for j in &r.jobs {
            assert!(j.throughput > 0.0, "{} starved", j.label);
            assert!(j.normalized <= 1.1, "{}: normalized {}", j.label, j.normalized);
        }
        // Two GPUs serving four jobs at a meaningful fraction of dedicated.
        assert!(r.total_normalized > 2.0, "total {}", r.total_normalized);
    }

    #[test]
    fn too_few_gpus_is_a_cluster_error() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
        ];
        // Regression (bug 1): this used to surface as GpuError::OutOfMemory
        // with job counts stuffed into the byte fields; it must be the
        // dedicated control-plane variant with real GPU counts.
        match run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()) {
            Err(ClusterError::InsufficientGpus { needed, available }) => {
                assert_eq!(needed, 2);
                assert_eq!(available, 1);
            }
            other => panic!("expected InsufficientGpus, got {other:?}"),
        }
    }

    #[test]
    fn oversized_job_is_rejected_not_placed() {
        // Regression (bug 3): a job larger than device memory used to be
        // "placed alone" on a GPU it cannot fit; now it is an explicit error.
        let mut cfg = quick();
        cfg.spec.memory_capacity = 8 * (1 << 30);
        let jobs = vec![
            job(orion_workloads::registry::training_workload(ModelKind::Transformer)), // 8.5 GiB
            job(inference_workload(ModelKind::ResNet50)),
        ];
        match run_cluster(&jobs, 2, &PolicyKind::orion_default(), &cfg) {
            Err(ClusterError::JobTooLarge { job, footprint, gpu_memory }) => {
                assert_eq!(job, 0);
                assert!(footprint > gpu_memory);
            }
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn failed_baseline_is_reported_not_zeroed() {
        // Regression (bug 2): a job whose dedicated reference run fails used
        // to silently report normalized 0.0; it must now surface as
        // BaselineFailed. An invalid kernel (zero grid) fails profiling and
        // the dedicated run alike.
        use orion_desim::time::SimTime;
        use orion_gpu::kernel::KernelDesc;
        use orion_workloads::model::Workload;
        use orion_workloads::OpSpec;

        let bad_kernel = KernelDesc {
            kernel_id: 9000,
            name: "bad".into(),
            grid_blocks: 0, // invalid: fails validation
            threads_per_block: 256,
            regs_per_thread: 32,
            shmem_per_block: 0,
            solo_duration: SimTime::from_micros(50),
            compute_util: 0.5,
            mem_util: 0.5,
        };
        let bad = Workload {
            model: ModelKind::ResNet50,
            kind: orion_workloads::model::WorkloadKind::Inference { batch: 1 },
            ops: vec![(
                orion_workloads::model::Phase::Forward,
                OpSpec::Kernel(std::sync::Arc::new(bad_kernel)),
            )],
            memory_footprint: 1 << 30,
        };
        let jobs = vec![job(bad)];
        match run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()) {
            Err(ClusterError::BaselineFailed { job, .. }) => assert_eq!(job, 0),
            other => panic!("expected BaselineFailed, got {other:?}"),
        }
    }

    #[test]
    fn single_job_runs_dedicated() {
        let jobs = vec![job(inference_workload(ModelKind::ResNet50))];
        let r = run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 1);
        assert!((r.jobs[0].normalized - 1.0).abs() < 1e-9);
    }

    #[test]
    fn packed_cluster_hosts_more_jobs_per_gpu() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
        ];
        // Pairwise packing needs two GPUs; 3-way packing fits on one.
        let r = run_cluster_packed(&jobs, 1, 3, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 1);
        assert_eq!(r.jobs.len(), 3);
    }

    fn tiny_fleet_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::new(4, 3);
        cfg.epoch = SimTime::from_secs(1);
        cfg.rc.seed = 7;
        cfg
    }

    fn tiny_trace(cfg: &FleetConfig) -> FleetTrace {
        let mut tc = FleetTraceConfig::new(8, cfg.horizon());
        tc.seed = 11;
        FleetTrace::synthesize(&tc)
    }

    #[test]
    fn trace_synthesis_is_deterministic_and_bounded() {
        let cfg = tiny_fleet_cfg();
        let a = tiny_trace(&cfg);
        let b = tiny_trace(&cfg);
        assert_eq!(a.jobs.len(), 8);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.arrive, y.arrive);
            assert_eq!(x.depart, y.depart);
            assert_eq!(x.client.workload.label(), y.client.workload.label());
            assert!(x.arrive <= x.depart);
            assert!(x.depart <= cfg.horizon());
        }
        assert!(a.peak_concurrent() >= 1);
    }

    #[test]
    fn fleet_serial_run_reports_jobs() {
        let cfg = tiny_fleet_cfg();
        let trace = tiny_trace(&cfg);
        let r = run_fleet_serial(trace, cfg).unwrap();
        assert_eq!(r.jobs.len(), 8);
        assert_eq!(r.episode_errors, 0);
        assert!(r.peak_gpus_used >= 1 && r.peak_gpus_used <= 4);
        // At least one job must have run and completed work.
        assert!(r.jobs.iter().any(|j| j.completed > 0));
        // Digest is stable across identical runs.
        let cfg2 = tiny_fleet_cfg();
        let r2 = run_fleet_serial(tiny_trace(&cfg2), cfg2).unwrap();
        assert_eq!(r.jobs_digest(), r2.jobs_digest());
    }

    #[test]
    fn fleet_online_learns_and_can_migrate() {
        let mut cfg = tiny_fleet_cfg();
        cfg.online = true;
        cfg.migration = true;
        // An aggressive threshold so the migration path actually exercises.
        cfg.migrate_threshold = 2.0;
        let trace = tiny_trace(&cfg);
        let r = run_fleet_serial(trace, cfg).unwrap();
        assert_eq!(r.episode_errors, 0);
        assert!(r.jobs.iter().any(|j| j.completed > 0));
    }

    #[test]
    fn fleet_fate_rolls_are_pure_and_mixed() {
        let plan = FleetFaultPlan {
            transient_rate: 0.3,
            dead_rate: 0.1,
            ..FleetFaultPlan::new(5)
        };
        let mut dead = 0;
        let mut transient = 0;
        for gpu in 0..64 {
            for epoch in 0..8 {
                let fate = plan.fate(gpu, epoch);
                assert_eq!(fate, plan.fate(gpu, epoch), "fate must be pure");
                match fate {
                    GpuFate::Dead => dead += 1,
                    GpuFate::Transient => transient += 1,
                    GpuFate::Healthy => {}
                }
            }
        }
        // 512 cells at 10%/30%: both outcomes must actually occur, and
        // healthy must dominate.
        assert!(dead > 0 && transient > 0);
        assert!(dead + transient < 512 / 2);
        // A different seed decides different cells.
        let other = FleetFaultPlan {
            transient_rate: 0.3,
            dead_rate: 0.1,
            ..FleetFaultPlan::new(6)
        };
        assert!(
            (0..64).any(|g| (0..8).any(|e| plan.fate(g, e) != other.fate(g, e))),
            "seed must matter"
        );
    }

    /// Satellite regression (PR 9): per-episode robustness counters used to
    /// be dropped at the fleet boundary. Arm episode-level faults with NO
    /// fleet fault plan and require the counters to surface in the report.
    #[test]
    fn episode_robustness_rolls_up_without_fleet_plan() {
        let mut cfg = tiny_fleet_cfg();
        cfg.rc.faults = FaultConfig::none().with_rates(orion_gpu::fault::FaultRates {
            kernel_fault: 0.05,
            ..Default::default()
        });
        let trace = tiny_trace(&cfg);
        let r = run_fleet_serial(trace, cfg).unwrap();
        assert!(
            r.robustness.episodes.any(),
            "episode fault counters must reach the fleet report"
        );
        assert!(r.robustness.episodes.device_faults > 0);
        // No fleet plan: none of the fleet-level machinery may fire.
        assert_eq!(r.robustness.gpus_dead, 0);
        assert_eq!(r.robustness.evacuations, 0);
        assert_eq!(r.robustness.quarantines, 0);
        assert!(r.jobs.iter().all(|j| !j.lost && j.evacuations == 0));
    }

    #[test]
    fn fleet_chaos_evacuates_recovers_and_replays() {
        let mut cfg = tiny_fleet_cfg();
        cfg.epochs = 6;
        // Aggressive plan so 4 GPUs x 6 epochs reliably exercise death,
        // quarantine, and evacuation.
        cfg.faults = Some(FleetFaultPlan {
            transient_rate: 0.35,
            dead_rate: 0.15,
            episode_rates: orion_gpu::fault::FaultRates {
                kernel_fault: 0.05,
                ..Default::default()
            },
            ..FleetFaultPlan::new(13)
        });
        let trace = tiny_trace(&cfg);
        let r = run_fleet_serial(trace, cfg.clone()).unwrap();
        let ro = &r.robustness;
        assert!(ro.any(), "chaos run must report robustness");
        assert!(ro.chaos_episodes > 0 || ro.gpus_dead > 0, "chaos must fire");
        assert!(ro.evacuations > 0, "failed devices must evacuate residents");
        assert!(ro.availability > 0.0 && ro.availability < 1.0);
        assert_eq!(
            r.jobs.iter().map(|j| j.evacuations).sum::<u64>(),
            ro.evacuations,
            "per-job evacuation counts must sum to the fleet counter"
        );
        assert!(
            ro.max_epochs_to_recovery <= cfg.epochs as u64,
            "recovery must be bounded"
        );
        // Shed jobs (if any) are SLO misses with CapacityExhausted context.
        for rej in &ro.rejections {
            assert!(rej.reason.contains("evacuation budget exhausted"));
            assert!(r.jobs[rej.job].lost);
            assert!(!r.jobs[rej.job].slo_met);
        }
        // Chaos replays byte-identically: same trace + config, same digest
        // and same robustness roll-up.
        let r2 = run_fleet_serial(tiny_trace(&cfg), cfg).unwrap();
        assert_eq!(r.jobs_digest(), r2.jobs_digest());
        assert_eq!(*ro, r2.robustness);
    }

    #[test]
    fn fleet_fault_free_has_default_robustness() {
        let cfg = tiny_fleet_cfg();
        let r = run_fleet_serial(tiny_trace(&cfg), cfg).unwrap();
        assert!(!r.robustness.any(), "fault-free must construct nothing");
        assert!(r.episode_failures.is_empty());
        assert!(r.jobs.iter().all(|j| !j.lost && j.evacuations == 0));
    }

    #[test]
    fn fleet_departures_free_capacity() {
        // Two GPUs, jobs sized so the second wave only fits after the first
        // departs.
        let mut cfg = FleetConfig::new(1, 4);
        cfg.max_jobs_per_gpu = 1;
        cfg.rc.seed = 3;
        let mk = |arrive: u64, depart: u64| FleetJob {
            client: ClientSpec::best_effort(
                inference_workload(ModelKind::ResNet50),
                ArrivalProcess::ClosedLoop,
            ),
            arrive: SimTime::from_secs(arrive),
            depart: SimTime::from_secs(depart),
        };
        let trace = FleetTrace {
            jobs: vec![mk(0, 2), mk(0, 4)],
        };
        let r = run_fleet_serial(trace, cfg).unwrap();
        // Job 0 runs epochs 0-1; job 1 queues, then runs epochs 2-3.
        assert_eq!(r.jobs[0].resident_epochs, 2);
        assert_eq!(r.jobs[1].resident_epochs, 2);
        assert_eq!(r.peak_gpus_used, 1);
        assert_eq!(r.never_placed, 0);
    }
}
