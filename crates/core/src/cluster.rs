//! Multi-GPU cluster simulation (paper §7 "cluster manager co-design").
//!
//! Orion is a per-GPU scheduler; the paper's discussion proposes a cluster
//! manager that uses the offline compute/memory profiles to place jobs with
//! complementary demands on the same GPU. This module closes the loop:
//! [`run_cluster`] takes a set of jobs and a GPU count, places them with the
//! profile-driven matcher from [`crate::placement`], runs every GPU's
//! collocation under a policy, and reports per-job and cluster-level
//! results. Each GPU runs its own independent simulation (the paper runs a
//! separate Orion instance per device, §5).

use orion_gpu::error::GpuError;

use crate::client::{ClientPriority, ClientSpec};
use crate::placement::place_jobs;
use crate::policy::PolicyKind;
use crate::world::{run_collocation, run_dedicated, RunConfig};

/// A job submitted to the cluster.
#[derive(Debug, Clone)]
pub struct ClusterJob {
    /// The client (workload + arrivals + priority).
    pub client: ClientSpec,
}

/// Result for one job after the cluster run.
#[derive(Debug)]
pub struct JobResult {
    /// Index of the job in the submission order.
    pub job: usize,
    /// GPU the job was placed on.
    pub gpu: usize,
    /// Workload label.
    pub label: String,
    /// Requests/iterations per second achieved.
    pub throughput: f64,
    /// p99 latency in milliseconds.
    pub p99_ms: f64,
    /// Throughput relative to a dedicated GPU.
    pub normalized: f64,
}

/// Cluster-level outcome.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-job results.
    pub jobs: Vec<JobResult>,
    /// GPUs actually used.
    pub gpus_used: usize,
    /// Sum of normalized throughputs (max = number of jobs).
    pub total_normalized: f64,
}

/// Places `jobs` onto at most `max_gpus` devices with the profile-driven
/// matcher and runs every device's collocation under `policy`.
///
/// Jobs are paired by complementarity; pairs beyond the GPU budget and
/// unpaired jobs run alone, newest-first, one per remaining GPU.
///
/// # Errors
///
/// Returns an error when more GPUs would be needed than `max_gpus`, or when
/// a placed pair unexpectedly fails to run.
pub fn run_cluster(
    jobs: &[ClusterJob],
    max_gpus: usize,
    policy: &PolicyKind,
    cfg: &RunConfig,
) -> Result<ClusterResult, GpuError> {
    let workloads: Vec<_> = jobs.iter().map(|j| j.client.workload.clone()).collect();
    let placement = place_jobs(&workloads, cfg.spec.memory_capacity);
    let needed = placement.pairs.len() + placement.singles.len();
    if needed > max_gpus {
        return Err(GpuError::OutOfMemory {
            requested: needed as u64,
            available: max_gpus as u64,
        });
    }

    let mut results = Vec::new();
    let mut gpu = 0usize;

    // Dedicated reference throughput per job (for normalization).
    let dedicated: Vec<f64> = jobs
        .iter()
        .map(|j| {
            run_dedicated(j.client.clone(), cfg)
                .map(|r| r.clients[0].throughput)
                .unwrap_or(0.0)
        })
        .collect();

    for &(a, b) in &placement.pairs {
        // The first job of the pair is treated as the GPU's high-priority
        // client (the placement layer can encode real priorities by
        // submitting jobs with ClientPriority set; we respect them).
        let mut ca = jobs[a].client.clone();
        let mut cb = jobs[b].client.clone();
        if ca.priority == cb.priority {
            ca.priority = ClientPriority::HighPriority;
            cb.priority = ClientPriority::BestEffort;
        }
        let mut r = run_collocation(policy.clone(), vec![ca, cb], cfg)?;
        for (slot, job) in [(0usize, a), (1, b)] {
            let c = &mut r.clients[slot];
            results.push(JobResult {
                job,
                gpu,
                label: c.label.clone(),
                throughput: c.throughput,
                p99_ms: c.latency.p99().as_millis_f64(),
                normalized: if dedicated[job] > 0.0 {
                    c.throughput / dedicated[job]
                } else {
                    0.0
                },
            });
        }
        gpu += 1;
    }
    for &a in &placement.singles {
        let mut r = run_dedicated(jobs[a].client.clone(), cfg)?;
        let c = &mut r.clients[0];
        results.push(JobResult {
            job: a,
            gpu,
            label: c.label.clone(),
            throughput: c.throughput,
            p99_ms: c.latency.p99().as_millis_f64(),
            normalized: 1.0,
        });
        gpu += 1;
    }

    results.sort_by_key(|r| r.job);
    let total_normalized = results.iter().map(|r| r.normalized).sum();
    Ok(ClusterResult {
        jobs: results,
        gpus_used: gpu,
        total_normalized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_desim::time::SimTime;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::models::llm::llm_decode_step;
    use orion_workloads::registry::inference_workload;
    use orion_workloads::ModelKind;

    fn quick() -> RunConfig {
        let mut c = RunConfig::quick_test();
        c.horizon = SimTime::from_secs(2);
        c.warmup = SimTime::from_millis(400);
        c
    }

    fn job(w: orion_workloads::Workload) -> ClusterJob {
        ClusterJob {
            client: ClientSpec::best_effort(w, ArrivalProcess::ClosedLoop),
        }
    }

    #[test]
    fn four_jobs_on_two_gpus() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
            job(inference_workload(ModelKind::MobileNetV2)),
        ];
        let r = run_cluster(&jobs, 2, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 2);
        assert_eq!(r.jobs.len(), 4);
        for j in &r.jobs {
            assert!(j.throughput > 0.0, "{} starved", j.label);
            assert!(j.normalized <= 1.1, "{}: normalized {}", j.label, j.normalized);
        }
        // Two GPUs serving four jobs at a meaningful fraction of dedicated.
        assert!(r.total_normalized > 2.0, "total {}", r.total_normalized);
    }

    #[test]
    fn too_few_gpus_is_an_error() {
        let jobs = vec![
            job(inference_workload(ModelKind::Bert)),
            job(llm_decode_step()),
            job(inference_workload(ModelKind::ResNet50)),
        ];
        assert!(run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()).is_err());
    }

    #[test]
    fn single_job_runs_dedicated() {
        let jobs = vec![job(inference_workload(ModelKind::ResNet50))];
        let r = run_cluster(&jobs, 1, &PolicyKind::orion_default(), &quick()).unwrap();
        assert_eq!(r.gpus_used, 1);
        assert!((r.jobs[0].normalized - 1.0).abs() < 1e-9);
    }
}
