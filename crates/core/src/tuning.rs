//! `SM_THRESHOLD` auto-tuning (paper §5.1.1).
//!
//! By default `SM_THRESHOLD` is the device SM count, but for
//! throughput-oriented high-priority jobs the paper tunes it with binary
//! search: the search interval is `[0, max SMs needed by any best-effort
//! kernel]`, and a candidate threshold is accepted when the high-priority
//! job retains at least a target fraction of its dedicated-GPU throughput.
//! Larger thresholds admit more best-effort kernels (more aggressive
//! collocation); the search finds the largest acceptable threshold.

use std::collections::HashMap;

use orion_gpu::error::GpuError;
use orion_profiler::profile_workload;

use crate::client::ClientSpec;
use crate::policy::{OrionConfig, PolicyKind};
use crate::world::{run_collocation, run_dedicated, RunConfig};

/// Outcome of the binary search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The selected `SM_THRESHOLD`.
    pub sm_threshold: u32,
    /// High-priority throughput at the selected threshold.
    pub hp_throughput: f64,
    /// High-priority throughput on a dedicated GPU.
    pub hp_dedicated: f64,
    /// Thresholds probed, in order.
    pub probes: Vec<(u32, f64)>,
}

/// Binary-searches the largest `SM_THRESHOLD` that keeps the high-priority
/// client's throughput at or above `target_ratio` of its dedicated-GPU
/// throughput (e.g. 0.85 for "within 15%").
///
/// `clients[0]` must be the high-priority client.
///
/// # Errors
///
/// Propagates device out-of-memory from the underlying runs.
pub fn tune_sm_threshold(
    clients: &[ClientSpec],
    cfg: &RunConfig,
    target_ratio: f64,
) -> Result<TuneResult, GpuError> {
    let hp = clients[0].clone();
    let dedicated = run_dedicated(hp, cfg)?.hp().throughput;

    // Upper bound: the largest SM demand of any best-effort kernel (§5.1.1).
    // Best-effort workloads without kernels (pure memcpy traces) yield 0,
    // collapsing the search interval to the single candidate 0.
    let mut hi = {
        let mut max_needed = None;
        for c in clients.iter().skip(1) {
            let needed = profile_workload(&c.workload, &cfg.spec)?.table().max_sm_needed();
            max_needed = Some(max_needed.map_or(needed, |m: u32| m.max(needed)));
        }
        max_needed.unwrap_or(cfg.spec.num_sms)
    };
    let mut lo = 0u32;
    let mut probes = Vec::new();
    // Each collocation run is expensive; memoize by threshold so no setting
    // is ever simulated twice (the fallback below may revisit `lo`, and a
    // degenerate `hi == 0` interval makes `lo` and `hi` the same probe).
    let mut cache: HashMap<u32, f64> = HashMap::new();

    let hp_at = |threshold: u32,
                 cache: &mut HashMap<u32, f64>,
                 probes: &mut Vec<(u32, f64)>|
     -> Result<f64, GpuError> {
        if let Some(&t) = cache.get(&threshold) {
            return Ok(t);
        }
        let kind = PolicyKind::Orion(OrionConfig::default().with_sm_threshold(threshold));
        let r = run_collocation(kind, clients.to_vec(), cfg)?;
        let t = r.hp().throughput;
        cache.insert(threshold, t);
        probes.push((threshold, t));
        Ok(t)
    };

    // Check the most aggressive setting first.
    let t_hi = hp_at(hi, &mut cache, &mut probes)?;
    if t_hi >= target_ratio * dedicated {
        return Ok(TuneResult {
            sm_threshold: hi,
            hp_throughput: t_hi,
            hp_dedicated: dedicated,
            probes,
        });
    }

    // `None` until some probe meets the target; a bare `(0, _)` sentinel
    // would conflate "nothing met the target" with "threshold 0 met it".
    let mut best: Option<(u32, f64)> = None;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let t = hp_at(mid, &mut cache, &mut probes)?;
        if t >= target_ratio * dedicated {
            best = Some((mid, t));
            lo = mid;
        } else {
            hi = mid;
        }
    }

    // Fall back to the least aggressive candidate if nothing met the target
    // (a cache hit when the interval was degenerate, e.g. `hi == 0`).
    let (sm_threshold, hp_throughput) = match best {
        Some(b) => b,
        None => (lo, hp_at(lo, &mut cache, &mut probes)?),
    };
    Ok(TuneResult {
        sm_threshold,
        hp_throughput,
        hp_dedicated: dedicated,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_desim::time::SimTime;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::model::{Phase, Workload, WorkloadKind};
    use orion_workloads::ops::OpSpec;
    use orion_workloads::registry::training_workload;
    use orion_workloads::ModelKind;

    #[test]
    fn tuner_converges_and_respects_target() {
        let clients = vec![
            ClientSpec::high_priority(
                training_workload(ModelKind::ResNet50),
                ArrivalProcess::ClosedLoop,
            ),
            ClientSpec::best_effort(
                training_workload(ModelKind::MobileNetV2),
                ArrivalProcess::ClosedLoop,
            ),
        ];
        let mut cfg = RunConfig::quick_test();
        cfg.horizon = orion_desim::time::SimTime::from_secs(2);
        let r = tune_sm_threshold(&clients, &cfg, 0.70).unwrap();
        assert!(r.hp_dedicated > 0.0);
        assert!(!r.probes.is_empty());
        // The selected threshold keeps HP throughput near or above target,
        // or is the most conservative probe.
        assert!(r.sm_threshold <= cfg.spec.num_sms);
    }

    #[test]
    fn unreachable_target_probes_each_threshold_once() {
        let clients = vec![
            ClientSpec::high_priority(
                training_workload(ModelKind::ResNet50),
                ArrivalProcess::ClosedLoop,
            ),
            ClientSpec::best_effort(
                training_workload(ModelKind::MobileNetV2),
                ArrivalProcess::ClosedLoop,
            ),
        ];
        let mut cfg = RunConfig::quick_test();
        cfg.horizon = SimTime::from_secs(1);
        cfg.warmup = SimTime::from_millis(200);
        // No collocation can beat the dedicated GPU twice over, so every
        // probe fails and the search walks down to the fallback at `lo`.
        let r = tune_sm_threshold(&clients, &cfg, 2.0).unwrap();
        assert_eq!(r.sm_threshold, 0, "fallback is the conservative bound");
        let mut thresholds: Vec<u32> = r.probes.iter().map(|p| p.0).collect();
        let total = thresholds.len();
        thresholds.sort_unstable();
        thresholds.dedup();
        assert_eq!(thresholds.len(), total, "duplicate probes: {:?}", r.probes);
    }

    #[test]
    fn degenerate_interval_probes_once() {
        // A best-effort workload with no kernels: max_sm_needed() is 0, so
        // the search interval collapses to the single candidate 0. The
        // fallback used to re-run that same probe as `lo`.
        let copies_only = Workload {
            model: ModelKind::MobileNetV2,
            kind: WorkloadKind::Training { batch: 1 },
            ops: vec![
                (
                    Phase::Forward,
                    OpSpec::H2D {
                        bytes: 4 << 20,
                        blocking: false,
                    },
                ),
                (
                    Phase::Forward,
                    OpSpec::D2H {
                        bytes: 1 << 20,
                        blocking: true,
                    },
                ),
            ],
            memory_footprint: 64 << 20,
        };
        let clients = vec![
            ClientSpec::high_priority(
                training_workload(ModelKind::MobileNetV2),
                ArrivalProcess::ClosedLoop,
            ),
            ClientSpec::best_effort(copies_only, ArrivalProcess::ClosedLoop),
        ];
        let mut cfg = RunConfig::quick_test();
        cfg.horizon = SimTime::from_millis(500);
        cfg.warmup = SimTime::from_millis(100);
        let r = tune_sm_threshold(&clients, &cfg, 2.0).unwrap();
        assert_eq!(r.sm_threshold, 0);
        assert_eq!(
            r.probes.len(),
            1,
            "degenerate interval must run one collocation, got {:?}",
            r.probes
        );
    }
}
