//! `SM_THRESHOLD` auto-tuning (paper §5.1.1).
//!
//! By default `SM_THRESHOLD` is the device SM count, but for
//! throughput-oriented high-priority jobs the paper tunes it with binary
//! search: the search interval is `[0, max SMs needed by any best-effort
//! kernel]`, and a candidate threshold is accepted when the high-priority
//! job retains at least a target fraction of its dedicated-GPU throughput.
//! Larger thresholds admit more best-effort kernels (more aggressive
//! collocation); the search finds the largest acceptable threshold.

use orion_gpu::error::GpuError;
use orion_profiler::profile_workload;

use crate::client::ClientSpec;
use crate::policy::{OrionConfig, PolicyKind};
use crate::world::{run_collocation, run_dedicated, RunConfig};

/// Outcome of the binary search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The selected `SM_THRESHOLD`.
    pub sm_threshold: u32,
    /// High-priority throughput at the selected threshold.
    pub hp_throughput: f64,
    /// High-priority throughput on a dedicated GPU.
    pub hp_dedicated: f64,
    /// Thresholds probed, in order.
    pub probes: Vec<(u32, f64)>,
}

/// Binary-searches the largest `SM_THRESHOLD` that keeps the high-priority
/// client's throughput at or above `target_ratio` of its dedicated-GPU
/// throughput (e.g. 0.85 for "within 15%").
///
/// `clients[0]` must be the high-priority client.
///
/// # Errors
///
/// Propagates device out-of-memory from the underlying runs.
pub fn tune_sm_threshold(
    clients: &[ClientSpec],
    cfg: &RunConfig,
    target_ratio: f64,
) -> Result<TuneResult, GpuError> {
    let hp = clients[0].clone();
    let dedicated = run_dedicated(hp, cfg)?.hp().throughput;

    // Upper bound: the largest SM demand of any best-effort kernel (§5.1.1).
    let mut hi = clients
        .iter()
        .skip(1)
        .map(|c| profile_workload(&c.workload, &cfg.spec).table().max_sm_needed())
        .max()
        .unwrap_or(cfg.spec.num_sms);
    let mut lo = 0u32;
    let mut probes = Vec::new();
    let mut best = (0u32, 0.0f64);

    let hp_at = |threshold: u32, probes: &mut Vec<(u32, f64)>| -> Result<f64, GpuError> {
        let kind = PolicyKind::Orion(OrionConfig::default().with_sm_threshold(threshold));
        let r = run_collocation(kind, clients.to_vec(), cfg)?;
        let t = r.hp().throughput;
        probes.push((threshold, t));
        Ok(t)
    };

    // Check the most aggressive setting first.
    let t_hi = hp_at(hi, &mut probes)?;
    if t_hi >= target_ratio * dedicated {
        return Ok(TuneResult {
            sm_threshold: hi,
            hp_throughput: t_hi,
            hp_dedicated: dedicated,
            probes,
        });
    }

    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let t = hp_at(mid, &mut probes)?;
        if t >= target_ratio * dedicated {
            best = (mid, t);
            lo = mid;
        } else {
            hi = mid;
        }
    }

    // Fall back to the least aggressive probe if nothing met the target.
    if best.0 == 0 {
        let t = hp_at(lo, &mut probes)?;
        best = (lo, t);
    }
    Ok(TuneResult {
        sm_threshold: best.0,
        hp_throughput: best.1,
        hp_dedicated: dedicated,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::registry::training_workload;
    use orion_workloads::ModelKind;

    #[test]
    fn tuner_converges_and_respects_target() {
        let clients = vec![
            ClientSpec::high_priority(
                training_workload(ModelKind::ResNet50),
                ArrivalProcess::ClosedLoop,
            ),
            ClientSpec::best_effort(
                training_workload(ModelKind::MobileNetV2),
                ArrivalProcess::ClosedLoop,
            ),
        ];
        let mut cfg = RunConfig::quick_test();
        cfg.horizon = orion_desim::time::SimTime::from_secs(2);
        let r = tune_sm_threshold(&clients, &cfg, 0.70).unwrap();
        assert!(r.hp_dedicated > 0.0);
        assert!(!r.probes.is_empty());
        // The selected threshold keeps HP throughput near or above target,
        // or is the most conservative probe.
        assert!(r.sm_threshold <= cfg.spec.num_sms);
    }
}
