//! Fault configuration and the recovery supervisor.
//!
//! The supervisor is the fault-tolerance layer of the scheduling loop (see
//! DESIGN.md §11). The world consults it whenever the device reports
//! non-`Ok` completions or a watchdog deadline expires, and it decides the
//! recovery action per client:
//!
//! * **Sticky kernel fault** — the device dies (CUDA sticky-error
//!   semantics). The supervisor identifies the culprit client, resets the
//!   device, and deterministically resubmits every *surviving* client's
//!   aborted operations, high-priority clients first (priority
//!   re-admission). A best-effort culprit is **quarantined**: its current
//!   request is shed and the client is suspended for an exponentially
//!   growing backoff before re-admission. A high-priority culprit gets a
//!   bounded number of retries before its request is shed.
//! * **Non-sticky op fault** (copy/malloc failure) — the op alone is
//!   retried, bounded per request.
//! * **Watchdog stall** — an op outlived its deadline (expected duration
//!   plus [`SupervisorConfig::op_timeout`]); the supervisor resets the
//!   device preemptively and recovers as above with the stalled op's client
//!   as culprit.
//! * **Client crash/hang** — a client that stopped making progress while
//!   holding an in-flight request has the request shed so policies (e.g.
//!   temporal sharing) release any exclusive ownership.
//!
//! All backoff and retry accounting happens in simulated time with
//! deterministic arithmetic — no wall clock, no RNG — so a faulty run is as
//! reproducible as a fault-free one.

use std::collections::HashMap;

use orion_desim::time::SimTime;
use orion_gpu::fault::{FaultKind, FaultRates, FaultTarget};

/// Watchdog and retry/backoff tuning for the recovery supervisor.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Period of the watchdog event that scans op deadlines and client
    /// liveness.
    pub watchdog_interval: SimTime,
    /// Grace added to an op's expected duration before the watchdog
    /// declares it stalled. Generous by default: interference can slow
    /// kernels several-fold, and a false positive costs a device reset.
    pub op_timeout: SimTime,
    /// How long a client may sit on an unfinished request without queued
    /// work, in-flight ops, or push progress before it is declared
    /// hung/crashed and its request is shed.
    pub client_timeout: SimTime,
    /// Retries per request before the supervisor sheds it.
    pub max_retries: u32,
    /// First quarantine backoff; doubles per quarantine of the same client.
    pub backoff_base: SimTime,
    /// Backoff growth cap.
    pub backoff_max: SimTime,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            watchdog_interval: SimTime::from_millis(50),
            op_timeout: SimTime::from_secs(2),
            client_timeout: SimTime::from_millis(50),
            max_retries: 3,
            backoff_base: SimTime::from_millis(1),
            backoff_max: SimTime::from_millis(64),
        }
    }
}

/// Device-fault injection plus supervisor tuning for one run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probabilistic device-fault rates (see [`orion_gpu::fault`]).
    pub rates: FaultRates,
    /// Extra solo work carried by a stalled kernel.
    pub stall: SimTime,
    /// Targeted device faults.
    pub targets: Vec<(FaultTarget, FaultKind)>,
    /// Supervisor tuning.
    pub supervisor: SupervisorConfig,
}

impl FaultConfig {
    /// No device faults; default supervisor tuning.
    pub fn none() -> FaultConfig {
        FaultConfig {
            rates: FaultRates::default(),
            stall: SimTime::from_millis(50),
            targets: Vec::new(),
            supervisor: SupervisorConfig::default(),
        }
    }

    /// True when this config can never inject a device fault. (Client
    /// lifecycle faults live on [`crate::client::ClientSpec`] and are
    /// accounted separately.)
    pub fn is_none(&self) -> bool {
        self.rates.is_zero() && self.targets.is_empty()
    }

    /// Sets the probabilistic rates (builder style).
    pub fn with_rates(mut self, rates: FaultRates) -> FaultConfig {
        self.rates = rates;
        self
    }

    /// Adds a targeted device fault (builder style).
    pub fn with_target(mut self, target: FaultTarget, kind: FaultKind) -> FaultConfig {
        self.targets.push((target, kind));
        self
    }
}

/// How a client misbehaves, once, at a chosen point in its request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFaultKind {
    /// The client process dies: no further pushes, pending arrivals are
    /// abandoned, and its unfinished request is shed by the watchdog.
    Crash,
    /// The client stops launching ops but stays resident; its unfinished
    /// request is shed by the watchdog.
    Hang,
    /// The client's launch thread slows by the given factor from this point
    /// on (models a descheduled/starved client process).
    SlowPoll {
        /// Launch-cost multiplier (≥ 1).
        factor: u32,
    },
}

/// A client lifecycle fault: fires when the client is about to push op
/// `after_ops` of request `at_request`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientFault {
    /// What happens.
    pub kind: ClientFaultKind,
    /// Request ordinal (0-based, per client) at which the fault fires.
    pub at_request: u64,
    /// Op index within that request at which the fault fires.
    pub after_ops: u32,
}

/// Fault-and-recovery accounting for one run, surfaced in
/// [`crate::world::RunResult::robustness`]. All counters are zero for a
/// fault-free run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Sticky device faults observed.
    pub device_faults: u64,
    /// Device resets performed (sticky recovery + watchdog resets).
    pub device_resets: u64,
    /// Ops that completed with a `Faulted` status.
    pub op_faults: u64,
    /// Ops killed by a sticky fault or reset before finishing.
    pub ops_aborted: u64,
    /// Aborted/faulted ops deterministically resubmitted.
    pub resubmitted_ops: u64,
    /// Retry rounds granted to faulted requests.
    pub retries: u64,
    /// Best-effort culprit quarantines.
    pub quarantines: u64,
    /// Quarantined clients re-admitted after backoff.
    pub readmissions: u64,
    /// Requests shed (quarantine, retry budget exhausted, or dead client).
    pub shed_requests: u64,
    /// Client crash faults fired.
    pub client_crashes: u64,
    /// Client hang faults fired.
    pub client_hangs: u64,
    /// Client slow-poll faults fired.
    pub slow_polls: u64,
    /// Watchdog-detected op stalls (each forced a device reset).
    pub watchdog_stalls: u64,
    /// Kernel ops pushed with no offline profile entry (scheduled
    /// conservatively; see DESIGN.md §11).
    pub unknown_kernel_ops: u64,
}

impl RobustnessReport {
    /// True when anything fault-related happened at all.
    pub fn any(&self) -> bool {
        *self != RobustnessReport::default()
    }

    /// Field-wise accumulation: folds another run's counters into this one.
    /// The fleet control plane rolls every episode's report up into a single
    /// fleet-level [`RobustnessReport`] with this.
    pub fn merge(&mut self, other: &RobustnessReport) {
        self.device_faults += other.device_faults;
        self.device_resets += other.device_resets;
        self.op_faults += other.op_faults;
        self.ops_aborted += other.ops_aborted;
        self.resubmitted_ops += other.resubmitted_ops;
        self.retries += other.retries;
        self.quarantines += other.quarantines;
        self.readmissions += other.readmissions;
        self.shed_requests += other.shed_requests;
        self.client_crashes += other.client_crashes;
        self.client_hangs += other.client_hangs;
        self.slow_polls += other.slow_polls;
        self.watchdog_stalls += other.watchdog_stalls;
        self.unknown_kernel_ops += other.unknown_kernel_ops;
    }
}

/// Mutable supervisor state inside a running world: per-client quarantine
/// and liveness tracking plus per-request retry budgets.
#[derive(Debug)]
pub(crate) struct Supervisor {
    pub cfg: SupervisorConfig,
    /// Quarantine expiry per client (`None` = admitted).
    pub suspended_until: Vec<Option<SimTime>>,
    /// Quarantine count per client, driving exponential backoff.
    backoff_level: Vec<u32>,
    /// Retry rounds consumed per (client, request).
    retries: HashMap<(usize, u64), u32>,
    /// Last time each client pushed an op or had one complete.
    pub last_progress: Vec<SimTime>,
    /// Clients whose crash fault has fired.
    pub dead: Vec<bool>,
    /// Client lifecycle faults already fired (they fire once).
    pub fault_fired: Vec<bool>,
    pub report: RobustnessReport,
}

impl Supervisor {
    pub fn new(cfg: SupervisorConfig, n_clients: usize) -> Supervisor {
        Supervisor {
            cfg,
            suspended_until: vec![None; n_clients],
            backoff_level: vec![0; n_clients],
            retries: HashMap::new(),
            last_progress: vec![SimTime::ZERO; n_clients],
            dead: vec![false; n_clients],
            fault_fired: vec![false; n_clients],
            report: RobustnessReport::default(),
        }
    }

    /// Escalates the client's quarantine level and returns the backoff
    /// delay: `backoff_base * 2^level`, capped at `backoff_max`.
    pub fn next_backoff(&mut self, client: usize) -> SimTime {
        let level = self.backoff_level[client].min(31);
        self.backoff_level[client] = self.backoff_level[client].saturating_add(1);
        let delay = self.cfg.backoff_base * (1u64 << level);
        delay.min(self.cfg.backoff_max)
    }

    /// Consumes one retry round for the request; `true` while within the
    /// budget, `false` when the request must be shed instead.
    pub fn try_retry(&mut self, client: usize, request_id: u64) -> bool {
        let count = self.retries.entry((client, request_id)).or_insert(0);
        if *count >= self.cfg.max_retries {
            return false;
        }
        *count += 1;
        self.report.retries += 1;
        true
    }

    /// Drops the retry budget entry of a finished or shed request.
    pub fn forget_request(&mut self, client: usize, request_id: u64) {
        self.retries.remove(&(client, request_id));
    }

    pub fn is_suspended(&self, client: usize) -> bool {
        self.suspended_until[client].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_escalates_and_caps() {
        let cfg = SupervisorConfig {
            backoff_base: SimTime::from_millis(1),
            backoff_max: SimTime::from_millis(4),
            ..SupervisorConfig::default()
        };
        let mut s = Supervisor::new(cfg, 2);
        assert_eq!(s.next_backoff(0), SimTime::from_millis(1));
        assert_eq!(s.next_backoff(0), SimTime::from_millis(2));
        assert_eq!(s.next_backoff(0), SimTime::from_millis(4));
        assert_eq!(s.next_backoff(0), SimTime::from_millis(4), "capped");
        // Per-client levels are independent.
        assert_eq!(s.next_backoff(1), SimTime::from_millis(1));
    }

    #[test]
    fn retry_budget_is_per_request() {
        let mut s = Supervisor::new(SupervisorConfig::default(), 1);
        for _ in 0..3 {
            assert!(s.try_retry(0, 7));
        }
        assert!(!s.try_retry(0, 7), "budget exhausted");
        assert!(s.try_retry(0, 8), "other requests unaffected");
        s.forget_request(0, 7);
        assert!(s.try_retry(0, 7), "budget resets after forget");
        assert_eq!(s.report.retries, 5);
    }

    #[test]
    fn report_any_reflects_counters() {
        let mut r = RobustnessReport::default();
        assert!(!r.any());
        r.unknown_kernel_ops = 1;
        assert!(r.any());
    }

    #[test]
    fn report_merge_accumulates_every_counter() {
        let mut a = RobustnessReport::default();
        let b = RobustnessReport {
            device_faults: 1,
            device_resets: 2,
            op_faults: 3,
            ops_aborted: 4,
            resubmitted_ops: 5,
            retries: 6,
            quarantines: 7,
            readmissions: 8,
            shed_requests: 9,
            client_crashes: 10,
            client_hangs: 11,
            slow_polls: 12,
            watchdog_stalls: 13,
            unknown_kernel_ops: 14,
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.device_faults, 2);
        assert_eq!(a.unknown_kernel_ops, 28);
        assert_eq!(a.shed_requests, 18);
        let mut zero = RobustnessReport::default();
        zero.merge(&RobustnessReport::default());
        assert!(!zero.any(), "merging zeros stays zero");
    }

    /// Property (randomized over base/max/strike count): the backoff sequence
    /// is monotone non-decreasing, never exceeds `backoff_max`, and never
    /// panics on overflow — even at strike counts far past the doubling range
    /// (SimTime multiplication saturates, and the shift exponent is clamped).
    #[test]
    fn prop_backoff_monotone_capped_no_overflow() {
        use orion_desim::rng::{cell_seed, DetRng};
        for case in 0..64u64 {
            let mut rng = DetRng::new(cell_seed(0xBAC0FF, case));
            // Bases up to ~18 s and occasionally enormous (near-saturating)
            // values; max always >= base.
            let base_ns = 1 + rng.uniform_u64(18_000_000_000);
            let base = if case % 7 == 0 {
                SimTime::from_secs(u64::MAX / 2_000_000_000) // ~9e9 s: forces saturation
            } else {
                SimTime::from_nanos(base_ns)
            };
            let max = base * (1 + rng.uniform_u64(1 << 12));
            let cfg = SupervisorConfig {
                backoff_base: base,
                backoff_max: max,
                ..SupervisorConfig::default()
            };
            let mut s = Supervisor::new(cfg, 1);
            let strikes = 40 + rng.uniform_u64(200);
            let mut prev = SimTime::ZERO;
            for i in 0..strikes {
                let d = s.next_backoff(0);
                assert!(d >= prev, "case {case}: strike {i} shrank {prev:?} -> {d:?}");
                assert!(d <= max, "case {case}: strike {i} exceeded cap");
                assert!(d >= base.min(max), "case {case}: below base");
                prev = d;
            }
            // Far past the doubling range the cap must have been reached.
            assert_eq!(prev, max, "case {case}: cap never reached");
        }
    }

    /// Property (randomized over budget): `try_retry` grants exactly
    /// `max_retries` rounds per request, then refuses forever, and the report
    /// counts exactly the granted rounds.
    #[test]
    fn prop_retry_budget_exhausts_exactly_at_bound() {
        use orion_desim::rng::{cell_seed, DetRng};
        for case in 0..64u64 {
            let mut rng = DetRng::new(cell_seed(0x2E72, case));
            let budget = rng.uniform_u64(12) as u32;
            let cfg = SupervisorConfig {
                max_retries: budget,
                ..SupervisorConfig::default()
            };
            let mut s = Supervisor::new(cfg, 2);
            let request = rng.uniform_u64(1 << 40);
            let mut granted = 0u64;
            for _ in 0..(budget as u64 + 5) {
                if s.try_retry(1, request) {
                    granted += 1;
                }
            }
            assert_eq!(granted, budget as u64, "case {case}: wrong budget");
            assert!(!s.try_retry(1, request), "case {case}: budget leaked");
            assert_eq!(s.report.retries, granted, "case {case}: report drifted");
            // Forgetting the request restores the full budget.
            s.forget_request(1, request);
            let regranted = (0..budget).filter(|_| s.try_retry(1, request)).count() as u32;
            assert_eq!(regranted, budget, "case {case}: forget did not reset");
        }
    }

    #[test]
    fn fault_config_none_detects_rates_and_targets() {
        assert!(FaultConfig::none().is_none());
        let with_rates = FaultConfig::none().with_rates(FaultRates {
            kernel_fault: 0.1,
            ..FaultRates::default()
        });
        assert!(!with_rates.is_none());
        let with_target = FaultConfig::none()
            .with_target(FaultTarget::Ordinal(3), FaultKind::CopyFail);
        assert!(!with_target.is_none());
    }
}
