//! The policy-state oracle: a shadow invariant checker for scheduler
//! bookkeeping.
//!
//! Every policy in this reproduction keeps a *mirror* of device state — the
//! outstanding-kernel sets and `be_duration` counter behind Orion's
//! `DUR_THRESHOLD` throttle (paper §5.1.2, Listing 1), the `hp_copies` gate
//! of the §5.1.3 PCIe extension, REEF's queue-depth bound, Tick-Tock's
//! barrier sets. Scheduling decisions are only as correct as those mirrors,
//! and mirror bugs are silent: a counter that drifts from the device does
//! not crash, it just stops gating (or gates forever), and the damage shows
//! up as unexplained tail latency three experiments later.
//!
//! The [`Validator`] closes that loop. It replays the GPU engine's
//! ground-truth event log ([`EngineEvent`], enabled with
//! [`GpuEngine::enable_event_log`]) to reconstruct the true in-flight
//! operation set — who submitted each op, on which stream, blocking or not —
//! joins it with the world's routing records, and after every
//! `schedule()` / `on_completions()` round cross-checks the policy's own
//! claims (exposed via [`Policy::debug_state`]) against the truth:
//!
//! * **outstanding-set equality** — the policy's best-effort / high-priority
//!   outstanding kernel sets equal the true in-flight sets, op id by op id;
//! * **`be_duration` bounds** — the Listing 1 counter is at least the summed
//!   expected duration of truly outstanding best-effort kernels (it also
//!   retains already-finished work until its lazy reset, so it is a lower
//!   bound, not an equality) and overshoots `DUR_THRESHOLD` by at most one
//!   kernel;
//! * **`hp_copies`** — the PCIe gate counter equals the number of truly
//!   in-flight blocking high-priority copies;
//! * **BE-never-on-HP-stream** — no best-effort client op is ever submitted
//!   on the claimed high-priority stream;
//! * **quiescence** — whenever the device fully drains, every claimed
//!   outstanding set and gate counter is empty/zero (`be_duration` is exempt
//!   by design: Listing 1 resets it lazily, on the next over-threshold
//!   check, so a drained device may retain a stale-but-bounded value);
//! * **truth integrity** — engine submissions match routing records
//!   one-to-one, no op id completes twice or appears while live, and the
//!   engine reports idle exactly when the true in-flight set is empty.
//!
//! Violations carry the full provenance of the ops involved (client, stream,
//! kind, submission time) and are returned in
//! [`crate::world::RunResult::validation`]; in [`ValidateMode::Strict`] the
//! first violation panics with that provenance, which is what test
//! configurations use. The oracle never influences the simulation itself:
//! enabling it changes no schedule, timestamp, or result.
//!
//! [`EngineEvent`]: orion_gpu::engine::EngineEvent
//! [`GpuEngine::enable_event_log`]: orion_gpu::engine::GpuEngine::enable_event_log
//! [`Policy::debug_state`]: crate::policy::Policy::debug_state

use std::collections::HashMap;
use std::fmt;

use orion_desim::time::SimTime;
use orion_gpu::engine::{EngineEvent, EngineEventKind, OpId};
use orion_gpu::stream::StreamId;

use crate::client::ClientPriority;
use crate::policy::{PolicyDebugState, Routed};

/// When (and how loudly) the policy-state oracle runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidateMode {
    /// Oracle disabled: the engine event log is never enabled and the run
    /// pays zero bookkeeping cost. Release benches use this.
    #[default]
    Off,
    /// Oracle enabled; violations are recorded into
    /// [`crate::world::RunResult::validation`] and the run continues. Used
    /// by harnesses that *expect* violations (drift-injection tests).
    Record,
    /// Oracle enabled; the first violation panics with full provenance.
    /// Test configurations default to this.
    Strict,
}

impl ValidateMode {
    /// True when the oracle runs at all.
    pub fn enabled(self) -> bool {
        self != ValidateMode::Off
    }
}

/// Ground truth about one in-flight operation, reconstructed from the
/// engine's event log and the world's routing records. This is the
/// provenance attached to violations.
#[derive(Debug, Clone)]
pub struct OpProvenance {
    /// Engine op id.
    pub op: OpId,
    /// Submitting client index.
    pub client: usize,
    /// Submitting client's scheduling class.
    pub priority: ClientPriority,
    /// Stream the op was submitted on.
    pub stream: StreamId,
    /// Engine op-kind label (`"kernel"`, `"memcpy_h2d"`, ...).
    pub label: &'static str,
    /// True for kernels.
    pub is_kernel: bool,
    /// True for synchronous (client-blocking) copies.
    pub blocking: bool,
    /// Profiled duration the scheduler budgeted with (kernels).
    pub expected_dur: SimTime,
    /// Device time of submission.
    pub submitted_at: SimTime,
    /// Client-side request the op belongs to.
    pub request_id: u64,
    /// Position of the op within its request.
    pub op_seq: u32,
}

impl fmt::Display for OpProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op {} ({}{}, client {} {:?}, stream {}, submitted {}, expected {})",
            self.op.0,
            self.label,
            if self.blocking { ", blocking" } else { "" },
            self.client,
            self.priority,
            self.stream.0,
            self.submitted_at,
            self.expected_dur,
        )
    }
}

/// One invariant violation: which policy, which invariant, when, and the op
/// provenance that proves it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulated time of the failing check round.
    pub at: SimTime,
    /// Policy under check.
    pub policy: &'static str,
    /// Stable invariant name (e.g. `"hp-copies"`, `"be-outstanding-set"`).
    pub invariant: &'static str,
    /// Human-readable account, including the provenance of involved ops.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} invariant `{}` violated: {}",
            self.at, self.policy, self.invariant, self.detail
        )
    }
}

/// Outcome of a validated run.
#[derive(Debug, Default)]
pub struct ValidationReport {
    /// All recorded violations, in detection order (capped; see `dropped`).
    pub violations: Vec<Violation>,
    /// Violations discarded after the cap (a systemic bug fires every
    /// round; keeping every instance would bloat long runs).
    pub dropped: u64,
    /// Check rounds executed.
    pub rounds: u64,
    /// Rounds observed with a fully drained device, where the quiescence
    /// invariant was checked.
    pub quiescence_checks: u64,
    /// Total ops tracked through their full submit → complete lifecycle.
    pub ops_tracked: u64,
    /// Device resets observed in the engine event log.
    pub device_resets: u64,
    /// Ops that finished with an injected-fault status.
    pub ops_faulted: u64,
    /// Ops killed by a sticky fault or device reset before finishing.
    pub ops_aborted: u64,
    /// Online-profiler admissions cross-checked against true durations.
    pub online_admissions: u64,
}

impl ValidationReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// True when some violation of the named invariant was recorded.
    pub fn violated(&self, invariant: &str) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }
}

/// Routing metadata staged by the world for ops it submitted, joined with
/// the engine's `Submitted` event to form an [`OpProvenance`].
#[derive(Debug, Clone, Copy)]
struct RouteMeta {
    client: usize,
    priority: ClientPriority,
    expected_dur: SimTime,
    request_id: u64,
    op_seq: u32,
}

/// Cap on recorded violations (see [`ValidationReport::dropped`]).
const MAX_VIOLATIONS: usize = 64;

/// The shadow invariant checker. See the module docs for the invariant
/// catalogue; drive it with [`Validator::observe_submission`] /
/// [`Validator::observe_engine_events`] / [`Validator::check_round`].
#[derive(Debug, Default)]
pub struct Validator {
    strict: bool,
    /// Routing metadata awaiting its engine `Submitted` event.
    pending_meta: HashMap<u64, RouteMeta>,
    /// Ground truth: ops submitted to the device and not yet completed.
    inflight: HashMap<u64, OpProvenance>,
    /// Largest expected duration of any best-effort kernel seen, bounding
    /// the one-kernel overshoot `be_duration` may legally accumulate.
    max_be_kernel_dur: SimTime,
    /// No-duplicate tracking across resets: `(client, request_id, op_seq)`
    /// of every live op. A second live submission of the same logical op is
    /// a duplicated resubmission.
    live_keys: HashMap<(usize, u64, u32), u64>,
    /// Faulted/aborted ops awaiting a recovery claim (requeue or shed) from
    /// the supervisor this round. Leftovers at `check_round` are lost ops.
    aborted_unclaimed: Vec<(usize, u64, u32, u64)>,
    report: ValidationReport,
}

impl Validator {
    /// Creates an oracle. `strict` panics on the first violation.
    pub fn new(strict: bool) -> Self {
        Validator {
            strict,
            ..Validator::default()
        }
    }

    /// Consumes the oracle, yielding its report.
    pub fn into_report(self) -> ValidationReport {
        self.report
    }

    /// Stages the routing record of an op the world just submitted. Must be
    /// called before the engine events of the same round are observed.
    pub fn observe_submission(&mut self, routed: &Routed, priority: ClientPriority) {
        self.pending_meta.insert(
            routed.op.0,
            RouteMeta {
                client: routed.client,
                priority,
                expected_dur: routed.expected_dur,
                request_id: routed.request_id,
                op_seq: routed.op_seq,
            },
        );
    }

    /// Replays a batch of engine ground-truth events (device-time order),
    /// maintaining the true in-flight set.
    pub fn observe_engine_events(&mut self, events: &[EngineEvent], policy: &'static str) {
        for ev in events {
            match &ev.kind {
                EngineEventKind::Submitted {
                    label,
                    is_kernel,
                    blocking,
                } => {
                    let Some(meta) = self.pending_meta.remove(&ev.op.0) else {
                        self.violation(
                            ev.at,
                            policy,
                            "unknown-submission",
                            format!(
                                "engine logged op {} ({label}) on stream {} with no \
                                 routing record — submitted outside SchedCtx::submit_head?",
                                ev.op.0, ev.stream.0
                            ),
                        );
                        continue;
                    };
                    let prov = OpProvenance {
                        op: ev.op,
                        client: meta.client,
                        priority: meta.priority,
                        stream: ev.stream,
                        label,
                        is_kernel: *is_kernel,
                        blocking: *blocking,
                        expected_dur: meta.expected_dur,
                        submitted_at: ev.at,
                        request_id: meta.request_id,
                        op_seq: meta.op_seq,
                    };
                    if *is_kernel && meta.priority == ClientPriority::BestEffort {
                        self.max_be_kernel_dur = self.max_be_kernel_dur.max(meta.expected_dur);
                    }
                    let key = (meta.client, meta.request_id, meta.op_seq);
                    if let Some(prior) = self.live_keys.insert(key, ev.op.0) {
                        self.violation(
                            ev.at,
                            policy,
                            "op-duplicated",
                            format!(
                                "client {} request {} op_seq {} submitted as op {} while already \
                                 live as op {prior} — duplicated across a recovery?",
                                meta.client, meta.request_id, meta.op_seq, ev.op.0
                            ),
                        );
                    }
                    if let Some(live) = self.inflight.insert(ev.op.0, prov) {
                        self.violation(
                            ev.at,
                            policy,
                            "duplicate-op-id",
                            format!("op id {} resubmitted while live: {live}", ev.op.0),
                        );
                    }
                }
                EngineEventKind::Completed => {
                    match self.inflight.remove(&ev.op.0) {
                        None => self.violation(
                            ev.at,
                            policy,
                            "unknown-completion",
                            format!("engine completed op {} which was not in flight", ev.op.0),
                        ),
                        Some(p) => {
                            self.live_keys.remove(&(p.client, p.request_id, p.op_seq));
                            self.report.ops_tracked += 1;
                        }
                    }
                }
                EngineEventKind::Faulted | EngineEventKind::Aborted => {
                    let faulted = ev.kind == EngineEventKind::Faulted;
                    match self.inflight.remove(&ev.op.0) {
                        None => self.violation(
                            ev.at,
                            policy,
                            "unknown-completion",
                            format!(
                                "engine {} op {} which was not in flight",
                                if faulted { "faulted" } else { "aborted" },
                                ev.op.0
                            ),
                        ),
                        Some(p) => {
                            self.live_keys.remove(&(p.client, p.request_id, p.op_seq));
                            if faulted {
                                self.report.ops_faulted += 1;
                            } else {
                                self.report.ops_aborted += 1;
                            }
                            // The supervisor must requeue or shed this op
                            // before the round's check, else it is lost.
                            self.aborted_unclaimed
                                .push((p.client, p.request_id, p.op_seq, ev.op.0));
                        }
                    }
                }
                EngineEventKind::DeviceReset => {
                    self.report.device_resets += 1;
                    // Every live op must have been aborted (and logged as
                    // such) before the reset event.
                    if !self.inflight.is_empty() {
                        let residue = self.sample_inflight(|_| true);
                        self.inflight.clear();
                        self.live_keys.clear();
                        self.violation(
                            ev.at,
                            policy,
                            "post-reset-residue",
                            format!("ops survived a device reset without aborting: {residue}"),
                        );
                    }
                }
            }
        }
    }

    /// Reports the supervisor's recovery actions for this round so the
    /// oracle can discharge faulted/aborted ops: `requeued` carries
    /// `(client, request_id, op_seq)` of ops deterministically resubmitted,
    /// `shed` carries `(client, request_id)` of requests dropped whole. A
    /// requeue with no matching aborted op is phantom; aborted ops neither
    /// requeued nor shed are flagged as lost in the next `check_round`.
    pub fn observe_recovery(
        &mut self,
        requeued: &[(usize, u64, u32)],
        shed: &[(usize, u64)],
        policy: &'static str,
        now: SimTime,
    ) {
        for &(client, request_id, op_seq) in requeued {
            let pos = self
                .aborted_unclaimed
                .iter()
                .position(|&(c, r, s, _)| (c, r, s) == (client, request_id, op_seq));
            match pos {
                Some(i) => {
                    self.aborted_unclaimed.swap_remove(i);
                }
                None => self.violation(
                    now,
                    policy,
                    "phantom-requeue",
                    format!(
                        "supervisor requeued client {client} request {request_id} op_seq \
                         {op_seq}, but no such op faulted or aborted"
                    ),
                ),
            }
        }
        for &(client, request_id) in shed {
            self.aborted_unclaimed
                .retain(|&(c, r, _, _)| (c, r) != (client, request_id));
        }
    }

    /// Cross-checks one online-profiler admission against ground truth: the
    /// learned solo duration must sit within `tolerance` (relative) of some
    /// plausible true solo duration. `true_durs` carries every candidate
    /// regime — a drifting client's pre- *and* post-drift durations — and
    /// the *minimum* relative error counts, because a kernel submitted
    /// before the drift boundary may legitimately complete (and be learned)
    /// after it; demanding a match against only the at-admission regime
    /// would flag that race as a violation.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_online_admission(
        &mut self,
        at: SimTime,
        policy: &'static str,
        client: usize,
        name: &str,
        learned: SimTime,
        true_durs: &[SimTime],
        tolerance: f64,
    ) {
        self.report.online_admissions += 1;
        let learned_ns = learned.as_nanos() as f64;
        let err = true_durs
            .iter()
            .filter(|d| !d.is_zero())
            .map(|d| (learned_ns - d.as_nanos() as f64).abs() / d.as_nanos() as f64)
            .fold(f64::INFINITY, f64::min);
        if err.is_finite() && err > tolerance {
            self.violation(
                at,
                policy,
                "online-admission-error",
                format!(
                    "client {client} kernel `{name}` admitted with learned solo duration \
                     {learned}, relative error {err:.3} vs true durations {true_durs:?} \
                     (tolerance {tolerance})"
                ),
            );
        }
    }

    /// Cross-checks the policy's claimed bookkeeping against ground truth.
    /// Call after every `schedule()` / `on_completions()` round, once the
    /// round's submissions and engine events have been observed.
    pub fn check_round(
        &mut self,
        now: SimTime,
        policy: &'static str,
        state: &PolicyDebugState,
        engine_idle: bool,
    ) {
        self.report.rounds += 1;

        // Truth integrity: every routing record must have produced an engine
        // submission by the end of the round.
        if !self.pending_meta.is_empty() {
            let ids: Vec<u64> = self.pending_meta.keys().copied().collect();
            self.pending_meta.clear();
            self.violation(
                now,
                policy,
                "missing-engine-event",
                format!("routing records without engine submissions: ops {ids:?}"),
            );
        }
        // No-lost-op: every faulted/aborted op must have been requeued or
        // shed by the supervisor within the same round.
        if !self.aborted_unclaimed.is_empty() {
            let lost: Vec<String> = self
                .aborted_unclaimed
                .drain(..)
                .map(|(c, r, s, op)| format!("client {c} request {r} op_seq {s} (op {op})"))
                .collect();
            self.violation(
                now,
                policy,
                "op-lost",
                format!(
                    "faulted/aborted ops neither requeued nor shed: {}",
                    lost.join(", ")
                ),
            );
        }
        // Truth integrity: the engine is idle exactly when nothing is truly
        // in flight (queued ops count as in flight).
        if engine_idle != self.inflight.is_empty() {
            self.violation(
                now,
                policy,
                "engine-sync",
                format!(
                    "engine fully_idle = {engine_idle} but true in-flight set has {} ops: {}",
                    self.inflight.len(),
                    self.sample_inflight(|_| true),
                ),
            );
        }

        // BE-never-on-HP-stream (paper §5: the HP stream is dedicated).
        if let Some(hp_stream) = state.hp_stream {
            let offenders = self.sample_inflight(|p| {
                p.priority == ClientPriority::BestEffort && p.stream == hp_stream
            });
            if !offenders.is_empty() {
                self.violation(
                    now,
                    policy,
                    "be-on-hp-stream",
                    format!("best-effort ops on HP stream {}: {offenders}", hp_stream.0),
                );
            }
        }

        // Outstanding-set equality for the kernel mirrors.
        if let Some(claimed) = &state.be_kernels {
            self.check_set_equality(now, policy, "be-outstanding-set", claimed, |p| {
                p.priority == ClientPriority::BestEffort && p.is_kernel
            });
        }
        if let Some(claimed) = &state.hp_kernels {
            self.check_set_equality(now, policy, "hp-outstanding-set", claimed, |p| {
                p.priority == ClientPriority::HighPriority && p.is_kernel
            });
        }

        // PCIe gate: claimed blocking-HP-copy count vs truth (§5.1.3).
        if let Some(claimed) = state.hp_copies {
            let truth: Vec<&OpProvenance> = self
                .inflight
                .values()
                .filter(|p| {
                    p.priority == ClientPriority::HighPriority && !p.is_kernel && p.blocking
                })
                .collect();
            if claimed != truth.len() {
                let detail = format!(
                    "policy counts {claimed} in-flight blocking HP copies, device has {}: {}",
                    truth.len(),
                    join(truth.iter().map(|p| p.to_string())),
                );
                self.violation(now, policy, "hp-copies", detail);
            }
        }

        // Listing 1 duration counter: lower-bounded by the truly outstanding
        // expected work, upper-bounded by DUR_THRESHOLD plus one kernel.
        if let Some(be_duration) = state.be_duration {
            let outstanding_sum = self
                .inflight
                .values()
                .filter(|p| p.priority == ClientPriority::BestEffort && p.is_kernel)
                .fold(SimTime::ZERO, |acc, p| acc + p.expected_dur);
            if be_duration < outstanding_sum {
                self.violation(
                    now,
                    policy,
                    "be-duration-lower-bound",
                    format!(
                        "be_duration = {be_duration} < {outstanding_sum}, the summed expected \
                         duration of truly outstanding BE kernels: {}",
                        self.sample_inflight(|p| {
                            p.priority == ClientPriority::BestEffort && p.is_kernel
                        }),
                    ),
                );
            }
            if let Some(threshold) = state.dur_threshold {
                if threshold < SimTime::MAX {
                    let bound = threshold + self.max_be_kernel_dur;
                    if be_duration > bound {
                        self.violation(
                            now,
                            policy,
                            "be-duration-overshoot",
                            format!(
                                "be_duration = {be_duration} exceeds DUR_THRESHOLD {threshold} \
                                 by more than the largest BE kernel ({}); bound {bound}",
                                self.max_be_kernel_dur
                            ),
                        );
                    }
                }
            }
        }

        // REEF: outstanding best-effort ops of any kind, as a count.
        if let Some(claimed) = state.be_inflight {
            let truth = self
                .inflight
                .values()
                .filter(|p| p.priority == ClientPriority::BestEffort)
                .count();
            if claimed != truth {
                self.violation(
                    now,
                    policy,
                    "be-inflight-count",
                    format!(
                        "policy counts {claimed} outstanding BE ops, device has {truth}: {}",
                        self.sample_inflight(|p| p.priority == ClientPriority::BestEffort),
                    ),
                );
            }
        }

        // Tick-Tock: per-client outstanding sets.
        if let Some(per_client) = &state.per_client {
            for (client, claimed) in per_client.iter().enumerate() {
                self.check_set_equality(now, policy, "per-client-set", claimed, |p| {
                    p.client == client
                });
            }
        }

        // Temporal sharing: all in-flight work belongs to the claimed owner.
        if let Some(owner) = state.exclusive_owner {
            let foreign = self.sample_inflight(|p| Some(p.client) != owner.map(|(c, _)| c));
            if !foreign.is_empty() {
                self.violation(
                    now,
                    policy,
                    "exclusive-owner",
                    format!("device owner is {owner:?} but other work is in flight: {foreign}"),
                );
            }
        }

        // Quiescence: a drained device means every mirror is empty/zero
        // (be_duration exempt — Listing 1 resets it lazily).
        if engine_idle && self.inflight.is_empty() {
            self.report.quiescence_checks += 1;
            let mut stale = Vec::new();
            match &state.be_kernels {
                Some(s) if !s.is_empty() => stale.push(format!("be_outstanding {s:?}")),
                _ => {}
            }
            match &state.hp_kernels {
                Some(s) if !s.is_empty() => stale.push(format!("hp_outstanding {s:?}")),
                _ => {}
            }
            match state.hp_copies {
                Some(n) if n > 0 => stale.push(format!("hp_copies {n}")),
                _ => {}
            }
            match state.be_inflight {
                Some(n) if n > 0 => stale.push(format!("be_inflight {n}")),
                _ => {}
            }
            if let Some(per_client) = &state.per_client {
                for (client, s) in per_client.iter().enumerate() {
                    if !s.is_empty() {
                        stale.push(format!("client {client} outstanding {s:?}"));
                    }
                }
            }
            if !stale.is_empty() {
                self.violation(
                    now,
                    policy,
                    "quiescence",
                    format!("device drained but mirrors retain: {}", stale.join("; ")),
                );
            }
        }
    }

    /// Set-equality check between a claimed op-id list and the in-flight ops
    /// matching `truth_filter`, reporting both directions of the symmetric
    /// difference with provenance.
    fn check_set_equality(
        &mut self,
        now: SimTime,
        policy: &'static str,
        invariant: &'static str,
        claimed: &[OpId],
        truth_filter: impl Fn(&OpProvenance) -> bool,
    ) {
        let mut missing: Vec<String> = Vec::new(); // in truth, not claimed
        for p in self.inflight.values().filter(|p| truth_filter(p)) {
            if !claimed.contains(&p.op) {
                missing.push(p.to_string());
            }
        }
        let mut phantom: Vec<u64> = Vec::new(); // claimed, not in truth
        for op in claimed {
            let truly = self.inflight.get(&op.0).is_some_and(&truth_filter);
            if !truly {
                phantom.push(op.0);
            }
        }
        if missing.is_empty() && phantom.is_empty() {
            return;
        }
        missing.sort();
        phantom.sort_unstable();
        self.violation(
            now,
            policy,
            invariant,
            format!(
                "claimed set diverges from device: missing [{}], phantom op ids {phantom:?}",
                missing.join(", "),
            ),
        );
    }

    /// Provenance of in-flight ops matching `filter`, formatted for details.
    fn sample_inflight(&self, filter: impl Fn(&OpProvenance) -> bool) -> String {
        let mut items: Vec<String> = self
            .inflight
            .values()
            .filter(|p| filter(p))
            .map(|p| p.to_string())
            .collect();
        items.sort();
        join(items.into_iter())
    }

    fn violation(&mut self, at: SimTime, policy: &'static str, invariant: &'static str, detail: String) {
        let v = Violation {
            at,
            policy,
            invariant,
            detail,
        };
        if self.strict {
            panic!("policy-state oracle: {v}");
        }
        if self.report.violations.len() < MAX_VIOLATIONS {
            self.report.violations.push(v);
        } else {
            self.report.dropped += 1;
        }
    }
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_gpu::engine::EngineEventKind as K;
    use orion_gpu::kernel::ResourceProfile;
    use orion_workloads::model::Phase;

    fn routed(op: u64, client: usize, dur_us: u64) -> Routed {
        Routed {
            op: OpId(op),
            client,
            request_id: 0,
            op_seq: 0,
            last_of_request: false,
            is_kernel: true,
            expected_dur: SimTime::from_micros(dur_us),
            profile: ResourceProfile::Unknown,
            sm_needed: 1,
            phase: Phase::Forward,
            profiled: true,
        }
    }

    fn submitted(op: u64, stream: u32, is_kernel: bool, blocking: bool) -> EngineEvent {
        EngineEvent {
            op: OpId(op),
            stream: StreamId(stream),
            at: SimTime::ZERO,
            kind: K::Submitted {
                label: if is_kernel { "kernel" } else { "memcpy_h2d" },
                is_kernel,
                blocking,
            },
        }
    }

    fn completed(op: u64) -> EngineEvent {
        EngineEvent {
            op: OpId(op),
            stream: StreamId(0),
            at: SimTime::from_micros(5),
            kind: K::Completed,
        }
    }

    #[test]
    fn tracks_lifecycle_and_catches_phantom_claims() {
        let mut v = Validator::new(false);
        v.observe_submission(&routed(3, 1, 100), ClientPriority::BestEffort);
        v.observe_engine_events(&[submitted(3, 1, true, false)], "T");

        // Honest claim: clean round.
        let mut state = PolicyDebugState {
            be_kernels: Some(vec![OpId(3)]),
            ..PolicyDebugState::default()
        };
        v.check_round(SimTime::ZERO, "T", &state, false);
        assert!(v.report.violations.is_empty());

        // Phantom op id + missing the real one.
        state.be_kernels = Some(vec![OpId(9)]);
        v.check_round(SimTime::ZERO, "T", &state, false);
        assert!(v.report.violated("be-outstanding-set"));

        // After completion, claiming it again is phantom; empty is clean.
        v.observe_engine_events(&[completed(3)], "T");
        let clean = PolicyDebugState {
            be_kernels: Some(Vec::new()),
            ..PolicyDebugState::default()
        };
        let before = v.report.violations.len();
        v.check_round(SimTime::from_micros(5), "T", &clean, true);
        assert_eq!(v.report.violations.len(), before);
        let report = v.into_report();
        assert_eq!(report.ops_tracked, 1);
        assert!(report.quiescence_checks > 0);
    }

    #[test]
    fn hp_copies_mismatch_is_reported_with_provenance() {
        let mut v = Validator::new(false);
        let mut r = routed(7, 0, 0);
        r.is_kernel = false;
        v.observe_submission(&r, ClientPriority::HighPriority);
        v.observe_engine_events(&[submitted(7, 0, false, true)], "Orion");
        let state = PolicyDebugState {
            hp_copies: Some(0), // device truly has one blocking HP copy
            ..PolicyDebugState::default()
        };
        v.check_round(SimTime::ZERO, "Orion", &state, false);
        let report = v.into_report();
        assert!(report.violated("hp-copies"));
        let detail = &report.violations[0].detail;
        assert!(detail.contains("op 7"), "provenance missing: {detail}");
        assert!(detail.contains("blocking"), "provenance missing: {detail}");
    }

    #[test]
    fn be_on_hp_stream_detected() {
        let mut v = Validator::new(false);
        v.observe_submission(&routed(1, 2, 10), ClientPriority::BestEffort);
        v.observe_engine_events(&[submitted(1, 0, true, false)], "Orion");
        let state = PolicyDebugState {
            hp_stream: Some(StreamId(0)),
            ..PolicyDebugState::default()
        };
        v.check_round(SimTime::ZERO, "Orion", &state, false);
        assert!(v.into_report().violated("be-on-hp-stream"));
    }

    #[test]
    fn quiescence_flags_stale_counters() {
        let mut v = Validator::new(false);
        let state = PolicyDebugState {
            hp_copies: Some(2),
            ..PolicyDebugState::default()
        };
        // Device idle, nothing in flight, yet the gate counter is stuck.
        v.check_round(SimTime::ZERO, "Orion", &state, true);
        let report = v.into_report();
        // The non-quiescence hp-copies equality check fires too; the point
        // here is the dedicated drained-device invariant.
        assert!(report.violated("quiescence"));
    }

    #[test]
    #[should_panic(expected = "policy-state oracle")]
    fn strict_mode_panics_on_first_violation() {
        let mut v = Validator::new(true);
        let state = PolicyDebugState {
            hp_copies: Some(1),
            ..PolicyDebugState::default()
        };
        v.check_round(SimTime::ZERO, "Orion", &state, true);
    }

    #[test]
    fn violation_cap_counts_drops() {
        let mut v = Validator::new(false);
        let state = PolicyDebugState {
            hp_copies: Some(1),
            ..PolicyDebugState::default()
        };
        for _ in 0..(MAX_VIOLATIONS + 10) {
            v.check_round(SimTime::ZERO, "Orion", &state, false);
        }
        let report = v.into_report();
        assert_eq!(report.violations.len(), MAX_VIOLATIONS);
        assert!(report.dropped > 0);
        assert!(!report.is_clean());
    }

    fn ended(op: u64, kind: K) -> EngineEvent {
        EngineEvent {
            op: OpId(op),
            stream: StreamId(0),
            at: SimTime::from_micros(5),
            kind,
        }
    }

    #[test]
    fn aborted_op_without_recovery_is_lost() {
        let mut v = Validator::new(false);
        v.observe_submission(&routed(3, 1, 100), ClientPriority::BestEffort);
        v.observe_engine_events(&[submitted(3, 1, true, false)], "T");
        v.observe_engine_events(&[ended(3, K::Aborted)], "T");
        v.check_round(SimTime::from_micros(5), "T", &PolicyDebugState::default(), true);
        let report = v.into_report();
        assert!(report.violated("op-lost"));
        assert_eq!(report.ops_aborted, 1);
    }

    #[test]
    fn requeued_and_shed_ops_are_discharged() {
        let mut v = Validator::new(false);
        let mut a = routed(3, 1, 100);
        a.request_id = 7;
        a.op_seq = 2;
        let mut b = routed(4, 2, 100);
        b.request_id = 9;
        v.observe_submission(&a, ClientPriority::HighPriority);
        v.observe_submission(&b, ClientPriority::BestEffort);
        v.observe_engine_events(
            &[submitted(3, 0, true, false), submitted(4, 1, true, false)],
            "T",
        );
        v.observe_engine_events(&[ended(3, K::Faulted), ended(4, K::Aborted)], "T");
        // HP op requeued, BE request shed whole.
        v.observe_recovery(&[(1, 7, 2)], &[(2, 9)], "T", SimTime::from_micros(5));
        v.check_round(SimTime::from_micros(5), "T", &PolicyDebugState::default(), true);
        let report = v.into_report();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.ops_faulted, 1);
        assert_eq!(report.ops_aborted, 1);
    }

    #[test]
    fn phantom_requeue_is_flagged() {
        let mut v = Validator::new(false);
        v.observe_recovery(&[(0, 1, 0)], &[], "T", SimTime::ZERO);
        assert!(v.into_report().violated("phantom-requeue"));
    }

    #[test]
    fn duplicated_logical_op_is_flagged() {
        let mut v = Validator::new(false);
        // The same (client, request, op_seq) submitted twice while live.
        v.observe_submission(&routed(3, 1, 100), ClientPriority::BestEffort);
        v.observe_engine_events(&[submitted(3, 1, true, false)], "T");
        v.observe_submission(&routed(8, 1, 100), ClientPriority::BestEffort);
        v.observe_engine_events(&[submitted(8, 1, true, false)], "T");
        assert!(v.into_report().violated("op-duplicated"));
    }

    #[test]
    fn reset_with_live_ops_is_residue() {
        let mut v = Validator::new(false);
        v.observe_submission(&routed(3, 1, 100), ClientPriority::BestEffort);
        v.observe_engine_events(&[submitted(3, 1, true, false)], "T");
        v.observe_engine_events(&[ended(u64::MAX, K::DeviceReset)], "T");
        let report = v.into_report();
        assert!(report.violated("post-reset-residue"));
        assert_eq!(report.device_resets, 1);
    }
}
