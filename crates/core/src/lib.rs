//! Orion: an interference-aware, fine-grained GPU scheduler (EuroSys '24),
//! reproduced against a simulated GPU substrate.
//!
//! Orion transparently intercepts the GPU operations of multiple DNN clients
//! sharing one device, buffers them in per-client software queues, and
//! submits them to the hardware with a policy that accounts for each
//! kernel's compute/memory profile, SM demand, and expected duration
//! (paper §5, Listing 1). This crate contains:
//!
//! * [`client`] — the client-side state machine: per-client software queues,
//!   request lifecycles, framework launch run-ahead, and blocking-op
//!   semantics (§5.1.3, §5.3);
//! * [`policy`] — the Orion scheduling policy with all its ablation knobs,
//!   and every baseline the paper compares against (temporal sharing, GPU
//!   Streams, stream priorities, MPS, REEF-N, Tick-Tock);
//! * [`world`] — the collocation engine: a discrete-event world wiring
//!   clients + policy + the simulated GPU, producing per-client latency and
//!   throughput plus device utilization;
//! * [`online`] — online profiling: streaming per-kernel duration
//!   estimators, the `Unknown → Observing → Admitted` admission ladder with
//!   drift detection, and adaptive `DUR_THRESHOLD` tuning, for runs that
//!   start with no offline profiles (DESIGN.md §12);
//! * [`tuning`] — the `SM_THRESHOLD` binary-search auto-tuner (§5.1.1);
//! * [`placement`] — profile-driven cluster placement: the greedy pair
//!   matcher and the k-way [`placement::FleetPlacer`] (§7 "cluster manager
//!   co-design" extension);
//! * [`cluster`] — multi-GPU simulation: static clusters ([`cluster::run_cluster`])
//!   and the fleet control plane ([`cluster::FleetSim`]) driving hundreds of
//!   GPUs through arrival/departure churn with optional online re-placement
//!   and migration;
//! * [`runtime`] — a real multi-threaded interception front-end (per-client
//!   software queues) used to measure kernel-launch interception overhead
//!   (§6.5).
//!
//! # Examples
//!
//! ```
//! use orion_core::prelude::*;
//! use orion_desim::time::SimTime;
//! use orion_workloads::{inference_workload, training_workload, ArrivalProcess, ModelKind};
//!
//! let clients = vec![
//!     ClientSpec::high_priority(
//!         inference_workload(ModelKind::ResNet50),
//!         ArrivalProcess::Poisson { rps: 15.0 },
//!     ),
//!     ClientSpec::best_effort(
//!         training_workload(ModelKind::MobileNetV2),
//!         ArrivalProcess::ClosedLoop,
//!     ),
//! ];
//! let cfg = RunConfig::quick_test();
//! let result = run_collocation(PolicyKind::orion_default(), clients, &cfg)
//!     .expect("both jobs fit in device memory");
//! assert!(result.hp().completed > 0);
//! ```

pub mod client;
pub mod cluster;
pub mod online;
pub mod placement;
pub mod policy;
pub mod runtime;
pub mod serving;
pub mod supervisor;
pub mod tuning;
pub mod validate;
pub mod world;

/// Convenience re-exports for experiment code.
pub mod prelude {
    pub use crate::client::{ClientPriority, ClientSpec};
    pub use crate::cluster::{
        ClusterError, ClusterJob, ClusterResult, DedicatedRef, EpisodeSpec, FleetConfig,
        FleetJob, FleetReport, FleetSim, FleetTrace, FleetTraceConfig,
    };
    pub use crate::online::{OnlineConfig, OnlineReport};
    pub use crate::policy::{OrionConfig, PolicyKind};
    pub use crate::serving::{
        run_serving, AdmissionConfig, ServingConfig, ServingError, ServingPolicy, ServingReport,
        SloConfig,
    };
    pub use crate::supervisor::{
        ClientFault, ClientFaultKind, FaultConfig, RobustnessReport, SupervisorConfig,
    };
    pub use crate::validate::{ValidateMode, ValidationReport};
    pub use crate::world::{
        run_collocation, run_collocation_with_profiles, ClientResult, RunConfig, RunResult,
    };
    pub use orion_gpu::fault::{FaultKind, FaultRates, FaultTarget};
}

pub use client::{ClientPriority, ClientSpec};
pub use policy::{OrionConfig, PolicyKind};
pub use world::{run_collocation, ClientResult, RunConfig, RunResult};
