//! End-to-end collocation throughput: simulated seconds per wall second for
//! a representative inf-train pair under each policy. Plain `Instant` harness.

use orion_core::prelude::*;
use orion_desim::time::SimTime;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::registry::{inference_workload, training_workload};
use orion_workloads::ModelKind;

fn run_once(policy: PolicyKind) {
    let mut cfg = RunConfig::quick_test();
    cfg.horizon = SimTime::from_millis(500);
    cfg.warmup = SimTime::from_millis(100);
    let clients = vec![
        ClientSpec::high_priority(
            inference_workload(ModelKind::ResNet50),
            ArrivalProcess::Poisson { rps: 15.0 },
        ),
        ClientSpec::best_effort(
            training_workload(ModelKind::MobileNetV2),
            ArrivalProcess::ClosedLoop,
        ),
    ];
    let r = run_collocation(policy, clients, &cfg).unwrap();
    std::hint::black_box(r);
}

fn main() {
    const ITERS: u32 = 10;
    for policy in [
        PolicyKind::Mps,
        PolicyKind::reef_default(),
        PolicyKind::orion_default(),
    ] {
        run_once(policy.clone()); // warmup
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            run_once(policy.clone());
        }
        let per_iter = start.elapsed() / ITERS;
        println!(
            "collocation_500ms_sim/inf_train/{}: {per_iter:?}/iter",
            policy.label()
        );
    }
}
