//! Criterion wrappers over the table/figure harnesses at reduced scale —
//! one benchmark per reproduced artifact class, so `cargo bench` exercises
//! the same code paths the experiment binaries use.

use criterion::{criterion_group, criterion_main, Criterion};
use orion_bench::exp::{self, ExpConfig};

fn bench_experiments(c: &mut Criterion) {
    let cfg = ExpConfig::fast();
    let mut g = c.benchmark_group("experiments_fast");
    g.sample_size(10);
    g.bench_function("table2_toy_collocation", |b| {
        b.iter(|| std::hint::black_box(exp::table2::run(&cfg)))
    });
    g.bench_function("fig4_kernel_mixes", |b| {
        b.iter(|| std::hint::black_box(exp::fig4::run(&cfg)))
    });
    g.bench_function("fig1_utilization_timeline", |b| {
        b.iter(|| std::hint::black_box(exp::fig1::run(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
