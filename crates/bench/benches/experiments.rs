//! Timing wrappers over the table/figure harnesses at reduced scale —
//! one benchmark per reproduced artifact class, so `cargo bench` exercises
//! the same code paths the experiment binaries use. Plain `Instant` harness.

use orion_bench::exp::{self, ExpConfig};

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f()); // warmup
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("experiments_fast/{name}: {per_iter:?}/iter");
}

fn main() {
    let cfg = ExpConfig::fast();
    time("table2_toy_collocation", 10, || exp::table2::run(&cfg));
    time("fig4_kernel_mixes", 10, || exp::fig4::run(&cfg));
    time("fig1_utilization_timeline", 10, || exp::fig1::run(&cfg));
}
