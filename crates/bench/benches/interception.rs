//! The 6.5 interception hot path with real threads: wrapper-to-queue push
//! while the scheduler thread drains (paper: < 1% of a ~10 us kernel, i.e.
//! the push must be well under 100 ns).

use criterion::{criterion_group, criterion_main, Criterion};
use orion_core::runtime::{InterceptRuntime, LaunchRecord};

fn bench_intercept(c: &mut Criterion) {
    let rt = InterceptRuntime::new(1);
    let guard = rt.start_scheduler();
    let mut seq = 0u64;
    c.bench_function("intercept_launch", |b| {
        b.iter(|| {
            seq += 1;
            rt.intercept(LaunchRecord {
                kernel_id: (seq % 101) as u32,
                client: 0,
                seq,
            });
        })
    });
    guard.stop();
}

criterion_group!(benches, bench_intercept);
criterion_main!(benches);
