//! The 6.5 interception hot path with real threads: wrapper-to-queue push
//! while the scheduler thread drains (paper: < 1% of a ~10 us kernel, i.e.
//! the push must be well under 100 ns). Plain `Instant` harness.

use orion_core::runtime::{InterceptRuntime, LaunchRecord};

fn main() {
    const ITERS: u64 = 1_000_000;
    let rt = InterceptRuntime::new(1);
    let guard = rt.start_scheduler();
    let start = std::time::Instant::now();
    for seq in 0..ITERS {
        rt.intercept(LaunchRecord {
            kernel_id: (seq % 101) as u32,
            client: 0,
            seq,
        });
    }
    let per_launch = start.elapsed().as_nanos() as f64 / ITERS as f64;
    guard.stop();
    println!("intercept_launch: {per_launch:.1} ns/launch");
}
