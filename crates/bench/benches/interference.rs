//! Microbenchmark of the interference-model evaluation (the per-event hot
//! path of the device engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_gpu::interference::{evaluate, KernelLoad, ModelParams};
use orion_gpu::spec::GpuSpec;

fn loads(n: usize) -> Vec<KernelLoad> {
    (0..n)
        .map(|i| KernelLoad {
            sm_needed: 10 + (i as u32 % 70),
            sm_granted: 0,
            compute_demand: 0.1 + 0.08 * (i % 10) as f64,
            mem_demand: 0.7 - 0.06 * (i % 10) as f64,
            urgency: (i % 2) as i16,
            seq: i as u64,
        })
        .collect()
}

fn bench_eval(c: &mut Criterion) {
    let params = ModelParams::from(&GpuSpec::v100_16gb());
    let mut g = c.benchmark_group("interference");
    for n in [2usize, 8, 32] {
        let l = loads(n);
        g.bench_with_input(BenchmarkId::new("evaluate", n), &l, |b, l| {
            b.iter(|| evaluate(&params, std::hint::black_box(l)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
