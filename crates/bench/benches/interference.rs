//! Microbenchmark of the interference-model evaluation (the per-event hot
//! path of the device engine). Plain `Instant` harness.

use orion_gpu::interference::{evaluate, KernelLoad, ModelParams};
use orion_gpu::spec::GpuSpec;

fn loads(n: usize) -> Vec<KernelLoad> {
    (0..n)
        .map(|i| KernelLoad {
            sm_needed: 10 + (i as u32 % 70),
            sm_granted: 0,
            compute_demand: 0.1 + 0.08 * (i % 10) as f64,
            mem_demand: 0.7 - 0.06 * (i % 10) as f64,
            urgency: (i % 2) as i16,
            seq: i as u64,
        })
        .collect()
}

fn main() {
    const ITERS: u32 = 100_000;
    let params = ModelParams::from(&GpuSpec::v100_16gb());
    for n in [2usize, 8, 32] {
        let l = loads(n);
        std::hint::black_box(evaluate(&params, &l)); // warmup
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(evaluate(&params, std::hint::black_box(&l)));
        }
        let per_iter = start.elapsed() / ITERS;
        println!("interference/evaluate/{n}: {per_iter:?}/iter");
    }
}
