//! Microbenchmarks of the DES + GPU engine hot paths: the simulator must
//! sustain millions of events per second for the experiment suite to run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::kernel::KernelBuilder;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;

fn submit_and_drain(n_kernels: u64, n_streams: usize) {
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    let streams: Vec<_> = (0..n_streams)
        .map(|_| e.create_stream(StreamPriority::DEFAULT))
        .collect();
    for i in 0..n_kernels {
        let k = KernelBuilder::new(i as u32, "bench")
            .grid_blocks(40)
            .threads_per_block(256)
            .solo_duration(SimTime::from_micros(50))
            .utilization(0.5, 0.3)
            .build();
        e.submit(streams[i as usize % n_streams], OpKind::Kernel(k))
            .unwrap();
    }
    e.advance_to(SimTime::from_secs(60));
    assert_eq!(e.drain_completions().len() as u64, n_kernels);
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_engine");
    for streams in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("submit_drain_1k_kernels", streams),
            &streams,
            |b, &s| b.iter(|| submit_and_drain(1_000, s)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
