//! Microbenchmarks of the DES + GPU engine hot paths: the simulator must
//! sustain millions of events per second for the experiment suite to run.
//!
//! Plain `std::time::Instant` harness (no external bench framework): each
//! case is warmed up once, then timed over a fixed iteration count.

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::kernel::KernelBuilder;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;

fn submit_and_drain(n_kernels: u64, n_streams: usize) {
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    let streams: Vec<_> = (0..n_streams)
        .map(|_| e.create_stream(StreamPriority::DEFAULT))
        .collect();
    for i in 0..n_kernels {
        let k = KernelBuilder::new(i as u32, "bench")
            .grid_blocks(40)
            .threads_per_block(256)
            .solo_duration(SimTime::from_micros(50))
            .utilization(0.5, 0.3)
            .build();
        e.submit(streams[i as usize % n_streams], OpKind::Kernel(k))
            .unwrap();
    }
    e.advance_to(SimTime::from_secs(60));
    assert_eq!(e.drain_completions().len() as u64, n_kernels);
}

fn main() {
    const ITERS: u32 = 20;
    for streams in [1usize, 4] {
        submit_and_drain(1_000, streams); // warmup
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            submit_and_drain(std::hint::black_box(1_000), streams);
        }
        let per_iter = start.elapsed() / ITERS;
        println!("gpu_engine/submit_drain_1k_kernels/{streams}: {per_iter:?}/iter");
    }
}
