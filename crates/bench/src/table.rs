//! Plain-text table rendering for experiment output.
//!
//! Every experiment prints the rows/series its paper table or figure
//! reports; this module keeps the formatting consistent and machine-
//! greppable (aligned columns, one header row, `#` comment lines).

/// A simple aligned-column text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio as `x.xx x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats milliseconds.
pub fn ms(t: orion_desim::time::SimTime) -> String {
    format!("{:.2}", t.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(ratio(1.5), "1.50x");
        assert_eq!(ms(orion_desim::time::SimTime::from_micros(1500)), "1.50");
    }
}
