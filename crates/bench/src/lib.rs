//! Experiment harness regenerating every table and figure of the paper.
pub mod exp;
pub mod runner;
pub mod table;
