//! The shared scenario runner: deterministic parallel execution of
//! experiment grids.
//!
//! Every paper figure/table sweeps a (policy × workload × seed) grid of
//! *cells*. The [`Runner`] fans those cells across a pool of OS threads and
//! guarantees **bit-identical results at any thread count**:
//!
//! * each cell's RNG seed is derived statelessly by splitmix from
//!   `(base_seed, cell_index)` ([`orion_desim::rng::cell_seed`]), never from
//!   execution order;
//! * results are written into a slot indexed by the cell's position in the
//!   input grid, so the output `Vec` ordering is the input ordering
//!   regardless of which worker finished first;
//! * serialized output ([`write_jsonl`](Runner::write_jsonl)) contains only
//!   simulation-derived quantities — wall-clock timings go to the progress
//!   stream (stderr), never into result rows.
//!
//! Thread count comes from the `ORION_THREADS` environment variable
//! (default: available parallelism). `ORION_JSONL=<path>` makes the
//! experiment binaries append one JSON line per cell to `<path>`.

use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use orion_core::prelude::*;
use orion_desim::rng::cell_seed;
use orion_gpu::error::GpuError;
use orion_json::{json, Value};

/// One cell of an experiment grid: a policy, a set of clients, and the run
/// configuration (GPU spec + horizon + warmup + base seed) to collocate
/// them under.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Cell label, e.g. `"RN50-inf + MNv2-train"`; carried into results.
    pub label: String,
    /// Scheduling policy for this cell.
    pub policy: PolicyKind,
    /// Clients to collocate (one entry = [`run_dedicated`] semantics is NOT
    /// implied; a single client is simply a one-client collocation).
    pub clients: Vec<ClientSpec>,
    /// Run configuration; `rc.seed` is the *base* seed — the runner derives
    /// the cell's actual seed from it and the seed index.
    pub rc: RunConfig,
    /// Optional explicit seed-derivation index. Defaults to the cell's grid
    /// position. Give cells that must be compared *pairwise* (the same
    /// workload combination under different policies) the same index so
    /// they see identical arrival draws — a pure function of grid content,
    /// so thread-count independence is unaffected.
    pub seed_cell: Option<u64>,
}

impl Scenario {
    /// Builds a scenario cell.
    pub fn new(
        label: impl Into<String>,
        policy: PolicyKind,
        clients: Vec<ClientSpec>,
        rc: RunConfig,
    ) -> Self {
        Scenario {
            label: label.into(),
            policy,
            clients,
            rc,
            seed_cell: None,
        }
    }

    /// Pins the seed-derivation index (see [`Scenario::seed_cell`]).
    pub fn with_seed_cell(mut self, k: u64) -> Self {
        self.seed_cell = Some(k);
        self
    }
}

/// The outcome of one scenario cell.
#[derive(Debug)]
pub struct CellOutcome {
    /// Index of the cell in the submitted grid.
    pub index: usize,
    /// Scenario label.
    pub label: String,
    /// Policy label.
    pub policy: &'static str,
    /// The derived per-cell seed actually used.
    pub seed: u64,
    /// Wall-clock execution time of this cell (progress/summary only —
    /// deliberately excluded from [`CellOutcome::to_json`]).
    pub wall: Duration,
    /// The collocation result, or the device error (e.g. OOM).
    pub result: Result<RunResult, GpuError>,
}

impl CellOutcome {
    /// The run result; panics with the cell label when the run failed.
    pub fn res(&self) -> &RunResult {
        match &self.result {
            Ok(r) => r,
            Err(e) => panic!("cell '{}' ({}) failed: {e}", self.label, self.policy),
        }
    }

    /// Mutable access to the run result; panics when the run failed.
    pub fn res_mut(&mut self) -> &mut RunResult {
        match &mut self.result {
            Ok(r) => r,
            Err(e) => panic!("cell failed: {e}"),
        }
    }

    /// Serializes the simulation-derived portion of this outcome as one
    /// JSON object (one line of the JSONL stream). Deterministic: contains
    /// no wall-clock or thread-dependent data.
    pub fn to_json(&mut self) -> Value {
        let mut obj = vec![
            ("cell".to_string(), Value::from(self.index as u64)),
            ("label".to_string(), Value::from(&self.label)),
            ("policy".to_string(), Value::from(self.policy)),
            ("seed".to_string(), Value::from(self.seed)),
        ];
        match &mut self.result {
            Ok(r) => {
                obj.push(("window_s".to_string(), Value::from(r.window.as_secs_f64())));
                obj.push((
                    "utilization".to_string(),
                    json!({
                        "compute": r.utilization.compute,
                        "mem_bw": r.utilization.mem_bw,
                        "sm_busy": r.utilization.sm_busy,
                    }),
                ));
                // Only present when something actually fired: fault-free runs
                // keep their JSONL byte-identical to pre-chaos builds.
                if r.robustness.any() {
                    let rb = &r.robustness;
                    obj.push((
                        "robustness".to_string(),
                        json!({
                            "device_faults": rb.device_faults,
                            "device_resets": rb.device_resets,
                            "op_faults": rb.op_faults,
                            "ops_aborted": rb.ops_aborted,
                            "resubmitted_ops": rb.resubmitted_ops,
                            "retries": rb.retries,
                            "quarantines": rb.quarantines,
                            "readmissions": rb.readmissions,
                            "shed_requests": rb.shed_requests,
                            "client_crashes": rb.client_crashes,
                            "client_hangs": rb.client_hangs,
                            "slow_polls": rb.slow_polls,
                            "watchdog_stalls": rb.watchdog_stalls,
                            "unknown_kernel_ops": rb.unknown_kernel_ops,
                        }),
                    ));
                }
                // Only present when online profiling was enabled: offline
                // runs keep their JSONL byte-identical to pre-online builds.
                if let Some(on) = &r.online {
                    obj.push((
                        "online".to_string(),
                        json!({
                            "tracked": on.tracked as u64,
                            "admitted": on.admitted as u64,
                            "admissions": on.admissions,
                            "demotions": on.demotions,
                            "clean_samples": on.clean_samples,
                            "interfered_samples": on.interfered_samples,
                            "clean_latency_samples": on.clean_latency_samples,
                            "contaminated_latency_samples": on.contaminated_latency_samples,
                            "latency_estimates": on.latency_estimates,
                            "mean_profile_error": on.mean_profile_error,
                            "max_profile_error": on.max_profile_error,
                        }),
                    ));
                }
                let clients: Vec<Value> = r
                    .clients
                    .iter_mut()
                    .map(|c| {
                        json!({
                            "label": &c.label,
                            "priority": format!("{:?}", c.priority),
                            "completed": c.completed,
                            "throughput_per_s": c.throughput,
                            "p50_ms": c.latency.p50().as_millis_f64(),
                            "p95_ms": c.latency.p95().as_millis_f64(),
                            "p99_ms": c.latency.p99().as_millis_f64(),
                        })
                    })
                    .collect();
                obj.push(("clients".to_string(), Value::from(clients)));
            }
            Err(e) => {
                obj.push(("error".to_string(), Value::from(format!("{e}"))));
            }
        }
        Value::Object(obj)
    }
}

/// Deterministic parallel executor for experiment grids.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    progress: bool,
}

impl Runner {
    /// A runner with an explicit worker-thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
            progress: false,
        }
    }

    /// Reads `ORION_THREADS` (default: available parallelism). Progress
    /// reporting on stderr is enabled unless `ORION_QUIET=1`.
    pub fn from_env() -> Self {
        let threads = std::env::var("ORION_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let quiet = std::env::var("ORION_QUIET").map(|v| v == "1").unwrap_or(false);
        Runner {
            threads,
            progress: !quiet,
        }
    }

    /// The worker-thread count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether progress/summary lines are emitted on stderr.
    pub fn progress_enabled(&self) -> bool {
        self.progress
    }

    /// Enables/disables per-cell progress lines on stderr.
    pub fn with_progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Deterministic parallel map: applies `f` to every item, fanning the
    /// work across the thread pool, and returns results **in input order**.
    ///
    /// `f` receives `(index, item)`; any seed derivation inside `f` must use
    /// the index (e.g. via [`cell_seed`]), never shared mutable state, for
    /// the thread-count-independence guarantee to hold. A panic inside `f`
    /// propagates to the caller.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let started = Instant::now();
        // Single-threaded fast path keeps stack traces simple and makes the
        // 1-thread arm of the determinism test exercise a distinct code path.
        if self.threads == 1 || total == 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let r = f(i, item);
                    self.report_progress(i, 1 + i, total, started);
                    r
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(total) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item taken twice");
                    let r = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                    let finished = 1 + done.fetch_add(1, Ordering::SeqCst);
                    self.report_progress(i, finished, total, started);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without storing a result")
            })
            .collect()
    }

    fn report_progress(&self, index: usize, finished: usize, total: usize, started: Instant) {
        if self.progress {
            eprintln!(
                "[runner] cell {index} done ({finished}/{total}, {:.1}s elapsed)",
                started.elapsed().as_secs_f64()
            );
        }
    }

    /// Runs a grid of collocation scenarios.
    ///
    /// Each cell's seed is `cell_seed(scenario.rc.seed, seed_cell)` — a
    /// pure function of the base seed and the cell's seed index (its grid
    /// position unless pinned) — so the output is identical at any thread
    /// count. Device errors (e.g. OOM) are captured per cell, not
    /// panicked, so a grid with one infeasible cell still completes.
    pub fn run_scenarios(&self, scenarios: Vec<Scenario>) -> Vec<CellOutcome> {
        self.map(scenarios, |index, sc| {
            let mut rc = sc.rc;
            rc.seed = cell_seed(rc.seed, sc.seed_cell.unwrap_or(index as u64));
            let seed = rc.seed;
            let started = Instant::now();
            let result = run_collocation(sc.policy.clone(), sc.clients, &rc);
            CellOutcome {
                index,
                label: sc.label,
                policy: sc.policy.label(),
                seed,
                wall: started.elapsed(),
                result,
            }
        })
    }

    /// Writes one JSON line per cell to `out`, in cell order.
    pub fn write_jsonl(outcomes: &mut [CellOutcome], out: &mut impl Write) -> io::Result<()> {
        for o in outcomes {
            writeln!(out, "{}", o.to_json().to_compact())?;
        }
        Ok(())
    }

    /// Serializes all outcomes to one JSONL string (used by the
    /// determinism tests to compare 1-thread vs N-thread runs).
    pub fn to_jsonl(outcomes: &mut [CellOutcome]) -> String {
        let mut buf = Vec::new();
        Self::write_jsonl(outcomes, &mut buf).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("JSONL is UTF-8")
    }

    /// One-line human summary of a finished grid (wall-clock, cells, errors).
    pub fn summary(&self, outcomes: &[CellOutcome]) -> String {
        let total_wall: Duration = outcomes.iter().map(|o| o.wall).sum();
        let errors = outcomes.iter().filter(|o| o.result.is_err()).count();
        format!(
            "{} cells on {} thread(s), {:.2}s cpu across cells, {} error(s)",
            outcomes.len(),
            self.threads,
            total_wall.as_secs_f64(),
            errors
        )
    }
}

/// Appends the per-cell JSONL for `outcomes` to the path named by the
/// `ORION_JSONL` environment variable, if set. Used by the experiment
/// binaries so any figure's structured results can be captured without
/// changing its printed table.
pub fn maybe_write_jsonl(outcomes: &mut [CellOutcome]) {
    if let Ok(path) = std::env::var("ORION_JSONL") {
        if path.is_empty() {
            return;
        }
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| Runner::write_jsonl(outcomes, &mut f));
        if let Err(e) = result {
            eprintln!("[runner] failed to write ORION_JSONL={path}: {e}");
        }
    }
}

/// Appends pre-built JSON lines to the `ORION_JSONL` path, if set. The fleet
/// grid uses this for its `fleet` block rows — per-fleet aggregates that do
/// not fit the per-cell [`CellOutcome`] schema. Emitted only when a fleet
/// grid actually ran, so non-fleet JSONL streams are unchanged byte-for-byte.
pub fn maybe_append_jsonl_values(values: &[Value]) {
    if let Ok(path) = std::env::var("ORION_JSONL") {
        if path.is_empty() || values.is_empty() {
            return;
        }
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                for v in values {
                    writeln!(f, "{}", v.to_compact())?;
                }
                Ok(())
            });
        if let Err(e) = result {
            eprintln!("[runner] failed to write ORION_JSONL={path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_workloads::arrivals::ArrivalProcess;
    use orion_workloads::registry::{inference_workload, training_workload};
    use orion_workloads::ModelKind;

    fn tiny_grid() -> Vec<Scenario> {
        let mut rc = RunConfig::quick_test();
        rc.horizon = orion_desim::time::SimTime::from_millis(400);
        rc.warmup = orion_desim::time::SimTime::from_millis(100);
        [PolicyKind::Streams, PolicyKind::orion_default()]
            .into_iter()
            .flat_map(|p| {
                let rc = rc.clone();
                [10.0f64, 20.0].into_iter().map(move |rps| {
                    Scenario::new(
                        format!("rn50@{rps}"),
                        p.clone(),
                        vec![
                            ClientSpec::high_priority(
                                inference_workload(ModelKind::ResNet50),
                                ArrivalProcess::Poisson { rps },
                            ),
                            ClientSpec::best_effort(
                                training_workload(ModelKind::MobileNetV2),
                                ArrivalProcess::ClosedLoop,
                            ),
                        ],
                        rc.clone(),
                    )
                })
            })
            .collect()
    }

    #[test]
    fn map_preserves_input_order() {
        let r = Runner::new(4);
        let out = r.map((0..100).collect(), |i, x: u64| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_depend_on_cell_index_not_thread_count() {
        let grid = tiny_grid();
        let a = Runner::new(1).run_scenarios(grid.clone());
        let b = Runner::new(4).run_scenarios(grid);
        let seeds_a: Vec<u64> = a.iter().map(|o| o.seed).collect();
        let seeds_b: Vec<u64> = b.iter().map(|o| o.seed).collect();
        assert_eq!(seeds_a, seeds_b);
        // All distinct: the derivation decorrelates cells.
        let mut dedup = seeds_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds_a.len());
    }

    #[test]
    fn jsonl_lines_parse_and_carry_cells() {
        let mut out = Runner::new(2).run_scenarios(tiny_grid());
        let jsonl = Runner::to_jsonl(&mut out);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), out.len());
        for (i, line) in lines.iter().enumerate() {
            let v = orion_json::parse(line).expect("line parses");
            assert_eq!(v["cell"].as_u64(), Some(i as u64));
            assert!(v["clients"].as_array().is_some());
            assert!(v["wall"].is_null(), "wall-clock must not leak into results");
            assert!(
                v["online"].is_null(),
                "online block must be absent when online profiling is off"
            );
        }
    }
}
