//! Chaos grid: HP inference + BE training under injected GPU faults.
//!
//! Not a figure from the paper — this sweep quantifies the *robustness*
//! extension: deterministic fault injection (sticky kernel faults + transient
//! copy failures) with the recovery supervisor enabled. For each fault rate
//! and policy it reports the HP client's p99 latency and completions, the
//! best-effort goodput, and the supervisor's recovery counters, showing how
//! gracefully each policy degrades as the device gets less reliable.
//!
//! Every cell goes through the shared deterministic [`Runner`], so the whole
//! grid — including every injected fault — is bit-identical at any thread
//! count.

use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;

use crate::exp::{be_training, hp_inference, hp_mut, run_grid, standard_policies, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// One (fault rate, policy) cell of the chaos grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// P(sticky kernel fault) per submitted kernel.
    pub kernel_fault_rate: f64,
    /// Policy label.
    pub policy: &'static str,
    /// HP p99 latency (ms).
    pub hp_p99_ms: f64,
    /// HP requests completed inside the window.
    pub hp_completed: u64,
    /// Best-effort training goodput (iters/s): only completed iterations
    /// count, so shed/retried work is excluded by construction.
    pub be_tput: f64,
    /// Supervisor + engine recovery counters for the run.
    pub robustness: RobustnessReport,
}

/// The fault-rate sweep (kernel-fault probability per submitted kernel;
/// transient copy failures are injected at twice each rate).
pub fn fault_rates(cfg: &ExpConfig) -> Vec<f64> {
    if cfg.fast {
        vec![0.0, 2e-3]
    } else {
        vec![0.0, 1e-4, 5e-4, 2e-3]
    }
}

/// Runs the chaos grid: fault rate x policy, RN50 HP inference (Poisson at
/// the Table 3 rate) collocated with MobileNetV2 BE training.
pub fn run(cfg: &ExpConfig) -> Vec<Cell> {
    let rc = cfg.run_config();
    let hp_model = ModelKind::ResNet50;
    let hp = hp_inference(
        hp_model,
        ArrivalProcess::Poisson {
            rps: PaperRates::inf_train_poisson(hp_model),
        },
    );
    let be = be_training(ModelKind::MobileNetV2);

    let rates = fault_rates(cfg);
    let policies = standard_policies();
    let mut grid = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let cell_rc = rc.clone().with_faults(FaultConfig::none().with_rates(FaultRates {
            kernel_fault: rate,
            copy_fail: 2.0 * rate,
            ..FaultRates::default()
        }));
        for policy in &policies {
            // Same seed index per rate: every policy sees identical arrivals
            // AND an identical fault schedule, so columns compare pairwise.
            grid.push(
                Scenario::new(
                    format!("chaos@{rate:.0e}"),
                    policy.clone(),
                    vec![hp.clone(), be.clone()],
                    cell_rc.clone(),
                )
                .with_seed_cell(ri as u64),
            );
        }
    }

    let mut outcomes = run_grid(grid).into_iter();
    let mut cells = Vec::new();
    for &rate in &rates {
        for policy in &policies {
            let mut o = outcomes.next().expect("grid covers every cell");
            let be_tput = o.res().be_throughput();
            let robustness = o.res().robustness.clone();
            let hp_res = hp_mut(o.res_mut());
            cells.push(Cell {
                kernel_fault_rate: rate,
                policy: policy.label(),
                hp_p99_ms: hp_res.latency.p99().as_millis_f64(),
                hp_completed: hp_res.completed,
                be_tput,
                robustness,
            });
        }
    }
    cells
}

/// Prints the chaos grid.
pub fn print(cells: &[Cell]) {
    println!("# Chaos grid: RN50 HP inference + MNv2 BE training under injected faults");
    println!("# (kernel-fault rate per submitted kernel; copy-fail rate = 2x)");
    let mut t = TextTable::new(vec![
        "fault-rate",
        "policy",
        "hp-p99-ms",
        "hp-done",
        "be-iters/s",
        "faults",
        "resets",
        "retries",
        "quarantines",
        "shed",
        "resubmitted",
    ]);
    for c in cells {
        let r = &c.robustness;
        t.row(vec![
            format!("{:.0e}", c.kernel_fault_rate),
            c.policy.to_string(),
            f2(c.hp_p99_ms),
            c.hp_completed.to_string(),
            f2(c.be_tput),
            r.device_faults.to_string(),
            r.device_resets.to_string(),
            r.retries.to_string(),
            r.quarantines.to_string(),
            r.shed_requests.to_string(),
            r.resubmitted_ops.to_string(),
        ]);
    }
    print!("{}", t.render());
}
