//! LLM continuous-batching serving grid (paper §7 discussion, DESIGN.md §17).
//!
//! Not a figure from the paper — the paper's §7 flags LLM token generation
//! as the ideal Orion collocation candidate (memory-bound decode
//! underutilizes SMs) and this grid closes the loop. Six cells drive the
//! serving subsystem (`orion_core::serving`):
//!
//! * `serial` — `max_batch = 1`: every request decodes alone. The
//!   continuous-batching baseline (denominator of the tokens/sec win).
//! * `batched` — continuous batching at the default `max_batch`, serving
//!   alone. Shows the ≥2x tokens/sec gain at bounded per-token p99.
//! * `orion` / `mps` / `temporal` — serving collocated with a best-effort
//!   ResNet-50 training client under each gating policy. Orion holds the
//!   per-token SLO while sustaining most of MPS's best-effort throughput;
//!   MPS violates the SLO; temporal starves the trainer.
//! * `constrained` — a device cut down to a sliver of KV headroom at a
//!   hotter request rate: admission defers, the ledger fills to (never
//!   past) capacity, and evictions fire.
//!
//! Comparable cells share one request trace (same seed/rate), so the
//! serial-vs-batched and policy comparisons are trace-for-trace. Cells fan
//! across the shared deterministic [`Runner`]; each cell is a pure function
//! of its config, so the grid is byte-identical at any thread count (the
//! `llm_serving` arm of the determinism test).
//!
//! With `ORION_JSONL` set, each cell appends one line carrying an
//! `llm_serving` block; the block is only ever emitted by this grid, so
//! other experiments' JSONL is unchanged.

use orion_core::prelude::*;
use orion_json::{json, Value};
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;
use orion_workloads::models::llm::{kv_cache_bytes, llm_weight_bytes};
use orion_workloads::registry::training_workload;

use crate::exp::ExpConfig;
use crate::runner::{maybe_append_jsonl_values, Runner};
use crate::table::{f2, TextTable};

/// One serving cell: a named configuration and its report.
#[derive(Debug)]
pub struct Cell {
    /// Cell label: `serial`, `batched`, `orion`, `mps`, `temporal`,
    /// `constrained`.
    pub name: &'static str,
    /// The serving report.
    pub report: ServingReport,
}

/// Base serving configuration for the grid (full or fast horizon).
pub fn base_config(cfg: &ExpConfig) -> ServingConfig {
    let mut sc = if cfg.fast {
        ServingConfig::quick_test()
    } else {
        ServingConfig::paper_default()
    };
    sc.seed = cfg.seed;
    sc
}

/// The best-effort trainer collocated in the policy cells.
pub fn be_client() -> ClientSpec {
    ClientSpec::best_effort(
        training_workload(ModelKind::ResNet50),
        ArrivalProcess::ClosedLoop,
    )
}

/// The constrained-memory cell: KV headroom cut to `ctx_tokens` tokens of
/// context over the weights, at a hotter request rate, so admission gating
/// and evictions must fire.
pub fn constrained_config(cfg: &ExpConfig) -> ServingConfig {
    let mut sc = base_config(cfg);
    let (ctx_tokens, rps) = if cfg.fast { (448, 4.0) } else { (1024, 3.0) };
    sc.spec.memory_capacity = llm_weight_bytes() + kv_cache_bytes(ctx_tokens);
    sc.rps = rps;
    sc
}

/// The six grid cells, in table order.
pub fn cell_configs(cfg: &ExpConfig) -> Vec<(&'static str, ServingConfig)> {
    let base = base_config(cfg);
    let mut serial = base.clone();
    serial.max_batch = 1;
    vec![
        ("serial", serial),
        ("batched", base.clone()),
        (
            "orion",
            base.clone()
                .with_policy(ServingPolicy::orion_default())
                .with_be(be_client()),
        ),
        (
            "mps",
            base.clone().with_policy(ServingPolicy::Mps).with_be(be_client()),
        ),
        (
            "temporal",
            base.with_policy(ServingPolicy::Temporal).with_be(be_client()),
        ),
        ("constrained", constrained_config(cfg)),
    ]
}

/// Runs the serving grid on an explicit runner (determinism-test entry).
///
/// # Errors
///
/// The first cell's [`ServingError`] — impossible configurations surface as
/// typed errors, not panics.
pub fn run_llm_serving_on(
    runner: &Runner,
    cfg: &ExpConfig,
) -> Result<Vec<Cell>, ServingError> {
    let results = runner.map(cell_configs(cfg), |_, (name, sc)| {
        (name, run_serving(&sc))
    });
    results
        .into_iter()
        .map(|(name, res)| res.map(|report| Cell { name, report }))
        .collect()
}

/// The `llm_serving` JSONL block for one cell.
pub fn llm_serving_json(cfg: &ExpConfig, cell: &mut Cell) -> Value {
    let r = &mut cell.report;
    let block = json!({
        "cell": cell.name,
        "policy": r.policy,
        "arrived": r.arrived,
        "admitted": r.admitted,
        "completed": r.completed,
        "shed_queue": r.shed_queue,
        "shed_oversized": r.shed_oversized,
        "dropped_evicted": r.dropped_evicted,
        "evictions": r.evictions,
        "deferred_kv": r.deferred_kv,
        "deferred_slo": r.deferred_slo,
        "deferred_batch": r.deferred_batch,
        "joins": r.joins,
        "joins_mid": r.joins_mid,
        "leaves": r.leaves,
        "leaves_mid": r.leaves_mid,
        "decode_steps": r.decode_steps,
        "prefill_steps": r.prefill_steps,
        "peak_batch": u64::from(r.peak_batch),
        "mean_batch": r.mean_batch,
        "tokens_generated": r.tokens_generated,
        "tokens_per_sec": r.tokens_per_sec,
        "ttft_p50_ms": r.ttft.p50().as_millis_f64(),
        "ttft_p99_ms": r.ttft.p99().as_millis_f64(),
        "per_token_p50_ms": r.per_token.p50().as_millis_f64(),
        "per_token_p99_ms": r.per_token.p99().as_millis_f64(),
        "itl_p99_ms": r.itl.p99().as_millis_f64(),
        "e2e_p99_ms": r.e2e.p99().as_millis_f64(),
        "kv_peak_bytes": r.kv_peak_bytes,
        "kv_budget_bytes": r.kv_budget_bytes,
        "ledger_high_water": r.ledger_high_water,
        "ledger_capacity": r.ledger_capacity,
        "be_completed": r.be_completed,
        "be_tput": r.be_tput,
    });
    json!({
        "seed": cfg.seed,
        "llm_serving": block,
    })
}

/// Runs the serving grid and emits its JSONL lines.
///
/// # Panics
///
/// Panics when a cell fails — grid configurations are fixed here, so a
/// [`ServingError`] is a bug, not an input problem.
pub fn run(cfg: &ExpConfig) -> Vec<Cell> {
    let runner = Runner::from_env().with_progress(false);
    let mut cells = run_llm_serving_on(&runner, cfg)
        .unwrap_or_else(|e| panic!("llm_serving cell failed: {e}"));
    let lines: Vec<Value> = cells
        .iter_mut()
        .map(|c| llm_serving_json(cfg, c))
        .collect();
    maybe_append_jsonl_values(&lines);
    cells
}

/// Prints the serving grid.
pub fn print(cells: &mut [Cell]) {
    println!("# LLM continuous-batching serving: prefill/decode, KV pressure, SLO admission");
    println!("# (per-token = decode-step service time; itl = inter-token gap incl. prefill stalls)");
    let mut t = TextTable::new(vec![
        "cell",
        "policy",
        "arr",
        "done",
        "tok/s",
        "mean-b",
        "ttft-p99-ms",
        "ptok-p99-ms",
        "itl-p99-ms",
        "joins(mid)",
        "evict",
        "def-kv",
        "def-slo",
        "be/s",
    ]);
    for c in cells.iter_mut() {
        let r = &mut c.report;
        t.row(vec![
            c.name.to_string(),
            r.policy.to_string(),
            r.arrived.to_string(),
            r.completed.to_string(),
            f2(r.tokens_per_sec),
            f2(r.mean_batch),
            f2(r.ttft.p99().as_millis_f64()),
            f2(r.per_token.p99().as_millis_f64()),
            f2(r.itl.p99().as_millis_f64()),
            format!("{}({})", r.joins, r.joins_mid),
            r.evictions.to_string(),
            r.deferred_kv.to_string(),
            r.deferred_slo.to_string(),
            f2(r.be_tput),
        ]);
    }
    print!("{}", t.render());
}
