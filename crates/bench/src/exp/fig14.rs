//! Figure 14: performance-analysis breakdown — which parts of Orion's policy
//! contribute most (inf-train, Poisson arrivals, p95 latency).
//!
//! Steps, as in the paper: GPU Streams -> + stream priorities -> + compute/
//! memory profile gating -> + SM-size gating (full Orion) -> full Orion
//! *without* stream priorities (showing priorities are marginal once the
//! policy is active).

use orion_core::policy::OrionConfig;
use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;

use crate::exp::{be_training, hp_inference, hp_mut, mean, run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// One ablation step.
#[derive(Debug, Clone)]
pub struct Step {
    /// Step label.
    pub label: &'static str,
    /// HP p95 latency (ms), averaged over BE training jobs.
    pub p95_ms: f64,
    /// HP p99 latency (ms).
    pub p99_ms: f64,
}

/// The ablation ladder.
pub fn steps() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("GPU Streams", PolicyKind::Streams),
        ("+ Stream priorities", PolicyKind::StreamPriority),
        (
            "+ Compute/Mem profiles",
            PolicyKind::Orion(OrionConfig::profiles_only()),
        ),
        ("+ SM size (full Orion)", PolicyKind::orion_default()),
        (
            "Orion w/o priorities",
            PolicyKind::Orion(OrionConfig::no_priorities()),
        ),
    ]
}

/// Runs the ablation for an inf-train collocation.
pub fn run(cfg: &ExpConfig) -> Vec<Step> {
    let rc = cfg.run_config();
    let hp_model = ModelKind::ResNet50;
    let hp = hp_inference(
        hp_model,
        ArrivalProcess::Poisson {
            rps: PaperRates::inf_train_poisson(hp_model),
        },
    );
    let be_models = if cfg.fast {
        vec![ModelKind::ResNet50]
    } else {
        vec![ModelKind::ResNet50, ModelKind::MobileNetV2, ModelKind::Bert]
    };
    let mut grid = Vec::new();
    for (label, policy) in steps() {
        for (bi, &bm) in be_models.iter().enumerate() {
            // Seed-paired across the ablation ladder per BE partner.
            grid.push(
                Scenario::new(
                    format!("{label} / be {}", bm.name()),
                    policy.clone(),
                    vec![hp.clone(), be_training(bm)],
                    rc.clone(),
                )
                .with_seed_cell(bi as u64),
            );
        }
    }
    let mut outcomes = run_grid(grid).into_iter();

    let mut out = Vec::new();
    for (label, _) in steps() {
        let mut p95s = Vec::new();
        let mut p99s = Vec::new();
        for _ in &be_models {
            let mut o = outcomes.next().expect("grid covers every cell");
            let hp_res = hp_mut(o.res_mut());
            p95s.push(hp_res.latency.p95().as_millis_f64());
            p99s.push(hp_res.latency.p99().as_millis_f64());
        }
        out.push(Step {
            label,
            p95_ms: mean(&p95s),
            p99_ms: mean(&p99s),
        });
    }
    out
}

/// Prints the ablation ladder.
pub fn print(steps: &[Step]) {
    println!("# Figure 14: Orion performance breakdown (inf-train, Poisson, HP ResNet50)");
    let mut t = TextTable::new(vec!["configuration", "p95[ms]", "p99[ms]"]);
    for s in steps {
        t.row(vec![s.label.to_string(), f2(s.p95_ms), f2(s.p99_ms)]);
    }
    print!("{}", t.render());
    println!("# paper: priorities help ~25%, profiles ~48% more, SM size ~54% more;");
    println!("# priorities are marginal once the full policy is active");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_policy_beats_streams_and_priorities_marginal_at_the_end() {
        let steps = run(&ExpConfig::fast());
        let get = |l: &str| steps.iter().find(|s| s.label == l).unwrap().p95_ms;
        let streams = get("GPU Streams");
        let full = get("+ SM size (full Orion)");
        assert!(
            full < streams,
            "full orion p95 {full:.1} not better than streams {streams:.1}"
        );
        // Without priorities, full Orion stays close to full Orion.
        let nopri = get("Orion w/o priorities");
        assert!(
            nopri <= full * 1.35,
            "orion w/o priorities {nopri:.1} vs full {full:.1}"
        );
    }
}
