//! Figures 11 and 12: inference-inference collocation.
//!
//! Figure 11: the high-priority vision model receives Apollo-trace arrivals,
//! the best-effort inference job uniform arrivals. Figure 12: both Poisson.
//! The metric is the HP job's p99 latency per policy, averaged across
//! collocations with the other models.

use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;
use orion_workloads::registry::ALL_MODELS;

use crate::exp::{
    be_inference, hp_inference, hp_mut, ideal_hp, mean, par_map, run_grid, standard_policies,
    std_dev, ExpConfig,
};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// Arrival flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrivals {
    /// Figure 11: HP Apollo trace, BE uniform (vision HP models only).
    Apollo,
    /// Figure 12: both Poisson.
    Poisson,
}

/// One (hp model, policy) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Policy label.
    pub policy: &'static str,
    /// Mean p99 across collocations (ms).
    pub p99_ms: f64,
    /// Std-dev of p99 across collocations (ms).
    pub p99_sd: f64,
    /// Aggregate inference throughput (req/s), averaged.
    pub total_tput: f64,
}

/// One figure row.
#[derive(Debug)]
pub struct ModelRow {
    /// High-priority model.
    pub model: ModelKind,
    /// Dedicated-GPU p99 (ms).
    pub ideal_p99: f64,
    /// Dedicated-GPU throughput (req/s).
    pub ideal_tput: f64,
    /// Per-policy cells.
    pub cells: Vec<Cell>,
}

/// Runs the inf-inf experiment.
pub fn run(cfg: &ExpConfig, arrivals: Arrivals) -> Vec<ModelRow> {
    let rc = cfg.run_config();
    let hp_models: Vec<ModelKind> = match arrivals {
        Arrivals::Apollo => {
            let v: Vec<ModelKind> = ALL_MODELS.iter().copied().filter(|m| m.is_vision()).collect();
            if cfg.fast {
                v.into_iter().take(2).collect()
            } else {
                v
            }
        }
        Arrivals::Poisson => {
            if cfg.fast {
                vec![ModelKind::ResNet50, ModelKind::Bert]
            } else {
                ALL_MODELS.to_vec()
            }
        }
    };

    let hps: Vec<ClientSpec> = hp_models
        .iter()
        .map(|&m| {
            let hp_arrivals = match arrivals {
                Arrivals::Apollo => ArrivalProcess::Apollo {
                    mean_rps: PaperRates::apollo_mean(m),
                },
                Arrivals::Poisson => ArrivalProcess::Poisson {
                    rps: PaperRates::inf_inf_poisson(m),
                },
            };
            hp_inference(m, hp_arrivals)
        })
        .collect();
    let ideals = par_map(hps.clone(), |_, hp| ideal_hp(&hp, &rc));

    let be_lists: Vec<Vec<ModelKind>> = hp_models
        .iter()
        .map(|&hp_model| {
            ALL_MODELS
                .iter()
                .copied()
                .filter(|&m| m != hp_model)
                .take(if cfg.fast { 2 } else { 4 })
                .collect()
        })
        .collect();

    let policies = standard_policies();
    let mut grid = Vec::new();
    for (hi, ((&hp_model, hp), be_models)) in
        hp_models.iter().zip(&hps).zip(&be_lists).enumerate()
    {
        for policy in &policies {
            for (bi, &bm) in be_models.iter().enumerate() {
                let be_arrivals = match arrivals {
                    Arrivals::Apollo => ArrivalProcess::Uniform {
                        rps: PaperRates::inf_inf_uniform(bm),
                    },
                    Arrivals::Poisson => ArrivalProcess::Poisson {
                        rps: PaperRates::inf_inf_poisson(bm),
                    },
                };
                // Same (hp, be) combination under every policy shares one
                // derived seed: policy comparisons stay seed-paired.
                grid.push(
                    Scenario::new(
                        format!("{}+{}-inf", hp_model.name(), bm.name()),
                        policy.clone(),
                        vec![hp.clone(), be_inference(bm, be_arrivals)],
                        rc.clone(),
                    )
                    .with_seed_cell((hi * ALL_MODELS.len() + bi) as u64),
                );
            }
        }
    }
    let mut outcomes = run_grid(grid).into_iter();

    let mut rows = Vec::new();
    for ((&hp_model, be_models), (ideal_p99, ideal_tput)) in
        hp_models.iter().zip(&be_lists).zip(ideals)
    {
        let mut cells = Vec::new();
        for policy in &policies {
            let mut p99s = Vec::new();
            let mut tputs = Vec::new();
            for _ in be_models {
                let mut o = outcomes.next().expect("grid covers every cell");
                tputs.push(o.res().total_throughput());
                p99s.push(hp_mut(o.res_mut()).latency.p99().as_millis_f64());
            }
            cells.push(Cell {
                policy: policy.label(),
                p99_ms: mean(&p99s),
                p99_sd: std_dev(&p99s),
                total_tput: mean(&tputs),
            });
        }
        rows.push(ModelRow {
            model: hp_model,
            ideal_p99,
            ideal_tput,
            cells,
        });
    }
    rows
}

/// Prints the figure data.
pub fn print(rows: &[ModelRow], arrivals: Arrivals) {
    let title = match arrivals {
        Arrivals::Apollo => "Figure 11: Inference-Inference (Apollo): HP p99 latency",
        Arrivals::Poisson => "Figure 12: Inference-Inference (Poisson): HP p99 latency",
    };
    println!("# {title}");
    let mut t = TextTable::new(vec![
        "hp-model",
        "Ideal[ms]",
        "policy",
        "p99[ms]",
        "sd",
        "p99/Ideal",
        "agg req/s",
    ]);
    for r in rows {
        for c in &r.cells {
            t.row(vec![
                r.model.name().to_string(),
                f2(r.ideal_p99),
                c.policy.to_string(),
                f2(c.p99_ms),
                f2(c.p99_sd),
                format!("{:.2}x", c.p99_ms / r.ideal_p99),
                f2(c.total_tput),
            ]);
        }
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orion_has_best_tail_latency() {
        let rows = run(&ExpConfig::fast(), Arrivals::Poisson);
        for r in &rows {
            let get = |n: &str| r.cells.iter().find(|c| c.policy == n).unwrap().p99_ms;
            let orion = get("Orion");
            assert!(
                orion <= get("MPS") * 1.02,
                "{}: orion {:.1} vs mps {:.1}",
                r.model.name(),
                orion,
                get("MPS")
            );
            // Temporal sharing is only competitive at very low request
            // rates; for the high-rate vision models it falls far behind.
            if r.model.is_vision() {
                assert!(
                    orion <= get("Temporal"),
                    "{}: orion {:.1} vs temporal {:.1}",
                    r.model.name(),
                    orion,
                    get("Temporal")
                );
            }
            // Within ~40% of ideal even in the fast configuration.
            assert!(
                orion / r.ideal_p99 < 1.4,
                "{}: orion {:.2}x ideal",
                r.model.name(),
                orion / r.ideal_p99
            );
        }
    }
}
