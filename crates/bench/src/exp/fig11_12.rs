//! Figures 11 and 12: inference-inference collocation.
//!
//! Figure 11: the high-priority vision model receives Apollo-trace arrivals,
//! the best-effort inference job uniform arrivals. Figure 12: both Poisson.
//! The metric is the HP job's p99 latency per policy, averaged across
//! collocations with the other models.

use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;
use orion_workloads::registry::ALL_MODELS;

use crate::exp::{be_inference, hp_inference, ideal_hp, standard_policies, ExpConfig};
use crate::table::{f2, TextTable};

/// Arrival flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrivals {
    /// Figure 11: HP Apollo trace, BE uniform (vision HP models only).
    Apollo,
    /// Figure 12: both Poisson.
    Poisson,
}

/// One (hp model, policy) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Policy label.
    pub policy: &'static str,
    /// Mean p99 across collocations (ms).
    pub p99_ms: f64,
    /// Std-dev of p99 across collocations (ms).
    pub p99_sd: f64,
    /// Aggregate inference throughput (req/s), averaged.
    pub total_tput: f64,
}

/// One figure row.
#[derive(Debug)]
pub struct ModelRow {
    /// High-priority model.
    pub model: ModelKind,
    /// Dedicated-GPU p99 (ms).
    pub ideal_p99: f64,
    /// Dedicated-GPU throughput (req/s).
    pub ideal_tput: f64,
    /// Per-policy cells.
    pub cells: Vec<Cell>,
}

/// Runs the inf-inf experiment.
pub fn run(cfg: &ExpConfig, arrivals: Arrivals) -> Vec<ModelRow> {
    let rc = cfg.run_config();
    let hp_models: Vec<ModelKind> = match arrivals {
        Arrivals::Apollo => {
            let v: Vec<ModelKind> = ALL_MODELS.iter().copied().filter(|m| m.is_vision()).collect();
            if cfg.fast {
                v.into_iter().take(2).collect()
            } else {
                v
            }
        }
        Arrivals::Poisson => {
            if cfg.fast {
                vec![ModelKind::ResNet50, ModelKind::Bert]
            } else {
                ALL_MODELS.to_vec()
            }
        }
    };

    let mut rows = Vec::new();
    for hp_model in hp_models {
        let hp_arrivals = match arrivals {
            Arrivals::Apollo => ArrivalProcess::Apollo {
                mean_rps: PaperRates::apollo_mean(hp_model),
            },
            Arrivals::Poisson => ArrivalProcess::Poisson {
                rps: PaperRates::inf_inf_poisson(hp_model),
            },
        };
        let hp = hp_inference(hp_model, hp_arrivals);
        let (ideal_p99, ideal_tput) = ideal_hp(&hp, &rc);

        let be_models: Vec<ModelKind> = ALL_MODELS
            .iter()
            .copied()
            .filter(|&m| m != hp_model)
            .take(if cfg.fast { 2 } else { 4 })
            .collect();

        let mut cells = Vec::new();
        for policy in standard_policies() {
            let mut p99s = Vec::new();
            let mut tputs = Vec::new();
            for &bm in &be_models {
                let be_arrivals = match arrivals {
                    Arrivals::Apollo => ArrivalProcess::Uniform {
                        rps: PaperRates::inf_inf_uniform(bm),
                    },
                    Arrivals::Poisson => ArrivalProcess::Poisson {
                        rps: PaperRates::inf_inf_poisson(bm),
                    },
                };
                let clients = vec![hp.clone(), be_inference(bm, be_arrivals)];
                let mut r =
                    run_collocation(policy.clone(), clients, &rc).expect("inf pairs fit");
                let total = r.total_throughput();
                let hp_res = r
                    .clients
                    .iter_mut()
                    .find(|c| c.priority == orion_core::client::ClientPriority::HighPriority)
                    .expect("hp present");
                p99s.push(hp_res.latency.p99().as_millis_f64());
                tputs.push(total);
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            let m99 = mean(&p99s);
            let sd = (p99s.iter().map(|x| (x - m99).powi(2)).sum::<f64>()
                / p99s.len().max(1) as f64)
                .sqrt();
            cells.push(Cell {
                policy: policy.label(),
                p99_ms: m99,
                p99_sd: sd,
                total_tput: mean(&tputs),
            });
        }
        rows.push(ModelRow {
            model: hp_model,
            ideal_p99,
            ideal_tput,
            cells,
        });
    }
    rows
}

/// Prints the figure data.
pub fn print(rows: &[ModelRow], arrivals: Arrivals) {
    let title = match arrivals {
        Arrivals::Apollo => "Figure 11: Inference-Inference (Apollo): HP p99 latency",
        Arrivals::Poisson => "Figure 12: Inference-Inference (Poisson): HP p99 latency",
    };
    println!("# {title}");
    let mut t = TextTable::new(vec![
        "hp-model",
        "Ideal[ms]",
        "policy",
        "p99[ms]",
        "sd",
        "p99/Ideal",
        "agg req/s",
    ]);
    for r in rows {
        for c in &r.cells {
            t.row(vec![
                r.model.name().to_string(),
                f2(r.ideal_p99),
                c.policy.to_string(),
                f2(c.p99_ms),
                f2(c.p99_sd),
                format!("{:.2}x", c.p99_ms / r.ideal_p99),
                f2(c.total_tput),
            ]);
        }
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orion_has_best_tail_latency() {
        let rows = run(&ExpConfig::fast(), Arrivals::Poisson);
        for r in &rows {
            let get = |n: &str| r.cells.iter().find(|c| c.policy == n).unwrap().p99_ms;
            let orion = get("Orion");
            assert!(
                orion <= get("MPS") * 1.02,
                "{}: orion {:.1} vs mps {:.1}",
                r.model.name(),
                orion,
                get("MPS")
            );
            // Temporal sharing is only competitive at very low request
            // rates; for the high-rate vision models it falls far behind.
            if r.model.is_vision() {
                assert!(
                    orion <= get("Temporal"),
                    "{}: orion {:.1} vs temporal {:.1}",
                    r.model.name(),
                    orion,
                    get("Temporal")
                );
            }
            // Within ~40% of ideal even in the fast configuration.
            assert!(
                orion / r.ideal_p99 < 1.4,
                "{}: orion {:.2}x ideal",
                r.model.name(),
                orion / r.ideal_p99
            );
        }
    }
}
