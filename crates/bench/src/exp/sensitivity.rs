//! §6.4 sensitivity study: `DUR_THRESHOLD` sweep for ResNet101 inference
//! collocated with best-effort training, plus the PCIe-aware-memcpy
//! extension ablation (§5.1.3).
//!
//! The paper reports stable performance below ~3%, then an approximately
//! linear latency increase (23/26/30 ms at 10/15/20%) traded against
//! best-effort training throughput (8.7/9.26/9.75 iterations/sec).

use orion_core::policy::OrionConfig;
use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;

use crate::exp::{be_training, hp_inference, hp_mut, run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// `DUR_THRESHOLD` as a percentage of HP request latency.
    pub threshold_pct: f64,
    /// HP inference p99 (ms).
    pub p99_ms: f64,
    /// BE training iterations/sec.
    pub be_tput: f64,
}

/// Runs the threshold sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Point> {
    let rc = cfg.run_config();
    let hp = hp_inference(
        ModelKind::ResNet101,
        ArrivalProcess::Poisson {
            rps: PaperRates::inf_train_poisson(ModelKind::ResNet101),
        },
    );
    let be = be_training(ModelKind::ResNet50);
    let fracs: Vec<f64> = if cfg.fast {
        vec![0.01, 0.025, 0.10, 0.20]
    } else {
        vec![0.01, 0.025, 0.05, 0.10, 0.15, 0.20]
    };
    // All sweep points share one derived seed (seed cell 0): the threshold
    // is the only thing that varies, as in a paired experiment.
    let grid: Vec<Scenario> = fracs
        .iter()
        .map(|&frac| {
            Scenario::new(
                format!("DUR_THRESHOLD {:.1}%", 100.0 * frac),
                PolicyKind::Orion(OrionConfig::default().with_dur_threshold(frac)),
                vec![hp.clone(), be.clone()],
                rc.clone(),
            )
            .with_seed_cell(0)
        })
        .collect();
    fracs
        .iter()
        .zip(run_grid(grid))
        .map(|(&frac, mut o)| {
            let be_tput = o.res().be_throughput();
            Point {
                threshold_pct: 100.0 * frac,
                p99_ms: hp_mut(o.res_mut()).latency.p99().as_millis_f64(),
                be_tput,
            }
        })
        .collect()
}

/// PCIe-aware memcpy ablation: p99 with and without the extension.
pub fn run_pcie_ablation(cfg: &ExpConfig) -> (f64, f64) {
    let rc = cfg.run_config();
    let hp = hp_inference(
        ModelKind::ResNet50,
        ArrivalProcess::Poisson {
            rps: PaperRates::inf_train_poisson(ModelKind::ResNet50),
        },
    );
    let be = be_training(ModelKind::MobileNetV2);
    let grid: Vec<Scenario> = [false, true]
        .into_iter()
        .map(|pcie| {
            let cfg_orion = OrionConfig {
                pcie_aware_memcpy: pcie,
                ..OrionConfig::default()
            };
            Scenario::new(
                if pcie { "pcie-aware" } else { "baseline" },
                PolicyKind::Orion(cfg_orion),
                vec![hp.clone(), be.clone()],
                rc.clone(),
            )
            .with_seed_cell(0)
        })
        .collect();
    let mut outcomes = run_grid(grid);
    let mut p99 =
        |i: usize| hp_mut(outcomes[i].res_mut()).latency.p99().as_millis_f64();
    (p99(0), p99(1))
}

/// Prints the sweep.
pub fn print(points: &[Point], pcie: (f64, f64)) {
    println!("# 6.4 sensitivity: DUR_THRESHOLD sweep (ResNet101 inference + BE training)");
    let mut t = TextTable::new(vec!["threshold%", "hp p99[ms]", "be iters/s"]);
    for p in points {
        t.row(vec![f2(p.threshold_pct), f2(p.p99_ms), f2(p.be_tput)]);
    }
    print!("{}", t.render());
    println!("# paper: p99 23/26/30 ms and be 8.7/9.26/9.75 it/s at 10/15/20%");
    println!(
        "# PCIe-aware memcpy extension: p99 {} ms -> {} ms",
        f2(pcie.0),
        f2(pcie.1)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_thresholds_trade_latency_for_be_throughput() {
        let pts = run(&ExpConfig::fast());
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        // More headroom for best-effort kernels at 20% than at 1%.
        assert!(
            last.be_tput >= first.be_tput,
            "be tput {} -> {}",
            first.be_tput,
            last.be_tput
        );
        // And no better tail latency.
        assert!(
            last.p99_ms >= first.p99_ms * 0.95,
            "p99 {} -> {}",
            first.p99_ms,
            last.p99_ms
        );
    }
}
