//! §6.2.2 makespan / cost: completing a set of training jobs on one GPU with
//! Orion vs. executing them sequentially, and vs. MPS collocation.
//!
//! The paper runs ResNet50, ResNet101 and BERT as high-priority training
//! jobs with MobileNetV2 and Transformer as best-effort jobs, and reports a
//! 1.29x makespan (= cost) reduction for Orion vs. sequential execution,
//! with MPS at 1.14x and 1.25x higher high-priority JCT than Orion.
//!
//! Methodology: each job must complete a fixed quota of iterations
//! (proportional to one "epoch-slice" of work). High-priority jobs run one
//! at a time, each collocated with a best-effort job under the policy; the
//! best-effort jobs' surplus progress reduces the remaining sequential tail.
//! Completion times are computed from throughputs measured in steady-state
//! collocation runs — a deterministic planner over measured rates.

use orion_core::prelude::*;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;
use orion_workloads::registry::training_workload;

use crate::exp::{ideal_throughput, par_map, ExpConfig};
use crate::table::{f2, ratio, TextTable};

/// Result for one scheduling strategy.
#[derive(Debug, Clone)]
pub struct Strategy {
    /// Strategy label.
    pub label: &'static str,
    /// Makespan in seconds to finish all quotas.
    pub makespan_s: f64,
    /// Mean completion time of the high-priority jobs (s).
    pub hp_mean_jct_s: f64,
    /// Cost savings vs sequential (sequential makespan / this makespan).
    pub savings: f64,
}

/// A job quota: the model and the iterations it must complete.
pub type JobQuota = (ModelKind, f64);

/// Job quotas: (high-priority jobs, best-effort jobs).
pub fn jobs() -> (Vec<JobQuota>, Vec<JobQuota>) {
    // ~30 s of dedicated work per job (Table 4 dedicated rates).
    let hp = vec![
        (ModelKind::ResNet50, 300.0),
        (ModelKind::ResNet101, 190.0),
        (ModelKind::Bert, 150.0),
    ];
    let be = vec![(ModelKind::MobileNetV2, 380.0), (ModelKind::Transformer, 180.0)];
    (hp, be)
}

fn client(m: ModelKind, hp: bool) -> ClientSpec {
    let w = training_workload(m);
    if hp {
        ClientSpec::high_priority(w, ArrivalProcess::ClosedLoop)
    } else {
        ClientSpec::best_effort(w, ArrivalProcess::ClosedLoop)
    }
}

/// Plans the makespan for a collocating policy: HP jobs run sequentially,
/// each paired with the best-effort job that has the most remaining work
/// (and fits in memory); leftover best-effort work runs dedicated.
fn plan(policy: &PolicyKind, cfg: &RunConfig) -> (f64, f64) {
    let (hp_jobs, be_jobs) = jobs();
    let capacity = cfg.spec.memory_capacity;
    let mut be_left: Vec<(ModelKind, f64)> = be_jobs;
    let mut t = 0.0f64;
    let mut hp_jcts = Vec::new();

    for (hp_model, hp_quota) in hp_jobs {
        // Pick the BE partner with the most remaining work that fits.
        let hp_w = training_workload(hp_model);
        let partner = be_left
            .iter()
            .enumerate()
            .filter(|(_, (m, left))| {
                *left > 0.0
                    && training_workload(*m).memory_footprint + hp_w.memory_footprint <= capacity
            })
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .map(|(i, _)| i);

        match partner {
            Some(i) => {
                let (bm, _) = be_left[i];
                let r = run_collocation(
                    policy.clone(),
                    vec![client(hp_model, true), client(bm, false)],
                    cfg,
                )
                .expect("training pairs fit");
                let hp_rate = r.hp().throughput.max(1e-9);
                let be_rate = r.be_throughput();
                let dt = hp_quota / hp_rate;
                be_left[i].1 = (be_left[i].1 - be_rate * dt).max(0.0);
                t += dt;
                hp_jcts.push(t);
            }
            None => {
                let rate = ideal_throughput(&client(hp_model, true), cfg).max(1e-9);
                t += hp_quota / rate;
                hp_jcts.push(t);
            }
        }
    }
    // Finish leftover best-effort work dedicated (sequentially).
    for (m, left) in be_left {
        if left > 0.0 {
            let rate = ideal_throughput(&client(m, false), cfg).max(1e-9);
            t += left / rate;
        }
    }
    let hp_mean = hp_jcts.iter().sum::<f64>() / hp_jcts.len().max(1) as f64;
    (t, hp_mean)
}

/// Sequential baseline: every job on the GPU alone, one after another
/// (high-priority jobs first). The dedicated rates are measured in
/// parallel on the shared runner.
fn sequential(cfg: &RunConfig) -> (f64, f64) {
    let (hp_jobs, be_jobs) = jobs();
    let n_hp = hp_jobs.len();
    let all: Vec<(ModelKind, f64, bool)> = hp_jobs
        .into_iter()
        .map(|(m, q)| (m, q, true))
        .chain(be_jobs.into_iter().map(|(m, q)| (m, q, false)))
        .collect();
    let rates = par_map(all.clone(), |_, (m, _, hp)| {
        ideal_throughput(&client(m, hp), cfg).max(1e-9)
    });
    let mut t = 0.0;
    let mut hp_jcts = Vec::new();
    for (i, ((_, quota, _), rate)) in all.iter().zip(rates).enumerate() {
        t += quota / rate;
        if i < n_hp {
            hp_jcts.push(t);
        }
    }
    let hp_mean = hp_jcts.iter().sum::<f64>() / hp_jcts.len() as f64;
    (t, hp_mean)
}

/// Runs the makespan comparison. The three collocating strategies plan in
/// parallel on the shared runner; each plan's inner collocation runs stay
/// sequential because partner selection depends on earlier measured rates.
pub fn run(cfg: &ExpConfig) -> Vec<Strategy> {
    let rc = cfg.run_config();
    let (seq_makespan, seq_hp) = sequential(&rc);
    let mut out = vec![Strategy {
        label: "Sequential (dedicated)",
        makespan_s: seq_makespan,
        hp_mean_jct_s: seq_hp,
        savings: 1.0,
    }];
    let strategies = vec![
        ("MPS", PolicyKind::Mps),
        ("REEF", PolicyKind::reef_default()),
        ("Orion", crate::exp::orion_aggressive(&rc)),
    ];
    let planned = par_map(strategies, |_, (label, policy)| {
        let (makespan, hp_jct) = plan(&policy, &rc);
        (label, makespan, hp_jct)
    });
    for (label, makespan, hp_jct) in planned {
        out.push(Strategy {
            label,
            makespan_s: makespan,
            hp_mean_jct_s: hp_jct,
            savings: seq_makespan / makespan.max(1e-9),
        });
    }
    out
}

/// Prints the comparison.
pub fn print(rows: &[Strategy]) {
    println!("# 6.2.2 makespan: completing the training-job set on one GPU");
    let mut t = TextTable::new(vec!["strategy", "makespan[s]", "hp mean JCT[s]", "savings"]);
    for r in rows {
        t.row(vec![
            r.label.to_string(),
            f2(r.makespan_s),
            f2(r.hp_mean_jct_s),
            ratio(r.savings),
        ]);
    }
    print!("{}", t.render());
    println!("# paper: Orion 1.29x savings; MPS 1.14x with 1.25x higher HP JCT than Orion");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orion_reduces_makespan_vs_sequential() {
        let rows = run(&ExpConfig::fast());
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
        let orion = get("Orion");
        assert!(
            orion.savings > 1.05,
            "orion savings {:.2} too small",
            orion.savings
        );
        assert!(orion.savings < 2.0, "orion savings {:.2} impossible", orion.savings);
        // Orion's HP jobs finish no later than under MPS (same order).
        let mps = get("MPS");
        assert!(
            orion.hp_mean_jct_s <= mps.hp_mean_jct_s * 1.1,
            "orion hp jct {:.1} vs mps {:.1}",
            orion.hp_mean_jct_s,
            mps.hp_mean_jct_s
        );
    }
}
