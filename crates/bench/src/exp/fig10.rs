//! Figure 10: training-training collocation — average throughput of the
//! high-priority and best-effort training jobs under every policy,
//! including Tick-Tock.

use orion_core::prelude::*;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;
use orion_workloads::registry::{training_workload, ALL_MODELS};

use crate::exp::{be_training, ideal_throughput, mean, par_map, run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// One (hp model, policy) cell, averaged over best-effort training partners.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Policy label.
    pub policy: &'static str,
    /// HP training throughput / dedicated throughput.
    pub hp_norm: f64,
    /// Mean BE training throughput / its dedicated throughput.
    pub be_norm: f64,
}

/// One figure row: an HP model and its per-policy cells.
#[derive(Debug)]
pub struct ModelRow {
    /// High-priority training model.
    pub model: ModelKind,
    /// Dedicated iterations/sec of the HP job.
    pub hp_dedicated: f64,
    /// Per-policy cells.
    pub cells: Vec<Cell>,
}

/// Policies compared in Figure 10. Orion runs with the tuned `SM_THRESHOLD`
/// (the paper increases it for throughput-oriented HP jobs, §5.1.1).
pub fn policies(rc: &RunConfig) -> Vec<PolicyKind> {
    vec![
        PolicyKind::Streams,
        PolicyKind::Mps,
        PolicyKind::TickTock,
        PolicyKind::reef_default(),
        crate::exp::orion_aggressive(rc),
    ]
}

/// Runs train-train collocation for every HP model over fitting partners.
pub fn run(cfg: &ExpConfig) -> Vec<ModelRow> {
    let rc = cfg.run_config();
    let capacity = rc.spec.memory_capacity;
    let hp_models: Vec<ModelKind> = if cfg.fast {
        vec![ModelKind::ResNet50, ModelKind::Bert]
    } else {
        ALL_MODELS.to_vec()
    };
    // Fitting partners per HP model (the paper's cluster manager only
    // collocates fitting pairs).
    let partner_lists: Vec<Vec<ModelKind>> = hp_models
        .iter()
        .map(|&hp_model| {
            let hp_fp = training_workload(hp_model).memory_footprint;
            ALL_MODELS
                .iter()
                .copied()
                .filter(|&m| m != hp_model)
                .filter(|&m| training_workload(m).memory_footprint + hp_fp <= capacity)
                .take(if cfg.fast { 1 } else { 4 })
                .collect()
        })
        .collect();

    // Dedicated references: every training job appears at most once as HP
    // and possibly several times as a partner — measure each model once.
    let be_deds: Vec<f64> = par_map(ALL_MODELS.to_vec(), |_, m| {
        ideal_throughput(&be_training(m), &rc)
    });
    let be_ded_of = |m: ModelKind| {
        be_deds[ALL_MODELS.iter().position(|&x| x == m).expect("model listed")]
    };
    let hp_deds = par_map(hp_models.clone(), |_, m| {
        ideal_throughput(
            &ClientSpec::high_priority(training_workload(m), ArrivalProcess::ClosedLoop),
            &rc,
        )
    });

    let mut grid = Vec::new();
    for (hi, (&hp_model, partners)) in hp_models.iter().zip(&partner_lists).enumerate() {
        let hp = ClientSpec::high_priority(training_workload(hp_model), ArrivalProcess::ClosedLoop);
        for policy in policies(&rc) {
            for (pi, &bm) in partners.iter().enumerate() {
                // Seed-paired across policies per (hp, partner) pair.
                grid.push(
                    Scenario::new(
                        format!("{}-train+{}-train", hp_model.name(), bm.name()),
                        policy.clone(),
                        vec![hp.clone(), be_training(bm)],
                        rc.clone(),
                    )
                    .with_seed_cell((hi * ALL_MODELS.len() + pi) as u64),
                );
            }
        }
    }
    let mut outcomes = run_grid(grid).into_iter();

    let mut rows = Vec::new();
    for ((&hp_model, partners), hp_dedicated) in
        hp_models.iter().zip(&partner_lists).zip(hp_deds)
    {
        let mut cells = Vec::new();
        for policy in policies(&rc) {
            let mut hp_norms = Vec::new();
            let mut be_norms = Vec::new();
            for &bm in partners {
                let o = outcomes.next().expect("grid covers every cell");
                let r = o.res();
                hp_norms.push(r.hp().throughput / hp_dedicated.max(1e-9));
                be_norms.push(r.be_throughput() / be_ded_of(bm).max(1e-9));
            }
            cells.push(Cell {
                policy: policy.label(),
                hp_norm: mean(&hp_norms),
                be_norm: mean(&be_norms),
            });
        }
        rows.push(ModelRow {
            model: hp_model,
            hp_dedicated,
            cells,
        });
    }
    rows
}

/// Prints the figure data.
pub fn print(rows: &[ModelRow]) {
    println!("# Figure 10: training-training collocation, throughput vs dedicated");
    let mut t = TextTable::new(vec![
        "hp-model",
        "ded it/s",
        "policy",
        "hp/ded",
        "be/ded",
        "aggregate",
    ]);
    for r in rows {
        for c in &r.cells {
            t.row(vec![
                r.model.name().to_string(),
                f2(r.hp_dedicated),
                c.policy.to_string(),
                f2(c.hp_norm),
                f2(c.be_norm),
                f2(c.hp_norm + c.be_norm),
            ]);
        }
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orion_keeps_hp_training_near_dedicated() {
        let rows = run(&ExpConfig::fast());
        for r in &rows {
            let get = |n: &str| r.cells.iter().find(|c| c.policy == n).unwrap();
            let orion = get("Orion");
            // Paper: within 16% of ideal for the HP job.
            assert!(
                orion.hp_norm > 0.75,
                "{}: orion hp {:.2}",
                r.model.name(),
                orion.hp_norm
            );
            // Orion makes more BE progress than REEF (which heavily
            // throttles best-effort kernels).
            let reef = get("REEF");
            assert!(
                orion.be_norm >= reef.be_norm * 0.9,
                "{}: orion be {:.2} vs reef {:.2}",
                r.model.name(),
                orion.be_norm,
                reef.be_norm
            );
            // Tick-Tock's barriers cost HP throughput vs Orion.
            let tt = get("Tick-Tock");
            assert!(
                orion.hp_norm >= tt.hp_norm,
                "{}: orion {:.2} < ticktock {:.2}",
                r.model.name(),
                orion.hp_norm,
                tt.hp_norm
            );
        }
    }
}
