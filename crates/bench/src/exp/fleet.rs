//! Fleet-scale cluster simulation grid (paper §7 at fleet size).
//!
//! Not a figure from the paper — this grid exercises the fleet control plane
//! (`orion_core::cluster::FleetSim`): hundreds of GPUs, a thousand jobs
//! arriving and departing over an open-loop trace, k-way packing by
//! complementarity, optional online-learned re-placement and migration. Three
//! cells share one synthesized trace:
//!
//! * `orion-offline` — Orion on every GPU, offline profile tables memoized
//!   per workload, placement from static demand vectors. The baseline fleet.
//! * `orion-online+mig` — cold-start online profiling per job (PR-5 admission
//!   ladder), re-placement fed by the learned `ProfileTable`s, and migration
//!   of the worst-matched best-effort resident off GPUs whose high-priority
//!   job underperformed.
//! * `mps` — the MPS baseline policy on every GPU, same placement.
//!
//! Every epoch's episodes fan across the shared deterministic [`Runner`]
//! (per-(gpu, epoch) splitmix seeds), so the whole fleet — placement
//! decisions, migrations, learned tables, per-job statistics — is
//! byte-identical at any thread count (fleet arm of the determinism test).
//!
//! With `ORION_JSONL` set, each cell appends one line carrying a `fleet`
//! block (fleet aggregates + an FNV-1a per-job digest); the block is only
//! ever emitted by this grid, so other experiments' JSONL is unchanged.

use std::collections::BTreeMap;

use orion_core::cluster::{
    dedicated_ref_inputs, ClusterError, DedicatedRef, FleetConfig, FleetReport, FleetSim,
    FleetTrace, FleetTraceConfig,
};
use orion_core::policy::PolicyKind;
use orion_core::world::run_dedicated;
use orion_desim::time::SimTime;
use orion_json::{json, Value};

use crate::exp::ExpConfig;
use crate::runner::{maybe_append_jsonl_values, Runner};
use crate::table::{f2, TextTable};

/// One fleet cell: a control-plane mode over the shared trace.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Mode label: `orion-offline`, `orion-online+mig`, `mps`.
    pub mode: &'static str,
    /// The fleet-level report.
    pub report: FleetReport,
}

/// Grid dimensions: `(gpus, jobs, epochs)`. Fast mode shrinks the fleet so
/// the debug-build smoke test stays quick; full mode meets the fleet-scale
/// bar (≥ 128 GPUs, ≥ 1000 jobs with churn).
pub fn fleet_dims(cfg: &ExpConfig) -> (usize, usize, usize) {
    if cfg.fast {
        (8, 32, 3)
    } else {
        (128, 1000, 6)
    }
}

/// The shared churn trace for `dims`, seeded from the experiment seed.
pub fn fleet_trace(cfg: &ExpConfig, dims: (usize, usize, usize)) -> FleetTrace {
    let (_, jobs, epochs) = dims;
    let epoch = fleet_epoch(cfg);
    let mut tc = FleetTraceConfig::new(jobs, epoch * epochs as u64);
    tc.seed = cfg.seed;
    FleetTrace::synthesize(&tc)
}

/// Epoch length: short in fast mode (debug-build tests), one second at scale.
pub fn fleet_epoch(cfg: &ExpConfig) -> SimTime {
    if cfg.fast {
        SimTime::from_millis(600)
    } else {
        SimTime::from_secs(1)
    }
}

/// Fleet configuration for one mode over `dims`.
pub fn fleet_config(
    cfg: &ExpConfig,
    dims: (usize, usize, usize),
    policy: PolicyKind,
    online: bool,
    migration: bool,
) -> FleetConfig {
    let (gpus, _, epochs) = dims;
    let mut fc = FleetConfig::new(gpus, epochs);
    fc.epoch = fleet_epoch(cfg);
    fc.policy = policy;
    fc.rc.seed = cfg.seed;
    fc.online = online;
    fc.migration = migration;
    fc
}

/// Drives one fleet end-to-end on an explicit runner: dedicated references
/// and every epoch's episode batch are sharded with [`Runner::map`], whose
/// input-order results keep the control plane's state evolution — and thus
/// the report — byte-identical at any thread count.
///
/// # Errors
///
/// [`ClusterError::BaselineFailed`] when a dedicated reference run fails and
/// [`ClusterError::Gpu`] when offline profiling fails — `BaselineFailed`-
/// style context instead of a mid-fleet panic. (Failed *episodes* are
/// absorbed into [`FleetReport::episode_errors`], not returned here.)
pub fn run_fleet_on(
    runner: &Runner,
    trace: FleetTrace,
    fcfg: FleetConfig,
) -> Result<FleetReport, ClusterError> {
    let inputs = dedicated_ref_inputs(&trace, &fcfg);
    let refs = runner.map(inputs, |_, (label, client, rc)| {
        (label, run_dedicated(client, &rc))
    });
    let mut dedicated: BTreeMap<String, DedicatedRef> = BTreeMap::new();
    for (i, (label, res)) in refs.into_iter().enumerate() {
        let mut r = res.map_err(|source| ClusterError::BaselineFailed { job: i, source })?;
        dedicated.insert(
            label,
            DedicatedRef {
                throughput: r.clients[0].throughput,
                p99: r.clients[0].latency.p99(),
            },
        );
    }
    let mut sim = FleetSim::new(trace, fcfg, dedicated)?;
    while let Some(specs) = sim.next_epoch() {
        let results = runner.map(specs, |_, s| {
            let r = s.run();
            (s, r)
        });
        sim.absorb(results);
    }
    Ok(sim.into_report())
}

/// The `robustness` sub-block for a fleet report, or `None` when nothing
/// fault-related happened. Fault-free runs emit no block at all, keeping
/// their JSONL byte-identical to pre-fault-plan builds.
pub fn robustness_json(r: &FleetReport) -> Option<Value> {
    let ro = &r.robustness;
    // `unknown_kernel_ops` counts conservatively-scheduled cold-start ops —
    // routine in online mode, not a fault signal. It must not trigger the
    // block on its own or fault-free online fleets would change their JSONL.
    let episodes_faulted = {
        let mut e = ro.episodes.clone();
        e.unknown_kernel_ops = 0;
        e.any()
    };
    let fleet_faulted = {
        let mut f = ro.clone();
        f.episodes = Default::default();
        f.any()
    };
    if !episodes_faulted && !fleet_faulted && r.episode_failures.is_empty() {
        return None;
    }
    let ep = &ro.episodes;
    Some(json!({
        "chaos_episodes": ro.chaos_episodes,
        "gpus_dead": ro.gpus_dead,
        "quarantines": ro.quarantines,
        "reinstated": ro.reinstated,
        "evacuations": ro.evacuations,
        "evacuations_recovered": ro.evacuations_recovered,
        "max_epochs_to_recovery": ro.max_epochs_to_recovery,
        "be_preempted": ro.be_preempted,
        "be_lost": ro.be_lost,
        "hp_rejected": ro.hp_rejected,
        "availability": ro.availability,
        "episode_device_faults": ep.device_faults,
        "episode_device_resets": ep.device_resets,
        "episode_retries": ep.retries,
        "episode_shed_requests": ep.shed_requests,
        "episode_failures": r.episode_failures.len() as u64,
    }))
}

/// The `fleet` JSONL block for one cell: fleet aggregates plus the FNV-1a
/// per-job digest (the compact determinism fingerprint). A `robustness`
/// sub-block is appended only when fault machinery actually fired.
pub fn fleet_json(cfg: &ExpConfig, cell: &Cell) -> Value {
    let r = &cell.report;
    let mut fleet = json!({
        "mode": cell.mode,
        "gpus": r.gpus as u64,
        "epochs": r.epochs as u64,
        "epoch_ms": r.epoch.as_millis_f64(),
        "jobs": r.jobs.len() as u64,
        "peak_gpus_used": r.peak_gpus_used as u64,
        "dedicated_gpus_needed": r.dedicated_gpus_needed as u64,
        "gpus_saved": r.gpus_saved,
        "hp_p99_ms": r.hp_p99.as_millis_f64(),
        "hp_slo_attainment": r.hp_slo_attainment,
        "be_slo_attainment": r.be_slo_attainment,
        "slo_attainment": r.slo_attainment,
        "migrations": r.migrations,
        "episode_errors": r.episode_errors,
        "oversized_rejected": r.oversized_rejected,
        "never_placed": r.never_placed as u64,
        "jobs_digest": format!("{:016x}", r.jobs_digest()),
    });
    if let Some(ro) = robustness_json(r) {
        if let Value::Object(map) = &mut fleet {
            map.push(("robustness".to_string(), ro));
        }
    }
    json!({
        "seed": cfg.seed,
        "fleet": fleet,
    })
}

/// Runs the three-mode fleet grid over one shared trace.
pub fn run(cfg: &ExpConfig) -> Vec<Cell> {
    let dims = fleet_dims(cfg);
    let runner = Runner::from_env().with_progress(false);
    let modes: Vec<(&'static str, PolicyKind, bool, bool)> = vec![
        ("orion-offline", PolicyKind::orion_default(), false, false),
        ("orion-online+mig", PolicyKind::orion_default(), true, true),
        ("mps", PolicyKind::Mps, false, false),
    ];
    let cells: Vec<Cell> = modes
        .into_iter()
        .map(|(mode, policy, online, migration)| {
            let trace = fleet_trace(cfg, dims);
            let fcfg = fleet_config(cfg, dims, policy, online, migration);
            if runner.progress_enabled() {
                eprintln!("[fleet] {mode}: {} GPUs, {} jobs, {} epochs", dims.0, dims.1, dims.2);
            }
            let report = run_fleet_on(&runner, trace, fcfg)
                .unwrap_or_else(|e| panic!("fleet cell {mode} failed: {e}"));
            Cell { mode, report }
        })
        .collect();
    let lines: Vec<Value> = cells.iter().map(|c| fleet_json(cfg, c)).collect();
    maybe_append_jsonl_values(&lines);
    cells
}

/// Prints the fleet grid.
pub fn print(cells: &[Cell]) {
    println!("# Fleet-scale cluster simulation: churn trace, k-way packing, per-GPU Orion");
    println!("# (GPUs-saved = dedicated fleet size - peak GPUs used; SLO: HP by p99, BE by tput)");
    let mut t = TextTable::new(vec![
        "mode",
        "gpus",
        "peak-used",
        "dedicated",
        "saved",
        "hp-p99-ms",
        "hp-slo%",
        "be-slo%",
        "slo%",
        "migrations",
        "never-placed",
    ]);
    for c in cells {
        let r = &c.report;
        t.row(vec![
            c.mode.to_string(),
            r.gpus.to_string(),
            r.peak_gpus_used.to_string(),
            r.dedicated_gpus_needed.to_string(),
            r.gpus_saved.to_string(),
            f2(c.report.hp_p99.as_millis_f64()),
            f2(100.0 * r.hp_slo_attainment),
            f2(100.0 * r.be_slo_attainment),
            f2(100.0 * r.slo_attainment),
            r.migrations.to_string(),
            r.never_placed.to_string(),
        ]);
    }
    print!("{}", t.render());
}
