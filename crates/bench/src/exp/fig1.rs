//! Figure 1: GPU compute-throughput and memory-bandwidth utilization over
//! time for one MobileNetV2 training iteration (batch 96 in the paper; we
//! use the Table 1 training configuration).
//!
//! The figure's point is that utilization is bursty and low on average, with
//! compute and memory spikes at *different* times. The runner executes the
//! training job alone with the full utilization timeline enabled and prints
//! a bucketed series plus the averages (the red dotted lines).

use orion_core::prelude::*;
use orion_desim::time::SimTime;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;
use orion_workloads::registry::training_workload;

use crate::exp::{run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// The utilization series of one run.
#[derive(Debug)]
pub struct Series {
    /// Bucket start times (ms).
    pub t_ms: Vec<f64>,
    /// Compute-throughput utilization per bucket.
    pub compute: Vec<f64>,
    /// Memory-bandwidth utilization per bucket.
    pub mem_bw: Vec<f64>,
    /// Average compute utilization (dotted line).
    pub avg_compute: f64,
    /// Average memory-bandwidth utilization (dotted line).
    pub avg_mem: f64,
}

/// Runs MobileNetV2 training alone and extracts the utilization timeline.
pub fn run(cfg: &ExpConfig) -> Series {
    let mut rc = cfg.run_config();
    rc.record_timeline = true;
    // A couple of iterations are enough for the figure.
    rc.horizon = SimTime::from_millis(if cfg.fast { 200 } else { 400 });
    rc.warmup = SimTime::ZERO;
    let client = ClientSpec::best_effort(
        training_workload(ModelKind::MobileNetV2),
        ArrivalProcess::ClosedLoop,
    );
    // A one-cell grid: dedicated execution is an MPS collocation of one.
    let outcomes = run_grid(vec![Scenario::new(
        "MNv2-train solo",
        PolicyKind::Mps,
        vec![client],
        rc,
    )]);
    let r = outcomes[0].res();
    let mut t_ms = Vec::new();
    let mut compute = Vec::new();
    let mut mem_bw = Vec::new();
    for s in &r.timeline {
        t_ms.push(s.at.as_millis_f64());
        compute.push(s.compute);
        mem_bw.push(s.mem_bw);
    }
    Series {
        t_ms,
        compute,
        mem_bw,
        avg_compute: r.utilization.compute,
        avg_mem: r.utilization.mem_bw,
    }
}

/// Prints the series (downsampled) and the averages.
pub fn print(s: &Series) {
    println!("# Figure 1: MobileNetV2 training utilization over time (solo GPU)");
    println!(
        "# average compute throughput = {:.1}%  (paper: <40%)",
        100.0 * s.avg_compute
    );
    println!(
        "# average memory bandwidth  = {:.1}%  (paper: <55%)",
        100.0 * s.avg_mem
    );
    let mut t = TextTable::new(vec!["t[ms]", "compute%", "mem_bw%"]);
    let step = (s.t_ms.len() / 60).max(1);
    for i in (0..s.t_ms.len()).step_by(step) {
        t.row(vec![
            f2(s.t_ms[i]),
            f2(100.0 * s.compute[i]),
            f2(100.0 * s.mem_bw[i]),
        ]);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_bursty_and_low_on_average() {
        let s = run(&ExpConfig::fast());
        assert!(!s.t_ms.is_empty());
        // Averages below the paper's red lines.
        assert!(s.avg_compute < 0.55, "avg compute {}", s.avg_compute);
        assert!(s.avg_mem < 0.65, "avg mem {}", s.avg_mem);
        // Bursty: some 1-ms buckets run well above the average while others
        // dip below it (compute and memory spike at different times).
        let max_c = s.compute.iter().cloned().fold(0.0, f64::max);
        let min_c = s.compute.iter().cloned().fold(1.0, f64::min);
        assert!(max_c > s.avg_compute + 0.1, "no compute bursts: max {max_c}");
        assert!(min_c < s.avg_compute, "no compute dips: min {min_c}");
    }
}
