//! Figure 13: generalization to the A100-40GB and to five clients.
//!
//! One high-priority inference job collocated with four best-effort
//! inference jobs serving the other Table 3 models, all with Poisson
//! arrivals, on the A100 spec. Compared policies: MPS, REEF, Orion
//! (temporal sharing and plain Streams are omitted as in the paper —
//! their tail latency is orders of magnitude worse).

use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;
use orion_workloads::registry::{inference_workload, ALL_MODELS};

use crate::exp::{hp_mut, mean, par_map, run_grid, std_dev, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// One (hp model, policy) result.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Policy label.
    pub policy: &'static str,
    /// Mean p99 across seeds (ms).
    pub p99_ms: f64,
    /// Std-dev across seeds (ms).
    pub p99_sd: f64,
}

/// One figure row.
#[derive(Debug)]
pub struct ModelRow {
    /// High-priority model.
    pub model: ModelKind,
    /// Dedicated-A100 p99 (ms).
    pub ideal_p99: f64,
    /// Per-policy cells.
    pub cells: Vec<Cell>,
}

fn a100_client(model: ModelKind, hp: bool, speedup: f64) -> ClientSpec {
    let w = inference_workload(model).scaled(speedup);
    let arrivals = ArrivalProcess::Poisson {
        rps: PaperRates::inf_inf_poisson(model),
    };
    if hp {
        ClientSpec::high_priority(w, arrivals)
    } else {
        ClientSpec::best_effort(w, arrivals)
    }
}

/// Runs the five-client A100 experiment.
pub fn run(cfg: &ExpConfig) -> Vec<ModelRow> {
    let rc = cfg.run_config_a100();
    let speedup = rc.spec.speedup_vs_v100();
    let hp_models: Vec<ModelKind> = if cfg.fast {
        vec![ModelKind::ResNet50]
    } else {
        ALL_MODELS.to_vec()
    };
    let seeds: Vec<u64> = if cfg.fast {
        vec![cfg.seed]
    } else {
        vec![cfg.seed, cfg.seed + 1, cfg.seed + 2]
    };
    // Orion appears twice: the default DUR_THRESHOLD (2.5%) and a tighter
    // SLO-tuned setting (0.5%) — the paper tunes this knob per service-level
    // objective (§6.4), and with four best-effort clients the outstanding
    // window refills continuously, so the five-client experiment benefits
    // from the tighter value.
    let policies = [
        ("MPS", PolicyKind::Mps),
        ("REEF", PolicyKind::reef_default()),
        ("Orion", PolicyKind::orion_default()),
        (
            "Orion-tuned",
            PolicyKind::Orion(
                orion_core::policy::OrionConfig::default().with_dur_threshold(0.005),
            ),
        ),
    ];
    // The dedicated reference runs under the same derived seed as replica
    // 0 (seed cell 0), so the p99/Ideal ratios compare identical arrivals.
    let mut rc_ideal = rc.clone();
    rc_ideal.seed = orion_desim::rng::cell_seed(rc.seed, 0);
    let ideals = par_map(hp_models.clone(), |_, m| {
        let mut r = orion_core::world::run_dedicated(a100_client(m, true, speedup), &rc_ideal)
            .expect("fits on A100");
        r.clients[0].latency.p99().as_millis_f64()
    });

    // Grid: hp_model x policy x seed replica. The runner re-derives each
    // cell's seed from (base seed, cell index), so the replicas act as
    // independent draws while staying thread-count independent.
    let mut grid = Vec::new();
    for &hp_model in &hp_models {
        for (label, policy) in &policies {
            for (k, &seed) in seeds.iter().enumerate() {
                let mut rc_seeded = rc.clone();
                rc_seeded.seed = seed;
                let mut clients = vec![a100_client(hp_model, true, speedup)];
                for m in ALL_MODELS.iter().copied().filter(|&m| m != hp_model) {
                    clients.push(a100_client(m, false, speedup));
                }
                // Seed cell = replica index: every policy sees the same
                // arrival draw for replica k, and the replicas stay
                // decorrelated through their distinct base seeds.
                grid.push(
                    Scenario::new(
                        format!("{}+4be [{label}]", hp_model.name()),
                        policy.clone(),
                        clients,
                        rc_seeded,
                    )
                    .with_seed_cell(k as u64),
                );
            }
        }
    }
    let mut outcomes = run_grid(grid).into_iter();

    let mut rows = Vec::new();
    for (&hp_model, ideal_p99) in hp_models.iter().zip(ideals) {
        let mut cells = Vec::new();
        for (label, _) in &policies {
            let mut p99s = Vec::new();
            for _ in &seeds {
                let mut o = outcomes.next().expect("grid covers every cell");
                p99s.push(hp_mut(o.res_mut()).latency.p99().as_millis_f64());
            }
            cells.push(Cell {
                policy: label,
                p99_ms: mean(&p99s),
                p99_sd: std_dev(&p99s),
            });
        }
        rows.push(ModelRow {
            model: hp_model,
            ideal_p99,
            cells,
        });
    }
    rows
}

/// Prints the figure data.
pub fn print(rows: &[ModelRow]) {
    println!("# Figure 13: A100-40GB, 1 HP + 4 BE inference clients (Poisson)");
    let mut t = TextTable::new(vec![
        "hp-model",
        "Ideal[ms]",
        "policy",
        "p99[ms]",
        "sd",
        "p99/Ideal",
    ]);
    for r in rows {
        for c in &r.cells {
            t.row(vec![
                r.model.name().to_string(),
                f2(r.ideal_p99),
                c.policy.to_string(),
                f2(c.p99_ms),
                f2(c.p99_sd),
                format!("{:.2}x", c.p99_ms / r.ideal_p99),
            ]);
        }
    }
    print!("{}", t.render());
    println!("# paper: MPS 2.2x ideal, REEF +21%, Orion within 9%");
    println!("# Orion-tuned = DUR_THRESHOLD 0.5% (SLO-tuned per 6.4 for the 5-client setup)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orion_generalizes_to_a100_and_five_clients() {
        let rows = run(&ExpConfig::fast());
        for r in &rows {
            let get = |n: &str| r.cells.iter().find(|c| c.policy == n).unwrap().p99_ms;
            let orion = get("Orion");
            assert!(
                orion <= get("MPS"),
                "{}: orion {:.1} > mps {:.1}",
                r.model.name(),
                orion,
                get("MPS")
            );
            // SLO-tuned Orion stays close to ideal with five clients.
            let tuned = get("Orion-tuned");
            assert!(
                tuned / r.ideal_p99 < 1.35,
                "{}: tuned orion {:.2}x ideal",
                r.model.name(),
                tuned / r.ideal_p99
            );
        }
    }
}
