//! Cold-start convergence grid: offline-profiled vs. online-learned vs.
//! never-profiled Orion, plus a mid-run duration-drift scenario.
//!
//! Not a figure from the paper — this sweep quantifies the *online
//! profiling* extension (DESIGN.md §12): a collocation that starts with
//! empty profile tables and learns kernel durations + the `DUR_THRESHOLD`
//! denominator from the live completion stream. Four cells share one
//! arrival schedule (pinned seed cell), differing only in where profiles
//! come from:
//!
//! * `offline` — the paper's configuration: profiles from the §5.2
//!   offline pass, online learning off. The reference for convergence.
//! * `online` — cold start (`ClientSpec::unprofiled`) with
//!   [`OnlineConfig::learning`]: the admission ladder must re-derive the
//!   profiles before Orion's gates open up.
//! * `never-profiled` — cold start with learning off: the conservative
//!   fallback path forever (best-effort kernels run only when the
//!   high-priority client is idle). The floor online must beat.
//! * `online+drift` — cold start + learning, and the best-effort client's
//!   kernel durations shift mid-run ([`DriftSpec`]): drift detection must
//!   demote the stale profiles and re-converge.
//!
//! Post-convergence quality is read from the standard measurement window:
//! the warmup already excludes the learning transient (admission needs
//! `min_samples` clean completions per kernel — a handful of best-effort
//! iterations — and the tuner `min_latency_samples` requests). Every cell
//! goes through the shared deterministic [`Runner`], so the whole grid is
//! bit-identical at any thread count (online arm of the determinism test).

use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, DriftSpec, PaperRates};
use orion_workloads::model::ModelKind;

use crate::exp::{be_training, hp_inference, hp_mut, run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// One profile-provenance cell of the convergence grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Provenance label: `offline`, `online`, `never-profiled`,
    /// `online+drift`.
    pub mode: &'static str,
    /// HP p99 latency (ms) over the measurement window.
    pub hp_p99_ms: f64,
    /// HP requests completed inside the window.
    pub hp_completed: u64,
    /// Best-effort training throughput (iters/s).
    pub be_tput: f64,
    /// Online-profiler summary (cells that learned, `None` otherwise).
    pub online: Option<OnlineReport>,
}

/// The drift point: halfway through the run, the best-effort client's
/// kernels slow down by 1.5x (the profiles learned so far go stale).
pub fn drift_spec(rc: &RunConfig) -> DriftSpec {
    DriftSpec::new(rc.horizon / 2, 1.5)
}

/// Runs the convergence grid: RN50 HP inference (Poisson, Table 3 rate) +
/// MNv2 BE training under Orion, across the four profile-provenance modes.
pub fn run(cfg: &ExpConfig) -> Vec<Cell> {
    let rc = cfg.run_config();
    let hp_model = ModelKind::ResNet50;
    let hp = hp_inference(
        hp_model,
        ArrivalProcess::Poisson {
            rps: PaperRates::inf_train_poisson(hp_model),
        },
    );
    let be = be_training(ModelKind::MobileNetV2);
    let policy = PolicyKind::orion_default();
    let learning = rc.clone().with_online(OnlineConfig::learning());

    let modes: Vec<(&'static str, Vec<ClientSpec>, RunConfig)> = vec![
        ("offline", vec![hp.clone(), be.clone()], rc.clone()),
        (
            "online",
            vec![hp.clone().unprofiled(), be.clone().unprofiled()],
            learning.clone(),
        ),
        (
            "never-profiled",
            vec![hp.clone().unprofiled(), be.clone().unprofiled()],
            rc.clone(),
        ),
        (
            "online+drift",
            vec![
                hp.clone().unprofiled(),
                be.clone().unprofiled().with_drift(drift_spec(&rc)),
            ],
            learning,
        ),
    ];

    let grid: Vec<Scenario> = modes
        .iter()
        .map(|(mode, clients, cell_rc)| {
            // Same seed cell everywhere: every mode sees identical arrival
            // draws, so columns compare pairwise.
            Scenario::new(*mode, policy.clone(), clients.clone(), cell_rc.clone())
                .with_seed_cell(0)
        })
        .collect();

    run_grid(grid)
        .into_iter()
        .zip(modes)
        .map(|(mut o, (mode, _, _))| {
            let be_tput = o.res().be_throughput();
            let online = o.res().online.clone();
            let hp_res = hp_mut(o.res_mut());
            Cell {
                mode,
                hp_p99_ms: hp_res.latency.p99().as_millis_f64(),
                hp_completed: hp_res.completed,
                be_tput,
                online,
            }
        })
        .collect()
}

/// Prints the convergence grid.
pub fn print(cells: &[Cell]) {
    println!("# Online profiling: cold-start convergence vs. offline profiles (Orion)");
    println!("# (RN50 HP inference + MNv2 BE training; error = learned vs. true solo duration)");
    let mut t = TextTable::new(vec![
        "mode",
        "hp-p99-ms",
        "hp-done",
        "be-iters/s",
        "admitted",
        "admissions",
        "demotions",
        "mean-err%",
        "max-err%",
        "thresh-updates",
    ]);
    for c in cells {
        let (admitted, admissions, demotions, mean_err, max_err, updates) = match &c.online {
            Some(r) => (
                r.admitted.to_string(),
                r.admissions.to_string(),
                r.demotions.to_string(),
                f2(100.0 * r.mean_profile_error),
                f2(100.0 * r.max_profile_error),
                r.latency_estimates.to_string(),
            ),
            None => {
                let dash = || "-".to_string();
                (dash(), dash(), dash(), dash(), dash(), dash())
            }
        };
        t.row(vec![
            c.mode.to_string(),
            f2(c.hp_p99_ms),
            c.hp_completed.to_string(),
            f2(c.be_tput),
            admitted,
            admissions,
            demotions,
            mean_err,
            max_err,
            updates,
        ]);
    }
    print!("{}", t.render());
}
