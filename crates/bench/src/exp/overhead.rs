//! §6.5 overheads: kernel-launch interception cost.
//!
//! Two measurements:
//!
//! 1. **End-to-end** (simulated): each workload's solo request latency when
//!    driven through Orion's interception + scheduling path vs. native
//!    pass-through submission. The paper reports < 1% overhead.
//! 2. **Microbenchmark** (real threads): the wall-clock cost of one
//!    wrapper-to-queue interception in the multi-threaded front-end
//!    (`orion_core::runtime`), in nanoseconds.

use orion_core::prelude::*;
use orion_core::runtime::measure_intercept_overhead_ns;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::registry::{inference_workload, training_workload, ALL_MODELS};

use crate::exp::{run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// One workload's interception overhead.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload label.
    pub label: String,
    /// Native solo latency (ms).
    pub native_ms: f64,
    /// Intercepted (Orion path) solo latency (ms).
    pub orion_ms: f64,
    /// Relative overhead (%).
    pub overhead_pct: f64,
}

/// Measures end-to-end overhead for every workload.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let rc = cfg.run_config();
    let mut rows = Vec::new();
    let models: Vec<_> = if cfg.fast {
        ALL_MODELS.iter().take(2).copied().collect()
    } else {
        ALL_MODELS.to_vec()
    };
    // Two cells per workload: the native pass-through path (MPS with one
    // client — exactly `run_dedicated`) and Orion's interception path.
    let mut grid = Vec::new();
    let mut labels = Vec::new();
    for m in models {
        for (w, arr) in [
            (inference_workload(m), ArrivalProcess::ClosedLoop),
            (training_workload(m), ArrivalProcess::ClosedLoop),
        ] {
            labels.push(w.label());
            // The native/orion pair shares one derived seed so the
            // overhead difference isolates the interception path.
            let k = labels.len() as u64 - 1;
            grid.push(
                Scenario::new(
                    format!("{} native", w.label()),
                    PolicyKind::Mps,
                    vec![ClientSpec::high_priority(w.clone(), arr.clone())],
                    rc.clone(),
                )
                .with_seed_cell(k),
            );
            grid.push(
                Scenario::new(
                    format!("{} orion", w.label()),
                    PolicyKind::orion_default(),
                    vec![ClientSpec::high_priority(w, arr)],
                    rc.clone(),
                )
                .with_seed_cell(k),
            );
        }
    }
    let mut outcomes = run_grid(grid).into_iter();
    for label in labels {
        let mut p50 = || {
            outcomes.next().expect("grid covers every cell").res_mut().clients[0]
                .latency
                .p50()
                .as_millis_f64()
        };
        let native = p50();
        let orion = p50();
        rows.push(Row {
            label,
            native_ms: native,
            orion_ms: orion,
            overhead_pct: 100.0 * (orion - native) / native.max(1e-9),
        });
    }
    rows
}

/// Prints both measurements.
pub fn print(rows: &[Row]) {
    println!("# 6.5 overheads: Orion kernel-launch interception");
    let mut t = TextTable::new(vec!["workload", "native[ms]", "orion[ms]", "overhead%"]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            f2(r.native_ms),
            f2(r.orion_ms),
            f2(r.overhead_pct),
        ]);
    }
    print!("{}", t.render());
    println!("# paper: < 1% across all jobs");

    let ns = measure_intercept_overhead_ns(200_000);
    println!("# real-thread interception microbenchmark: {ns:.0} ns per launch (software queue push, scheduler thread draining)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interception_overhead_below_one_percent() {
        for r in run(&ExpConfig::fast()) {
            assert!(
                r.overhead_pct.abs() < 1.0,
                "{}: overhead {:.3}%",
                r.label,
                r.overhead_pct
            );
        }
    }
}
