//! Table 2: the toy collocation experiment — Conv2d (compute-intensive) and
//! BN2d (memory-intensive) kernels, sequential vs. collocated.
//!
//! This is the calibration anchor for the interference model; see also
//! `crates/gpu-sim/tests/table2_calibration.rs`.

use std::sync::Arc;

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::kernel::{KernelBuilder, KernelDesc};
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;

use crate::exp::{par_map, ExpConfig};
use crate::table::{ratio, TextTable};

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel pair label.
    pub pair: &'static str,
    /// Sequential makespan (ms).
    pub sequential_ms: f64,
    /// Collocated makespan (ms).
    pub collocated_ms: f64,
    /// Speedup (sequential / collocated).
    pub speedup: f64,
    /// The paper's measured speedup.
    pub paper_speedup: f64,
}

/// Conv2d, batch 32: 1.35 ms solo, all 80 SMs, 89%/20% compute/memory.
pub fn conv2d() -> Arc<KernelDesc> {
    KernelBuilder::new(0, "conv2d")
        .grid_blocks(160)
        .threads_per_block(1024)
        .regs_per_thread(16)
        .solo_duration(SimTime::from_micros(1350))
        .utilization(0.89, 0.20)
        .build()
}

/// BN2d, batch 32: 0.93 ms solo, 40% of SMs, 14%/80% compute/memory.
pub fn bn2d() -> Arc<KernelDesc> {
    KernelBuilder::new(1, "bn2d")
        .grid_blocks(64)
        .threads_per_block(1024)
        .regs_per_thread(16)
        .solo_duration(SimTime::from_micros(930))
        .utilization(0.14, 0.80)
        .build()
}

fn makespan(kernels: &[(usize, Arc<KernelDesc>)], n_streams: usize) -> SimTime {
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    let streams: Vec<_> = (0..n_streams)
        .map(|_| e.create_stream(StreamPriority::DEFAULT))
        .collect();
    for (si, k) in kernels {
        e.submit(streams[*si], OpKind::Kernel(k.clone())).unwrap();
    }
    e.advance_to(SimTime::from_secs(1));
    e.drain_completions().iter().map(|c| c.at).max().unwrap()
}

fn row(pair: &'static str, a: Arc<KernelDesc>, b: Arc<KernelDesc>, paper: f64) -> Row {
    let seq = makespan(&[(0, a.clone()), (0, b.clone())], 1);
    let col = makespan(&[(0, a), (1, b)], 2);
    Row {
        pair,
        sequential_ms: seq.as_millis_f64(),
        collocated_ms: col.as_millis_f64(),
        speedup: seq.as_secs_f64() / col.as_secs_f64(),
        paper_speedup: paper,
    }
}

/// Regenerates the three rows of Table 2.
pub fn run(_cfg: &ExpConfig) -> Vec<Row> {
    let pairs: Vec<(&'static str, Arc<KernelDesc>, Arc<KernelDesc>, f64)> = vec![
        ("Conv2d-Conv2d", conv2d(), conv2d(), 0.98),
        ("BN2d-BN2d", bn2d(), bn2d(), 1.08),
        ("Conv2d-BN2d", conv2d(), bn2d(), 1.41),
    ];
    par_map(pairs, |_, (pair, a, b, paper)| row(pair, a, b, paper))
}

/// Prints the table.
pub fn print(rows: &[Row]) {
    println!("# Table 2: toy kernel collocation (sequential vs collocated)");
    let mut t = TextTable::new(vec![
        "pair",
        "sequential[ms]",
        "collocated[ms]",
        "speedup",
        "paper",
    ]);
    for r in rows {
        t.row(vec![
            r.pair.to_string(),
            format!("{:.2}", r.sequential_ms),
            format!("{:.2}", r.collocated_ms),
            ratio(r.speedup),
            ratio(r.paper_speedup),
        ]);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_match_paper_bands() {
        let rows = run(&ExpConfig::fast());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            let tol = 0.20;
            assert!(
                (r.speedup - r.paper_speedup).abs() <= tol,
                "{}: got {:.2}, paper {:.2}",
                r.pair,
                r.speedup,
                r.paper_speedup
            );
        }
        // Ranking is preserved exactly.
        assert!(rows[2].speedup > rows[1].speedup);
        assert!(rows[1].speedup > rows[0].speedup);
    }
}
