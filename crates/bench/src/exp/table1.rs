//! Table 1: average GPU utilization of the ten paper workloads, measured by
//! the offline profiler on a dedicated simulated V100.

use orion_gpu::spec::GpuSpec;
use orion_profiler::profile_workload;
use orion_workloads::model::{ModelKind, Workload};
use orion_workloads::registry::{inference_workload, training_workload, ALL_MODELS};

use crate::exp::{par_map, ExpConfig};
use crate::table::{f1, TextTable};

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload label.
    pub label: String,
    /// Batch size.
    pub batch: u32,
    /// Average SM-busy percentage.
    pub sm_busy: f64,
    /// Average compute-throughput percentage.
    pub compute: f64,
    /// Average memory-bandwidth percentage.
    pub mem_bw: f64,
    /// Memory-capacity percentage.
    pub mem_cap: f64,
    /// Solo request latency / iteration time in ms.
    pub latency_ms: f64,
}

fn measure(w: &Workload, spec: &GpuSpec) -> Row {
    let p = profile_workload(w, spec).expect("table1 workload fits the profiling device");
    let batch = match w.kind {
        orion_workloads::model::WorkloadKind::Inference { batch } => batch,
        orion_workloads::model::WorkloadKind::Training { batch } => batch,
    };
    Row {
        label: w.label(),
        batch,
        sm_busy: 100.0 * p.utilization.sm_busy,
        compute: 100.0 * p.utilization.compute,
        mem_bw: 100.0 * p.utilization.mem_bw,
        mem_cap: 100.0 * p.memory_peak as f64 / spec.memory_capacity as f64,
        latency_ms: p.request_latency.as_millis_f64(),
    }
}

/// Profiles all ten workloads (inference then training, Table 1 order).
pub fn run(_cfg: &ExpConfig) -> Vec<Row> {
    let spec = GpuSpec::v100_16gb();
    let items: Vec<(ModelKind, bool)> = inference_order()
        .into_iter()
        .map(|m| (m, false))
        .chain(training_order().into_iter().map(|m| (m, true)))
        .collect();
    par_map(items, |_, (m, training)| {
        let w = if training {
            training_workload(m)
        } else {
            inference_workload(m)
        };
        measure(&w, &spec)
    })
}

fn inference_order() -> [ModelKind; 5] {
    [
        ModelKind::ResNet50,
        ModelKind::MobileNetV2,
        ModelKind::ResNet101,
        ModelKind::Bert,
        ModelKind::Transformer,
    ]
}

fn training_order() -> [ModelKind; 5] {
    inference_order()
}

/// Prints the table with the paper's reference values alongside.
pub fn print(rows: &[Row]) {
    println!("# Table 1: average GPU utilization (measured on the simulated V100)");
    let paper: &[(&str, f64, f64, f64, f64)] = &[
        ("ResNet50-inf-bs4", 24.0, 30.0, 22.0, 9.0),
        ("MobileNetV2-inf-bs4", 6.0, 18.0, 21.0, 7.0),
        ("ResNet101-inf-bs4", 29.0, 24.0, 37.0, 9.0),
        ("BERT-inf-bs2", 95.0, 72.0, 28.0, 14.0),
        ("Transformer-inf-bs4", 61.0, 52.0, 29.0, 10.0),
        ("ResNet50-train-bs32", 81.0, 48.0, 45.0, 32.0),
        ("MobileNetV2-train-bs64", 71.0, 34.0, 49.0, 43.0),
        ("ResNet101-train-bs32", 85.0, 50.0, 43.0, 39.0),
        ("BERT-train-bs8", 61.0, 44.0, 21.0, 38.0),
        ("Transformer-train-bs8", 49.5, 29.0, 30.0, 53.0),
    ];
    let mut t = TextTable::new(vec![
        "workload",
        "SM%(paper)",
        "compute%(paper)",
        "membw%(paper)",
        "memcap%(paper)",
        "latency[ms]",
    ]);
    for r in rows {
        let p = paper.iter().find(|(l, ..)| *l == r.label);
        let fmt = |v: f64, pv: Option<f64>| match pv {
            Some(pv) => format!("{} ({})", f1(v), f1(pv)),
            None => f1(v),
        };
        t.row(vec![
            r.label.clone(),
            fmt(r.sm_busy, p.map(|x| x.1)),
            fmt(r.compute, p.map(|x| x.2)),
            fmt(r.mem_bw, p.map(|x| x.3)),
            fmt(r.mem_cap, p.map(|x| x.4)),
            f1(r.latency_ms),
        ]);
    }
    print!("{}", t.render());
}

/// All models covered (test helper).
pub fn covers_all_models(rows: &[Row]) -> bool {
    ALL_MODELS.iter().all(|m| {
        rows.iter()
            .filter(|r| r.label.starts_with(m.name()))
            .count()
            == 2
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_rows_and_calibration_bands() {
        let rows = run(&ExpConfig::fast());
        assert_eq!(rows.len(), 10);
        assert!(covers_all_models(&rows));
        for r in &rows {
            assert!(r.compute < 100.0 && r.mem_bw < 100.0);
            assert!(r.latency_ms > 1.0);
        }
        // Spot-check the strongest calibration anchors (within +-15 points).
        let find = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
        let bert = find("BERT-inf-bs2");
        assert!((bert.compute - 72.0).abs() < 15.0, "BERT compute {}", bert.compute);
        assert!(bert.sm_busy > 80.0, "BERT sm {}", bert.sm_busy);
        let mn = find("MobileNetV2-inf-bs4");
        assert!(mn.sm_busy < 20.0, "MobileNet sm {}", mn.sm_busy);
        let rn_t = find("ResNet50-train-bs32");
        assert!((rn_t.compute - 48.0).abs() < 15.0, "RN50 train compute {}", rn_t.compute);
        assert!((rn_t.mem_bw - 45.0).abs() < 15.0, "RN50 train membw {}", rn_t.mem_bw);
    }
}
