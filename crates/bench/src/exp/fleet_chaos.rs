//! Fleet chaos grid: the fleet control plane under GPU failure injection.
//!
//! Not a figure from the paper — this grid closes the loop between PR 4's
//! single-GPU fault machinery and the fleet control plane: a
//! `FleetFaultPlan` deterministically marks GPUs transiently faulted or
//! permanently dead at epoch boundaries, sticky in-episode faults come from
//! the existing `gpu-sim` injector, and `FleetSim` triages the outcomes —
//! HP-first evacuation, exponential-backoff quarantine with probationary
//! return, shed-BE-first degraded-capacity operation.
//!
//! Cells share one synthesized churn trace and differ only in the fault
//! plan:
//!
//! * `fault-free` — no plan armed. Must construct none of the fault
//!   machinery and reproduce the exact `jobs_digest` of the plain fleet
//!   grid's `orion-offline` cell.
//! * `chaos-lite` — half the transient/dead rates of `chaos`.
//! * `chaos` — the headline rates: the grid the acceptance bar reads
//!   (HP attainment under chaos ≥ 0.9× fault-free while BE is shed first).
//!
//! With `ORION_JSONL` set, each cell appends one line carrying a
//! `fleet_chaos` block: the `fleet` aggregates plus the robustness roll-up
//! and the HP-attainment-vs-fault-free ratio. Chaos cells replay
//! byte-identically at any thread count (chaos arm of the determinism
//! test).

use orion_core::cluster::{FleetFaultPlan, FleetReport};
use orion_core::policy::PolicyKind;
use orion_gpu::fault::FaultRates;
use orion_json::{json, Value};

use crate::exp::fleet::{fleet_config, fleet_dims, fleet_trace, robustness_json, run_fleet_on};
use crate::exp::ExpConfig;
use crate::runner::{maybe_append_jsonl_values, Runner};
use crate::table::{f2, TextTable};

/// One chaos cell: a fault plan (or none) over the shared trace.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cell label: `fault-free`, `chaos-lite`, `chaos`.
    pub mode: &'static str,
    /// The fleet-level report.
    pub report: FleetReport,
    /// HP SLO attainment of this cell over the fault-free cell's.
    pub hp_vs_fault_free: f64,
}

/// The headline chaos plan for the grid. Fast mode compresses the rates so
/// a 8-GPU x 3-epoch debug run still exercises death, quarantine, and
/// evacuation; full mode uses fleet-realistic per-epoch rates.
pub fn chaos_plan(cfg: &ExpConfig) -> FleetFaultPlan {
    let mut plan = FleetFaultPlan::new(cfg.seed);
    if cfg.fast {
        plan.transient_rate = 0.25;
        plan.dead_rate = 0.10;
        plan.episode_rates = FaultRates {
            kernel_fault: 0.05,
            ..FaultRates::default()
        };
    }
    plan
}

/// `chaos_plan` at half the transient/dead rates (the `chaos-lite` cell).
pub fn lite_plan(cfg: &ExpConfig) -> FleetFaultPlan {
    let mut plan = chaos_plan(cfg);
    plan.transient_rate /= 2.0;
    plan.dead_rate /= 2.0;
    plan
}

/// The `fleet_chaos` JSONL block for one cell.
pub fn chaos_json(cfg: &ExpConfig, cell: &Cell) -> Value {
    let r = &cell.report;
    let mut block = json!({
        "mode": cell.mode,
        "gpus": r.gpus as u64,
        "epochs": r.epochs as u64,
        "jobs": r.jobs.len() as u64,
        "hp_slo_attainment": r.hp_slo_attainment,
        "be_slo_attainment": r.be_slo_attainment,
        "slo_attainment": r.slo_attainment,
        "hp_vs_fault_free": cell.hp_vs_fault_free,
        "episode_errors": r.episode_errors,
        "never_placed": r.never_placed as u64,
        "jobs_digest": format!("{:016x}", r.jobs_digest()),
    });
    if let Some(ro) = robustness_json(r) {
        if let Value::Object(map) = &mut block {
            map.push(("robustness".to_string(), ro));
        }
    }
    json!({
        "seed": cfg.seed,
        "fleet_chaos": block,
    })
}

/// Runs the chaos grid: fault-free baseline plus two chaos rates over one
/// shared trace, all under the Orion policy with offline profiles.
pub fn run(cfg: &ExpConfig) -> Vec<Cell> {
    let dims = fleet_dims(cfg);
    let runner = Runner::from_env().with_progress(false);
    let plans: Vec<(&'static str, Option<FleetFaultPlan>)> = vec![
        ("fault-free", None),
        ("chaos-lite", Some(lite_plan(cfg))),
        ("chaos", Some(chaos_plan(cfg))),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    let mut fault_free_hp = 1.0;
    for (mode, plan) in plans {
        let trace = fleet_trace(cfg, dims);
        let mut fcfg = fleet_config(cfg, dims, PolicyKind::orion_default(), false, false);
        fcfg.faults = plan;
        if runner.progress_enabled() {
            eprintln!(
                "[fleet-chaos] {mode}: {} GPUs, {} jobs, {} epochs",
                dims.0, dims.1, dims.2
            );
        }
        let report = run_fleet_on(&runner, trace, fcfg)
            .unwrap_or_else(|e| panic!("fleet-chaos cell {mode} failed: {e}"));
        if mode == "fault-free" {
            fault_free_hp = report.hp_slo_attainment;
        }
        let hp_vs_fault_free = if fault_free_hp > 0.0 {
            report.hp_slo_attainment / fault_free_hp
        } else {
            1.0
        };
        cells.push(Cell {
            mode,
            report,
            hp_vs_fault_free,
        });
    }
    let lines: Vec<Value> = cells.iter().map(|c| chaos_json(cfg, c)).collect();
    maybe_append_jsonl_values(&lines);
    cells
}

/// Prints the chaos grid.
pub fn print(cells: &[Cell]) {
    println!("# Fleet chaos: GPU failure domains, HP-first evacuation, degraded capacity");
    println!("# (hp-vs-ff = HP SLO attainment relative to the fault-free cell)");
    let mut t = TextTable::new(vec![
        "mode",
        "hp-slo%",
        "be-slo%",
        "hp-vs-ff",
        "dead",
        "quarantines",
        "evacuations",
        "recovered",
        "max-recovery",
        "be-shed",
        "hp-rejected",
        "avail%",
    ]);
    for c in cells {
        let r = &c.report;
        let ro = &r.robustness;
        t.row(vec![
            c.mode.to_string(),
            f2(100.0 * r.hp_slo_attainment),
            f2(100.0 * r.be_slo_attainment),
            f2(c.hp_vs_fault_free),
            ro.gpus_dead.to_string(),
            ro.quarantines.to_string(),
            ro.evacuations.to_string(),
            ro.evacuations_recovered.to_string(),
            ro.max_epochs_to_recovery.to_string(),
            (ro.be_preempted + ro.be_lost).to_string(),
            ro.hp_rejected.to_string(),
            f2(100.0 * if c.mode == "fault-free" { 1.0 } else { ro.availability }),
        ]);
    }
    print!("{}", t.render());
}
