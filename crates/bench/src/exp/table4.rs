//! Table 4: training throughput on a dedicated GPU vs. collocated (as the
//! best-effort job) with a Poisson-arrival inference job under Orion, and
//! the resulting cost savings of using one GPU instead of two.

use orion_core::prelude::*;
use orion_metrics::cost_savings;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;
use orion_workloads::registry::{training_workload, ALL_MODELS};

use crate::exp::{
    be_training, hp_inference, ideal_throughput, mean, par_map, run_grid, ExpConfig,
};
use crate::runner::Scenario;
use crate::table::{f2, ratio, TextTable};

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Row {
    /// Training model.
    pub model: ModelKind,
    /// Dedicated-GPU training iterations/sec.
    pub dedicated: f64,
    /// Collocated training iterations/sec (mean over HP inference jobs).
    pub collocated: f64,
    /// Cost savings (paper formula, 2 jobs).
    pub savings: f64,
    /// Paper's reported savings.
    pub paper_savings: f64,
}

/// Runs the cost-savings experiment for every training model.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let rc = cfg.run_config();
    let paper = [
        (ModelKind::ResNet50, 1.45),
        (ModelKind::MobileNetV2, 1.40),
        (ModelKind::ResNet101, 1.49),
        (ModelKind::Bert, 1.26),
        (ModelKind::Transformer, 1.30),
    ];
    let hp_models: Vec<ModelKind> = if cfg.fast {
        vec![ModelKind::ResNet50]
    } else {
        vec![ModelKind::ResNet50, ModelKind::Bert, ModelKind::MobileNetV2]
    };
    let dedicateds = par_map(ALL_MODELS.to_vec(), |_, m| {
        ideal_throughput(
            &ClientSpec::best_effort(training_workload(m), ArrivalProcess::ClosedLoop),
            &rc,
        )
    });

    let mut grid = Vec::new();
    for m in ALL_MODELS {
        for &hp_model in &hp_models {
            let hp = hp_inference(
                hp_model,
                ArrivalProcess::Poisson {
                    rps: PaperRates::inf_train_poisson(hp_model),
                },
            );
            grid.push(Scenario::new(
                format!("{}-inf+{}-train", hp_model.name(), m.name()),
                PolicyKind::orion_default(),
                vec![hp, be_training(m)],
                rc.clone(),
            ));
        }
    }
    let mut outcomes = run_grid(grid).into_iter();

    let mut rows = Vec::new();
    for (m, dedicated) in ALL_MODELS.into_iter().zip(dedicateds) {
        let cols: Vec<f64> = hp_models
            .iter()
            .map(|_| {
                outcomes
                    .next()
                    .expect("grid covers every cell")
                    .res()
                    .be_throughput()
            })
            .collect();
        let collocated = mean(&cols);
        let savings = cost_savings(2, collocated, dedicated);
        let paper_savings = paper
            .iter()
            .find(|(pm, _)| *pm == m)
            .map(|(_, s)| *s)
            .unwrap_or(f64::NAN);
        rows.push(Row {
            model: m,
            dedicated,
            collocated,
            savings,
            paper_savings,
        });
    }
    rows
}

/// Prints the table.
pub fn print(rows: &[Row]) {
    println!("# Table 4: dedicated vs collocated training throughput and cost savings (Orion)");
    let mut t = TextTable::new(vec![
        "model",
        "dedicated it/s",
        "collocated it/s",
        "cost savings",
        "paper",
    ]);
    for r in rows {
        t.row(vec![
            r.model.name().to_string(),
            f2(r.dedicated),
            f2(r.collocated),
            ratio(r.savings),
            ratio(r.paper_savings),
        ]);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_exceed_one_for_every_model() {
        // Collocation must beat dedicating two GPUs: savings > 1.0,
        // in the paper's 1.26-1.49 neighbourhood.
        for r in run(&ExpConfig::fast()) {
            assert!(r.dedicated > 0.0);
            assert!(
                r.savings > 1.0,
                "{}: savings {:.2}",
                r.model.name(),
                r.savings
            );
            assert!(
                r.savings < 2.0,
                "{}: savings {:.2} impossibly high",
                r.model.name(),
                r.savings
            );
        }
    }
}
