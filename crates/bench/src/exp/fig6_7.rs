//! Figures 6 and 7: high-priority inference collocated with best-effort
//! training (inf-train), under Apollo-trace (Fig. 6) or Poisson (Fig. 7)
//! arrivals.
//!
//! For each high-priority model, the paper averages over collocations with
//! each of the five training jobs and reports (a) the HP job's p99 latency
//! per policy (with Ideal = dedicated-GPU latency) and (b) the HP inference
//! throughput plus the mean best-effort training throughput.

use orion_core::prelude::*;
use orion_workloads::arrivals::{ArrivalProcess, PaperRates};
use orion_workloads::model::ModelKind;
use orion_workloads::registry::ALL_MODELS;

use crate::exp::{
    be_training, hp_inference, hp_mut, ideal_hp, mean, par_map, run_grid, standard_policies,
    std_dev, ExpConfig,
};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// Arrival flavour of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrivals {
    /// Figure 6: the (synthesized) Apollo autonomous-driving trace.
    Apollo,
    /// Figure 7: Poisson arrivals at Table 3's inf-train rates.
    Poisson,
}

impl Arrivals {
    fn process(self, model: ModelKind) -> ArrivalProcess {
        match self {
            Arrivals::Apollo => ArrivalProcess::Apollo {
                mean_rps: PaperRates::apollo_mean(model),
            },
            Arrivals::Poisson => ArrivalProcess::Poisson {
                rps: PaperRates::inf_train_poisson(model),
            },
        }
    }
}

/// One (hp model, policy) cell: averaged over the collocated training jobs.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Policy label.
    pub policy: &'static str,
    /// Mean p99 latency across collocations (ms).
    pub p99_ms: f64,
    /// Std-dev of p99 across collocations (ms).
    pub p99_sd: f64,
    /// Mean p95 latency across collocations (ms).
    pub p95_ms: f64,
    /// HP inference throughput (req/s), averaged.
    pub hp_tput: f64,
    /// Mean best-effort training throughput (iters/s).
    pub be_tput: f64,
}

/// One row of the figure: a high-priority model with its Ideal reference and
/// a cell per policy.
#[derive(Debug)]
pub struct ModelRow {
    /// The high-priority model.
    pub model: ModelKind,
    /// Dedicated-GPU p99 (ms).
    pub ideal_p99: f64,
    /// Dedicated-GPU inference throughput (req/s).
    pub ideal_tput: f64,
    /// Per-policy cells.
    pub cells: Vec<Cell>,
}

/// Runs the inf-train experiment for every HP model and policy.
pub fn run(cfg: &ExpConfig, arrivals: Arrivals) -> Vec<ModelRow> {
    let rc = cfg.run_config();
    let hp_models: Vec<ModelKind> = if cfg.fast {
        vec![ModelKind::ResNet50, ModelKind::MobileNetV2]
    } else {
        ALL_MODELS.to_vec()
    };
    let be_models: Vec<ModelKind> = if cfg.fast {
        vec![ModelKind::ResNet50, ModelKind::Bert]
    } else {
        ALL_MODELS.to_vec()
    };

    // Dedicated-GPU references, one per HP model, in parallel.
    let hps: Vec<ClientSpec> = hp_models
        .iter()
        .map(|&m| hp_inference(m, arrivals.process(m)))
        .collect();
    let ideals = par_map(hps.clone(), |_, hp| ideal_hp(&hp, &rc));

    // The collocation grid: hp_model x policy x be partner.
    let policies = standard_policies();
    let mut grid = Vec::new();
    for (hi, (&hp_model, hp)) in hp_models.iter().zip(&hps).enumerate() {
        for policy in &policies {
            for (bi, &bm) in be_models.iter().enumerate() {
                // Seed-pair the policies: every policy sees identical
                // arrivals for a given (hp, be) combination.
                grid.push(
                    Scenario::new(
                        format!("{}+{}-train", hp_model.name(), bm.name()),
                        policy.clone(),
                        vec![hp.clone(), be_training(bm)],
                        rc.clone(),
                    )
                    .with_seed_cell((hi * be_models.len() + bi) as u64),
                );
            }
        }
    }
    let mut outcomes = run_grid(grid).into_iter();

    let mut rows = Vec::new();
    for (&hp_model, (ideal_p99, ideal_tput)) in hp_models.iter().zip(ideals) {
        let mut cells = Vec::new();
        for policy in &policies {
            let mut p99s = Vec::new();
            let mut p95s = Vec::new();
            let mut hp_tputs = Vec::new();
            let mut be_tputs = Vec::new();
            for _ in &be_models {
                let mut o = outcomes.next().expect("grid covers every cell");
                be_tputs.push(o.res().be_throughput());
                let hp_res = hp_mut(o.res_mut());
                p99s.push(hp_res.latency.p99().as_millis_f64());
                p95s.push(hp_res.latency.p95().as_millis_f64());
                hp_tputs.push(hp_res.throughput);
            }
            cells.push(Cell {
                policy: policy.label(),
                p99_ms: mean(&p99s),
                p99_sd: std_dev(&p99s),
                p95_ms: mean(&p95s),
                hp_tput: mean(&hp_tputs),
                be_tput: mean(&be_tputs),
            });
        }
        rows.push(ModelRow {
            model: hp_model,
            ideal_p99,
            ideal_tput,
            cells,
        });
    }
    rows
}

/// Prints the two panels of the figure.
pub fn print(rows: &[ModelRow], arrivals: Arrivals) {
    let title = match arrivals {
        Arrivals::Apollo => "Figure 6: Inference-Training (Apollo trace)",
        Arrivals::Poisson => "Figure 7: Inference-Training (Poisson)",
    };
    println!("# {title}");
    println!("# (a) p99 latency of the HP inference job, averaged over BE training jobs [ms]");
    let mut t = TextTable::new(vec![
        "hp-model", "Ideal", "Temporal", "Streams", "MPS", "REEF", "Orion", "Orion/Ideal",
    ]);
    for r in rows {
        let get = |name: &str| {
            r.cells
                .iter()
                .find(|c| c.policy == name)
                .map(|c| c.p99_ms)
                .unwrap_or(f64::NAN)
        };
        let orion = get("Orion");
        t.row(vec![
            r.model.name().to_string(),
            f2(r.ideal_p99),
            f2(get("Temporal")),
            f2(get("Streams")),
            f2(get("MPS")),
            f2(get("REEF")),
            f2(orion),
            format!("{:.2}x", orion / r.ideal_p99),
        ]);
    }
    print!("{}", t.render());

    println!("# (b) throughput: HP inference req/s + mean BE training iters/s");
    let mut t = TextTable::new(vec![
        "hp-model", "Ideal-inf", "policy", "hp-req/s", "be-iters/s",
    ]);
    for r in rows {
        for c in &r.cells {
            t.row(vec![
                r.model.name().to_string(),
                f2(r.ideal_tput),
                c.policy.to_string(),
                f2(c.hp_tput),
                f2(c.be_tput),
            ]);
        }
    }
    print!("{}", t.render());
}
