//! Experiment runners, one module per paper table/figure.
//!
//! Each module exposes `run(cfg) -> <data>` plus a `print` entry used by its
//! binary in `src/bin/`. All experiments honour [`ExpConfig::fast`] so the
//! full suite stays runnable in CI (shorter horizons, fewer collocations).
//!
//! Every module executes its cells through the shared [`Runner`]
//! (`crate::runner`): collocation grids go through [`run_grid`], and
//! auxiliary sweeps (dedicated-GPU references, profiling passes,
//! engine-level microbenchmarks) through [`par_map`]. Both fan work across
//! `ORION_THREADS` workers with per-cell seeds derived from
//! `(base_seed, cell_index)`, so results are identical at any thread count.

pub mod fig1;
pub mod fig10;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig4;
pub mod fig6_7;
pub mod fig8_9;
pub mod fleet;
pub mod fleet_chaos;
pub mod llm_serving;
pub mod makespan;
pub mod online;
pub mod overhead;
pub mod robustness;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table4;

use orion_core::client::ClientPriority;
use orion_core::prelude::*;
use orion_desim::time::SimTime;
use orion_gpu::spec::GpuSpec;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;
use orion_workloads::registry::{inference_workload, training_workload};

use crate::runner::{maybe_write_jsonl, CellOutcome, Runner, Scenario};

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Reduce horizons/collocation counts for quick runs (CI, tests).
    pub fast: bool,
    /// Seed for arrival processes.
    pub seed: u64,
}

impl ExpConfig {
    /// Full-length experiments (the defaults used for EXPERIMENTS.md).
    pub fn full() -> Self {
        ExpConfig {
            fast: false,
            seed: 42,
        }
    }

    /// Abbreviated experiments.
    pub fn fast() -> Self {
        ExpConfig {
            fast: true,
            seed: 42,
        }
    }

    /// Reads `ORION_FAST=1` from the environment (used by the binaries).
    pub fn from_env() -> Self {
        if std::env::var("ORION_FAST").map(|v| v == "1").unwrap_or(false) {
            Self::fast()
        } else {
            Self::full()
        }
    }

    /// The collocation run configuration this experiment config implies.
    pub fn run_config(&self) -> RunConfig {
        let mut rc = if self.fast {
            let mut rc = RunConfig::quick_test();
            rc.horizon = SimTime::from_secs(4);
            rc.warmup = SimTime::from_millis(800);
            rc
        } else {
            RunConfig::paper_default()
        };
        rc.seed = self.seed;
        rc
    }

    /// Same, on the A100 spec (Figure 13).
    pub fn run_config_a100(&self) -> RunConfig {
        self.run_config().with_spec(GpuSpec::a100_40gb())
    }
}

/// Orion with `SM_THRESHOLD` opened up to admit the largest best-effort
/// kernels — the configuration the paper's binary-search tuner converges to
/// for throughput-oriented high-priority jobs (§5.1.1). Used by the
/// closed-loop throughput experiments (Figures 2 and 10, makespan).
pub fn orion_aggressive(rc: &RunConfig) -> PolicyKind {
    PolicyKind::Orion(
        orion_core::policy::OrionConfig::default().with_sm_threshold(rc.spec.num_sms + 1),
    )
}

/// The baseline set most figures compare (plus Ideal, computed separately).
pub fn standard_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Temporal,
        PolicyKind::Streams,
        PolicyKind::Mps,
        PolicyKind::reef_default(),
        PolicyKind::orion_default(),
    ]
}

/// A high-priority inference client for `model` with the given arrivals.
pub fn hp_inference(model: ModelKind, arrivals: ArrivalProcess) -> ClientSpec {
    ClientSpec::high_priority(inference_workload(model), arrivals)
}

/// A best-effort closed-loop training client for `model`.
pub fn be_training(model: ModelKind) -> ClientSpec {
    ClientSpec::best_effort(training_workload(model), ArrivalProcess::ClosedLoop)
}

/// A best-effort inference client for `model`.
pub fn be_inference(model: ModelKind, arrivals: ArrivalProcess) -> ClientSpec {
    ClientSpec::best_effort(inference_workload(model), arrivals)
}

/// Runs a scenario grid on the shared [`Runner`] (thread count from
/// `ORION_THREADS`), appends the optional `ORION_JSONL` per-cell stream,
/// and emits the one-line wall-clock summary on stderr (suppressed by
/// `ORION_QUIET=1`). Outcomes come back in grid order.
pub fn run_grid(scenarios: Vec<Scenario>) -> Vec<CellOutcome> {
    let runner = Runner::from_env();
    let mut out = runner.run_scenarios(scenarios);
    maybe_write_jsonl(&mut out);
    if runner.progress_enabled() {
        eprintln!("[runner] {}", runner.summary(&out));
    }
    out
}

/// Deterministic parallel map over auxiliary work items (dedicated-GPU
/// references, profiling passes, engine microbenchmarks) on the shared
/// runner, without per-cell progress noise. Results come back in input
/// order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Runner::from_env().with_progress(false).map(items, f)
}

/// The high-priority client of a finished collocation (latency percentiles
/// need `&mut` for the lazy sort).
pub fn hp_mut(r: &mut RunResult) -> &mut orion_core::world::ClientResult {
    r.clients
        .iter_mut()
        .find(|c| c.priority == ClientPriority::HighPriority)
        .expect("hp client present")
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// Population standard deviation (0.0 for an empty slice).
pub fn std_dev(v: &[f64]) -> f64 {
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len().max(1) as f64).sqrt()
}

/// Ideal reference for an HP client: dedicated-GPU p99 latency (ms) and
/// throughput (req/s).
pub fn ideal_hp(client: &ClientSpec, rc: &RunConfig) -> (f64, f64) {
    let mut r = orion_core::world::run_dedicated(client.clone(), rc)
        .expect("single client fits on a dedicated device");
    let hp = &mut r.clients[0];
    (hp.latency.p99().as_millis_f64(), hp.throughput)
}

/// Ideal (dedicated-GPU) throughput for any client.
pub fn ideal_throughput(client: &ClientSpec, rc: &RunConfig) -> f64 {
    orion_core::world::run_dedicated(client.clone(), rc)
        .expect("single client fits on a dedicated device")
        .clients[0]
        .throughput
}
