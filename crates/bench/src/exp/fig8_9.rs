//! Figures 8 and 9: GPU utilization of a ResNet50 inference job on a
//! dedicated GPU vs. collocated with ResNet50 training under Orion.
//!
//! The inference job receives uniform arrivals at 100 requests/second; Orion
//! fills the fine-grained idle periods, raising average compute-throughput
//! utilization (Fig. 8: 7% -> 36% in the paper), memory-bandwidth
//! utilization (Fig. 9: 10% -> 47%), and SM utilization (11% -> 49%).

use orion_core::prelude::*;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;
use orion_workloads::registry::{inference_workload, training_workload};

use crate::exp::{run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f1, f2, TextTable};

/// Utilization summary of one configuration.
#[derive(Debug, Clone)]
pub struct UtilRow {
    /// Configuration label.
    pub label: &'static str,
    /// Average compute-throughput utilization (%).
    pub compute: f64,
    /// Average memory-bandwidth utilization (%).
    pub mem_bw: f64,
    /// Average SM utilization (%).
    pub sm: f64,
    /// Bucketed compute timeline (for the figure).
    pub timeline_compute: Vec<f64>,
    /// Bucketed memory-bandwidth timeline.
    pub timeline_mem: Vec<f64>,
}

/// Runs the alone and collocated configurations.
pub fn run(cfg: &ExpConfig) -> (UtilRow, UtilRow) {
    let mut rc = cfg.run_config();
    rc.record_timeline = true;
    let inference = || {
        ClientSpec::high_priority(
            inference_workload(ModelKind::ResNet50),
            ArrivalProcess::Uniform { rps: 100.0 },
        )
    };

    // Two cells: dedicated (MPS with a single client) and collocated under
    // Orion — both run through the shared runner.
    // Both cells share seed cell 0: the collocated run sees the same
    // inference arrivals as the dedicated one.
    let grid = vec![
        Scenario::new(
            "RN50-inf alone",
            PolicyKind::Mps,
            vec![inference()],
            rc.clone(),
        )
        .with_seed_cell(0),
        Scenario::new(
            "RN50-inf + RN50-train (Orion)",
            PolicyKind::orion_default(),
            vec![
                inference(),
                ClientSpec::best_effort(
                    training_workload(ModelKind::ResNet50),
                    ArrivalProcess::ClosedLoop,
                ),
            ],
            rc.clone(),
        )
        .with_seed_cell(0),
    ];
    let outcomes = run_grid(grid);
    let util_row = |o: &crate::runner::CellOutcome, label: &'static str| {
        let r = o.res();
        UtilRow {
            label,
            compute: 100.0 * r.utilization.compute,
            mem_bw: 100.0 * r.utilization.mem_bw,
            sm: 100.0 * r.utilization.sm_busy,
            timeline_compute: r.timeline.iter().map(|s| s.compute).collect(),
            timeline_mem: r.timeline.iter().map(|s| s.mem_bw).collect(),
        }
    };
    let alone_row = util_row(&outcomes[0], "ResNet50 inference alone");
    let col_row = util_row(
        &outcomes[1],
        "ResNet50 inference + ResNet50 training (Orion)",
    );
    (alone_row, col_row)
}

/// Prints both figures' averages and a coarse timeline.
pub fn print(alone: &UtilRow, col: &UtilRow) {
    println!("# Figures 8 & 9: utilization, inference alone vs collocated with training (Orion)");
    let mut t = TextTable::new(vec!["configuration", "compute%", "mem_bw%", "SM%"]);
    for r in [alone, col] {
        t.row(vec![
            r.label.to_string(),
            f1(r.compute),
            f1(r.mem_bw),
            f1(r.sm),
        ]);
    }
    print!("{}", t.render());
    println!("# paper: compute 7% -> 36%, mem bw 10% -> 47%, SM 11% -> 49%");

    println!("# timeline excerpt (1 ms buckets, compute%):");
    let mut t = TextTable::new(vec!["t[ms]", "alone", "collocated"]);
    let n = alone
        .timeline_compute
        .len()
        .min(col.timeline_compute.len())
        .min(40);
    for i in 0..n {
        t.row(vec![
            i.to_string(),
            f2(100.0 * alone.timeline_compute[i]),
            f2(100.0 * col.timeline_compute[i]),
        ]);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collocation_raises_all_utilizations() {
        let (alone, col) = run(&ExpConfig::fast());
        assert!(alone.compute < 25.0, "alone compute {}", alone.compute);
        assert!(
            col.compute > 2.0 * alone.compute,
            "compute {} -> {}",
            alone.compute,
            col.compute
        );
        assert!(col.mem_bw > 2.0 * alone.mem_bw);
        assert!(col.sm > 2.0 * alone.sm);
    }
}
