//! Figure 2 (motivation): existing GPU collocation techniques leave
//! performance on the table.
//!
//! Three pairs of jobs whose aggregate requirements fit on one V100, each
//! pair a high-priority job plus a best-effort job, both issuing one request
//! at a time in a closed loop. The stacked bars are each job's throughput
//! under every sharing technique, normalized against "Ideal" = the sum of
//! dedicated-GPU throughputs.

use orion_core::prelude::*;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;
use orion_workloads::registry::{inference_workload, training_workload};

use crate::exp::{ideal_throughput, par_map, run_grid, ExpConfig};
use crate::runner::Scenario;
use crate::table::{f2, TextTable};

/// A collocation pair of the motivation experiment.
#[derive(Debug, Clone, Copy)]
pub struct Pair {
    /// Label shown in the figure.
    pub label: &'static str,
    /// High-priority job: (model, is_training).
    pub hp: (ModelKind, bool),
    /// Best-effort job: (model, is_training).
    pub be: (ModelKind, bool),
}

/// The three pairs (inference+training, inference+inference,
/// training+training — Tick-Tock applies to the last).
pub fn pairs() -> Vec<Pair> {
    vec![
        Pair {
            label: "RN50-inf + MNv2-train",
            hp: (ModelKind::ResNet50, false),
            be: (ModelKind::MobileNetV2, true),
        },
        Pair {
            label: "BERT-inf + TFM-inf",
            hp: (ModelKind::Bert, false),
            be: (ModelKind::Transformer, false),
        },
        Pair {
            label: "RN50-train + MNv2-train",
            hp: (ModelKind::ResNet50, true),
            be: (ModelKind::MobileNetV2, true),
        },
    ]
}

fn client(model: ModelKind, training: bool, hp: bool) -> ClientSpec {
    let w = if training {
        training_workload(model)
    } else {
        inference_workload(model)
    };
    if hp {
        ClientSpec::high_priority(w, ArrivalProcess::ClosedLoop)
    } else {
        ClientSpec::best_effort(w, ArrivalProcess::ClosedLoop)
    }
}

/// One bar: HP and BE throughput under one policy, as fractions of their
/// dedicated-GPU throughputs.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Policy label ("Ideal" for the reference bar).
    pub policy: &'static str,
    /// HP throughput / dedicated HP throughput.
    pub hp_norm: f64,
    /// BE throughput / dedicated BE throughput.
    pub be_norm: f64,
}

/// One pair's set of bars.
#[derive(Debug)]
pub struct PairBars {
    /// Pair label.
    pub label: &'static str,
    /// Bars, "Ideal" first.
    pub bars: Vec<Bar>,
}

/// Policies compared for one pair. Tick-Tock only applies when both jobs
/// are training; Orion runs with the tuned SM_THRESHOLD (the paper tunes it
/// up for throughput-oriented HP jobs, §5.1.1).
fn pair_policies(p: &Pair, rc: &RunConfig) -> Vec<PolicyKind> {
    let mut policies = vec![
        PolicyKind::Temporal,
        PolicyKind::Streams,
        PolicyKind::Mps,
        PolicyKind::reef_default(),
    ];
    if p.hp.1 && p.be.1 {
        policies.push(PolicyKind::TickTock);
    }
    policies.push(crate::exp::orion_aggressive(rc));
    policies
}

/// Runs the motivation experiment.
pub fn run(cfg: &ExpConfig) -> Vec<PairBars> {
    let rc = cfg.run_config();
    let ps = pairs();
    // Dedicated-GPU (Ideal) references, one per job, in parallel.
    let ideals = par_map(ps.clone(), |_, p| {
        (
            ideal_throughput(&client(p.hp.0, p.hp.1, true), &rc),
            ideal_throughput(&client(p.be.0, p.be.1, false), &rc),
        )
    });
    // The collocation grid: every pair under every applicable policy.
    let grid: Vec<Scenario> = ps
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            let rc = rc.clone();
            pair_policies(p, &rc).into_iter().map(move |policy| {
                // Seed-paired across policies per pair.
                Scenario::new(
                    p.label,
                    policy,
                    vec![client(p.hp.0, p.hp.1, true), client(p.be.0, p.be.1, false)],
                    rc.clone(),
                )
                .with_seed_cell(pi as u64)
            })
        })
        .collect();
    let outcomes = run_grid(grid);

    let mut out = Vec::new();
    let mut cursor = outcomes.into_iter();
    for (p, (hp_ded, be_ded)) in ps.iter().zip(ideals) {
        let mut bars = vec![Bar {
            policy: "Ideal",
            hp_norm: 1.0,
            be_norm: 1.0,
        }];
        for _ in pair_policies(p, &rc) {
            let o = cursor.next().expect("grid covers every (pair, policy)");
            let r = o.res();
            bars.push(Bar {
                policy: o.policy,
                hp_norm: r.hp().throughput / hp_ded.max(1e-9),
                be_norm: r.be_throughput() / be_ded.max(1e-9),
            });
        }
        out.push(PairBars {
            label: p.label,
            bars,
        });
    }
    out
}

/// Prints the stacked-bar data.
pub fn print(rows: &[PairBars]) {
    println!("# Figure 2: collocation techniques vs Ideal (closed loop)");
    println!("# hp/ded and be/ded are each job's throughput normalized to its dedicated GPU");
    let mut t = TextTable::new(vec!["pair", "policy", "hp/ded", "be/ded", "aggregate"]);
    for r in rows {
        for b in &r.bars {
            t.row(vec![
                r.label.to_string(),
                b.policy.to_string(),
                f2(b.hp_norm),
                f2(b.be_norm),
                f2(b.hp_norm + b.be_norm),
            ]);
        }
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orion_beats_temporal_and_reef_on_aggregate() {
        let rows = run(&ExpConfig::fast());
        for r in &rows {
            let agg = |name: &str| {
                r.bars
                    .iter()
                    .find(|b| b.policy == name)
                    .map(|b| b.hp_norm + b.be_norm)
                    .unwrap_or(0.0)
            };
            assert!(
                agg("Orion") > agg("Temporal"),
                "{}: orion {} <= temporal {}",
                r.label,
                agg("Orion"),
                agg("Temporal")
            );
            // REEF starves best-effort work in closed-loop collocation.
            let reef_be = r
                .bars
                .iter()
                .find(|b| b.policy == "REEF")
                .map(|b| b.be_norm)
                .unwrap_or(0.0);
            let orion_be = r
                .bars
                .iter()
                .find(|b| b.policy == "Orion")
                .map(|b| b.be_norm)
                .unwrap_or(0.0);
            assert!(
                orion_be >= reef_be * 0.9,
                "{}: orion be {} much worse than reef {}",
                r.label,
                orion_be,
                reef_be
            );
        }
    }
}
