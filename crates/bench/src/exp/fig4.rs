//! Figure 4: compute- vs memory-intensive kernel mix per workload.
//!
//! The paper classifies each workload's kernels as compute-intensive,
//! memory-intensive, or unknown (no roofline data and below both 60%
//! thresholds) and plots the mix per inference request / training minibatch.

use orion_workloads::model::ModelKind;
use orion_workloads::registry::{inference_workload, training_workload, ALL_MODELS};

use crate::exp::{par_map, ExpConfig};
use crate::table::TextTable;

/// Kernel mix of one workload.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Workload label.
    pub label: String,
    /// Compute-intensive kernel count.
    pub compute: usize,
    /// Memory-intensive kernel count.
    pub memory: usize,
    /// Unknown-profile kernel count.
    pub unknown: usize,
}

impl Mix {
    /// Total kernels per request.
    pub fn total(&self) -> usize {
        self.compute + self.memory + self.unknown
    }
}

/// Computes the mixes for all ten workloads.
pub fn run(_cfg: &ExpConfig) -> Vec<Mix> {
    let items: Vec<(ModelKind, bool)> = ALL_MODELS
        .into_iter()
        .map(|m| (m, false))
        .chain(ALL_MODELS.into_iter().map(|m| (m, true)))
        .collect();
    par_map(items, |_, (m, training)| {
        let w = if training {
            training_workload(m)
        } else {
            inference_workload(m)
        };
        let (c, mm, u) = w.profile_mix();
        Mix {
            label: w.label(),
            compute: c,
            memory: mm,
            unknown: u,
        }
    })
}

/// Prints the mixes.
pub fn print(mixes: &[Mix]) {
    println!("# Figure 4: kernel classification per request/minibatch");
    let mut t = TextTable::new(vec!["workload", "compute", "memory", "unknown", "total"]);
    for m in mixes {
        t.row(vec![
            m.label.clone(),
            m.compute.to_string(),
            m.memory.to_string(),
            m.unknown.to_string(),
            m.total().to_string(),
        ]);
    }
    print!("{}", t.render());

    let _ = ModelKind::ResNet50; // keep the import obviously used
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_both_profiles() {
        // The paper's takeaway: every DNN job contains both compute- and
        // memory-intensive kernels, enabling opposite-profile collocation.
        for m in run(&ExpConfig::fast()) {
            assert!(m.compute > 0, "{} has no compute kernels", m.label);
            assert!(m.memory > 0, "{} has no memory kernels", m.label);
            assert!(m.total() > 20, "{} too few kernels", m.label);
        }
    }

    #[test]
    fn training_has_unknown_update_kernels() {
        for m in run(&ExpConfig::fast())
            .into_iter()
            .filter(|m| m.label.contains("train"))
        {
            assert!(m.unknown > 50, "{} unknowns {}", m.label, m.unknown);
        }
    }
}
