//! Regenerates the 6.5 interception-overhead measurements.
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::overhead::run(&cfg);
    orion_bench::exp::overhead::print(&rows);
}
