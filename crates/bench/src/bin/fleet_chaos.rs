//! Regenerates the fleet chaos grid (failure domains + degraded capacity).
use orion_bench::exp::fleet_chaos::{print, run};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    print(&run(&cfg));
}
