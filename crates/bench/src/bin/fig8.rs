//! Regenerates Figure 8 (compute utilization: inference alone vs collocated).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let (alone, col) = orion_bench::exp::fig8_9::run(&cfg);
    orion_bench::exp::fig8_9::print(&alone, &col);
}
