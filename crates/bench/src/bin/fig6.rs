//! Regenerates Figure 6 (inference-training, Apollo trace).
use orion_bench::exp::fig6_7::{print, run, Arrivals};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = run(&cfg, Arrivals::Apollo);
    print(&rows, Arrivals::Apollo);
}
