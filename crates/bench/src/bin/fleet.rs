//! Regenerates the fleet-scale cluster simulation grid (churn + placement).
use orion_bench::exp::fleet::{print, run};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    print(&run(&cfg));
}
