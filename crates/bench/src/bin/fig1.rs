//! Regenerates Figure 1 (MobileNetV2 training utilization timeline).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let s = orion_bench::exp::fig1::run(&cfg);
    orion_bench::exp::fig1::print(&s);
}
