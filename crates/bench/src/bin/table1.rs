//! Regenerates Table 1 (average GPU utilization of all ten workloads).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::table1::run(&cfg);
    orion_bench::exp::table1::print(&rows);
}
