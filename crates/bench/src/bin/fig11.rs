//! Regenerates Figure 11 (inference-inference, Apollo trace).
use orion_bench::exp::fig11_12::{print, run, Arrivals};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = run(&cfg, Arrivals::Apollo);
    print(&rows, Arrivals::Apollo);
}
