//! Regenerates the LLM continuous-batching serving grid.
use orion_bench::exp::llm_serving::{print, run};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    print(&mut run(&cfg));
}
