//! Regenerates Figure 10 (training-training collocation).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::fig10::run(&cfg);
    orion_bench::exp::fig10::print(&rows);
}
