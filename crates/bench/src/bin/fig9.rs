//! Regenerates Figure 9 (memory-bandwidth utilization; shares Figure 8's runner).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let (alone, col) = orion_bench::exp::fig8_9::run(&cfg);
    orion_bench::exp::fig8_9::print(&alone, &col);
}
