//! Engine-throughput microbenchmark: measures how many simulated operations
//! per second the GPU engine hot path sustains, plus the wall-clock cost of a
//! Figure 6/7-style collocation run, and writes both to `BENCH_engine.json`.
//!
//! Driven by `scripts/bench.sh`. Environment:
//!
//! - `ORION_FAST=1` — smoke mode: fewer iterations, shorter collocation
//!   horizon (CI uses this; the numbers are not meaningful, the schema is).
//! - `ORION_BENCH_OUT=<path>` — output path (default `BENCH_engine.json`
//!   in the current directory, which `scripts/bench.sh` pins to repo root).
//!
//! Output schema (`orion-bench-engine/v2`):
//!
//! ```json
//! {
//!   "schema": "orion-bench-engine/v2",
//!   "fast": false,
//!   "events_per_sec": 11.5e6,         // peak ops/sec over engine configs
//!   "wall_ms": 343.0,                 // total wall clock of all sections
//!   "engine": [                       // one row per (streams x ops) config
//!     {"streams": 1, "ops": 1000, "iters": 20,
//!      "events_per_sec": 7.0e6, "wall_ms": 2.9,
//!      "eval_count": 12, "eval_full_count": 3, "eval_memo_count": 9,
//!      "rate_class_peak": 1, "materialization_count": 0}
//!   ],
//!   "collocation": {                  // one fig6_7-style cell, Orion policy
//!     "label": "resnet50+resnet50-train", "policy": "Orion",
//!     "wall_ms": 310.0, "ops": 81234, "events_per_sec": 2.6e5,
//!     "hp_p99_ms": 9.1, "be_tput": 3.4}
//! }
//! ```

use std::error::Error;
use std::time::Instant;

use orion_bench::exp::{be_training, hp_inference, ExpConfig};
use orion_core::prelude::*;
use orion_desim::time::SimTime;
use orion_gpu::engine::GpuEngine;
use orion_gpu::kernel::KernelBuilder;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;
use orion_json::{json, Value};
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::model::ModelKind;

/// Work-proportionality counters captured from one representative run of an
/// engine config (evaluator activity plus the lazy-engine instrumentation).
#[derive(Default, Clone, Copy)]
struct RunCounters {
    eval_count: u64,
    eval_full_count: u64,
    eval_memo_count: u64,
    rate_class_peak: u32,
    materialization_count: u64,
}

/// Submits `n_ops` kernels round-robin over `n_streams` streams and advances
/// until all complete. Returns the number of completions (== `n_ops`) and the
/// engine's work counters for the run.
///
/// The kernel descriptor is built once and submitted by reference
/// ([`GpuEngine::submit_kernel`]), so the timed region measures the engine,
/// not the builder or `Arc` refcount traffic.
fn submit_and_drain(n_ops: u64, n_streams: usize) -> Result<(u64, RunCounters), Box<dyn Error>> {
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    let streams: Vec<_> = (0..n_streams)
        .map(|_| e.create_stream(StreamPriority::DEFAULT))
        .collect();
    e.reserve_ops(n_ops as usize);
    let proto = KernelBuilder::new(0, "bench")
        .grid_blocks(40)
        .threads_per_block(256)
        .solo_duration(SimTime::from_micros(50))
        .utilization(0.5, 0.3)
        .build();
    for i in 0..n_ops {
        e.submit_kernel(streams[i as usize % n_streams], &proto)
            .map_err(|e| format!("submitting bench kernel {i}/{n_ops}: {e}"))?;
    }
    e.advance_to(SimTime::from_secs(60));
    let done = e.drain_completions().len() as u64;
    let counters = RunCounters {
        eval_count: e.eval_count(),
        eval_full_count: e.eval_full_count(),
        eval_memo_count: e.eval_memo_count(),
        rate_class_peak: e.rate_class_peak(),
        materialization_count: e.materialization_count(),
    };
    Ok((done, counters))
}

/// Times one engine config over `iters` timed iterations (plus one warmup).
fn engine_config(n_ops: u64, n_streams: usize, iters: u32) -> Result<Value, Box<dyn Error>> {
    let (done, counters) = submit_and_drain(n_ops, n_streams)?; // warmup
    if done != n_ops {
        return Err(format!(
            "engine dropped operations: {done}/{n_ops} completed (streams={n_streams})"
        )
        .into());
    }
    let start = Instant::now();
    for _ in 0..iters {
        submit_and_drain(std::hint::black_box(n_ops), n_streams)?;
    }
    let wall = start.elapsed();
    let total_ops = n_ops * iters as u64;
    let eps = total_ops as f64 / wall.as_secs_f64();
    eprintln!(
        "[bench] engine streams={n_streams} ops={n_ops}: {:.0} events/sec ({:?}/iter, \
         evals {}/{} full, classes<={}, materializations {})",
        eps,
        wall / iters,
        counters.eval_full_count,
        counters.eval_count,
        counters.rate_class_peak,
        counters.materialization_count,
    );
    Ok(json!({
        "streams": n_streams as u64,
        "ops": n_ops,
        "iters": iters,
        "events_per_sec": eps,
        "wall_ms": wall.as_secs_f64() * 1e3,
        "eval_count": counters.eval_count,
        "eval_full_count": counters.eval_full_count,
        "eval_memo_count": counters.eval_memo_count,
        "rate_class_peak": counters.rate_class_peak as u64,
        "materialization_count": counters.materialization_count,
    }))
}

/// One Figure 6/7-style collocation cell (HP ResNet50 inference under
/// Poisson arrivals + BE ResNet50 training, Orion policy), with the trace
/// enabled so the executed-op count is exact.
fn collocation(cfg: &ExpConfig) -> Result<Value, Box<dyn Error>> {
    let mut rc = cfg.run_config();
    rc.record_trace = true;
    let clients = vec![
        hp_inference(
            ModelKind::ResNet50,
            ArrivalProcess::Poisson { rps: 40.0 },
        ),
        be_training(ModelKind::ResNet50),
    ];
    let policy = PolicyKind::orion_default();
    let start = Instant::now();
    let mut r = run_collocation(policy, clients, &rc)
        .map_err(|e| format!("collocation cell failed to run: {e}"))?;
    let wall = start.elapsed();
    let ops = r.trace.as_ref().map_or(0, |t| t.len()) as u64;
    let eps = ops as f64 / wall.as_secs_f64();
    let be_tput = r.be_throughput();
    let hp = r
        .clients
        .iter_mut()
        .find(|c| c.priority == orion_core::client::ClientPriority::HighPriority)
        .ok_or("collocation cell has no high-priority client")?;
    eprintln!(
        "[bench] collocation {}: {} ops in {:.1} ms ({:.0} events/sec)",
        r.policy,
        ops,
        wall.as_secs_f64() * 1e3,
        eps
    );
    Ok(json!({
        "label": "resnet50+resnet50-train",
        "policy": r.policy,
        "wall_ms": wall.as_secs_f64() * 1e3,
        "ops": ops,
        "events_per_sec": eps,
        "hp_p99_ms": hp.latency.p99().as_millis_f64(),
        "be_tput": be_tput,
    }))
}

/// Scaling gate (`ORION_BENCH_GATE=1`): the 16-stream cell must stay within
/// 20% of the 4-stream cell, and the 64-stream cell must hold at least half
/// the 16-stream throughput — otherwise an evaluation or heap-scan cliff is
/// back. Runs its own moderately sized cells so CI's fast mode still gets a
/// low-noise measurement. Each cell is measured three times with the three
/// cells *interleaved* (so a transient load spike on the host hits every
/// cell, not just one), and the gate compares per-cell bests: a regression
/// gate cares whether the engine *can* reach the throughput, and a
/// best-of-N estimator is far less noisy than any single run on a shared
/// machine.
fn scaling_gate() -> Result<(), Box<dyn Error>> {
    let eps = |row: &Value| row["events_per_sec"].as_f64().unwrap_or(0.0);
    let mut best = [0.0f64; 3];
    for _ in 0..3 {
        for (slot, &streams) in [4usize, 16, 64].iter().enumerate() {
            let row = engine_config(3_000, streams, 7)?;
            best[slot] = best[slot].max(eps(&row));
        }
    }
    let (eps4, eps16, eps64) = (best[0], best[1], best[2]);
    if eps16 < 0.8 * eps4 {
        return Err(format!(
            "perf gate: events/sec fell off a cliff from 4 to 16 streams: \
             {eps4:.0} -> {eps16:.0} (more than 20% drop)"
        )
        .into());
    }
    // Bar placement: the pre-classes dense-scan engine measured a 64/16
    // ratio of ~0.29 (the cliff this gate exists to catch); the lazy
    // rate-class engine holds ~0.48-0.52 on the 1-core dev host (the
    // 64-stream cell legitimately pays re-classing churn when SM rationing
    // splits the cohort into granted/starved rate groups). 0.45 separates
    // the two regimes with margin on both sides.
    if eps64 < 0.45 * eps16 {
        return Err(format!(
            "perf gate: events/sec fell off a cliff from 16 to 64 streams: \
             {eps16:.0} -> {eps64:.0} (more than 55% drop)"
        )
        .into());
    }
    eprintln!(
        "[bench] perf gate ok: 4 streams {eps4:.0} ev/s, 16 streams {eps16:.0} ev/s, \
         64 streams {eps64:.0} ev/s"
    );
    Ok(())
}

/// Pins the glibc malloc thresholds by re-execing once with them set.
///
/// Each bench iteration allocates and frees multi-hundred-KB buffers (the op
/// slab, the completion vector). With default thresholds glibc returns those
/// to the OS on free — via `munmap` or heap trim, depending on allocation
/// history — and every iteration then re-faults the pages, which measures the
/// kernel's page allocator (~50-70ns/op of noise) instead of the engine.
/// Keeping freed buffers in-process makes iterations reuse warm pages and
/// makes runs reproducible. No-op when the caller already set the variables.
#[cfg(target_os = "linux")]
fn pin_malloc_thresholds() {
    const VARS: [&str; 2] = ["MALLOC_TRIM_THRESHOLD_", "MALLOC_MMAP_THRESHOLD_"];
    if VARS.iter().all(|v| std::env::var_os(v).is_some()) {
        return;
    }
    use std::os::unix::process::CommandExt;
    let Ok(exe) = std::env::current_exe() else {
        return;
    };
    let mut cmd = std::process::Command::new(exe);
    cmd.args(std::env::args_os().skip(1));
    for v in VARS {
        cmd.env(v, "1073741824");
    }
    // exec only returns on failure; fall through and run untuned.
    let _ = cmd.exec();
}

#[cfg(not(target_os = "linux"))]
fn pin_malloc_thresholds() {}

fn main() -> Result<(), Box<dyn Error>> {
    pin_malloc_thresholds();
    let cfg = ExpConfig::from_env();
    let iters: u32 = if cfg.fast { 3 } else { 20 };
    let configs: &[(u64, usize)] = if cfg.fast {
        &[(200, 1), (200, 4), (200, 16)]
    } else {
        &[
            (1_000, 1),
            (1_000, 4),
            (1_000, 16),
            (1_000, 64),
            (1_000, 256),
            (10_000, 4),
            (100_000, 4),
        ]
    };

    if std::env::var("ORION_BENCH_GATE").is_ok_and(|v| v == "1") {
        scaling_gate()?;
    }

    let total = Instant::now();
    let engine: Vec<Value> = configs
        .iter()
        .map(|&(ops, streams)| engine_config(ops, streams, iters))
        .collect::<Result<_, _>>()?;
    let peak = engine
        .iter()
        .filter_map(|row| row["events_per_sec"].as_f64())
        .fold(0.0_f64, f64::max);
    let coll = collocation(&cfg)?;
    let wall_ms = total.elapsed().as_secs_f64() * 1e3;

    let out = json!({
        "schema": "orion-bench-engine/v2",
        "fast": cfg.fast,
        "events_per_sec": peak,
        "wall_ms": wall_ms,
        "engine": engine,
        "collocation": coll,
    });
    let path =
        std::env::var("ORION_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    std::fs::write(&path, out.to_pretty())
        .map_err(|e| format!("writing bench output {path}: {e}"))?;
    println!("{path}: peak {peak:.0} events/sec, total wall {wall_ms:.0} ms");
    Ok(())
}
