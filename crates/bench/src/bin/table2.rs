//! Regenerates Table 2 (toy Conv2d/BN2d collocation).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::table2::run(&cfg);
    orion_bench::exp::table2::print(&rows);
}
