//! Regenerates Table 4 (training throughput + cost savings under Orion).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::table4::run(&cfg);
    orion_bench::exp::table4::print(&rows);
}
