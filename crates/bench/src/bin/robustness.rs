//! Regenerates the chaos grid (fault injection + recovery supervisor).
use orion_bench::exp::robustness::{print, run};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    print(&run(&cfg));
}
