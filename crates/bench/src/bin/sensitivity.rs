//! Regenerates the 6.4 DUR_THRESHOLD sensitivity study + PCIe ablation.
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let pts = orion_bench::exp::sensitivity::run(&cfg);
    let pcie = orion_bench::exp::sensitivity::run_pcie_ablation(&cfg);
    orion_bench::exp::sensitivity::print(&pts, pcie);
}
