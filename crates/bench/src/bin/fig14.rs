//! Regenerates Figure 14 (policy ablation breakdown).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let steps = orion_bench::exp::fig14::run(&cfg);
    orion_bench::exp::fig14::print(&steps);
}
