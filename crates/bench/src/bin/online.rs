//! Regenerates the online-profiling convergence grid (cold start + drift).
use orion_bench::exp::online::{print, run};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    print(&run(&cfg));
}
