//! Regenerates Figure 12 (inference-inference, Poisson).
use orion_bench::exp::fig11_12::{print, run, Arrivals};
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = run(&cfg, Arrivals::Poisson);
    print(&rows, Arrivals::Poisson);
}
