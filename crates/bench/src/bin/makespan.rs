//! Regenerates the 6.2.2 makespan/cost comparison.
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::makespan::run(&cfg);
    orion_bench::exp::makespan::print(&rows);
}
