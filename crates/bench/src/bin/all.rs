//! Runs every experiment in sequence (the full reproduction suite).
use orion_bench::exp::{self, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_env();
    println!("=== Orion reproduction: full experiment suite ===\n");
    let s = exp::fig1::run(&cfg);
    exp::fig1::print(&s);
    println!();
    exp::table1::print(&exp::table1::run(&cfg));
    println!();
    exp::fig4::print(&exp::fig4::run(&cfg));
    println!();
    exp::table2::print(&exp::table2::run(&cfg));
    println!();
    exp::fig2::print(&exp::fig2::run(&cfg));
    println!();
    let rows = exp::fig6_7::run(&cfg, exp::fig6_7::Arrivals::Apollo);
    exp::fig6_7::print(&rows, exp::fig6_7::Arrivals::Apollo);
    println!();
    let rows = exp::fig6_7::run(&cfg, exp::fig6_7::Arrivals::Poisson);
    exp::fig6_7::print(&rows, exp::fig6_7::Arrivals::Poisson);
    println!();
    let (alone, col) = exp::fig8_9::run(&cfg);
    exp::fig8_9::print(&alone, &col);
    println!();
    exp::table4::print(&exp::table4::run(&cfg));
    println!();
    exp::fig10::print(&exp::fig10::run(&cfg));
    println!();
    let rows = exp::fig11_12::run(&cfg, exp::fig11_12::Arrivals::Apollo);
    exp::fig11_12::print(&rows, exp::fig11_12::Arrivals::Apollo);
    println!();
    let rows = exp::fig11_12::run(&cfg, exp::fig11_12::Arrivals::Poisson);
    exp::fig11_12::print(&rows, exp::fig11_12::Arrivals::Poisson);
    println!();
    exp::fig13::print(&exp::fig13::run(&cfg));
    println!();
    exp::fig14::print(&exp::fig14::run(&cfg));
    println!();
    let pts = exp::sensitivity::run(&cfg);
    let pcie = exp::sensitivity::run_pcie_ablation(&cfg);
    exp::sensitivity::print(&pts, pcie);
    println!();
    exp::overhead::print(&exp::overhead::run(&cfg));
    println!();
    exp::makespan::print(&exp::makespan::run(&cfg));
}
