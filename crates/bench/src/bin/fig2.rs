//! Regenerates Figure 2 (motivation: collocation techniques vs Ideal).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::fig2::run(&cfg);
    orion_bench::exp::fig2::print(&rows);
}
