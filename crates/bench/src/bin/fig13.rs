//! Regenerates Figure 13 (A100, five inference clients).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::fig13::run(&cfg);
    orion_bench::exp::fig13::print(&rows);
}
