//! Prints Table 3 (request rates used by the experiments — input parameters).
use orion_bench::table::TextTable;
use orion_workloads::arrivals::PaperRates;
use orion_workloads::registry::ALL_MODELS;

fn main() {
    println!("# Table 3: requests per second for DNN inference jobs (inputs)");
    let mut t = TextTable::new(vec!["model", "inf-inf uniform", "inf-inf poisson", "inf-train poisson"]);
    for m in ALL_MODELS {
        t.row(vec![
            m.name().to_string(),
            format!("{}", PaperRates::inf_inf_uniform(m)),
            format!("{}", PaperRates::inf_inf_poisson(m)),
            format!("{}", PaperRates::inf_train_poisson(m)),
        ]);
    }
    print!("{}", t.render());
}
