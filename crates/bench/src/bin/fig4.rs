//! Regenerates Figure 4 (compute vs memory kernel mixes).
fn main() {
    let cfg = orion_bench::exp::ExpConfig::from_env();
    let rows = orion_bench::exp::fig4::run(&cfg);
    orion_bench::exp::fig4::print(&rows);
}
