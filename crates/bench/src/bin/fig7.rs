//! Regenerates Figure 7 (inference-training, Poisson arrivals).
use orion_bench::exp::fig6_7::{print, run, Arrivals};
use orion_bench::exp::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    let rows = run(&cfg, Arrivals::Poisson);
    print(&rows, Arrivals::Poisson);
}
