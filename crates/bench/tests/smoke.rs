//! Fast-mode smoke suite: drives one abbreviated cell of every `exp/*`
//! module through the shared scenario runner, asserting each produces
//! structurally sane output. This is the CI gate that catches a module
//! whose grid construction and outcome consumption fall out of sync
//! (`run_grid` hands results back positionally).
//!
//! Every test uses `ExpConfig::fast()` — the same configuration
//! `ORION_FAST=1` selects for the binaries.

use orion_bench::exp::{self, ExpConfig};

fn fast() -> ExpConfig {
    ExpConfig::fast()
}

#[test]
fn fast_env_flag_selects_fast_config() {
    std::env::set_var("ORION_FAST", "1");
    let cfg = ExpConfig::from_env();
    std::env::remove_var("ORION_FAST");
    assert!(cfg.fast);
    assert!(!ExpConfig::full().fast);
}

#[test]
fn smoke_fig1() {
    let s = exp::fig1::run(&fast());
    assert!(!s.t_ms.is_empty(), "fig1 produced no timeline buckets");
    assert_eq!(s.t_ms.len(), s.compute.len());
    assert!(s.avg_compute > 0.0 && s.avg_compute <= 100.0);
}

#[test]
fn smoke_fig2() {
    let rows = exp::fig2::run(&fast());
    assert_eq!(rows.len(), 3, "fig2 covers the three motivation pairs");
    for r in &rows {
        assert!(r.bars.len() >= 5, "{}: missing policy bars", r.label);
        assert!(r.bars.iter().all(|b| b.hp_norm.is_finite() && b.be_norm.is_finite()));
    }
}

#[test]
fn smoke_fig4() {
    let mixes = exp::fig4::run(&fast());
    assert!(!mixes.is_empty(), "fig4 produced no kernel mixes");
}

#[test]
fn smoke_fig6_7() {
    for arrivals in [exp::fig6_7::Arrivals::Apollo, exp::fig6_7::Arrivals::Poisson] {
        let rows = exp::fig6_7::run(&fast(), arrivals);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(!r.cells.is_empty());
            assert!(r.ideal_p99 > 0.0);
        }
    }
}

#[test]
fn smoke_fig8_9() {
    let (alone, col) = exp::fig8_9::run(&fast());
    assert!(alone.compute >= 0.0 && alone.compute <= 100.0);
    // Collocation keeps the device at least as busy as the solo run.
    assert!(col.compute >= alone.compute * 0.9);
}

#[test]
fn smoke_fig10() {
    let rows = exp::fig10::run(&fast());
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(!r.cells.is_empty(), "{:?}: no collocation cells", r.model);
    }
}

#[test]
fn smoke_fig11_12() {
    for arrivals in [
        exp::fig11_12::Arrivals::Apollo,
        exp::fig11_12::Arrivals::Poisson,
    ] {
        let rows = exp::fig11_12::run(&fast(), arrivals);
        assert!(!rows.is_empty());
    }
}

#[test]
fn smoke_fig13() {
    let rows = exp::fig13::run(&fast());
    assert!(!rows.is_empty());
    for r in &rows {
        assert_eq!(r.cells.len(), 4, "fig13 compares four policies");
        assert!(r.ideal_p99 > 0.0);
    }
}

#[test]
fn smoke_fig14() {
    let steps = exp::fig14::run(&fast());
    assert!(!steps.is_empty());
}

#[test]
fn smoke_makespan() {
    let rows = exp::makespan::run(&fast());
    assert!(
        rows.len() >= 3,
        "makespan compares sequential vs sharing strategies, got {}",
        rows.len()
    );
    assert!(rows.iter().all(|s| s.makespan_s > 0.0));
}

#[test]
fn smoke_overhead() {
    let rows = exp::overhead::run(&fast());
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.native_ms > 0.0 && r.orion_ms > 0.0));
}

#[test]
fn smoke_sensitivity() {
    let points = exp::sensitivity::run(&fast());
    assert!(points.len() >= 3, "sensitivity sweeps the threshold");
    let pcie = exp::sensitivity::run_pcie_ablation(&fast());
    assert!(pcie.0 > 0.0 && pcie.1 > 0.0);
}

#[test]
fn smoke_robustness() {
    let cfg = fast();
    let cells = exp::robustness::run(&cfg);
    let rates = exp::robustness::fault_rates(&cfg);
    assert_eq!(cells.len(), rates.len() * exp::standard_policies().len());
    for c in &cells {
        assert!(c.hp_completed > 0, "{}: HP starved under chaos", c.policy);
        if c.kernel_fault_rate == 0.0 {
            assert_eq!(
                c.robustness.device_faults, 0,
                "{}: faults fired at rate zero",
                c.policy
            );
        }
    }
    // At the top rate the injector must actually have fired.
    let top = cells
        .iter()
        .filter(|c| c.kernel_fault_rate == *rates.last().unwrap())
        .map(|c| c.robustness.device_faults)
        .sum::<u64>();
    assert!(top > 0, "no kernel faults injected at the top chaos rate");
}

#[test]
fn smoke_online() {
    let cells = exp::online::run(&fast());
    assert_eq!(cells.len(), 4, "online grid covers the four provenance modes");
    let offline = &cells[0];
    let online = &cells[1];
    let never = &cells[2];
    let drift = &cells[3];
    assert!(offline.online.is_none(), "offline cell must not learn");
    assert!(never.online.is_none(), "never-profiled cell must not learn");

    let rep = online.online.as_ref().expect("online cell learned");
    assert!(rep.admitted > 0, "cold start admitted no kernels");
    assert!(rep.latency_estimates > 0, "solo-latency tuner never fired");
    assert!(
        rep.max_profile_error < 0.10,
        "learned durations off by {:.1}%",
        100.0 * rep.max_profile_error
    );
    // The acceptance bar: post-convergence HP p99 within 10% of the
    // offline-profiled run, BE throughput recovered to >= 80% of it.
    assert!(
        online.hp_p99_ms <= offline.hp_p99_ms * 1.10,
        "online HP p99 {:.2} ms vs offline {:.2} ms",
        online.hp_p99_ms,
        offline.hp_p99_ms
    );
    assert!(
        online.be_tput >= offline.be_tput * 0.80,
        "online BE throughput {:.2} vs offline {:.2}",
        online.be_tput,
        offline.be_tput
    );
    // The never-profiled cell is the conservative reference; its cost
    // shows up as worse HP tail latency (BE bursts fill every HP-idle gap
    // ungated), which is workload-dependent, so it is reported in the
    // table rather than hard-asserted here.
    assert!(never.be_tput > 0.0 && never.hp_completed > 0);

    let drep = drift.online.as_ref().expect("drift cell learned");
    assert!(drep.demotions > 0, "duration drift was never detected");
    assert!(
        drep.admissions > drep.demotions,
        "drifted kernels were never re-admitted"
    );
    assert!(
        drep.max_profile_error < 0.10,
        "post-drift profiles off by {:.1}%",
        100.0 * drep.max_profile_error
    );
}

#[test]
fn smoke_fleet() {
    let cfg = fast();
    let cells = exp::fleet::run(&cfg);
    assert_eq!(cells.len(), 3, "fleet grid covers the three control-plane modes");
    let (gpus, jobs, _) = exp::fleet::fleet_dims(&cfg);
    for c in &cells {
        let r = &c.report;
        assert_eq!(r.jobs.len(), jobs, "{}: report misses jobs", c.mode);
        assert_eq!(r.episode_errors, 0, "{}: episodes failed", c.mode);
        assert!(r.peak_gpus_used >= 1 && r.peak_gpus_used <= gpus);
        assert!(
            r.jobs.iter().any(|j| j.completed > 0),
            "{}: fleet did no work",
            c.mode
        );
        assert!((0.0..=1.0).contains(&r.slo_attainment));
        assert!(r.hp_p99.as_millis_f64() > 0.0, "{}: no HP latency samples", c.mode);
    }
    // The same trace under different policies must actually differ.
    assert_ne!(
        cells[0].report.jobs_digest(),
        cells[2].report.jobs_digest(),
        "orion and mps fleets produced identical per-job outcomes"
    );
}

#[test]
fn smoke_table1() {
    let rows = exp::table1::run(&fast());
    assert!(!rows.is_empty());
}

#[test]
fn smoke_table2() {
    let rows = exp::table2::run(&fast());
    assert_eq!(rows.len(), 3, "table2 measures the three kernel pairs");
}

#[test]
fn smoke_table4() {
    let rows = exp::table4::run(&fast());
    assert!(!rows.is_empty());
}

#[test]
fn smoke_fleet_chaos() {
    let cfg = fast();
    let cells = exp::fleet_chaos::run(&cfg);
    assert_eq!(cells.len(), 3, "chaos grid covers fault-free, chaos-lite, chaos");
    let ff = &cells[0];
    assert_eq!(ff.mode, "fault-free");
    // No plan armed: the fleet-level fault machinery must never have fired.
    let fro = &ff.report.robustness;
    assert_eq!(fro.chaos_episodes, 0, "fault-free cell armed episode faults");
    assert_eq!(fro.gpus_dead + fro.quarantines + fro.evacuations, 0);
    assert!(ff.report.episode_failures.is_empty());
    assert!(ff.report.jobs.iter().all(|j| j.evacuations == 0 && !j.lost));

    let chaos = &cells[2];
    assert_eq!(chaos.mode, "chaos");
    let ro = &chaos.report.robustness;
    assert!(
        ro.chaos_episodes > 0 || ro.gpus_dead > 0,
        "chaos plan never fired; raise the fast-mode rates"
    );
    assert!(ro.evacuations > 0, "chaos killed GPUs but nothing was evacuated");
    assert!(
        ro.availability > 0.0 && ro.availability < 1.0,
        "chaos availability {} should show lost capacity",
        ro.availability
    );
    // Degraded capacity: HP attainment holds (the acceptance bar) and any
    // shed job is best-effort -- HP leaves only via explicit rejection.
    assert!(
        chaos.hp_vs_fault_free >= 0.9,
        "HP SLO attainment under chaos fell to {:.2}x fault-free",
        chaos.hp_vs_fault_free
    );
    assert!(chaos.report.jobs.iter().all(|j| !(j.lost && j.hp)));
    // Evacuees that recovered did so within the horizon.
    assert!((ro.max_epochs_to_recovery as usize) < chaos.report.epochs);
}
