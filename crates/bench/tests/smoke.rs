//! Fast-mode smoke suite: drives one abbreviated cell of every `exp/*`
//! module through the shared scenario runner, asserting each produces
//! structurally sane output. This is the CI gate that catches a module
//! whose grid construction and outcome consumption fall out of sync
//! (`run_grid` hands results back positionally).
//!
//! Every test uses `ExpConfig::fast()` — the same configuration
//! `ORION_FAST=1` selects for the binaries.

use orion_bench::exp::{self, ExpConfig};

fn fast() -> ExpConfig {
    ExpConfig::fast()
}

#[test]
fn fast_env_flag_selects_fast_config() {
    std::env::set_var("ORION_FAST", "1");
    let cfg = ExpConfig::from_env();
    std::env::remove_var("ORION_FAST");
    assert!(cfg.fast);
    assert!(!ExpConfig::full().fast);
}

#[test]
fn smoke_fig1() {
    let s = exp::fig1::run(&fast());
    assert!(!s.t_ms.is_empty(), "fig1 produced no timeline buckets");
    assert_eq!(s.t_ms.len(), s.compute.len());
    assert!(s.avg_compute > 0.0 && s.avg_compute <= 100.0);
}

#[test]
fn smoke_fig2() {
    let rows = exp::fig2::run(&fast());
    assert_eq!(rows.len(), 3, "fig2 covers the three motivation pairs");
    for r in &rows {
        assert!(r.bars.len() >= 5, "{}: missing policy bars", r.label);
        assert!(r.bars.iter().all(|b| b.hp_norm.is_finite() && b.be_norm.is_finite()));
    }
}

#[test]
fn smoke_fig4() {
    let mixes = exp::fig4::run(&fast());
    assert!(!mixes.is_empty(), "fig4 produced no kernel mixes");
}

#[test]
fn smoke_fig6_7() {
    for arrivals in [exp::fig6_7::Arrivals::Apollo, exp::fig6_7::Arrivals::Poisson] {
        let rows = exp::fig6_7::run(&fast(), arrivals);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(!r.cells.is_empty());
            assert!(r.ideal_p99 > 0.0);
        }
    }
}

#[test]
fn smoke_fig8_9() {
    let (alone, col) = exp::fig8_9::run(&fast());
    assert!(alone.compute >= 0.0 && alone.compute <= 100.0);
    // Collocation keeps the device at least as busy as the solo run.
    assert!(col.compute >= alone.compute * 0.9);
}

#[test]
fn smoke_fig10() {
    let rows = exp::fig10::run(&fast());
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(!r.cells.is_empty(), "{:?}: no collocation cells", r.model);
    }
}

#[test]
fn smoke_fig11_12() {
    for arrivals in [
        exp::fig11_12::Arrivals::Apollo,
        exp::fig11_12::Arrivals::Poisson,
    ] {
        let rows = exp::fig11_12::run(&fast(), arrivals);
        assert!(!rows.is_empty());
    }
}

#[test]
fn smoke_fig13() {
    let rows = exp::fig13::run(&fast());
    assert!(!rows.is_empty());
    for r in &rows {
        assert_eq!(r.cells.len(), 4, "fig13 compares four policies");
        assert!(r.ideal_p99 > 0.0);
    }
}

#[test]
fn smoke_fig14() {
    let steps = exp::fig14::run(&fast());
    assert!(!steps.is_empty());
}

#[test]
fn smoke_makespan() {
    let rows = exp::makespan::run(&fast());
    assert!(
        rows.len() >= 3,
        "makespan compares sequential vs sharing strategies, got {}",
        rows.len()
    );
    assert!(rows.iter().all(|s| s.makespan_s > 0.0));
}

#[test]
fn smoke_overhead() {
    let rows = exp::overhead::run(&fast());
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.native_ms > 0.0 && r.orion_ms > 0.0));
}

#[test]
fn smoke_sensitivity() {
    let points = exp::sensitivity::run(&fast());
    assert!(points.len() >= 3, "sensitivity sweeps the threshold");
    let pcie = exp::sensitivity::run_pcie_ablation(&fast());
    assert!(pcie.0 > 0.0 && pcie.1 > 0.0);
}

#[test]
fn smoke_robustness() {
    let cfg = fast();
    let cells = exp::robustness::run(&cfg);
    let rates = exp::robustness::fault_rates(&cfg);
    assert_eq!(cells.len(), rates.len() * exp::standard_policies().len());
    for c in &cells {
        assert!(c.hp_completed > 0, "{}: HP starved under chaos", c.policy);
        if c.kernel_fault_rate == 0.0 {
            assert_eq!(
                c.robustness.device_faults, 0,
                "{}: faults fired at rate zero",
                c.policy
            );
        }
    }
    // At the top rate the injector must actually have fired.
    let top = cells
        .iter()
        .filter(|c| c.kernel_fault_rate == *rates.last().unwrap())
        .map(|c| c.robustness.device_faults)
        .sum::<u64>();
    assert!(top > 0, "no kernel faults injected at the top chaos rate");
}

#[test]
fn smoke_online() {
    let cells = exp::online::run(&fast());
    assert_eq!(cells.len(), 4, "online grid covers the four provenance modes");
    let offline = &cells[0];
    let online = &cells[1];
    let never = &cells[2];
    let drift = &cells[3];
    assert!(offline.online.is_none(), "offline cell must not learn");
    assert!(never.online.is_none(), "never-profiled cell must not learn");

    let rep = online.online.as_ref().expect("online cell learned");
    assert!(rep.admitted > 0, "cold start admitted no kernels");
    assert!(rep.latency_estimates > 0, "solo-latency tuner never fired");
    assert!(
        rep.max_profile_error < 0.10,
        "learned durations off by {:.1}%",
        100.0 * rep.max_profile_error
    );
    // The acceptance bar: post-convergence HP p99 within 10% of the
    // offline-profiled run, BE throughput recovered to >= 80% of it.
    assert!(
        online.hp_p99_ms <= offline.hp_p99_ms * 1.10,
        "online HP p99 {:.2} ms vs offline {:.2} ms",
        online.hp_p99_ms,
        offline.hp_p99_ms
    );
    assert!(
        online.be_tput >= offline.be_tput * 0.80,
        "online BE throughput {:.2} vs offline {:.2}",
        online.be_tput,
        offline.be_tput
    );
    // The never-profiled cell is the conservative reference; its cost
    // shows up as worse HP tail latency (BE bursts fill every HP-idle gap
    // ungated), which is workload-dependent, so it is reported in the
    // table rather than hard-asserted here.
    assert!(never.be_tput > 0.0 && never.hp_completed > 0);

    let drep = drift.online.as_ref().expect("drift cell learned");
    assert!(drep.demotions > 0, "duration drift was never detected");
    assert!(
        drep.admissions > drep.demotions,
        "drifted kernels were never re-admitted"
    );
    assert!(
        drep.max_profile_error < 0.10,
        "post-drift profiles off by {:.1}%",
        100.0 * drep.max_profile_error
    );
}

#[test]
fn smoke_fleet() {
    let cfg = fast();
    let cells = exp::fleet::run(&cfg);
    assert_eq!(cells.len(), 3, "fleet grid covers the three control-plane modes");
    let (gpus, jobs, _) = exp::fleet::fleet_dims(&cfg);
    for c in &cells {
        let r = &c.report;
        assert_eq!(r.jobs.len(), jobs, "{}: report misses jobs", c.mode);
        assert_eq!(r.episode_errors, 0, "{}: episodes failed", c.mode);
        assert!(r.peak_gpus_used >= 1 && r.peak_gpus_used <= gpus);
        assert!(
            r.jobs.iter().any(|j| j.completed > 0),
            "{}: fleet did no work",
            c.mode
        );
        assert!((0.0..=1.0).contains(&r.slo_attainment));
        assert!(r.hp_p99.as_millis_f64() > 0.0, "{}: no HP latency samples", c.mode);
    }
    // The same trace under different policies must actually differ.
    assert_ne!(
        cells[0].report.jobs_digest(),
        cells[2].report.jobs_digest(),
        "orion and mps fleets produced identical per-job outcomes"
    );
}

#[test]
fn smoke_table1() {
    let rows = exp::table1::run(&fast());
    assert!(!rows.is_empty());
}

#[test]
fn smoke_table2() {
    let rows = exp::table2::run(&fast());
    assert_eq!(rows.len(), 3, "table2 measures the three kernel pairs");
}

#[test]
fn smoke_table4() {
    let rows = exp::table4::run(&fast());
    assert!(!rows.is_empty());
}

#[test]
fn smoke_fleet_chaos() {
    let cfg = fast();
    let cells = exp::fleet_chaos::run(&cfg);
    assert_eq!(cells.len(), 3, "chaos grid covers fault-free, chaos-lite, chaos");
    let ff = &cells[0];
    assert_eq!(ff.mode, "fault-free");
    // No plan armed: the fleet-level fault machinery must never have fired.
    let fro = &ff.report.robustness;
    assert_eq!(fro.chaos_episodes, 0, "fault-free cell armed episode faults");
    assert_eq!(fro.gpus_dead + fro.quarantines + fro.evacuations, 0);
    assert!(ff.report.episode_failures.is_empty());
    assert!(ff.report.jobs.iter().all(|j| j.evacuations == 0 && !j.lost));

    let chaos = &cells[2];
    assert_eq!(chaos.mode, "chaos");
    let ro = &chaos.report.robustness;
    assert!(
        ro.chaos_episodes > 0 || ro.gpus_dead > 0,
        "chaos plan never fired; raise the fast-mode rates"
    );
    assert!(ro.evacuations > 0, "chaos killed GPUs but nothing was evacuated");
    assert!(
        ro.availability > 0.0 && ro.availability < 1.0,
        "chaos availability {} should show lost capacity",
        ro.availability
    );
    // Degraded capacity: HP attainment holds (the acceptance bar) and any
    // shed job is best-effort -- HP leaves only via explicit rejection.
    assert!(
        chaos.hp_vs_fault_free >= 0.9,
        "HP SLO attainment under chaos fell to {:.2}x fault-free",
        chaos.hp_vs_fault_free
    );
    assert!(chaos.report.jobs.iter().all(|j| !(j.lost && j.hp)));
    // Evacuees that recovered did so within the horizon.
    assert!((ro.max_epochs_to_recovery as usize) < chaos.report.epochs);
}

#[test]
fn smoke_llm_serving() {
    let mut cells = exp::llm_serving::run(&fast());
    assert_eq!(cells.len(), 6, "serving grid covers the six cells");
    let slo = orion_core::serving::SloConfig::interactive().per_token;

    // Every cell did real serving work with sane bookkeeping.
    for c in &mut cells {
        let r = &mut c.report;
        assert!(r.arrived > 0 && r.admitted > 0, "{}: no traffic", c.name);
        assert!(r.completed > 0, "{}: nothing completed", c.name);
        assert!(r.tokens_generated > 0 && r.tokens_per_sec > 0.0, "{}", c.name);
        assert!(!r.ttft.is_empty() && !r.per_token.is_empty(), "{}", c.name);
        // Ledger safety: the high-water mark never exceeds capacity and the
        // KV peak stays inside the post-static budget.
        assert!(r.ledger_high_water <= r.ledger_capacity, "{}", c.name);
        assert!(r.kv_peak_bytes <= r.kv_budget_bytes, "{}", c.name);
        // Request-flow invariants: every completion is a batch leave, no
        // cell completes more than it admits, and terminal outcomes never
        // outnumber arrivals.
        assert_eq!(r.leaves, r.completed, "{}: leave/completion mismatch", c.name);
        assert!(r.joins >= r.leaves, "{}: more leaves than joins", c.name);
        assert!(r.completed <= r.admitted, "{}", c.name);
        assert!(
            r.completed + r.shed_queue + r.shed_oversized + r.dropped_evicted <= r.arrived,
            "{}: terminal outcomes exceed arrivals",
            c.name
        );
    }

    // Continuous batching is observable: >= 2x tokens/sec over batch-1
    // serial decode at <= 1.5x per-token p99, with mid-batch churn.
    assert_eq!(cells[0].name, "serial");
    let serial = &mut cells[0].report;
    assert_eq!(serial.peak_batch, 1);
    assert_eq!(serial.joins_mid + serial.leaves_mid, 0);
    let (serial_tps, serial_p99) = (serial.tokens_per_sec, serial.per_token.p99());
    assert_eq!(cells[1].name, "batched");
    let batched = &mut cells[1].report;
    assert!(
        batched.tokens_per_sec >= 2.0 * serial_tps,
        "batched {:.1} tok/s < 2x serial {:.1}",
        batched.tokens_per_sec,
        serial_tps
    );
    assert!(
        batched.per_token.p99().as_nanos() as f64 <= 1.5 * serial_p99.as_nanos() as f64,
        "batched per-token p99 {:?} > 1.5x serial {:?}",
        batched.per_token.p99(),
        serial_p99
    );
    assert!(batched.peak_batch >= 2, "batched cell never batched");
    assert!(
        batched.joins_mid > 0 && batched.leaves_mid > 0,
        "no mid-batch joins/leaves"
    );

    // Orion-vs-baseline story: Orion holds the per-token SLO while
    // sustaining the best SLO-compliant best-effort throughput (temporal
    // starves the trainer; MPS is ungated and has no latency guarantee).
    assert_eq!(cells[2].name, "orion");
    let orion = &mut cells[2].report;
    assert!(
        orion.per_token.p99() <= slo,
        "orion per-token p99 {:?} violates the {:?} SLO",
        orion.per_token.p99(),
        slo
    );
    let orion_be = orion.be_completed;
    assert!(orion_be > 0, "orion starved the best-effort trainer");
    let (orion_p99, orion_tps) = (orion.per_token.p99(), orion.tokens_per_sec);
    assert_eq!(cells[3].name, "mps");
    let mps = &mut cells[3].report;
    let (mps_p99, mps_tps) = (mps.per_token.p99(), mps.tokens_per_sec);
    assert_eq!(cells[4].name, "temporal");
    let temporal_be = cells[4].report.be_completed;
    assert!(
        orion_be > temporal_be,
        "orion BE {} does not beat temporal BE {}",
        orion_be,
        temporal_be
    );
    // Against ungated MPS, Orion strictly dominates the serving side:
    // lower per-token tail AND higher token throughput. (The full-grid
    // story — MPS pushed past the SLO — is asserted by the release-stage
    // `llm_serving_full_grid_story` test; fast horizons are too short to
    // pin MPS's tail above 30 ms reliably.)
    assert!(
        orion_p99 < mps_p99,
        "orion per-token p99 {:?} not below MPS {:?}",
        orion_p99,
        mps_p99
    );
    assert!(
        orion_tps > mps_tps,
        "orion tok/s {:.1} not above MPS {:.1}",
        orion_tps,
        mps_tps
    );

    // KV pressure is real: the constrained cell gates/evicts, with zero
    // ledger oversubscription (checked for every cell above).
    let constrained = &cells[5].report;
    assert_eq!(cells[5].name, "constrained");
    assert!(
        constrained.deferred_kv > 0,
        "constrained cell never hit the KV watermark"
    );
    assert!(
        constrained.evictions > 0,
        "constrained cell never evicted under pressure"
    );
}

/// Full-horizon acceptance story for the serving grid (release CI stage;
/// `cargo test --release -- --ignored llm_serving_full_grid_story`).
///
/// At paper-default load MPS is pushed past the per-token SLO, so Orion's
/// best-effort throughput is the best *SLO-compliant* one: temporal's is
/// zero and MPS's doesn't count.
#[test]
#[ignore = "full-horizon grid (~minutes); run in the release CI stage"]
fn llm_serving_full_grid_story() {
    let mut cells = exp::llm_serving::run(&ExpConfig::full());
    let slo = orion_core::serving::SloConfig::interactive().per_token;

    assert_eq!(cells[0].name, "serial");
    let serial = &mut cells[0].report;
    let (serial_tps, serial_p99) = (serial.tokens_per_sec, serial.per_token.p99());
    assert_eq!(cells[1].name, "batched");
    let batched = &mut cells[1].report;
    assert!(
        batched.tokens_per_sec >= 2.0 * serial_tps,
        "batched {:.1} tok/s < 2x serial {:.1}",
        batched.tokens_per_sec,
        serial_tps
    );
    assert!(
        batched.per_token.p99().as_nanos() as f64 <= 1.5 * serial_p99.as_nanos() as f64,
        "batched per-token p99 {:?} > 1.5x serial {:?}",
        batched.per_token.p99(),
        serial_p99
    );
    assert!(batched.joins_mid > 0 && batched.leaves_mid > 0);

    assert_eq!(cells[2].name, "orion");
    let orion = &mut cells[2].report;
    assert!(
        orion.per_token.p99() <= slo,
        "orion per-token p99 {:?} violates the {:?} SLO",
        orion.per_token.p99(),
        slo
    );
    let orion_be = orion.be_completed;
    assert!(orion_be > 0, "orion starved the best-effort trainer");
    assert_eq!(cells[3].name, "mps");
    let mps = &mut cells[3].report;
    // MPS either blows the SLO under full load (its BE lead is not
    // SLO-compliant) or Orion matches its best-effort throughput outright.
    assert!(
        mps.per_token.p99() > slo || orion_be >= mps.be_completed,
        "MPS met the SLO ({:?}) while beating orion on BE ({} vs {})",
        mps.per_token.p99(),
        mps.be_completed,
        orion_be
    );
    assert_eq!(cells[4].name, "temporal");
    let temporal_be = cells[4].report.be_completed;
    assert!(
        orion_be > temporal_be,
        "orion BE {} does not beat temporal BE {}",
        orion_be,
        temporal_be
    );

    let constrained = &cells[5].report;
    assert_eq!(cells[5].name, "constrained");
    assert!(constrained.deferred_kv > 0 && constrained.evictions > 0);
    assert!(constrained.ledger_high_water <= constrained.ledger_capacity);
}
