//! Reproducibility guarantee of the scenario runner: a grid produces
//! byte-identical serialized results at ANY thread count, because every
//! cell's RNG seed is a pure function of `(base_seed, seed_cell)` — never
//! of scheduling order.

use orion_bench::runner::{Runner, Scenario};
use orion_core::prelude::*;
use orion_desim::time::SimTime;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::registry::{inference_workload, training_workload};
use orion_workloads::ModelKind;

/// A small but RNG-heavy grid: Poisson/Apollo arrivals exercise the
/// per-cell seed on every policy family.
fn grid() -> Vec<Scenario> {
    let mut rc = RunConfig::quick_test();
    rc.horizon = SimTime::from_millis(800);
    rc.warmup = SimTime::from_millis(200);
    let policies = [
        PolicyKind::Streams,
        PolicyKind::Mps,
        PolicyKind::reef_default(),
        PolicyKind::orion_default(),
    ];
    let mut out = Vec::new();
    for policy in policies {
        for rps in [25.0f64, 60.0] {
            out.push(Scenario::new(
                format!("{}@{rps}", policy.label()),
                policy.clone(),
                vec![
                    ClientSpec::high_priority(
                        inference_workload(ModelKind::ResNet50),
                        ArrivalProcess::Poisson { rps },
                    ),
                    ClientSpec::best_effort(
                        training_workload(ModelKind::MobileNetV2),
                        ArrivalProcess::ClosedLoop,
                    ),
                ],
                rc.clone(),
            ));
        }
    }
    out
}

#[test]
fn jsonl_is_identical_at_any_thread_count() {
    let mut serial = Runner::new(1).run_scenarios(grid());
    let mut par4 = Runner::new(4).run_scenarios(grid());
    let mut par7 = Runner::new(7).run_scenarios(grid());
    let a = Runner::to_jsonl(&mut serial);
    let b = Runner::to_jsonl(&mut par4);
    let c = Runner::to_jsonl(&mut par7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "1-thread vs 4-thread results differ");
    assert_eq!(b, c, "4-thread vs 7-thread results differ");
}

/// The determinism grid under chaos: probabilistic kernel/copy faults plus
/// the recovery supervisor. Fault decisions are pure functions of
/// `(fault seed, submit ordinal)`, so the injected schedule — and every
/// recovery action it triggers — must also be thread-count independent.
fn chaos_grid() -> Vec<Scenario> {
    let faults = FaultConfig::none().with_rates(FaultRates {
        kernel_fault: 2e-3,
        copy_fail: 4e-3,
        ..FaultRates::default()
    });
    grid()
        .into_iter()
        .map(|mut s| {
            s.rc = s.rc.with_faults(faults.clone());
            s
        })
        .collect()
}

#[test]
fn chaos_jsonl_is_identical_at_any_thread_count() {
    let mut serial = Runner::new(1).run_scenarios(chaos_grid());
    let mut par4 = Runner::new(4).run_scenarios(chaos_grid());
    let mut par7 = Runner::new(7).run_scenarios(chaos_grid());
    let a = Runner::to_jsonl(&mut serial);
    let b = Runner::to_jsonl(&mut par4);
    let c = Runner::to_jsonl(&mut par7);
    assert_eq!(a, b, "1-thread vs 4-thread chaos results differ");
    assert_eq!(b, c, "4-thread vs 7-thread chaos results differ");
    // The plan actually fired somewhere, or this test proves nothing.
    assert!(
        serial.iter().any(|o| o.res().robustness.any()),
        "chaos grid injected no faults; raise the rates"
    );
}

/// The determinism grid under online profiling: cold-start clients (no
/// offline profiles) with the admission ladder + solo-latency tuner live.
/// Estimator updates are driven solely by sim-time-ordered completions, so
/// every learned profile, threshold update, and the report counters must be
/// thread-count independent.
fn online_grid() -> Vec<Scenario> {
    grid()
        .into_iter()
        .map(|mut s| {
            s.clients = s.clients.into_iter().map(ClientSpec::unprofiled).collect();
            s.rc = s.rc.with_online(OnlineConfig::learning());
            s
        })
        .collect()
}

#[test]
fn online_jsonl_is_identical_at_any_thread_count() {
    let mut serial = Runner::new(1).run_scenarios(online_grid());
    let mut par4 = Runner::new(4).run_scenarios(online_grid());
    let mut par7 = Runner::new(7).run_scenarios(online_grid());
    let a = Runner::to_jsonl(&mut serial);
    let b = Runner::to_jsonl(&mut par4);
    let c = Runner::to_jsonl(&mut par7);
    assert_eq!(a, b, "1-thread vs 4-thread online results differ");
    assert_eq!(b, c, "4-thread vs 7-thread online results differ");
    // Learning actually happened somewhere, or this test proves nothing.
    assert!(
        serial
            .iter()
            .any(|o| o.res().online.as_ref().is_some_and(|r| r.admitted > 0)),
        "online grid admitted no kernels; the cold start never converged"
    );
}

#[test]
fn pinned_seed_cells_share_arrival_draws() {
    // Two cells differing only in policy, pinned to the same seed cell,
    // must see the same derived seed; unpinned cells must not.
    let base = grid();
    let pinned: Vec<Scenario> = base
        .iter()
        .map(|s| {
            Scenario::new(s.label.clone(), s.policy.clone(), s.clients.clone(), s.rc.clone())
                .with_seed_cell(0)
        })
        .collect();
    let unpinned = Runner::new(2).run_scenarios(base);
    let pinned = Runner::new(2).run_scenarios(pinned);
    assert!(pinned.iter().all(|o| o.seed == pinned[0].seed));
    assert!(unpinned.windows(2).all(|w| w[0].seed != w[1].seed));
}

#[test]
fn thread_count_comes_from_env() {
    std::env::set_var("ORION_THREADS", "3");
    let r = Runner::from_env();
    std::env::remove_var("ORION_THREADS");
    assert_eq!(r.threads(), 3);
}
