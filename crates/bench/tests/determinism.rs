//! Reproducibility guarantee of the scenario runner: a grid produces
//! byte-identical serialized results at ANY thread count, because every
//! cell's RNG seed is a pure function of `(base_seed, seed_cell)` — never
//! of scheduling order.

use std::fmt::Write as _;

use orion_bench::exp::{fleet, fleet_chaos, llm_serving, ExpConfig};
use orion_bench::runner::{Runner, Scenario};
use orion_core::cluster::{
    dedicated_refs_serial, FleetConfig, FleetFaultPlan, FleetJob, FleetReport, FleetSim,
    FleetTrace,
};
use orion_core::prelude::*;
use orion_desim::time::SimTime;
use orion_workloads::arrivals::ArrivalProcess;
use orion_workloads::registry::{inference_workload, training_workload};
use orion_workloads::ModelKind;

/// A small but RNG-heavy grid: Poisson/Apollo arrivals exercise the
/// per-cell seed on every policy family.
fn grid() -> Vec<Scenario> {
    let mut rc = RunConfig::quick_test();
    rc.horizon = SimTime::from_millis(800);
    rc.warmup = SimTime::from_millis(200);
    let policies = [
        PolicyKind::Streams,
        PolicyKind::Mps,
        PolicyKind::reef_default(),
        PolicyKind::orion_default(),
    ];
    let mut out = Vec::new();
    for policy in policies {
        for rps in [25.0f64, 60.0] {
            out.push(Scenario::new(
                format!("{}@{rps}", policy.label()),
                policy.clone(),
                vec![
                    ClientSpec::high_priority(
                        inference_workload(ModelKind::ResNet50),
                        ArrivalProcess::Poisson { rps },
                    ),
                    ClientSpec::best_effort(
                        training_workload(ModelKind::MobileNetV2),
                        ArrivalProcess::ClosedLoop,
                    ),
                ],
                rc.clone(),
            ));
        }
    }
    out
}

#[test]
fn jsonl_is_identical_at_any_thread_count() {
    let mut serial = Runner::new(1).run_scenarios(grid());
    let mut par4 = Runner::new(4).run_scenarios(grid());
    let mut par7 = Runner::new(7).run_scenarios(grid());
    let a = Runner::to_jsonl(&mut serial);
    let b = Runner::to_jsonl(&mut par4);
    let c = Runner::to_jsonl(&mut par7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "1-thread vs 4-thread results differ");
    assert_eq!(b, c, "4-thread vs 7-thread results differ");
}

/// The determinism grid under chaos: probabilistic kernel/copy faults plus
/// the recovery supervisor. Fault decisions are pure functions of
/// `(fault seed, submit ordinal)`, so the injected schedule — and every
/// recovery action it triggers — must also be thread-count independent.
fn chaos_grid() -> Vec<Scenario> {
    let faults = FaultConfig::none().with_rates(FaultRates {
        kernel_fault: 2e-3,
        copy_fail: 4e-3,
        ..FaultRates::default()
    });
    grid()
        .into_iter()
        .map(|mut s| {
            s.rc = s.rc.with_faults(faults.clone());
            s
        })
        .collect()
}

#[test]
fn chaos_jsonl_is_identical_at_any_thread_count() {
    let mut serial = Runner::new(1).run_scenarios(chaos_grid());
    let mut par4 = Runner::new(4).run_scenarios(chaos_grid());
    let mut par7 = Runner::new(7).run_scenarios(chaos_grid());
    let a = Runner::to_jsonl(&mut serial);
    let b = Runner::to_jsonl(&mut par4);
    let c = Runner::to_jsonl(&mut par7);
    assert_eq!(a, b, "1-thread vs 4-thread chaos results differ");
    assert_eq!(b, c, "4-thread vs 7-thread chaos results differ");
    // The plan actually fired somewhere, or this test proves nothing.
    assert!(
        serial.iter().any(|o| o.res().robustness.any()),
        "chaos grid injected no faults; raise the rates"
    );
}

/// The determinism grid under online profiling: cold-start clients (no
/// offline profiles) with the admission ladder + solo-latency tuner live.
/// Estimator updates are driven solely by sim-time-ordered completions, so
/// every learned profile, threshold update, and the report counters must be
/// thread-count independent.
fn online_grid() -> Vec<Scenario> {
    grid()
        .into_iter()
        .map(|mut s| {
            s.clients = s.clients.into_iter().map(ClientSpec::unprofiled).collect();
            s.rc = s.rc.with_online(OnlineConfig::learning());
            s
        })
        .collect()
}

#[test]
fn online_jsonl_is_identical_at_any_thread_count() {
    let mut serial = Runner::new(1).run_scenarios(online_grid());
    let mut par4 = Runner::new(4).run_scenarios(online_grid());
    let mut par7 = Runner::new(7).run_scenarios(online_grid());
    let a = Runner::to_jsonl(&mut serial);
    let b = Runner::to_jsonl(&mut par4);
    let c = Runner::to_jsonl(&mut par7);
    assert_eq!(a, b, "1-thread vs 4-thread online results differ");
    assert_eq!(b, c, "4-thread vs 7-thread online results differ");
    // Learning actually happened somewhere, or this test proves nothing.
    assert!(
        serial
            .iter()
            .any(|o| o.res().online.as_ref().is_some_and(|r| r.admitted > 0)),
        "online grid admitted no kernels; the cold start never converged"
    );
}

#[test]
fn pinned_seed_cells_share_arrival_draws() {
    // Two cells differing only in policy, pinned to the same seed cell,
    // must see the same derived seed; unpinned cells must not.
    let base = grid();
    let pinned: Vec<Scenario> = base
        .iter()
        .map(|s| {
            Scenario::new(s.label.clone(), s.policy.clone(), s.clients.clone(), s.rc.clone())
                .with_seed_cell(0)
        })
        .collect();
    let unpinned = Runner::new(2).run_scenarios(base);
    let pinned = Runner::new(2).run_scenarios(pinned);
    assert!(pinned.iter().all(|o| o.seed == pinned[0].seed));
    assert!(unpinned.windows(2).all(|w| w[0].seed != w[1].seed));
}

/// One small churn fleet in the most feedback-heavy mode (online learning +
/// migration) replayed end-to-end, serialized to the `fleet` JSONL line.
/// Learned profile tables, re-placement, and migrations all feed back into
/// the control plane, so any scheduling-order leak shows up in the digest.
fn fleet_line(threads: usize) -> String {
    let cfg = ExpConfig::fast();
    let dims = (6, 24, 3);
    let trace = fleet::fleet_trace(&cfg, dims);
    let fcfg = fleet::fleet_config(&cfg, dims, PolicyKind::orion_default(), true, true);
    let runner = Runner::new(threads).with_progress(false);
    let report = fleet::run_fleet_on(&runner, trace, fcfg).expect("fleet runs");
    fleet::fleet_json(
        &cfg,
        &fleet::Cell {
            mode: "churn-replay",
            report,
        },
    )
    .to_compact()
}

#[test]
fn fleet_churn_replay_is_identical_at_any_thread_count() {
    let a = fleet_line(1);
    let b = fleet_line(4);
    let c = fleet_line(7);
    assert!(a.contains("\"fleet\":"), "fleet block missing from JSONL line");
    assert_eq!(a, b, "1-thread vs 4-thread fleet replay differs");
    assert_eq!(b, c, "4-thread vs 7-thread fleet replay differs");
}

/// Chaos arm of the fleet replay: the same small churn fleet with the fleet
/// fault plan armed. GPU fate rolls are pure functions of
/// `(plan seed, gpu, epoch)` and triage consumes episode results in input
/// order, so every quarantine, evacuation, and shed decision — and the
/// robustness block they produce — must be thread-count independent.
fn fleet_chaos_line(threads: usize) -> String {
    let cfg = ExpConfig::fast();
    let dims = (6, 24, 3);
    let trace = fleet::fleet_trace(&cfg, dims);
    let mut fcfg = fleet::fleet_config(&cfg, dims, PolicyKind::orion_default(), false, false);
    fcfg.faults = Some(fleet_chaos::chaos_plan(&cfg));
    let runner = Runner::new(threads).with_progress(false);
    let report = fleet::run_fleet_on(&runner, trace, fcfg).expect("chaos fleet runs");
    fleet::fleet_json(
        &cfg,
        &fleet::Cell {
            mode: "chaos-replay",
            report,
        },
    )
    .to_compact()
}

#[test]
fn fleet_chaos_replay_is_identical_at_any_thread_count() {
    let a = fleet_chaos_line(1);
    let b = fleet_chaos_line(4);
    let c = fleet_chaos_line(7);
    // The plan actually fired somewhere, or this test proves nothing.
    assert!(
        a.contains("\"robustness\":"),
        "chaos fleet fired no fault machinery; raise the plan rates"
    );
    assert_eq!(a, b, "1-thread vs 4-thread chaos fleet replay differs");
    assert_eq!(b, c, "4-thread vs 7-thread chaos fleet replay differs");
}

/// Serving arm: the fast llm_serving grid — six cells fanned across the
/// runner, each a full continuous-batching DES with admission, eviction,
/// and (in three cells) a collocated best-effort trainer — serialized to
/// its JSONL lines. Every cell is a pure function of its config and seed,
/// so the lines must be byte-identical at any thread count.
fn llm_serving_lines(threads: usize) -> String {
    let cfg = ExpConfig::fast();
    let runner = Runner::new(threads).with_progress(false);
    let mut cells =
        llm_serving::run_llm_serving_on(&runner, &cfg).expect("serving grid runs");
    cells
        .iter_mut()
        .map(|c| llm_serving::llm_serving_json(&cfg, c).to_compact())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn llm_serving_grid_is_identical_at_any_thread_count() {
    let a = llm_serving_lines(1);
    let b = llm_serving_lines(4);
    let c = llm_serving_lines(7);
    assert!(
        a.contains("\"llm_serving\":"),
        "llm_serving block missing from JSONL lines"
    );
    assert_eq!(a, b, "1-thread vs 4-thread serving grids differ");
    assert_eq!(b, c, "4-thread vs 7-thread serving grids differ");
}

/// Golden fault-free digests: the fast-mode fleet grid's per-job digests,
/// pinned. A drift here means fault-free control-plane behaviour changed —
/// including fault machinery accidentally constructed with no plan armed —
/// which breaks the replay contract with previously recorded JSONL.
#[test]
fn fleet_fault_free_digests_are_pinned() {
    let cells = fleet::run(&ExpConfig::fast());
    let golden: [(&str, u64); 3] = [
        ("orion-offline", 0x65d9_a2a2_ae55_7b68),
        ("orion-online+mig", 0xfa60_1521_0906_35f9),
        ("mps", 0xc26f_4ef2_8ff8_0975),
    ];
    assert_eq!(cells.len(), golden.len());
    for (c, (mode, want)) in cells.iter().zip(golden) {
        assert_eq!(c.mode, mode);
        assert_eq!(
            c.report.jobs_digest(),
            want,
            "{mode}: fault-free digest drifted to {:016x}",
            c.report.jobs_digest()
        );
    }
}

/// A trace whose specs are identical within each priority class: every
/// complementarity score the placer compares is an exact tie, so placement
/// is decided purely by the documented tie-breaks (lowest GPU index, lowest
/// job id). Staggered arrivals and early departures exercise the packer's
/// churn path; the equal scores make any unstable ordering visible.
fn tie_trace(epoch: SimTime, horizon: SimTime) -> FleetTrace {
    let hp = || {
        ClientSpec::high_priority(
            inference_workload(ModelKind::ResNet50),
            ArrivalProcess::Poisson { rps: 30.0 },
        )
    };
    let be = || {
        ClientSpec::best_effort(
            training_workload(ModelKind::MobileNetV2),
            ArrivalProcess::ClosedLoop,
        )
    };
    let jobs = (0..10)
        .map(|i| FleetJob {
            client: if i % 2 == 0 { hp() } else { be() },
            arrive: if i < 6 {
                SimTime::from_secs(0)
            } else {
                epoch + SimTime::from_millis(1)
            },
            depart: if i < 2 { epoch * 2 } else { horizon },
        })
        .collect();
    FleetTrace { jobs }
}

/// Runs the tie-heavy fleet and records every epoch's placement — which job
/// ids sit on which GPU — plus the migration count and per-job digest.
fn placement_log(threads: usize) -> String {
    let epoch = SimTime::from_millis(500);
    let mut fcfg = FleetConfig::new(5, 3);
    fcfg.epoch = epoch;
    fcfg.online = true;
    fcfg.migration = true;
    // Every HP trails its dedicated throughput under collocation, so a
    // threshold of 2.0 makes migration fire every epoch it legally can —
    // the tie-broken victim choice is replayed under contention.
    fcfg.migrate_threshold = 2.0;
    let trace = tie_trace(epoch, fcfg.horizon());
    let dedicated = dedicated_refs_serial(&trace, &fcfg).expect("dedicated references run");
    let runner = Runner::new(threads).with_progress(false);
    let mut sim = FleetSim::new(trace, fcfg, dedicated).expect("fleet init");
    let mut log = String::new();
    while let Some(specs) = sim.next_epoch() {
        for s in &specs {
            let _ = write!(log, "e{}g{}{:?};", s.epoch, s.gpu, s.jobs);
        }
        let results = runner.map(specs, |_, s| {
            let r = s.run();
            (s, r)
        });
        sim.absorb(results);
    }
    let report = sim.into_report();
    let _ = write!(log, "m{}d{:016x}", report.migrations, report.jobs_digest());
    log
}

#[test]
fn placement_ties_resolve_identically_at_any_thread_count() {
    let a = placement_log(1);
    let b = placement_log(4);
    let c = placement_log(7);
    assert_eq!(a, b, "1-thread vs 4-thread tie placements differ");
    assert_eq!(b, c, "4-thread vs 7-thread tie placements differ");
    assert!(a.contains("e1"), "fleet never reached epoch 1");
    // The feedback path under test actually fired, or ties were never
    // re-broken after the initial packing.
    assert!(
        !a.contains("m0d"),
        "no migrations fired; the tie-heavy feedback path went untested"
    );
}

/// Fleet-scale arm: the full 128-GPU / 1000-job churn grid, byte-identical
/// at 1/4/7 threads. Debug builds take minutes per replay, so this runs
/// `--ignored` in release from `scripts/ci.sh`.
#[test]
#[ignore = "fleet-scale: run with --release --ignored (scripts/ci.sh fleet stage)"]
fn fleet_full_scale_is_identical_at_any_thread_count() {
    let cfg = ExpConfig::full();
    let dims = fleet::fleet_dims(&cfg);
    assert!(dims.0 >= 128 && dims.1 >= 1000, "full grid is fleet-scale");
    let line = |threads: usize| {
        let runner = Runner::new(threads).with_progress(false);
        let trace = fleet::fleet_trace(&cfg, dims);
        let fcfg = fleet::fleet_config(&cfg, dims, PolicyKind::orion_default(), false, false);
        let report = fleet::run_fleet_on(&runner, trace, fcfg).expect("fleet runs");
        fleet::fleet_json(
            &cfg,
            &fleet::Cell {
                mode: "full-scale",
                report,
            },
        )
        .to_compact()
    };
    let a = line(1);
    let b = line(4);
    let c = line(7);
    assert_eq!(a, b, "1-thread vs 4-thread full-scale fleet differs");
    assert_eq!(b, c, "4-thread vs 7-thread full-scale fleet differs");
}

/// Fleet-scale chaos arm: the full 128-GPU / 1000-job grid under the
/// headline fault plan, replayed at 1/4/7 threads, checked against the
/// acceptance bar — HP SLO attainment under chaos stays within 0.9x of
/// fault-free while degraded capacity sheds best-effort jobs first, and
/// every recovered evacuee re-places within the horizon. Runs `--ignored`
/// in release from `scripts/ci.sh`.
#[test]
#[ignore = "fleet-scale: run with --release --ignored (scripts/ci.sh fleet stage)"]
fn fleet_chaos_full_scale_replays_and_meets_slo_bar() {
    let cfg = ExpConfig::full();
    let dims = fleet::fleet_dims(&cfg);
    assert!(dims.0 >= 128 && dims.1 >= 1000, "full grid is fleet-scale");
    let run = |threads: usize, plan: Option<FleetFaultPlan>| -> FleetReport {
        let runner = Runner::new(threads).with_progress(false);
        let trace = fleet::fleet_trace(&cfg, dims);
        let mut fcfg = fleet::fleet_config(&cfg, dims, PolicyKind::orion_default(), false, false);
        fcfg.faults = plan;
        fleet::run_fleet_on(&runner, trace, fcfg).expect("fleet runs")
    };
    let line = |report: FleetReport| {
        fleet::fleet_json(
            &cfg,
            &fleet::Cell {
                mode: "chaos-full",
                report,
            },
        )
        .to_compact()
    };
    let fault_free = run(1, None);
    let chaos = run(1, Some(fleet_chaos::chaos_plan(&cfg)));
    let b = line(run(4, Some(fleet_chaos::chaos_plan(&cfg))));
    let c = line(run(7, Some(fleet_chaos::chaos_plan(&cfg))));
    let ro = chaos.robustness.clone();
    let a = line(chaos.clone());
    assert_eq!(a, b, "1-thread vs 4-thread full-scale chaos differs");
    assert_eq!(b, c, "4-thread vs 7-thread full-scale chaos differs");
    // The plan fired at fleet scale: GPUs died and jobs were evacuated.
    assert!(ro.gpus_dead > 0, "no GPU died over {} gpu-epochs", dims.0 * dims.2);
    assert!(ro.evacuations > 0, "GPUs died but nothing was evacuated");
    assert!(ro.availability > 0.0 && ro.availability < 1.0);
    // Acceptance bar: HP attainment within 0.9x of fault-free; anything
    // shed under degraded capacity is best-effort.
    assert!(
        chaos.hp_slo_attainment >= 0.9 * fault_free.hp_slo_attainment,
        "HP SLO under chaos {:.3} vs fault-free {:.3}",
        chaos.hp_slo_attainment,
        fault_free.hp_slo_attainment
    );
    assert_eq!(ro.hp_rejected, 0, "HP jobs shed while BE capacity remained");
    assert!(chaos.jobs.iter().all(|j| !(j.lost && j.hp)));
    // Recovered evacuees re-placed within a bounded number of epochs.
    assert!(
        (ro.max_epochs_to_recovery as usize) < chaos.epochs,
        "evacuees took {} epochs to recover",
        ro.max_epochs_to_recovery
    );
}

#[test]
fn thread_count_comes_from_env() {
    std::env::set_var("ORION_THREADS", "3");
    let r = Runner::from_env();
    std::env::remove_var("ORION_THREADS");
    assert_eq!(r.threads(), 3);
}
