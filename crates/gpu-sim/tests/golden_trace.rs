//! Golden-digest regression test for the engine's execution semantics.
//!
//! A fixed multi-stream scenario mixing kernels, async and blocking copies,
//! `Malloc`/`Free` synchronization points, and event records is executed with
//! tracing enabled, and the full [`ExecTrace`] — every span's name, stream,
//! and nanosecond-exact submit/dispatch/completion times — is hashed with
//! FNV-1a. The digest below was recorded against the pre-slab (HashMap-based)
//! engine; any refactor of the engine's data layout or inner loop must keep
//! it **byte-identical**. Do not "fix" the constant to make a behavioural
//! change pass: a digest mismatch means simulation results changed.

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::fault::FaultPlan;
use orion_gpu::kernel::KernelBuilder;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;
use orion_gpu::trace::ExecTrace;

/// The committed digest of [`scenario`]'s trace (pre-refactor engine).
const GOLDEN_DIGEST: u64 = 0xdf5c77d35a6a935e;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Hashes every span field that the simulation semantics determine.
fn digest(trace: &ExecTrace) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &(trace.len() as u64).to_le_bytes());
    for s in &trace.spans {
        fnv1a(&mut h, s.name.as_bytes());
        fnv1a(&mut h, s.kind.as_bytes());
        fnv1a(&mut h, &s.stream.0.to_le_bytes());
        fnv1a(&mut h, &s.submitted.as_nanos().to_le_bytes());
        fnv1a(&mut h, &s.dispatched.as_nanos().to_le_bytes());
        fnv1a(&mut h, &s.completed.as_nanos().to_le_bytes());
    }
    h
}

/// A deterministic collocation scenario touching every op kind and both the
/// priority-dispatch and device-synchronization paths.
fn scenario() -> ExecTrace {
    scenario_with(None)
}

/// Same scenario, optionally installing a fault plan before any submit.
fn scenario_with(plan: Option<FaultPlan>) -> ExecTrace {
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), true);
    if let Some(plan) = plan {
        e.set_fault_plan(plan);
    }
    e.enable_trace();
    let hp = e.create_stream(StreamPriority::HIGH);
    let be1 = e.create_stream(StreamPriority::DEFAULT);
    let be2 = e.create_stream(StreamPriority::DEFAULT);

    let kernel = |id: u32, us: u64, sm: u32, c: f64, m: f64| {
        KernelBuilder::new(id, format!("k{id}"))
            .grid_blocks(2 * sm)
            .threads_per_block(1024)
            .regs_per_thread(16)
            .solo_duration(SimTime::from_micros(us))
            .utilization(c, m)
            .build()
    };

    // Phase 1: contended kernels on all three streams (compute vs memory
    // profiles exercise every interference-model branch).
    e.submit(be1, OpKind::Kernel(kernel(0, 120, 80, 0.9, 0.15))).unwrap();
    e.submit(be2, OpKind::Kernel(kernel(1, 90, 30, 0.14, 0.8))).unwrap();
    e.submit(hp, OpKind::Kernel(kernel(2, 40, 80, 0.9, 0.1))).unwrap();
    e.submit(hp, OpKind::Kernel(kernel(3, 25, 20, 0.3, 0.3))).unwrap();

    // Phase 2 (submitted mid-flight at t=50us): copies, one blocking.
    e.advance_to(SimTime::from_micros(50));
    e.submit(
        be1,
        OpKind::MemcpyH2D {
            bytes: 6_000_000,
            blocking: false,
        },
    )
    .unwrap();
    e.submit(
        be2,
        OpKind::MemcpyD2H {
            bytes: 3_000_000,
            blocking: true,
        },
    )
    .unwrap();
    e.submit(hp, OpKind::Kernel(kernel(4, 60, 40, 0.5, 0.4))).unwrap();

    // Phase 3: a device-wide sync (malloc), an event, and a trailing kernel.
    e.advance_to(SimTime::from_micros(400));
    e.submit(be1, OpKind::Malloc { bytes: 1 << 20 }).unwrap();
    let ev = e.create_event();
    e.submit(be2, OpKind::EventRecord { event: ev }).unwrap();
    e.submit(hp, OpKind::Kernel(kernel(5, 30, 40, 0.7, 0.2))).unwrap();

    e.advance_to(SimTime::from_millis(2));
    let done = e.drain_completions();
    assert_eq!(done.len(), 10, "all submitted ops completed");
    let alloc = done
        .iter()
        .find_map(|c| c.alloc)
        .expect("malloc produced an allocation");

    // Phase 4: free the allocation (second sync path) behind one more kernel.
    e.submit(be2, OpKind::Kernel(kernel(6, 20, 30, 0.2, 0.7))).unwrap();
    e.submit(be1, OpKind::Free { alloc }).unwrap();
    e.advance_to(SimTime::from_millis(3));
    assert_eq!(e.drain_completions().len(), 2);
    assert!(e.event_done(ev).unwrap());
    assert_eq!(e.memory().used(), 0);

    e.take_trace().expect("trace enabled")
}

#[test]
fn trace_digest_is_unchanged() {
    let trace = scenario();
    assert_eq!(trace.len(), 12, "span count changed");
    let d = digest(&trace);
    assert_eq!(
        d, GOLDEN_DIGEST,
        "execution trace changed: digest {d:#018x} != golden {GOLDEN_DIGEST:#018x}.\n\
         The engine produced different simulation results (names, streams, or\n\
         nanosecond timings differ). This is a behavioural regression unless the\n\
         simulation semantics were deliberately changed."
    );
}

#[test]
fn trace_digest_is_deterministic_across_runs() {
    assert_eq!(digest(&scenario()), digest(&scenario()));
}

#[test]
fn empty_fault_plan_is_a_strict_no_op() {
    // Installing a zero-rate, zero-target fault plan must leave the engine's
    // execution byte-identical to never installing one: same span count, same
    // nanosecond timings, same golden digest. This is the fault-injection
    // layer's "off means off" guarantee.
    let trace = scenario_with(Some(FaultPlan::none()));
    assert_eq!(trace.len(), 12, "span count changed under empty fault plan");
    assert_eq!(
        digest(&trace),
        GOLDEN_DIGEST,
        "an empty FaultPlan perturbed the execution trace"
    );
}
