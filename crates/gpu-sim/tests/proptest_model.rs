//! Randomized property tests for the GPU simulator's core invariants.
//!
//! Cases are drawn from a [`DetRng`] fuzz corpus seeded per test; every
//! failure reproduces exactly from its case index.

use orion_desim::rng::{cell_seed, DetRng};
use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::interference::{
    allocate_sms, arbitrated_factors, evaluate, IncrementalEval, KernelLoad, ModelParams,
};
use orion_gpu::kernel::{classify_utilization, KernelBuilder, ResourceProfile};
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;

const CASES: u64 = 64;

fn gen_load(rng: &mut DetRng) -> KernelLoad {
    KernelLoad {
        sm_needed: 1 + rng.uniform_u64(119) as u32,
        sm_granted: 0,
        compute_demand: rng.next_f64(),
        mem_demand: rng.next_f64(),
        urgency: rng.uniform_u64(5) as i16 - 2,
        seq: rng.uniform_u64(1_000),
    }
}

fn gen_loads(rng: &mut DetRng, max: u64) -> Vec<KernelLoad> {
    let n = 1 + rng.uniform_u64(max - 1) as usize;
    (0..n).map(|_| gen_load(rng)).collect()
}

/// SM grants never exceed the device total or any kernel's need.
#[test]
fn grants_bounded() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB1, case));
        let loads = gen_loads(&mut rng, 20);
        let sms = 1 + rng.uniform_u64(199) as u32;
        let grants = allocate_sms(sms, &loads);
        let total: u32 = grants.iter().sum();
        assert!(total <= sms, "case {case}");
        for (g, l) in grants.iter().zip(&loads) {
            assert!(*g <= l.sm_needed, "case {case}");
        }
    }
}

/// Rates are in [0, 1] and consumed resources respect capacity budgets.
#[test]
fn rates_and_conservation() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB2, case));
        let loads = gen_loads(&mut rng, 20);
        let rates = evaluate(&ModelParams::from(&GpuSpec::v100_16gb()), &loads);
        let mut c_total = 0.0;
        let mut m_total = 0.0;
        for r in &rates {
            assert!((0.0..=1.0 + 1e-9).contains(&r.rate), "case {case}: rate {}", r.rate);
            c_total += r.compute_used;
            m_total += r.mem_used;
        }
        assert!(c_total <= 1.0 + 1e-9, "case {case}: compute {c_total}");
        assert!(m_total <= 1.0 + 1e-9, "case {case}: memory {m_total}");
    }
}

/// Adding a second kernel never speeds up the first (interference is
/// monotone non-positive).
#[test]
fn interference_is_monotone() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB3, case));
        let a = gen_load(&mut rng);
        let b = gen_load(&mut rng);
        let p = ModelParams::from(&GpuSpec::v100_16gb());
        let solo = evaluate(&p, &[a])[0].rate;
        let pair = evaluate(&p, &[a, b])[0].rate;
        assert!(pair <= solo + 1e-9, "case {case}: solo {solo}, pair {pair}");
    }
}

/// The 60% classification rule is total and consistent with is_opposite.
#[test]
fn classification_total() {
    for case in 0..256u64 {
        let mut rng = DetRng::new(cell_seed(0xB4, case));
        let c = rng.next_f64();
        let m = rng.next_f64();
        let p = classify_utilization(c, m);
        match p {
            ResourceProfile::ComputeBound => assert!(c >= 0.6, "case {case}"),
            ResourceProfile::MemoryBound => assert!(m >= 0.6, "case {case}"),
            ResourceProfile::Unknown => assert!(c < 0.6 || m < 0.6, "case {case}"),
        }
        assert!(!p.is_opposite(p), "case {case}");
    }
}

/// End-to-end: N kernels across streams all complete, completion times
/// are at least the solo duration, and total utilization never exceeds 1.
#[test]
fn kernels_complete_and_obey_bounds() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB5, case));
        let n = 1 + rng.uniform_u64(11) as usize;
        let durations: Vec<u64> = (0..n).map(|_| 10 + rng.uniform_u64(490)).collect();
        let seed = rng.uniform_u64(1000);
        let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
        let streams: Vec<_> = (0..3)
            .map(|i| {
                e.create_stream(if i == 0 {
                    StreamPriority::HIGH
                } else {
                    StreamPriority::DEFAULT
                })
            })
            .collect();
        for (i, &us) in durations.iter().enumerate() {
            let mix = (seed + i as u64) % 3;
            let (c, m) = match mix {
                0 => (0.85, 0.2),
                1 => (0.15, 0.8),
                _ => (0.3, 0.3),
            };
            let k = KernelBuilder::new(i as u32, format!("k{i}"))
                .grid_blocks(((seed % 64 + 2 * i as u64 + 2) as u32).min(160))
                .threads_per_block(1024)
                .regs_per_thread(16)
                .solo_duration(SimTime::from_micros(us))
                .utilization(c, m)
                .build();
            let stream = streams[i % streams.len()];
            e.submit(stream, OpKind::Kernel(k)).unwrap();
        }
        e.advance_to(SimTime::from_secs(10));
        let done = e.drain_completions();
        assert_eq!(done.len(), durations.len(), "case {case}");
        let u = e.util_summary();
        assert!(u.compute <= 1.0 + 1e-9, "case {case}");
        assert!(u.mem_bw <= 1.0 + 1e-9, "case {case}");
        assert!(u.sm_busy <= 1.0 + 1e-9, "case {case}");
        // Makespan at least the longest kernel and at most the sum of all.
        let makespan = done.iter().map(|c| c.at).max().unwrap();
        let longest = SimTime::from_micros(*durations.iter().max().unwrap());
        let total: u64 = durations.iter().sum();
        assert!(makespan >= longest, "case {case}");
        // Allow overload-penalty stretch (worst case ~1 + beta_c) plus
        // interleaving slack.
        let upper = SimTime::from_micros(total).mul_f64(1.7) + SimTime::from_micros(1);
        assert!(makespan <= upper, "case {case}: makespan {makespan}, upper {upper}");
    }
}

/// The incremental evaluator never over-grants: at every refresh point of a
/// random add/remove churn the grant total stays within the device and each
/// kernel's own need.
#[test]
fn incremental_grants_bounded_under_churn() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB7, case));
        let sms = 1 + rng.uniform_u64(199) as u32;
        let params = ModelParams {
            num_sms: sms,
            ..ModelParams::from(&GpuSpec::v100_16gb())
        };
        let mut inc = IncrementalEval::new(params);
        let mut seq = 0u64;
        for step in 0..40 {
            if inc.is_empty() || rng.uniform_u64(3) > 0 {
                let mut l = gen_load(&mut rng);
                l.seq = seq;
                seq += 1;
                inc.add(l);
            } else {
                inc.remove_sorted(&[rng.uniform_u64(inc.len() as u64) as u32]);
            }
            inc.refresh();
            let total: u32 = inc.loads().iter().map(|l| l.sm_granted).sum();
            assert!(total <= sms, "case {case} step {step}: {total} > {sms}");
            for (l, r) in inc.loads().iter().zip(inc.rates()) {
                assert!(l.sm_granted <= l.sm_needed, "case {case} step {step}");
                assert_eq!(l.sm_granted, r.sm_granted, "case {case} step {step}");
            }
        }
    }
}

/// Arbitrated rationing factors always land in (0, 1], including under
/// heavy oversubscription.
#[test]
fn factors_in_unit_interval() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB8, case));
        let n = 1 + rng.uniform_u64(30) as usize;
        let eff: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0).collect();
        let shares: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let total: f64 = eff.iter().sum();
        let beta = rng.next_f64() * 2.0;
        let arb = rng.next_f64();
        for f in arbitrated_factors(total, beta, arb, &eff, &shares) {
            assert!(
                f > 0.0 && f <= 1.0,
                "case {case}: factor {f} outside (0, 1] (total {total})"
            );
        }
    }
}

/// Rates are monotonically non-increasing as co-runners are added one at a
/// time (same roofline class throughout, so the interleave alpha of a
/// starved kernel cannot flip upward when the dominant holder changes).
#[test]
fn rates_monotone_as_corunners_added() {
    let p = ModelParams::from(&GpuSpec::v100_16gb());
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB9, case));
        let n = 2 + rng.uniform_u64(9) as usize;
        let mut loads: Vec<KernelLoad> = Vec::new();
        let mut prev: Vec<f64> = Vec::new();
        for step in 0..n {
            loads.push(KernelLoad {
                sm_needed: 1 + rng.uniform_u64(119) as u32,
                sm_granted: 0,
                // All compute-bound: one resource class, one alpha.
                compute_demand: 0.6 + 0.4 * rng.next_f64(),
                mem_demand: 0.2 * rng.next_f64(),
                urgency: 0,
                seq: step as u64,
            });
            // Sticky grants: carry the grants forward like the engine does.
            let rates = evaluate(&p, &loads);
            for (l, r) in loads.iter_mut().zip(&rates) {
                l.sm_granted = r.sm_granted;
            }
            for (i, old) in prev.iter().enumerate() {
                assert!(
                    rates[i].rate <= old + 1e-9,
                    "case {case} step {step}: kernel {i} sped up {old} -> {}",
                    rates[i].rate
                );
            }
            prev = rates.iter().map(|r| r.rate).collect();
        }
    }
}

/// An idle-device evaluation yields the solo rate exactly: a lone kernel
/// whose demand fits the device runs at bitwise 1.0, with its demands
/// consumed verbatim.
#[test]
fn idle_device_solo_rates_exact() {
    let p = ModelParams::from(&GpuSpec::v100_16gb());
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xBA, case));
        let l = KernelLoad {
            sm_needed: 1 + rng.uniform_u64(p.num_sms as u64) as u32,
            sm_granted: 0,
            compute_demand: rng.next_f64(),
            mem_demand: rng.next_f64(),
            urgency: rng.uniform_u64(5) as i16 - 2,
            seq: 0,
        };
        let r = evaluate(&p, &[l])[0];
        assert_eq!(r.rate.to_bits(), 1.0f64.to_bits(), "case {case}");
        assert_eq!(r.sm_granted, l.sm_needed, "case {case}");
        assert_eq!(r.compute_used.to_bits(), l.compute_demand.to_bits(), "case {case}");
        assert_eq!(r.mem_used.to_bits(), l.mem_demand.to_bits(), "case {case}");

        // The incremental evaluator agrees from a cold start.
        let mut inc = IncrementalEval::new(p);
        inc.add(KernelLoad { sm_granted: 0, ..l });
        inc.refresh();
        assert_eq!(inc.rates()[0].rate.to_bits(), 1.0f64.to_bits(), "case {case}");
    }
}

/// Work conservation in time: a kernel's completion time on an idle
/// device equals its solo duration exactly.
#[test]
fn solo_time_exact() {
    for case in 0..CASES {
        let mut rng = DetRng::new(cell_seed(0xB6, case));
        let us = 1 + rng.uniform_u64(9_999);
        let sm = 1 + rng.uniform_u64(80) as u32;
        let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
        let s = e.create_stream(StreamPriority::DEFAULT);
        let k = KernelBuilder::new(0, "solo")
            .grid_blocks(2 * sm)
            .threads_per_block(1024)
            .regs_per_thread(16)
            .solo_duration(SimTime::from_micros(us))
            .utilization(0.5, 0.4)
            .build();
        e.submit(s, OpKind::Kernel(k)).unwrap();
        e.advance_to(SimTime::from_secs(100));
        let done = e.drain_completions();
        assert_eq!(done[0].at, SimTime::from_micros(us), "case {case}");
    }
}

// ---- lazy rate-class invariants (PR 7) ----

/// Drives a seeded mixed workload (kernels, copies, advances, resets) and
/// invokes `check` after every step with the engine refreshed.
fn drive_classes(tag: u64, case: u64, mut check: impl FnMut(&mut GpuEngine, &str)) {
    let mut rng = DetRng::new(cell_seed(tag, case));
    let n_streams = 1 + rng.uniform_u64(48) as usize;
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), true);
    let streams: Vec<_> = (0..n_streams)
        .map(|i| {
            e.create_stream(match i % 3 {
                0 => StreamPriority::HIGH,
                1 => StreamPriority::DEFAULT,
                _ => StreamPriority(1),
            })
        })
        .collect();
    let mut t = SimTime::ZERO;
    for step in 0..140u32 {
        match rng.uniform_u64(100) {
            0..=49 => {
                let sm = 1 + rng.uniform_u64(100) as u32;
                let k = KernelBuilder::new(step, format!("p{step}"))
                    .grid_blocks(2 * sm)
                    .threads_per_block(1024)
                    .regs_per_thread(16)
                    .solo_duration(SimTime::from_micros(5 + rng.uniform_u64(200)))
                    .utilization(rng.next_f64(), rng.next_f64())
                    .build();
                let s = streams[rng.uniform_u64(n_streams as u64) as usize];
                let _ = e.submit(s, OpKind::Kernel(k));
            }
            50..=59 => {
                let s = streams[rng.uniform_u64(n_streams as u64) as usize];
                let _ = e.submit(
                    s,
                    OpKind::MemcpyH2D {
                        bytes: 1 << (10 + rng.uniform_u64(12)),
                        blocking: rng.uniform_u64(4) == 0,
                    },
                );
            }
            60..=94 => {
                t += SimTime::from_micros(1 + rng.uniform_u64(150));
                e.advance_to(t);
                e.drain_completions();
            }
            _ => {
                e.reset_device();
                e.drain_completions();
            }
        }
        e.next_event_time(); // force a refresh so class state is current
        check(&mut e, &format!("case {case} step {step}"));
    }
}

/// Materialized remaining work is non-negative and, per kernel, monotonically
/// non-increasing across every observation point. Both claims are exact (no
/// tolerance): class virtual time only grows, f64 subtraction is monotone,
/// and each leave/join rebase materializes at the current virtual time.
#[test]
fn materialized_remaining_nonnegative_and_monotone() {
    use std::collections::HashMap;
    for case in 0..CASES {
        let mut last: HashMap<u64, f64> = HashMap::new();
        drive_classes(0xBB, case, |e, ctx| {
            let ids = e.running_kernel_ids().to_vec();
            let rem = e.materialized_remaining();
            last.retain(|id, _| ids.contains(id));
            for (i, &id) in ids.iter().enumerate() {
                assert!(
                    rem[i] >= 0.0,
                    "{ctx}: op {id} materialized remaining {} < 0",
                    rem[i]
                );
                if let Some(&prev) = last.get(&id) {
                    assert!(
                        rem[i] <= prev,
                        "{ctx}: op {id} remaining grew: {prev} -> {}",
                        rem[i]
                    );
                }
                last.insert(id, rem[i]);
            }
        });
    }
}

/// Utilization never exceeds 1.0 in any component — neither in the running
/// summary nor in any recorded timeline sample — under the cached-totals
/// integrate path.
#[test]
fn utilization_components_bounded() {
    for case in 0..CASES {
        drive_classes(0xBC, case, |e, ctx| {
            let s = e.util_summary();
            for (name, v) in [
                ("compute", s.compute),
                ("mem_bw", s.mem_bw),
                ("sm_busy", s.sm_busy),
            ] {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&v),
                    "{ctx}: summary {name} = {v}"
                );
            }
            if let Some(tl) = e.util().timeline() {
                for (i, smp) in tl.iter().enumerate() {
                    for (name, v) in [
                        ("compute", smp.compute),
                        ("mem_bw", smp.mem_bw),
                        ("sm_busy", smp.sm_busy),
                    ] {
                        assert!(
                            (0.0..=1.0 + 1e-9).contains(&v),
                            "{ctx}: timeline[{i}] {name} = {v}"
                        );
                    }
                }
            }
        });
    }
}

/// Rate classes partition the running set exactly: every running kernel with
/// a positive rate belongs to exactly one alive class whose rate equals its
/// evaluator rate bit-for-bit; zero-rate (stalled) kernels are classless; and
/// alive member counts sum to the number of classed kernels.
#[test]
fn rate_classes_partition_running_set() {
    for case in 0..CASES {
        drive_classes(0xBD, case, |e, ctx| {
            let rates = e.interference_rates().to_vec();
            let class_rates = e.kernel_class_rates();
            assert_eq!(rates.len(), class_rates.len(), "{ctx}: column length");
            let mut classed = 0u32;
            for (i, r) in rates.iter().enumerate() {
                if r.rate > 0.0 {
                    classed += 1;
                    assert_eq!(
                        class_rates[i].to_bits(),
                        r.rate.to_bits(),
                        "{ctx}: kernel {i} class rate {:?} != evaluator rate {:?}",
                        class_rates[i],
                        r.rate
                    );
                } else {
                    assert_eq!(
                        class_rates[i], 0.0,
                        "{ctx}: stalled kernel {i} still classed at {:?}",
                        class_rates[i]
                    );
                }
            }
            let members: u32 = e.rate_classes().iter().map(|&(_, m)| m).sum();
            assert_eq!(
                members, classed,
                "{ctx}: class member counts don't partition the running set"
            );
            assert_eq!(
                e.rate_class_count() as usize,
                e.rate_classes().len(),
                "{ctx}: live class count mismatch"
            );
        });
    }
}
