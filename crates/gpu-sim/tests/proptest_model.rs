//! Property-based tests for the GPU simulator's core invariants.

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::interference::{allocate_sms, evaluate, KernelLoad, ModelParams};
use orion_gpu::kernel::{classify_utilization, KernelBuilder, ResourceProfile};
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;
use proptest::prelude::*;

fn arb_load() -> impl Strategy<Value = KernelLoad> {
    (
        1u32..120,
        0.0f64..1.0,
        0.0f64..1.0,
        -2i16..3,
        0u64..1_000,
    )
        .prop_map(|(sm, c, m, urg, seq)| KernelLoad {
            sm_needed: sm,
            sm_granted: 0,
            compute_demand: c,
            mem_demand: m,
            urgency: urg,
            seq,
        })
}

proptest! {
    /// SM grants never exceed the device total or any kernel's need.
    #[test]
    fn grants_bounded(loads in prop::collection::vec(arb_load(), 1..20), sms in 1u32..200) {
        let grants = allocate_sms(sms, &loads);
        let total: u32 = grants.iter().sum();
        prop_assert!(total <= sms);
        for (g, l) in grants.iter().zip(&loads) {
            prop_assert!(*g <= l.sm_needed);
        }
    }

    /// Rates are in [0, 1] and consumed resources respect capacity budgets.
    #[test]
    fn rates_and_conservation(loads in prop::collection::vec(arb_load(), 1..20)) {
        let rates = evaluate(&ModelParams::from(&GpuSpec::v100_16gb()), &loads);
        let mut c_total = 0.0;
        let mut m_total = 0.0;
        for r in &rates {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.rate), "rate {}", r.rate);
            c_total += r.compute_used;
            m_total += r.mem_used;
        }
        prop_assert!(c_total <= 1.0 + 1e-9, "compute {c_total}");
        prop_assert!(m_total <= 1.0 + 1e-9, "memory {m_total}");
    }

    /// Adding a second kernel never speeds up the first (interference is
    /// monotone non-positive).
    #[test]
    fn interference_is_monotone(a in arb_load(), b in arb_load()) {
        let p = ModelParams::from(&GpuSpec::v100_16gb());
        let solo = evaluate(&p, &[a])[0].rate;
        let pair = evaluate(&p, &[a, b])[0].rate;
        prop_assert!(pair <= solo + 1e-9, "solo {solo}, pair {pair}");
    }

    /// The 60% classification rule is total and consistent with is_opposite.
    #[test]
    fn classification_total(c in 0.0f64..1.0, m in 0.0f64..1.0) {
        let p = classify_utilization(c, m);
        match p {
            ResourceProfile::ComputeBound => prop_assert!(c >= 0.6),
            ResourceProfile::MemoryBound => prop_assert!(m >= 0.6),
            ResourceProfile::Unknown => prop_assert!(c < 0.6 || m < 0.6),
        }
        prop_assert!(!p.is_opposite(p));
    }

    /// End-to-end: N kernels across streams all complete, completion times
    /// are at least the solo duration, and total utilization never exceeds 1.
    #[test]
    fn kernels_complete_and_obey_bounds(
        durations in prop::collection::vec(10u64..500, 1..12),
        seed in 0u64..1000,
    ) {
        let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
        let streams: Vec<_> = (0..3)
            .map(|i| {
                e.create_stream(if i == 0 {
                    StreamPriority::HIGH
                } else {
                    StreamPriority::DEFAULT
                })
            })
            .collect();
        let mut expected = Vec::new();
        for (i, &us) in durations.iter().enumerate() {
            let mix = (seed + i as u64) % 3;
            let (c, m) = match mix {
                0 => (0.85, 0.2),
                1 => (0.15, 0.8),
                _ => (0.3, 0.3),
            };
            let k = KernelBuilder::new(i as u32, format!("k{i}"))
                .grid_blocks(((seed % 64 + 2 * i as u64 + 2) as u32).min(160))
                .threads_per_block(1024)
                .regs_per_thread(16)
                .solo_duration(SimTime::from_micros(us))
                .utilization(c, m)
                .build();
            let stream = streams[i % streams.len()];
            e.submit(stream, OpKind::Kernel(k)).unwrap();
            expected.push(us);
        }
        e.advance_to(SimTime::from_secs(10));
        let done = e.drain_completions();
        prop_assert_eq!(done.len(), durations.len());
        let u = e.util_summary();
        prop_assert!(u.compute <= 1.0 + 1e-9);
        prop_assert!(u.mem_bw <= 1.0 + 1e-9);
        prop_assert!(u.sm_busy <= 1.0 + 1e-9);
        // Makespan at least the longest kernel and at most the sum of all.
        let makespan = done.iter().map(|c| c.at).max().unwrap();
        let longest = SimTime::from_micros(*durations.iter().max().unwrap());
        let total: u64 = durations.iter().sum();
        prop_assert!(makespan >= longest);
        // Allow overload-penalty stretch (worst case ~1 + beta_c) plus
        // interleaving slack.
        let upper = SimTime::from_micros(total).mul_f64(1.7) + SimTime::from_micros(1);
        prop_assert!(makespan <= upper, "makespan {makespan}, upper {upper}");
    }

    /// Work conservation in time: a kernel's completion time on an idle
    /// device equals its solo duration exactly.
    #[test]
    fn solo_time_exact(us in 1u64..10_000, sm in 1u32..81) {
        let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
        let s = e.create_stream(StreamPriority::DEFAULT);
        let k = KernelBuilder::new(0, "solo")
            .grid_blocks(2 * sm)
            .threads_per_block(1024)
            .regs_per_thread(16)
            .solo_duration(SimTime::from_micros(us))
            .utilization(0.5, 0.4)
            .build();
        e.submit(s, OpKind::Kernel(k)).unwrap();
        e.advance_to(SimTime::from_secs(100));
        let done = e.drain_completions();
        prop_assert_eq!(done[0].at, SimTime::from_micros(us));
    }
}
