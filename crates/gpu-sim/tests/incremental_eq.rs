//! Differential equivalence harness for the incremental interference
//! evaluator.
//!
//! The engine's hot path maintains interference state with
//! [`IncrementalEval`], which claims to be **bit-identical** to running the
//! full [`evaluate_into`] from scratch on the same loads after every
//! membership change. These tests attack that claim two ways:
//!
//! 1. **Direct churn** — seeded random add/remove/clear sequences against a
//!    bare `IncrementalEval`, comparing rates, grants, and rationing factors
//!    bit-for-bit against a fresh full evaluation after every refresh. A
//!    mismatch is shrunk (greedy delta-debugging) to a minimal failing op
//!    sequence before the panic, so the report is directly actionable.
//! 2. **Engine churn** — seeded random workloads (kernels, PCIe copies,
//!    faults, device resets, 1–64 streams) against a real [`GpuEngine`],
//!    comparing the engine's incremental rates against a full evaluation of
//!    its own load snapshot after every step.
//!
//! Plus the per-timestamp evaluation-dedup regression test for the engine's
//! batched completion drain (`eval_count` / `eval_full_count`).

use orion_desim::rng::{cell_seed, DetRng};
use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::fault::{FaultPlan, FaultRates};
use orion_gpu::interference::{
    evaluate_into, EvalScratch, IncrementalEval, KernelLoad, ModelParams,
};
use orion_gpu::kernel::KernelBuilder;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;

/// One membership-churn step against the incremental evaluator.
#[derive(Clone, Copy, Debug)]
enum ChurnOp {
    /// Add a kernel (seq is assigned monotonically at replay time).
    Add {
        sm_needed: u32,
        compute: f64,
        mem: f64,
        urgency: i16,
    },
    /// Remove the load at `pick % len` (no-op when empty).
    Remove { pick: u64 },
    /// Remove every `(pick % 3 + 2)`-th load (no-op when empty).
    RemoveBatch { pick: u64 },
    /// Remove everything (device reset path).
    Clear,
}

fn gen_ops(rng: &mut DetRng) -> Vec<ChurnOp> {
    let len = 5 + rng.uniform_u64(55) as usize;
    (0..len)
        .map(|_| match rng.uniform_u64(100) {
            // Adds dominate so the set actually grows; needs oversubscribe
            // the 80-SM device and demands push past both capacity roofs.
            0..=54 => ChurnOp::Add {
                sm_needed: 1 + rng.uniform_u64(159) as u32,
                compute: rng.next_f64(),
                mem: rng.next_f64(),
                urgency: rng.uniform_u64(64) as i16 - 32,
            },
            55..=84 => ChurnOp::Remove {
                pick: rng.uniform_u64(1 << 32),
            },
            85..=95 => ChurnOp::RemoveBatch {
                pick: rng.uniform_u64(1 << 32),
            },
            _ => ChurnOp::Clear,
        })
        .collect()
}

/// Compares the incremental state against a fresh full evaluation of the
/// same loads. Bitwise: any ULP of drift is a failure.
fn compare(params: &ModelParams, inc: &IncrementalEval, scratch: &mut EvalScratch) -> Option<String> {
    evaluate_into(params, inc.loads(), scratch);
    let got = inc.rates();
    let want = &scratch.rates;
    if got.len() != want.len() {
        return Some(format!("rate count {} != full {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        if g.sm_granted != w.sm_granted {
            return Some(format!(
                "kernel {i}: grant {} != full {}",
                g.sm_granted, w.sm_granted
            ));
        }
        for (field, gv, wv) in [
            ("rate", g.rate, w.rate),
            ("compute_used", g.compute_used, w.compute_used),
            ("mem_used", g.mem_used, w.mem_used),
        ] {
            if gv.to_bits() != wv.to_bits() {
                return Some(format!(
                    "kernel {i}: {field} {gv:?} ({:#x}) != full {wv:?} ({:#x})",
                    gv.to_bits(),
                    wv.to_bits()
                ));
            }
        }
    }
    let (full_cf, full_mf) = scratch.factors();
    match inc.factors() {
        Some((cf, mf)) => {
            for (name, got_f, want_f) in [("compute", cf, full_cf), ("mem", mf, full_mf)] {
                for (i, (g, w)) in got_f.iter().zip(want_f.iter()).enumerate() {
                    if g.to_bits() != w.to_bits() {
                        return Some(format!("kernel {i}: {name} factor {g:?} != full {w:?}"));
                    }
                }
            }
        }
        // Under capacity the factors are not materialized: the full
        // evaluator must agree they are all exactly 1.0.
        None => {
            for (name, want_f) in [("compute", full_cf), ("mem", full_mf)] {
                if let Some((i, w)) = want_f.iter().enumerate().find(|(_, w)| **w != 1.0) {
                    return Some(format!(
                        "under-capacity claim wrong: full {name} factor[{i}] = {w:?}"
                    ));
                }
            }
        }
    }
    None
}

/// Replays `ops` from scratch; returns the first mismatch (step + detail).
fn replay(params: &ModelParams, ops: &[ChurnOp]) -> Option<String> {
    let mut inc = IncrementalEval::new(*params);
    let mut scratch = EvalScratch::default();
    let mut seq = 0u64;
    let mut batch: Vec<u32> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            ChurnOp::Add {
                sm_needed,
                compute,
                mem,
                urgency,
            } => {
                inc.add(KernelLoad {
                    sm_needed,
                    sm_granted: 0,
                    compute_demand: compute,
                    mem_demand: mem,
                    urgency,
                    seq,
                });
                seq += 1;
            }
            ChurnOp::Remove { pick } => {
                if !inc.is_empty() {
                    inc.remove_sorted(&[(pick % inc.len() as u64) as u32]);
                }
            }
            ChurnOp::RemoveBatch { pick } => {
                if !inc.is_empty() {
                    let stride = (pick % 3 + 2) as usize;
                    batch.clear();
                    batch.extend((0..inc.len()).step_by(stride).map(|i| i as u32));
                    inc.remove_sorted(&batch);
                }
            }
            ChurnOp::Clear => inc.clear(),
        }
        inc.refresh();
        if let Some(msg) = compare(params, &inc, &mut scratch) {
            return Some(format!("step {step} ({op:?}): {msg}"));
        }
    }
    None
}

/// Greedy delta-debugging: drop ops one at a time while the replay still
/// fails. Converges to a locally minimal failing sequence.
fn shrink(params: &ModelParams, mut ops: Vec<ChurnOp>) -> Vec<ChurnOp> {
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < ops.len() {
            let mut candidate = ops.clone();
            candidate.remove(i);
            if replay(params, &candidate).is_some() {
                ops = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return ops;
        }
    }
}

fn run_churn_corpus(params: &ModelParams, tag: u64, cases: u64) {
    for case in 0..cases {
        let mut rng = DetRng::new(cell_seed(tag, case));
        let ops = gen_ops(&mut rng);
        if let Some(msg) = replay(params, &ops) {
            let minimal = shrink(params, ops);
            let repro = replay(params, &minimal).unwrap_or_default();
            panic!(
                "case {case}: {msg}\n\
                 minimal failing sequence ({} ops): {minimal:#?}\n\
                 minimal repro: {repro}",
                minimal.len()
            );
        }
    }
}

/// 128 seeded sequences on the V100 model: incremental rates, grants, and
/// factors stay bit-identical to a fresh full evaluation after every
/// membership change.
#[test]
fn incremental_matches_full_eval_under_churn() {
    let params = ModelParams::from(&GpuSpec::v100_16gb());
    run_churn_corpus(&params, 0xE1, 128);
}

/// Same corpus on a tiny 8-SM device: near-permanent starvation maximizes
/// holder churn and interleave-alpha sensitivity.
#[test]
fn incremental_matches_full_eval_when_starved() {
    let params = ModelParams {
        num_sms: 8,
        ..ModelParams::from(&GpuSpec::v100_16gb())
    };
    run_churn_corpus(&params, 0xE3, 64);
}

/// Forces a refresh (the engine refreshes lazily), then compares the
/// engine's incremental rates against a full evaluation of its own load
/// snapshot.
fn check_engine(e: &mut GpuEngine, params: &ModelParams, scratch: &mut EvalScratch, ctx: &str) {
    e.next_event_time();
    evaluate_into(params, e.interference_loads(), scratch);
    let got = e.interference_rates();
    let want = &scratch.rates;
    assert_eq!(got.len(), want.len(), "{ctx}: load count");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.sm_granted, w.sm_granted, "{ctx}: kernel {i} grant");
        assert_eq!(
            g.rate.to_bits(),
            w.rate.to_bits(),
            "{ctx}: kernel {i} rate {:?} != full {:?}",
            g.rate,
            w.rate
        );
        assert_eq!(
            g.compute_used.to_bits(),
            w.compute_used.to_bits(),
            "{ctx}: kernel {i} compute_used"
        );
        assert_eq!(
            g.mem_used.to_bits(),
            w.mem_used.to_bits(),
            "{ctx}: kernel {i} mem_used"
        );
    }
}

/// 48 seeded engine workloads over 1–64 streams with kernels, PCIe copies,
/// fault injection, and device resets: after every submit/advance/reset the
/// incremental state matches the full evaluator on the live kernel set.
#[test]
fn engine_rates_match_full_eval_under_churn() {
    let params = ModelParams::from(&GpuSpec::v100_16gb());
    for case in 0..48u64 {
        let mut rng = DetRng::new(cell_seed(0xE2, case));
        let n_streams = 1 + rng.uniform_u64(64) as usize;
        let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
        if case.is_multiple_of(3) {
            e.set_fault_plan(FaultPlan::seeded(
                0xFA + case,
                FaultRates {
                    kernel_fault: 0.02,
                    copy_fail: 0.05,
                    malloc_fail: 0.02,
                    ..FaultRates::default()
                },
            ));
        }
        let streams: Vec<_> = (0..n_streams)
            .map(|i| {
                e.create_stream(match i % 3 {
                    0 => StreamPriority::HIGH,
                    1 => StreamPriority::DEFAULT,
                    _ => StreamPriority(1),
                })
            })
            .collect();
        let mut t = SimTime::ZERO;
        for step in 0..220u32 {
            let ctx = format!("case {case} step {step}");
            match rng.uniform_u64(100) {
                0..=54 => {
                    let sm = 1 + rng.uniform_u64(100) as u32;
                    let us = 5 + rng.uniform_u64(200);
                    let k = KernelBuilder::new(step, format!("c{case}s{step}"))
                        .grid_blocks(2 * sm)
                        .threads_per_block(1024)
                        .regs_per_thread(16)
                        .solo_duration(SimTime::from_micros(us))
                        .utilization(rng.next_f64(), rng.next_f64())
                        .build();
                    let s = streams[rng.uniform_u64(n_streams as u64) as usize];
                    let _ = e.submit(s, OpKind::Kernel(k));
                }
                55..=69 => {
                    let bytes = 1 << (10 + rng.uniform_u64(12));
                    let blocking = rng.uniform_u64(4) == 0;
                    let s = streams[rng.uniform_u64(n_streams as u64) as usize];
                    let kind = if rng.uniform_u64(2) == 0 {
                        OpKind::MemcpyH2D { bytes, blocking }
                    } else {
                        OpKind::MemcpyD2H { bytes, blocking }
                    };
                    let _ = e.submit(s, kind);
                }
                70..=92 => {
                    t += SimTime::from_micros(1 + rng.uniform_u64(150));
                    e.advance_to(t);
                    e.drain_completions();
                }
                _ => {
                    if e.device_faulted() || rng.uniform_u64(4) == 0 {
                        e.reset_device();
                        e.drain_completions();
                    }
                }
            }
            check_engine(&mut e, &params, &mut EvalScratch::default(), &ctx);
        }
        // Drain to idle and check the empty-set fixpoint too.
        t += SimTime::from_secs(10);
        e.advance_to(t);
        if e.device_faulted() {
            e.reset_device();
        }
        e.drain_completions();
        check_engine(
            &mut e,
            &params,
            &mut EvalScratch::default(),
            &format!("case {case} drained"),
        );
    }
}

// ---- lazy-vs-eager integrator equivalence (PR 7) ----
//
// The engine integrates kernel progress lazily: per rate class, a virtual
// time `S_c` advances once per event, and a kernel's remaining work exists
// only as `rem(join) - (S_c - S_c(join))` until a rate change, completion,
// or external read materializes it. These tests replay seeded engine
// workloads while maintaining an *eager* reference integrator outside the
// engine (`ref -= rate * dt` per constant-rate interval, the pre-PR 7
// semantics) and compare the engine's force-materialized remaining work
// against it after every step:
//
// * kernels that only ever ran at rate 1.0 must match **bitwise** (`S_c` is
//   an exact integer-nanosecond sum below 2^53, so the lazy subtraction is
//   exact — the documented unit-rate exactness claim);
// * contended kernels must match within `LAZY_TOL_NS`: each materialization
//   re-associates one `rate*dt` sum, losing at most ~2 ulp of the class
//   virtual time (~1e-5 ns at the simulated magnitudes here), and a kernel
//   materializes at most once per step — 220 steps x 2 ulp stays orders of
//   magnitude below the 0.5 ns completion epsilon. 0.01 ns gives 50x
//   headroom over that accumulation while still failing loudly on any real
//   integration bug (which shows up at >= 1 ns immediately).
//
// Failures shrink to a locally minimal step sequence before panicking.

/// Documented divergence bound between the lazy and eager integrators for
/// kernels that ever ran contended (see module comment above).
const LAZY_TOL_NS: f64 = 0.01;

/// One step of the lazy-integrator churn driver.
#[derive(Clone, Copy, Debug)]
enum LazyOp {
    /// Submit a kernel onto stream `pick % n_streams`.
    Kernel {
        sm: u32,
        us: u64,
        compute: f64,
        mem: f64,
        pick: u64,
    },
    /// Submit a PCIe copy (blocking copies gate kernel dispatch).
    Copy {
        bytes: u64,
        blocking: bool,
        pick: u64,
    },
    /// Advance exactly to the next internal event (one completion round).
    AdvanceNext,
    /// Advance by `us` microseconds, capped at the next internal event so
    /// the interval has constant rates the reference can mirror.
    AdvancePartial { us: u64 },
    /// Abort everything (device-reset path).
    Reset,
}

fn gen_lazy_ops(rng: &mut DetRng) -> Vec<LazyOp> {
    let len = 30 + rng.uniform_u64(190) as usize;
    (0..len)
        .map(|_| match rng.uniform_u64(100) {
            0..=39 => LazyOp::Kernel {
                sm: 1 + rng.uniform_u64(100) as u32,
                us: 5 + rng.uniform_u64(200),
                compute: rng.next_f64(),
                mem: rng.next_f64(),
                pick: rng.uniform_u64(1 << 32),
            },
            40..=49 => LazyOp::Copy {
                bytes: 1 << (10 + rng.uniform_u64(12)),
                blocking: rng.uniform_u64(4) == 0,
                pick: rng.uniform_u64(1 << 32),
            },
            50..=74 => LazyOp::AdvanceNext,
            75..=96 => LazyOp::AdvancePartial {
                us: 1 + rng.uniform_u64(150),
            },
            _ => LazyOp::Reset,
        })
        .collect()
}

/// Replays `ops` against a fresh engine while integrating the eager
/// reference alongside; returns the first divergence (step + detail).
fn replay_lazy(case: u64, n_streams: usize, ops: &[LazyOp]) -> Option<String> {
    use std::collections::HashMap;

    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    if case.is_multiple_of(3) {
        e.set_fault_plan(FaultPlan::seeded(
            0xFA + case,
            FaultRates {
                kernel_fault: 0.02,
                copy_fail: 0.05,
                malloc_fail: 0.02,
                ..FaultRates::default()
            },
        ));
    }
    let streams: Vec<_> = (0..n_streams)
        .map(|i| {
            e.create_stream(match i % 3 {
                0 => StreamPriority::HIGH,
                1 => StreamPriority::DEFAULT,
                _ => StreamPriority(1),
            })
        })
        .collect();
    // Eager reference: op id -> (remaining solo-ns, ever ran contended).
    let mut reference: HashMap<u64, (f64, bool)> = HashMap::new();
    let mut kid = 0u32;

    // Post-step sync: adopt newly dispatched kernels (their materialized
    // remaining is still the exact initial value — nothing has integrated),
    // drop departed ones, flag contended rates, and compare survivors.
    let sync = |e: &mut GpuEngine,
                reference: &mut HashMap<u64, (f64, bool)>,
                step: usize,
                op: &LazyOp|
     -> Option<String> {
        e.next_event_time(); // force refresh
        let ids = e.running_kernel_ids().to_vec();
        let rates = e.interference_rates().to_vec();
        let lazy = e.materialized_remaining();
        reference.retain(|id, _| ids.contains(id));
        for (i, &id) in ids.iter().enumerate() {
            let entry = reference
                .entry(id)
                .or_insert_with(|| (lazy[i], false));
            if rates[i].rate != 1.0 && rates[i].rate > 0.0 {
                entry.1 = true;
            }
            let (want, contended) = *entry;
            let got = lazy[i];
            if contended {
                if (got - want).abs() > LAZY_TOL_NS {
                    return Some(format!(
                        "step {step} ({op:?}): kernel op {id}: lazy {got:?} vs eager \
                         {want:?} (|diff| {} > {LAZY_TOL_NS})",
                        (got - want).abs()
                    ));
                }
            } else if got.to_bits() != want.to_bits() {
                return Some(format!(
                    "step {step} ({op:?}): unit-rate kernel op {id}: lazy {got:?} \
                     ({:#x}) != eager {want:?} ({:#x})",
                    got.to_bits(),
                    want.to_bits()
                ));
            }
        }
        None
    };

    for (step, op) in ops.iter().enumerate() {
        match *op {
            LazyOp::Kernel {
                sm,
                us,
                compute,
                mem,
                pick,
            } => {
                let k = KernelBuilder::new(kid, format!("lz{kid}"))
                    .grid_blocks(2 * sm)
                    .threads_per_block(1024)
                    .regs_per_thread(16)
                    .solo_duration(SimTime::from_micros(us))
                    .utilization(compute, mem)
                    .build();
                kid += 1;
                let s = streams[(pick % n_streams as u64) as usize];
                let _ = e.submit(s, OpKind::Kernel(k));
            }
            LazyOp::Copy {
                bytes,
                blocking,
                pick,
            } => {
                let s = streams[(pick % n_streams as u64) as usize];
                let _ = e.submit(s, OpKind::MemcpyH2D { bytes, blocking });
            }
            LazyOp::AdvanceNext | LazyOp::AdvancePartial { .. } => {
                let t_next = e.next_event_time();
                let target = match (*op, t_next) {
                    (LazyOp::AdvanceNext, Some(t)) => t,
                    (LazyOp::AdvanceNext, None) => continue,
                    (LazyOp::AdvancePartial { us }, t) => {
                        let want = e.now() + SimTime::from_micros(us);
                        t.map_or(want, |t| want.min(t))
                    }
                    _ => unreachable!(),
                };
                // Constant-rate interval [now, target]: integrate the
                // reference with the engine's own (fresh) rates.
                let dt_ns = (target - e.now()).as_nanos() as f64;
                let ids = e.running_kernel_ids().to_vec();
                let rates = e.interference_rates().to_vec();
                for (i, id) in ids.iter().enumerate() {
                    if let Some(entry) = reference.get_mut(id) {
                        entry.0 -= rates[i].rate * dt_ns;
                    }
                }
                e.advance_to(target);
                e.drain_completions();
            }
            LazyOp::Reset => {
                e.reset_device();
                e.drain_completions();
            }
        }
        if let Some(msg) = sync(&mut e, &mut reference, step, op) {
            return Some(msg);
        }
    }
    None
}

/// Greedy delta-debugging over the lazy-integrator step sequence.
fn shrink_lazy(case: u64, n_streams: usize, mut ops: Vec<LazyOp>) -> Vec<LazyOp> {
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < ops.len() {
            let mut candidate = ops.clone();
            candidate.remove(i);
            if replay_lazy(case, n_streams, &candidate).is_some() {
                ops = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return ops;
        }
    }
}

/// 112 seeded engine workloads (1–64 streams, kernels, copies, faults,
/// resets): after every step, the engine's force-materialized remaining
/// work matches an eager O(n) reference integration — bitwise for
/// always-unit-rate kernels, within [`LAZY_TOL_NS`] for contended ones.
#[test]
fn lazy_materialization_matches_eager_integration() {
    for case in 0..112u64 {
        let mut rng = DetRng::new(cell_seed(0xE4, case));
        let n_streams = 1 + rng.uniform_u64(64) as usize;
        let ops = gen_lazy_ops(&mut rng);
        if let Some(msg) = replay_lazy(case, n_streams, &ops) {
            let minimal = shrink_lazy(case, n_streams, ops);
            let repro = replay_lazy(case, n_streams, &minimal).unwrap_or_default();
            panic!(
                "case {case} ({n_streams} streams): {msg}\n\
                 minimal failing sequence ({} ops): {minimal:#?}\n\
                 minimal repro: {repro}",
                minimal.len()
            );
        }
    }
}

/// Regression test for the per-timestamp evaluation dedupe: a wave of
/// same-instant completions must cost one evaluation, not one per
/// completion — and under capacity no full (all-kernel) evaluation ever
/// runs, at any stream count.
#[test]
fn same_timestamp_completions_evaluate_once() {
    let mut evals_at = Vec::new();
    for &n in &[4usize, 8, 32] {
        let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
        let streams: Vec<_> = (0..n)
            .map(|_| e.create_stream(StreamPriority::DEFAULT))
            .collect();
        // n identical low-demand kernels: all dispatch at t=0 and all
        // complete at the same instant, staying under both capacity roofs.
        for (i, &s) in streams.iter().enumerate() {
            let k = KernelBuilder::new(i as u32, format!("k{i}"))
                .grid_blocks(4)
                .threads_per_block(256)
                .solo_duration(SimTime::from_micros(100))
                .utilization(0.01, 0.01)
                .build();
            e.submit(s, OpKind::Kernel(k)).unwrap();
        }
        e.advance_to(SimTime::from_millis(1));
        assert_eq!(e.drain_completions().len(), n);
        // Under capacity the incremental evaluator never falls back to the
        // full path, regardless of how many kernels run.
        assert_eq!(e.eval_full_count(), 0, "streams={n}");
        // One eval for the dispatch wave, one for the completion wave (plus
        // at most one bookkeeping refresh) — NOT one per completion.
        assert!(
            e.eval_count() <= 4,
            "streams={n}: {} evaluations for 2 timestamps",
            e.eval_count()
        );
        evals_at.push(e.eval_count());
    }
    // Flat in the number of same-instant completions.
    assert_eq!(evals_at[0], evals_at[2], "evals grew with stream count: {evals_at:?}");
}

/// Regression test for the steady-state composition memo: homogeneous
/// over-capacity waves (each finished kernel replaced by an identical
/// successor) must be answered from the memo, and — the bug this pins —
/// every memo hit must restore the derived arrays, not just report the
/// cached verdict. A memo that returns stale zero-rate placeholders stalls
/// the simulation (kernels never progress) and diverges from the full
/// evaluator; both symptoms are asserted against here.
#[test]
fn steady_state_memo_hits_restore_full_eval_output() {
    let params = ModelParams::from(&GpuSpec::v100_16gb());
    let mut scratch = EvalScratch::default();
    let n_streams = 4usize;
    let waves = 25u64;
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    let streams: Vec<_> = (0..n_streams)
        .map(|_| e.create_stream(StreamPriority::DEFAULT))
        .collect();
    // One shared prototype, submitted by reference: 4 x 40 SM-equivalents
    // of demand on an 80-SM device keeps every wave over capacity, so each
    // refresh takes the (memoizable) full path.
    let proto = KernelBuilder::new(0, "memo")
        .grid_blocks(40)
        .threads_per_block(256)
        .solo_duration(SimTime::from_micros(50))
        .utilization(0.5, 0.3)
        .build();
    for i in 0..(waves * n_streams as u64) {
        e.submit_kernel(streams[i as usize % n_streams], &proto)
            .unwrap();
    }
    let mut t = SimTime::ZERO;
    let mut checked_with_memo = 0u64;
    while !e.fully_idle() {
        t += SimTime::from_micros(75);
        e.advance_to(t);
        if e.eval_memo_count() > 0 && !e.interference_loads().is_empty() {
            // The engine's post-refresh state must be bitwise the full
            // evaluator's output even when the refresh was a memo hit.
            check_engine(&mut e, &params, &mut scratch, &format!("wave at {t:?}"));
            checked_with_memo += 1;
        }
    }
    assert_eq!(e.drain_completions().len() as u64, waves * n_streams as u64);
    assert!(
        e.eval_memo_count() > waves / 2,
        "homogeneous waves should hit the memo: {} hits over {waves} waves",
        e.eval_memo_count()
    );
    assert!(checked_with_memo > 0, "memo-backed states were never checked");
}
