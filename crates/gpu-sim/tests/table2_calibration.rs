//! Calibration of the interference model against the paper's Table 2 toy
//! experiment (§3.2): collocating Conv2d (compute-intensive) and BN2d
//! (memory-intensive) kernels on a V100.
//!
//! Paper numbers (sequential -> collocated, speedup):
//!   Conv2d+Conv2d: 2.59 ms -> 2.63 ms (0.98x)
//!   BN2d+BN2d:     1.78 ms -> 1.65 ms (1.08x)
//!   Conv2d+BN2d:   2.15 ms -> 1.52 ms (1.41x)

use std::sync::Arc;

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::kernel::{KernelBuilder, KernelDesc};
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;

/// Conv2d with batch size 32: 1.35 ms solo, 100% of SMs, 89%/20% c/m util.
fn conv2d() -> Arc<KernelDesc> {
    KernelBuilder::new(0, "conv2d")
        .grid_blocks(160) // 2 blocks/SM at 1024 threads -> 80 SMs
        .threads_per_block(1024)
        .regs_per_thread(16)
        .solo_duration(SimTime::from_micros(1350))
        .utilization(0.89, 0.20)
        .build()
}

/// BN2d with batch size 32: 0.93 ms solo, 40% of SMs, 14%/80% c/m util.
fn bn2d() -> Arc<KernelDesc> {
    KernelBuilder::new(1, "bn2d")
        .grid_blocks(64) // 2 blocks/SM -> 32 SMs (40% of 80)
        .threads_per_block(1024)
        .regs_per_thread(16)
        .solo_duration(SimTime::from_micros(930))
        .utilization(0.14, 0.80)
        .build()
}

/// Runs `a` then `b` on one stream; returns the makespan.
fn sequential(a: Arc<KernelDesc>, b: Arc<KernelDesc>) -> SimTime {
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    let s = e.create_stream(StreamPriority::DEFAULT);
    e.submit(s, OpKind::Kernel(a)).unwrap();
    e.submit(s, OpKind::Kernel(b)).unwrap();
    e.advance_to(SimTime::from_secs(1));
    e.drain_completions().last().unwrap().at
}

/// Runs `a` and `b` concurrently on two streams; returns the makespan.
fn collocated(a: Arc<KernelDesc>, b: Arc<KernelDesc>) -> SimTime {
    let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
    let s1 = e.create_stream(StreamPriority::DEFAULT);
    let s2 = e.create_stream(StreamPriority::DEFAULT);
    e.submit(s1, OpKind::Kernel(a)).unwrap();
    e.submit(s2, OpKind::Kernel(b)).unwrap();
    e.advance_to(SimTime::from_secs(1));
    e.drain_completions()
        .iter()
        .map(|c| c.at)
        .max()
        .unwrap()
}

fn speedup(a: Arc<KernelDesc>, b: Arc<KernelDesc>) -> f64 {
    let seq = sequential(a.clone(), b.clone()).as_secs_f64();
    let col = collocated(a, b).as_secs_f64();
    seq / col
}

#[test]
fn conv_conv_serializes() {
    // Paper: 0.98x (slight slowdown). Our model gives ~1.0 (no overhead
    // term); assert the collocation shows no meaningful speedup.
    let s = speedup(conv2d(), conv2d());
    assert!(s <= 1.02, "Conv2d+Conv2d speedup {s:.3} should be ~<= 1");
}

#[test]
fn bn_bn_mild_speedup() {
    // Paper: 1.08x. Accept 1.0..1.25 (same-resource contention dominates).
    let s = speedup(bn2d(), bn2d());
    assert!(
        (1.0..=1.25).contains(&s),
        "BN2d+BN2d speedup {s:.3} outside [1.0, 1.25]"
    );
}

#[test]
fn conv_bn_large_speedup() {
    // Paper: 1.41x. Accept 1.3..1.6 (opposite profiles overlap cleanly).
    let s = speedup(conv2d(), bn2d());
    assert!(
        (1.30..=1.60).contains(&s),
        "Conv2d+BN2d speedup {s:.3} outside [1.30, 1.60]"
    );
}

#[test]
fn collocation_ranking_matches_paper() {
    let cc = speedup(conv2d(), conv2d());
    let bb = speedup(bn2d(), bn2d());
    let cb = speedup(conv2d(), bn2d());
    assert!(
        cb > bb && bb > cc,
        "expected Conv+BN ({cb:.2}) > BN+BN ({bb:.2}) > Conv+Conv ({cc:.2})"
    );
}
