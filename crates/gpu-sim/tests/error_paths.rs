//! Exact-variant coverage of every [`GpuError`] the simulated CUDA API can
//! surface, including the sticky [`GpuError::DeviceFault`] state machine
//! (fault → every submit rejected → `reset_device` → submits accepted).

use std::sync::Arc;

use orion_desim::time::SimTime;
use orion_gpu::engine::{CompletionStatus, EventId, GpuEngine, OpKind};
use orion_gpu::error::GpuError;
use orion_gpu::fault::{FaultKind, FaultPlan, FaultTarget};
use orion_gpu::kernel::{KernelBuilder, KernelDesc};
use orion_gpu::memory::AllocId;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::{StreamId, StreamPriority};

fn engine() -> GpuEngine {
    GpuEngine::new(GpuSpec::v100_16gb(), true)
}

fn kernel(id: u32) -> Arc<KernelDesc> {
    KernelBuilder::new(id, format!("k{id}"))
        .grid_blocks(80)
        .threads_per_block(1024)
        .regs_per_thread(16)
        .solo_duration(SimTime::from_micros(50))
        .utilization(0.5, 0.3)
        .build()
}

#[test]
fn memcpy_to_unknown_stream_is_rejected() {
    let mut e = engine();
    // No stream was ever created; id 7 cannot exist.
    let err = e
        .submit(
            StreamId(7),
            OpKind::MemcpyH2D {
                bytes: 1024,
                blocking: false,
            },
        )
        .unwrap_err();
    assert_eq!(err, GpuError::UnknownStream(7));
    assert!(!e.busy(), "rejected op must not occupy the device");
}

#[test]
fn stream_depth_of_unknown_stream_is_rejected() {
    let e = engine();
    assert_eq!(e.stream_depth(StreamId(3)).unwrap_err(), GpuError::UnknownStream(3));
}

#[test]
fn alloc_past_capacity_reports_requested_and_available() {
    let mut e = engine();
    let capacity = e.memory().capacity();
    let half = e.alloc_immediate(capacity / 2).unwrap();
    let err = e.alloc_immediate(capacity).unwrap_err();
    assert_eq!(
        err,
        GpuError::OutOfMemory {
            requested: capacity,
            available: capacity - capacity / 2,
        }
    );
    // The failed allocation must not leak ledger space.
    assert_eq!(e.free_immediate(half).unwrap(), capacity / 2);
    assert_eq!(e.memory().used(), 0);
}

#[test]
fn event_query_of_unknown_event_is_rejected() {
    let mut e = engine();
    assert_eq!(e.event_done(EventId(99)).unwrap_err(), GpuError::UnknownEvent(99));
    assert_eq!(e.event_reset(EventId(99)).unwrap_err(), GpuError::UnknownEvent(99));
    // A created event is queryable (false until recorded and completed).
    let ev = e.create_event();
    assert_eq!(e.event_done(ev), Ok(false));
}

#[test]
fn free_of_unknown_allocation_is_rejected() {
    let mut e = engine();
    assert_eq!(
        e.free_immediate(AllocId(42)).unwrap_err(),
        GpuError::UnknownAllocation(42)
    );
    // Double-free of a real allocation takes the same path.
    let a = e.alloc_immediate(1 << 20).unwrap();
    e.free_immediate(a).unwrap();
    assert_eq!(e.free_immediate(a).unwrap_err(), GpuError::UnknownAllocation(a.0));
}

#[test]
fn submits_after_sticky_fault_fail_until_reset() {
    let mut e = engine();
    e.set_fault_plan(FaultPlan::none().with_target(FaultTarget::Ordinal(0), FaultKind::KernelFault));
    let s = e.create_stream(StreamPriority::DEFAULT);
    e.submit(s, OpKind::Kernel(kernel(0))).unwrap();
    e.advance_to(SimTime::from_millis(1));
    let done = e.drain_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, CompletionStatus::Faulted);
    assert!(e.device_faulted());

    // Sticky: every op kind is rejected, even on a valid stream, and the
    // device-fault check precedes stream validation (CUDA sticky semantics).
    for kind in [
        OpKind::Kernel(kernel(1)),
        OpKind::MemcpyH2D {
            bytes: 1,
            blocking: false,
        },
        OpKind::Malloc { bytes: 1 },
    ] {
        assert_eq!(e.submit(s, kind).unwrap_err(), GpuError::DeviceFault);
    }
    assert_eq!(
        e.submit(StreamId(99), OpKind::Malloc { bytes: 1 }).unwrap_err(),
        GpuError::DeviceFault,
    );

    // Reset clears the sticky state; the same submits now succeed.
    e.reset_device();
    assert!(!e.device_faulted());
    e.submit(s, OpKind::Kernel(kernel(1))).unwrap();
    e.advance_to(SimTime::from_millis(2));
    let done = e.drain_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, CompletionStatus::Ok);
}

#[test]
fn memory_ledger_survives_device_reset() {
    let mut e = engine();
    e.set_fault_plan(FaultPlan::none().with_target(FaultTarget::Ordinal(0), FaultKind::KernelFault));
    let s = e.create_stream(StreamPriority::DEFAULT);
    let a = e.alloc_immediate(1 << 20).unwrap();
    e.submit(s, OpKind::Kernel(kernel(0))).unwrap();
    e.advance_to(SimTime::from_millis(1));
    e.drain_completions();
    assert!(e.device_faulted());
    e.reset_device();
    // cudaDeviceReset in Orion's recovery path does not tear down the
    // allocation ledger: the supervisor re-admits clients whose memory is
    // still resident.
    assert_eq!(e.memory().used(), 1 << 20);
    assert_eq!(e.free_immediate(a).unwrap(), 1 << 20);
}
