//! Hot-path phase timer: isolates submit, dispatch, advance, and drain
//! costs for the bench_engine workload so optimization work targets the
//! real bottleneck. Run with `cargo run --release -p orion-gpu --example
//! profile_hotpath`.

use std::time::Instant;

use orion_desim::time::SimTime;
use orion_gpu::engine::{GpuEngine, OpKind};
use orion_gpu::kernel::KernelBuilder;
use orion_gpu::spec::GpuSpec;
use orion_gpu::stream::StreamPriority;

fn run(n_ops: u64, n_streams: usize, c: f64, m: f64, label: &str) {
    let iters = 30;
    let mut submit_ns = u128::MAX;
    let mut advance_ns = u128::MAX;
    for _ in 0..iters {
        let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
        let streams: Vec<_> = (0..n_streams)
            .map(|_| e.create_stream(StreamPriority::DEFAULT))
            .collect();
        let proto = KernelBuilder::new(0, "bench")
            .grid_blocks(40)
            .threads_per_block(256)
            .solo_duration(SimTime::from_micros(50))
            .utilization(c, m)
            .build();
        let t0 = Instant::now();
        for i in 0..n_ops {
            e.submit(streams[i as usize % n_streams], OpKind::Kernel(proto.clone()))
                .unwrap();
        }
        let t1 = Instant::now();
        e.advance_to(SimTime::from_secs(60));
        let t2 = Instant::now();
        assert_eq!(e.drain_completions().len() as u64, n_ops);
        submit_ns = submit_ns.min((t1 - t0).as_nanos());
        advance_ns = advance_ns.min((t2 - t1).as_nanos());
    }
    let total = n_ops as u128;
    println!(
        "{label:28} streams={n_streams:3} ops={n_ops}: submit {:5} ns/op, advance {:5} ns/op, evals/op {:.2}",
        submit_ns / total,
        advance_ns / total,
        {
            // One more run to read counters.
            let mut e = GpuEngine::new(GpuSpec::v100_16gb(), false);
            let streams: Vec<_> = (0..n_streams)
                .map(|_| e.create_stream(StreamPriority::DEFAULT))
                .collect();
            let proto = KernelBuilder::new(0, "bench")
                .grid_blocks(40)
                .threads_per_block(256)
                .solo_duration(SimTime::from_micros(50))
                .utilization(c, m)
                .build();
            for i in 0..n_ops {
                e.submit(streams[i as usize % n_streams], OpKind::Kernel(proto.clone()))
                    .unwrap();
            }
            e.advance_to(SimTime::from_secs(60));
            e.eval_count() as f64 / n_ops as f64
        }
    );
}

fn main() {
    for &(ops, streams) in &[(10_000u64, 1usize), (10_000, 4), (10_000, 16), (10_000, 64), (10_000, 256), (100_000, 4)] {
        run(ops, streams, 0.5, 0.3, "bench load (over-cap)");
    }
    for &(ops, streams) in &[(10_000u64, 4usize), (10_000, 16)] {
        run(ops, streams, 0.02, 0.01, "light load (under-cap)");
    }
}
