//! A discrete-event GPU device simulator with a CUDA-like runtime API.
//!
//! This crate is the hardware substrate for the Orion (EuroSys '24)
//! reproduction. It models the parts of a GPU that Orion's scheduling policy
//! interacts with:
//!
//! * **Streaming multiprocessors (SMs)** with per-SM occupancy limits
//!   (threads, registers, shared memory, resident blocks), granted to kernels
//!   non-preemptively in (stream-priority, FIFO) order — once a kernel holds
//!   SMs it keeps them until it completes, exactly the property that motivates
//!   Orion's `DUR_THRESHOLD` throttling.
//! * **Streams** with priorities and in-order execution, and **events** with
//!   non-blocking completion queries (`cudaEventQuery`).
//! * A **roofline interference model**: concurrently running kernels share
//!   normalized compute throughput and memory bandwidth; oversubscription
//!   causes proportional rationing with a contention-efficiency penalty,
//!   calibrated against the paper's Table 2 toy experiment.
//! * A **PCIe copy engine** (blocking copies stall kernel dispatch, matching
//!   the utilization dips of the paper's Figure 8) and **memory capacity
//!   accounting** with device-wide synchronization on `malloc`/`free`.
//! * **Exact utilization accounting**: compute-throughput, memory-bandwidth,
//!   and SM-busy fractions are integrated piecewise over every inter-event
//!   interval, producing the timelines of Figures 1, 8 and 9 and the averages
//!   of Table 1 without sampling noise.
//!
//! The central type is [`engine::GpuEngine`]; [`cuda`] offers a thin
//! CUDA-flavoured facade over it.

pub mod cuda;
pub mod engine;
pub mod error;
pub mod fault;
pub mod interference;
pub mod kernel;
pub mod memory;
pub mod spec;
pub mod stream;
pub mod trace;
pub mod util;

pub use engine::{Completion, CompletionStatus, GpuEngine, OpId, OpKind};
pub use error::GpuError;
pub use fault::{FaultKind, FaultPlan, FaultRates, FaultTarget};
pub use kernel::{KernelDesc, ResourceProfile};
pub use spec::GpuSpec;
pub use stream::{StreamId, StreamPriority};
