//! Kernel descriptions, resource profiles, and the occupancy calculation.
//!
//! A [`KernelDesc`] carries exactly the metadata that Orion's offline
//! profiling phase (paper §5.2) extracts with Nsight: launch geometry
//! (blocks, threads, registers, shared memory), the solo execution time, and
//! whole-GPU compute-throughput / memory-bandwidth utilization fractions.
//! [`KernelDesc::sm_needed`] implements the paper's occupancy formula
//! `sm_needed = ceil(num_blocks / blocks_per_sm)`.

use std::sync::Arc;

use orion_desim::time::SimTime;
use orion_json::{json, FromJson, JsonError, ToJson, Value};

use crate::error::GpuError;
use crate::spec::GpuSpec;

/// Roofline classification of a kernel (paper §5.2).
///
/// A kernel is compute-bound / memory-bound when its compute-throughput /
/// memory-bandwidth utilization exceeds the Nsight-recommended 60% rule, or
/// when roofline analysis says so; kernels below both thresholds and without
/// roofline data are `Unknown` (in practice: tiny optimizer-update kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceProfile {
    /// Performance bounded by SM compute throughput.
    ComputeBound,
    /// Performance bounded by device memory bandwidth.
    MemoryBound,
    /// No roofline data and below both 60% thresholds.
    Unknown,
}

impl ResourceProfile {
    /// True when two profiles are "opposite" in the sense of Orion's policy
    /// (compute vs. memory). `Unknown` is opposite to nothing — the policy
    /// treats it specially (always collocatable) at a higher level.
    pub fn is_opposite(self, other: ResourceProfile) -> bool {
        matches!(
            (self, other),
            (ResourceProfile::ComputeBound, ResourceProfile::MemoryBound)
                | (ResourceProfile::MemoryBound, ResourceProfile::ComputeBound)
        )
    }
}

impl ToJson for ResourceProfile {
    fn to_json(&self) -> Value {
        Value::from(match self {
            ResourceProfile::ComputeBound => "ComputeBound",
            ResourceProfile::MemoryBound => "MemoryBound",
            ResourceProfile::Unknown => "Unknown",
        })
    }
}

impl FromJson for ResourceProfile {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("ComputeBound") => Ok(ResourceProfile::ComputeBound),
            Some("MemoryBound") => Ok(ResourceProfile::MemoryBound),
            Some("Unknown") => Ok(ResourceProfile::Unknown),
            _ => Err(JsonError::new("invalid ResourceProfile")),
        }
    }
}

/// Description of one GPU computation kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Stable identifier of the kernel within its workload (profile-table key).
    pub kernel_id: u32,
    /// Human-readable name, e.g. `conv2d_fprop_64x56x56`.
    ///
    /// Interned as `Arc<str>`: kernel descriptions are cloned on every
    /// submit/dispatch/trace of the simulation hot path, and an `Arc` bump is
    /// allocation-free where a `String` clone would copy the bytes each time.
    pub name: Arc<str>,
    /// Number of thread blocks in the launch grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, in bytes.
    pub shmem_per_block: u32,
    /// Execution time when running alone on the reference device.
    pub solo_duration: SimTime,
    /// Whole-GPU compute-throughput utilization fraction when running alone
    /// (Nsight `sm_throughput` / 100).
    pub compute_util: f64,
    /// Whole-GPU memory-bandwidth utilization fraction when running alone.
    pub mem_util: f64,
}

impl KernelDesc {
    /// Validates the launch geometry and utilization fractions.
    pub fn validate(&self) -> Result<(), GpuError> {
        if self.grid_blocks == 0 {
            return Err(GpuError::InvalidKernel("grid_blocks must be > 0".into()));
        }
        if self.threads_per_block == 0 || self.threads_per_block > 1024 {
            return Err(GpuError::InvalidKernel(format!(
                "threads_per_block must be in 1..=1024, got {}",
                self.threads_per_block
            )));
        }
        if self.solo_duration.is_zero() {
            return Err(GpuError::InvalidKernel(
                "solo_duration must be positive".into(),
            ));
        }
        for (label, v) in [("compute_util", self.compute_util), ("mem_util", self.mem_util)] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(GpuError::InvalidKernel(format!(
                    "{label} must be in [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Thread blocks of this kernel that fit concurrently on one SM,
    /// limited by threads, registers, shared memory, and the block cap.
    ///
    /// Returns at least 1 even for oversized blocks: hardware runs any valid
    /// launch, just one block at a time per SM.
    pub fn blocks_per_sm(&self, spec: &GpuSpec) -> u32 {
        let by_threads = spec.sm.max_threads / self.threads_per_block.max(1);
        let regs_per_block = self.regs_per_thread.saturating_mul(self.threads_per_block);
        let by_regs = spec
            .sm
            .max_registers
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);
        let by_shmem = spec
            .sm
            .max_shared_mem
            .checked_div(self.shmem_per_block)
            .unwrap_or(u32::MAX);
        by_threads
            .min(by_regs)
            .min(by_shmem)
            .min(spec.sm.max_blocks)
            .max(1)
    }

    /// SMs needed to run the whole grid concurrently (paper §5.2):
    /// `ceil(num_blocks / blocks_per_sm)`, clamped to the device SM count.
    pub fn sm_needed(&self, spec: &GpuSpec) -> u32 {
        let per_sm = self.blocks_per_sm(spec);
        self.grid_blocks.div_ceil(per_sm).min(spec.num_sms).max(1)
    }

    /// Classifies this kernel with the paper's 60% rule.
    pub fn classify(&self) -> ResourceProfile {
        classify_utilization(self.compute_util, self.mem_util)
    }
}

impl ToJson for KernelDesc {
    fn to_json(&self) -> Value {
        json!({
            "kernel_id": self.kernel_id,
            "name": self.name.as_ref(),
            "grid_blocks": self.grid_blocks,
            "threads_per_block": self.threads_per_block,
            "regs_per_thread": self.regs_per_thread,
            "shmem_per_block": self.shmem_per_block,
            "solo_duration": self.solo_duration.to_json(),
            "compute_util": self.compute_util,
            "mem_util": self.mem_util,
        })
    }
}

impl FromJson for KernelDesc {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        use orion_json::de::*;
        Ok(KernelDesc {
            kernel_id: u32_field(v, "kernel_id")?,
            name: str_field(v, "name")?.into(),
            grid_blocks: u32_field(v, "grid_blocks")?,
            threads_per_block: u32_field(v, "threads_per_block")?,
            regs_per_thread: u32_field(v, "regs_per_thread")?,
            shmem_per_block: u32_field(v, "shmem_per_block")?,
            solo_duration: SimTime::from_json(field(v, "solo_duration")?)?,
            compute_util: f64_field(v, "compute_util")?,
            mem_util: f64_field(v, "mem_util")?,
        })
    }
}

/// The 60%-threshold roofline classification used by the profiler (§5.2).
pub fn classify_utilization(compute_util: f64, mem_util: f64) -> ResourceProfile {
    const THRESHOLD: f64 = 0.60;
    // When both exceed the threshold, the larger demand wins (the roofline
    // bottleneck); ties favour compute, as conv/GEMM kernels dominate there.
    if compute_util >= THRESHOLD && compute_util >= mem_util {
        ResourceProfile::ComputeBound
    } else if mem_util >= THRESHOLD {
        ResourceProfile::MemoryBound
    } else {
        ResourceProfile::Unknown
    }
}

/// Builder with sane defaults for tests and workload generators.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    desc: KernelDesc,
}

impl KernelBuilder {
    /// Starts a kernel description with the given id and name.
    pub fn new(kernel_id: u32, name: impl Into<Arc<str>>) -> Self {
        KernelBuilder {
            desc: KernelDesc {
                kernel_id,
                name: name.into(),
                grid_blocks: 80,
                threads_per_block: 256,
                regs_per_thread: 32,
                shmem_per_block: 0,
                solo_duration: SimTime::from_micros(100),
                compute_util: 0.5,
                mem_util: 0.3,
            },
        }
    }

    /// Sets the grid size in thread blocks.
    pub fn grid_blocks(mut self, blocks: u32) -> Self {
        self.desc.grid_blocks = blocks;
        self
    }

    /// Sets threads per block.
    pub fn threads_per_block(mut self, threads: u32) -> Self {
        self.desc.threads_per_block = threads;
        self
    }

    /// Sets registers per thread.
    pub fn regs_per_thread(mut self, regs: u32) -> Self {
        self.desc.regs_per_thread = regs;
        self
    }

    /// Sets shared memory per block (bytes).
    pub fn shmem_per_block(mut self, bytes: u32) -> Self {
        self.desc.shmem_per_block = bytes;
        self
    }

    /// Sets the solo execution duration.
    pub fn solo_duration(mut self, d: SimTime) -> Self {
        self.desc.solo_duration = d;
        self
    }

    /// Sets compute-throughput and memory-bandwidth utilization fractions.
    pub fn utilization(mut self, compute: f64, mem: f64) -> Self {
        self.desc.compute_util = compute;
        self.desc.mem_util = mem;
        self
    }

    /// Finishes the builder.
    ///
    /// Returns the description behind an `Arc`: kernel descriptions are
    /// immutable once built and shared by every submission of the same
    /// kernel, so op queues carry an 8-byte handle (one refcount bump per
    /// submit) instead of a ~100-byte inline copy.
    ///
    /// # Panics
    ///
    /// Panics if the resulting description fails [`KernelDesc::validate`];
    /// builders are for statically-known test/workload kernels.
    pub fn build(self) -> Arc<KernelDesc> {
        Arc::new(self.build_desc())
    }

    /// Finishes the builder into a bare (unshared) description, for callers
    /// that need to tweak fields afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the resulting description fails [`KernelDesc::validate`].
    pub fn build_desc(self) -> KernelDesc {
        self.desc
            .validate()
            .unwrap_or_else(|e| panic!("invalid kernel from builder: {e}"));
        self.desc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuSpec {
        GpuSpec::v100_16gb()
    }

    #[test]
    fn occupancy_limited_by_threads() {
        // 1024 threads/block on a 2048-thread SM -> 2 blocks/SM.
        let k = KernelBuilder::new(0, "t")
            .threads_per_block(1024)
            .regs_per_thread(16)
            .build();
        assert_eq!(k.blocks_per_sm(&v100()), 2);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        // 256 threads * 64 regs = 16384 regs/block; 65536/16384 = 4 blocks.
        let k = KernelBuilder::new(0, "r")
            .threads_per_block(256)
            .regs_per_thread(64)
            .build();
        assert_eq!(k.blocks_per_sm(&v100()), 4);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        // 48 KiB shmem/block on a 96 KiB SM -> 2 blocks.
        let k = KernelBuilder::new(0, "s")
            .threads_per_block(128)
            .regs_per_thread(16)
            .shmem_per_block(48 * 1024)
            .build();
        assert_eq!(k.blocks_per_sm(&v100()), 2);
    }

    #[test]
    fn occupancy_block_cap() {
        // Tiny blocks hit the 32-blocks/SM architectural cap.
        let k = KernelBuilder::new(0, "tiny")
            .threads_per_block(32)
            .regs_per_thread(8)
            .build();
        assert_eq!(k.blocks_per_sm(&v100()), 32);
    }

    #[test]
    fn sm_needed_formula() {
        let k = KernelBuilder::new(0, "k")
            .grid_blocks(100)
            .threads_per_block(1024) // 2 blocks/SM
            .regs_per_thread(16)
            .build();
        // ceil(100 / 2) = 50 SMs.
        assert_eq!(k.sm_needed(&v100()), 50);
    }

    #[test]
    fn sm_needed_clamps_to_device() {
        let k = KernelBuilder::new(0, "big")
            .grid_blocks(100_000)
            .threads_per_block(1024)
            .regs_per_thread(16)
            .build();
        assert_eq!(k.sm_needed(&v100()), 80);
    }

    #[test]
    fn classification_sixty_percent_rule() {
        assert_eq!(
            classify_utilization(0.89, 0.20),
            ResourceProfile::ComputeBound
        );
        assert_eq!(
            classify_utilization(0.14, 0.80),
            ResourceProfile::MemoryBound
        );
        assert_eq!(classify_utilization(0.40, 0.40), ResourceProfile::Unknown);
        // Both above threshold: bottleneck (larger) wins.
        assert_eq!(
            classify_utilization(0.70, 0.90),
            ResourceProfile::MemoryBound
        );
        assert_eq!(
            classify_utilization(0.90, 0.70),
            ResourceProfile::ComputeBound
        );
    }

    #[test]
    fn opposite_profiles() {
        use ResourceProfile::*;
        assert!(ComputeBound.is_opposite(MemoryBound));
        assert!(MemoryBound.is_opposite(ComputeBound));
        assert!(!ComputeBound.is_opposite(ComputeBound));
        assert!(!Unknown.is_opposite(ComputeBound));
        assert!(!Unknown.is_opposite(Unknown));
    }

    #[test]
    fn validation_rejects_bad_kernels() {
        let mut k = KernelBuilder::new(0, "ok").build_desc();
        assert!(k.validate().is_ok());
        k.grid_blocks = 0;
        assert!(k.validate().is_err());
        k.grid_blocks = 1;
        k.compute_util = 1.5;
        assert!(k.validate().is_err());
        k.compute_util = 0.5;
        k.threads_per_block = 2048;
        assert!(k.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let k = KernelBuilder::new(7, "conv").utilization(0.8, 0.2).build();
        let s = k.to_json().to_compact();
        let back = KernelDesc::from_json(&orion_json::parse(&s).unwrap()).unwrap();
        assert_eq!(*k, back);
    }
}
