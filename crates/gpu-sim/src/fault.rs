//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] describes *which* submitted operations misbehave and *how*.
//! Decisions are a pure function of `(plan.seed, submit ordinal)` — the
//! ordinal is the count of operations submitted to the device so far — so a
//! run with the same seed and plan produces byte-identical faults regardless
//! of how many runner threads drive sibling simulations (the same
//! splitmix-derived independence argument as the per-cell experiment seeds).
//!
//! Fault taxonomy (see DESIGN.md §11):
//!
//! - [`FaultKind::KernelFault`]: the kernel runs to its scheduled completion
//!   but produces a *sticky* device fault, mirroring CUDA sticky-error
//!   semantics: every running and queued op is aborted, and all subsequent
//!   submits return [`crate::GpuError::DeviceFault`] until
//!   [`crate::GpuEngine::reset_device`].
//! - [`FaultKind::CopyFail`]: a memcpy completes with a `Faulted` status but
//!   the device survives (non-sticky, like a host-side transfer error).
//! - [`FaultKind::MallocFail`]: a `Malloc` op completes with no allocation
//!   and a `Faulted` status (transient allocator failure, distinct from
//!   capacity OOM which stays an `Ok` completion with `alloc: None`).
//! - [`FaultKind::Stall`]: the kernel's execution is silently extended by
//!   [`FaultPlan::stall`] of solo work — it still completes normally, but a
//!   supervisor watchdog may fire first.
//!
//! An empty plan ([`FaultPlan::none`] or all-zero rates with no targets) is a
//! strict no-op: the engine stores no injector at all, so the fault-free hot
//! path is untouched and results stay byte-identical.

use orion_desim::rng::cell_seed;
use orion_desim::time::SimTime;

/// What a faulted operation does. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sticky device fault raised when the kernel completes.
    KernelFault,
    /// Non-sticky memcpy failure.
    CopyFail,
    /// Non-sticky allocation failure (completion carries no allocation).
    MallocFail,
    /// Kernel execution silently extended by [`FaultPlan::stall`].
    Stall,
}

/// Per-category fault probabilities, each rolled independently per submitted
/// op of that category. All zero by default.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// P(sticky kernel fault) per submitted kernel.
    pub kernel_fault: f64,
    /// P(stall) per submitted kernel, rolled after `kernel_fault` on the
    /// same uniform draw (the two are mutually exclusive).
    pub stall: f64,
    /// P(transfer failure) per submitted memcpy.
    pub copy_fail: f64,
    /// P(allocation failure) per submitted malloc.
    pub malloc_fail: f64,
}

impl FaultRates {
    /// True when every probability is zero.
    pub fn is_zero(&self) -> bool {
        self.kernel_fault == 0.0
            && self.stall == 0.0
            && self.copy_fail == 0.0
            && self.malloc_fail == 0.0
    }
}

/// Selects a specific operation for a targeted (non-probabilistic) fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The n-th operation submitted to the device (0-based, all kinds).
    Ordinal(u64),
    /// The n-th *kernel* submitted on a stream whose priority is below
    /// [`crate::StreamPriority::HIGH`] (0-based). Aims chaos at best-effort
    /// work under priority-aware policies without knowing op ids up front.
    NthBestEffortKernel(u64),
}

/// A deterministic fault schedule for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-ordinal uniform draws.
    pub seed: u64,
    /// Probabilistic fault rates.
    pub rates: FaultRates,
    /// Extra solo work added to a stalled kernel.
    pub stall: SimTime,
    /// Targeted faults, checked before the probabilistic roll. Each target
    /// matches at most one operation.
    pub targets: Vec<(FaultTarget, FaultKind)>,
}

impl FaultPlan {
    /// The empty plan: injects nothing and costs nothing.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rates: FaultRates::default(),
            stall: SimTime::ZERO,
            targets: Vec::new(),
        }
    }

    /// A probabilistic plan with the given seed and rates.
    pub fn seeded(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan {
            seed,
            rates,
            stall: SimTime::from_millis(50),
            targets: Vec::new(),
        }
    }

    /// Adds a targeted fault (builder style).
    pub fn with_target(mut self, target: FaultTarget, kind: FaultKind) -> FaultPlan {
        self.targets.push((target, kind));
        self
    }

    /// Sets the stall extension (builder style).
    pub fn with_stall(mut self, stall: SimTime) -> FaultPlan {
        self.stall = stall;
        self
    }

    /// True when the plan can never inject a fault.
    pub fn is_empty(&self) -> bool {
        self.rates.is_zero() && self.targets.is_empty()
    }
}

/// Uniform draw in `[0, 1)` for one cell of a fault schedule: a double
/// application of splitmix64 (via [`cell_seed`]) keyed on `(seed, cell)`,
/// mapped to the unit interval with the standard 53-bit mantissa trick.
///
/// Public so higher-level fault planes (the fleet's per-`(gpu, epoch)`
/// failure rolls in `orion-core`) draw from the *same* keyed-uniform
/// construction as the per-ordinal device rolls, keeping every chaos
/// decision in the system a pure function of `(seed, cell index)`.
pub fn unit_roll(seed: u64, cell: u64) -> f64 {
    (cell_seed(seed, cell) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Internal alias: the per-submit-ordinal draw.
fn roll(seed: u64, ordinal: u64) -> f64 {
    unit_roll(seed, ordinal)
}

/// Operation category for a fault decision, as seen by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCategory {
    /// A kernel; `best_effort` is true when the stream priority is below
    /// [`crate::StreamPriority::HIGH`].
    Kernel {
        /// Submitted on a non-high-priority stream.
        best_effort: bool,
    },
    /// A memcpy (either direction).
    Copy,
    /// A `Malloc` op.
    Malloc,
    /// Anything else (free, event record) — never faulted.
    Other,
}

/// Streaming decision state over a [`FaultPlan`]: tracks the submit ordinal
/// and the best-effort kernel count. Owned by the engine; one per device.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    ordinal: u64,
    be_kernels_seen: u64,
}

impl FaultInjector {
    /// Wraps a plan. Callers should skip construction entirely for an
    /// [empty](FaultPlan::is_empty) plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            ordinal: 0,
            be_kernels_seen: 0,
        }
    }

    /// The plan's stall extension.
    pub fn stall(&self) -> SimTime {
        self.plan.stall
    }

    /// Decides the fate of the next submitted operation. Must be called
    /// exactly once per submit, in submission order: every call consumes one
    /// ordinal so decisions stay aligned with the device's submit stream.
    pub fn decide(&mut self, category: FaultCategory) -> Option<FaultKind> {
        let ordinal = self.ordinal;
        self.ordinal += 1;
        let be_seen = self.be_kernels_seen;
        if let FaultCategory::Kernel { best_effort: true } = category {
            self.be_kernels_seen += 1;
        }

        // Targeted faults first: exact ordinal or n-th best-effort kernel.
        for &(target, kind) in &self.plan.targets {
            let hit = match target {
                FaultTarget::Ordinal(n) => n == ordinal,
                FaultTarget::NthBestEffortKernel(n) => {
                    matches!(category, FaultCategory::Kernel { best_effort: true }) && n == be_seen
                }
            };
            if hit {
                return Some(kind);
            }
        }

        let rates = &self.plan.rates;
        match category {
            FaultCategory::Kernel { .. } => {
                if rates.kernel_fault == 0.0 && rates.stall == 0.0 {
                    return None;
                }
                let u = roll(self.plan.seed, ordinal);
                if u < rates.kernel_fault {
                    Some(FaultKind::KernelFault)
                } else if u < rates.kernel_fault + rates.stall {
                    Some(FaultKind::Stall)
                } else {
                    None
                }
            }
            FaultCategory::Copy => {
                if rates.copy_fail == 0.0 {
                    return None;
                }
                (roll(self.plan.seed, ordinal) < rates.copy_fail).then_some(FaultKind::CopyFail)
            }
            FaultCategory::Malloc => {
                if rates.malloc_fail == 0.0 {
                    return None;
                }
                (roll(self.plan.seed, ordinal) < rates.malloc_fail).then_some(FaultKind::MallocFail)
            }
            FaultCategory::Other => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::seeded(7, FaultRates::default()).is_empty());
        let p = FaultPlan::none().with_target(FaultTarget::Ordinal(0), FaultKind::CopyFail);
        assert!(!p.is_empty());
        let r = FaultRates {
            stall: 0.1,
            ..FaultRates::default()
        };
        assert!(!FaultPlan::seeded(7, r).is_empty());
    }

    #[test]
    fn decisions_are_deterministic_in_ordinal() {
        let rates = FaultRates {
            kernel_fault: 0.2,
            stall: 0.2,
            copy_fail: 0.3,
            malloc_fail: 0.3,
        };
        let plan = FaultPlan::seeded(1234, rates);
        let cats = [
            FaultCategory::Kernel { best_effort: true },
            FaultCategory::Copy,
            FaultCategory::Malloc,
            FaultCategory::Kernel { best_effort: false },
            FaultCategory::Other,
        ];
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let seq_a: Vec<_> = cats.iter().map(|&c| a.decide(c)).collect();
        let seq_b: Vec<_> = cats.iter().map(|&c| b.decide(c)).collect();
        assert_eq!(seq_a, seq_b);
        // `Other` ops are never faulted even at rate 1.
        assert_eq!(seq_a[4], None);
    }

    #[test]
    fn rate_one_faults_every_kernel() {
        let rates = FaultRates {
            kernel_fault: 1.0,
            ..FaultRates::default()
        };
        let mut inj = FaultInjector::new(FaultPlan::seeded(9, rates));
        for _ in 0..10 {
            assert_eq!(
                inj.decide(FaultCategory::Kernel { best_effort: false }),
                Some(FaultKind::KernelFault)
            );
        }
        assert_eq!(inj.decide(FaultCategory::Copy), None);
    }

    #[test]
    fn targeted_nth_best_effort_kernel_fires_once() {
        let plan = FaultPlan::none()
            .with_target(FaultTarget::NthBestEffortKernel(1), FaultKind::KernelFault);
        let mut inj = FaultInjector::new(plan);
        // HP kernels never advance the BE count.
        assert_eq!(inj.decide(FaultCategory::Kernel { best_effort: false }), None);
        assert_eq!(inj.decide(FaultCategory::Kernel { best_effort: true }), None);
        assert_eq!(
            inj.decide(FaultCategory::Kernel { best_effort: true }),
            Some(FaultKind::KernelFault)
        );
        assert_eq!(inj.decide(FaultCategory::Kernel { best_effort: true }), None);
    }

    #[test]
    fn targeted_ordinal_counts_all_submits() {
        let plan = FaultPlan::none().with_target(FaultTarget::Ordinal(2), FaultKind::MallocFail);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(FaultCategory::Other), None);
        assert_eq!(inj.decide(FaultCategory::Copy), None);
        assert_eq!(inj.decide(FaultCategory::Malloc), Some(FaultKind::MallocFail));
    }

    #[test]
    fn roll_is_in_unit_interval() {
        for ord in 0..1000 {
            let u = roll(42, ord);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
